GO ?= go

.PHONY: all build vet test race bench bench-json profile check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/parallel/ ./internal/core/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# bench-json runs the ablation benchmarks (nearest cache, merge stages,
# reshape, parallel scaling, pruning, chunked, dense-vs-sparse index,
# pruned-vs-naive effort kernel; DESIGN.md Sec. 5) and records the
# machine-readable stream in BENCH_glove.json so the performance
# trajectory is tracked across PRs.
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkAblation|BenchmarkFingerprintEffortKernel|BenchmarkEffortKernel' \
		-benchtime=1x -json . ./internal/core > BENCH_glove.json

# profile writes a CPU pprof of the k=2 civ GLOVE run (the
# BenchmarkAblationNearestCache/cached workload, which is dominated by
# the effort kernel) to cpu.pprof; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) test -run=^$$ -bench='BenchmarkAblationNearestCache/cached' \
		-benchtime=3x -cpuprofile=cpu.pprof -o bench.test .

check: build vet test
