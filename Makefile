GO ?= go

.PHONY: all build vet fmt depcheck test race crash-e2e bench bench-json profile profile-1m expolint check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The client SDK must stay on the wire contract (internal/api) and
# never grow a dependency on the server internals — otherwise "shared
# DTOs" silently becomes "client reaches into the service".
depcheck:
	@if $(GO) list -deps ./pkg/client | grep -qx 'repro/internal/service'; then \
		echo "pkg/client must not depend on internal/service"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/parallel/ ./internal/core/ ./internal/obs/ ./internal/colstore/ ./internal/cdr/ ./internal/wal/ ./internal/faultinject/ ./pkg/client/ ./cmd/glovectl/

# crash-e2e runs the kill/restart fault-injection matrix against a real
# gloved binary built with the faultinject tag: torn WAL writes,
# durable-but-unacked appends, a crash between journaling and publishing
# a follow window, and the SIGTERM drain/checkpoint path.
crash-e2e:
	$(GO) test -tags faultinject -race ./internal/faultinject/

# expolint pins the Prometheus text-exposition contract: the strict
# parser round-trips over rendered registries and a live /metrics
# scrape of a server that has done real work.
expolint:
	$(GO) test -run Exposition ./internal/obs/ ./internal/service/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# bench-json runs the ablation benchmarks (nearest cache, merge stages,
# reshape, parallel scaling, pruning, chunked, dense-vs-sparse index,
# pruned-vs-naive effort kernel; DESIGN.md Sec. 5) plus the 100k/300k/1M
# scaling series with its peak-heap metrics (DESIGN.md Sec. 11) and
# records the machine-readable stream in BENCH_glove.json so the
# performance trajectory is tracked across PRs. BenchmarkWindowCommit
# pins the streaming pipeline: per-window commit latency must track the
# window's new-data volume, not the total feed size (DESIGN.md Sec. 12).
# BenchmarkWALAppend pins the durability tax: the per-record journal
# append/commit cost every mutation now pays (DESIGN.md Sec. 13).
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkAblation|BenchmarkFingerprintEffortKernel|BenchmarkEffortKernel|BenchmarkScaling|BenchmarkWindowCommit|BenchmarkWAL' \
		-benchtime=1x -timeout=30m -json . ./internal/core ./internal/wal > BENCH_glove.json

# profile writes a CPU pprof of the k=2 civ GLOVE run (the
# BenchmarkAblationNearestCache/cached workload, which is dominated by
# the effort kernel) to cpu.pprof; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) test -run=^$$ -bench='BenchmarkAblationNearestCache/cached' \
		-benchtime=3x -cpuprofile=cpu.pprof -o bench.test .

# profile-1m writes a CPU pprof of the 1M-fingerprint index-build and
# merge-burst probe to cpu1m.pprof — the workload the scaling tier
# optimizes; inspect with `go tool pprof cpu1m.pprof`.
profile-1m:
	$(GO) test -run=^$$ -bench='BenchmarkScalingIndexMerge/1m' \
		-benchtime=1x -timeout=30m -cpuprofile=cpu1m.pprof -o bench.test .

check: build vet fmt depcheck test
