GO ?= go

.PHONY: all build vet fmt lint lint-vocab test race crash-e2e bench bench-json profile profile-1m expolint check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# glovelint runs the stdlib-only analyzer suite (DESIGN.md Sec. 14)
# over every package: error-code/metric/span/journal vocabularies,
# DTO placement (subsumes the old grep-based depcheck at the type-graph
# level), blocking I/O under held mutexes, and context discipline.
lint:
	$(GO) run ./cmd/glovelint

# lint-vocab regenerates the committed vocabulary files under
# internal/lint/vocab/ from the current tree. Regeneration may only
# append — removing or renaming a shipped name fails `make lint`.
lint-vocab:
	$(GO) run ./cmd/glovelint -gen-vocab

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/parallel/ ./internal/core/ ./internal/obs/ ./internal/colstore/ ./internal/cdr/ ./internal/wal/ ./internal/faultinject/ ./internal/lint/ ./pkg/client/ ./cmd/glovectl/

# crash-e2e runs the kill/restart fault-injection matrix against a real
# gloved binary built with the faultinject tag: torn WAL writes,
# durable-but-unacked appends, a crash between journaling and publishing
# a follow window, and the SIGTERM drain/checkpoint path.
crash-e2e:
	$(GO) test -tags faultinject -race ./internal/faultinject/

# expolint pins the Prometheus text-exposition contract: the strict
# parser round-trips over rendered registries and a live /metrics
# scrape of a server that has done real work.
expolint:
	$(GO) test -run Exposition ./internal/obs/ ./internal/service/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# bench-json runs the ablation benchmarks (nearest cache, merge stages,
# reshape, parallel scaling, pruning, chunked, dense-vs-sparse index,
# pruned-vs-naive effort kernel; DESIGN.md Sec. 5) plus the 100k/300k/1M
# scaling series with its peak-heap metrics (DESIGN.md Sec. 11) and
# records the machine-readable stream in BENCH_glove.json so the
# performance trajectory is tracked across PRs. BenchmarkWindowCommit
# pins the streaming pipeline: per-window commit latency must track the
# window's new-data volume, not the total feed size (DESIGN.md Sec. 12).
# BenchmarkWALAppend pins the durability tax: the per-record journal
# append/commit cost every mutation now pays (DESIGN.md Sec. 13).
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkAblation|BenchmarkFingerprintEffortKernel|BenchmarkEffortKernel|BenchmarkScaling|BenchmarkWindowCommit|BenchmarkWAL' \
		-benchtime=1x -timeout=30m -json . ./internal/core ./internal/wal > BENCH_glove.json

# profile writes a CPU pprof of the k=2 civ GLOVE run (the
# BenchmarkAblationNearestCache/cached workload, which is dominated by
# the effort kernel) to cpu.pprof; inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) test -run=^$$ -bench='BenchmarkAblationNearestCache/cached' \
		-benchtime=3x -cpuprofile=cpu.pprof -o bench.test .

# profile-1m writes a CPU pprof of the 1M-fingerprint index-build and
# merge-burst probe to cpu1m.pprof — the workload the scaling tier
# optimizes; inspect with `go tool pprof cpu1m.pprof`.
profile-1m:
	$(GO) test -run=^$$ -bench='BenchmarkScalingIndexMerge/1m' \
		-benchtime=1x -timeout=30m -cpuprofile=cpu1m.pprof -o bench.test .

check: build vet fmt lint test
