GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/parallel/ ./internal/core/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

check: build vet test
