GO ?= go

.PHONY: all build vet test race bench bench-json check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/service/ ./internal/parallel/ ./internal/core/

bench:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# bench-json runs the ablation benchmarks (nearest cache, merge stages,
# reshape, parallel scaling, pruning, chunked, dense-vs-sparse index;
# DESIGN.md Sec. 5) and records the machine-readable stream in
# BENCH_glove.json so the performance trajectory is tracked across PRs.
bench-json:
	$(GO) test -run=^$$ -bench='BenchmarkAblation|BenchmarkFingerprintEffortKernel' \
		-benchtime=1x -json . > BENCH_glove.json

check: build vet test
