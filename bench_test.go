// Package repro_test holds the benchmark harness regenerating every
// table and figure of the paper's evaluation (one benchmark per
// artifact; see the experiment index in DESIGN.md) plus the ablation
// benchmarks for the design choices DESIGN.md calls out. Full-scale runs
// live in cmd/gloveexp; these benches run the same drivers at a reduced,
// fixed workload so `go test -bench=.` regenerates the whole evaluation
// in minutes and reports the cost of each piece.
package repro_test

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

// benchScale is the fixed workload used by the figure/table benchmarks.
var benchScale = experiments.Config{Users: 120, Days: 7}

var (
	benchWorkloadsOnce sync.Once
	benchWorkloads     *experiments.Workloads
)

func benchW(b *testing.B) *experiments.Workloads {
	b.Helper()
	benchWorkloadsOnce.Do(func() {
		w, err := experiments.NewWorkloads(benchScale)
		if err != nil {
			panic(err)
		}
		// Pre-generate so dataset synthesis is not measured.
		for _, p := range experiments.AllProfiles() {
			if _, err := w.Dataset(p); err != nil {
				panic(err)
			}
		}
		benchWorkloads = w
	})
	return benchWorkloads
}

// run executes an experiment b.N times, rendering the last result to
// the benchmark log (so the series the paper plots are visible in
// bench_output.txt).
func run[T interface{ Render(io.Writer) }](b *testing.B, fn func(*experiments.Workloads) (T, error)) {
	w := benchW(b)
	b.ResetTimer()
	var last T
	for i := 0; i < b.N; i++ {
		r, err := fn(w)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	if b.N > 0 {
		last.Render(benchLogWriter{b})
	}
}

// benchLogWriter routes experiment output through b.Log so it lands in
// the -bench output without confusing the benchmark line parser.
type benchLogWriter struct{ b *testing.B }

func (w benchLogWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

func BenchmarkFig3aKGapCDF(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig3aResult, error) {
		return experiments.Fig3a(w)
	})
}

func BenchmarkFig3bKGapVsK(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig3bResult, error) {
		return experiments.Fig3b(w)
	})
}

func BenchmarkFig4GeneralizationSweep(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig4Result, error) {
		return experiments.Fig4(w)
	})
}

func BenchmarkFig5aTWI(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig5Result, error) {
		return experiments.Fig5(w)
	})
}

// Fig. 5b shares the decomposition with Fig. 5a; its driver is the same
// and this bench exists so every figure has a named regeneration target.
func BenchmarkFig5bTemporalRatio(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig5Result, error) {
		return experiments.Fig5(w)
	})
}

func BenchmarkFig7GloveAccuracy(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig7Result, error) {
		return experiments.Fig7(w)
	})
}

func BenchmarkFig8AccuracyVsK(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig8Result, error) {
		return experiments.Fig8(w)
	})
}

func BenchmarkFig9Suppression(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Fig9Result, error) {
		return experiments.Fig9(w)
	})
}

func BenchmarkTable2Comparative(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.Table2Result, error) {
		return experiments.Table2(w)
	})
}

func BenchmarkFig10Timespan(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.SweepResult, error) {
		return experiments.Fig10(w)
	})
}

func BenchmarkFig11DatasetSize(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.SweepResult, error) {
		return experiments.Fig11(w)
	})
}

func BenchmarkExtUniqueness(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.UniquenessResult, error) {
		return experiments.Uniqueness(w)
	})
}

func BenchmarkExtUtility(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.UtilityResult, error) {
		return experiments.Utility(w)
	})
}

func BenchmarkExtRisk(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.RiskResult, error) {
		return experiments.Risk(w)
	})
}

func BenchmarkAblationCalibration(b *testing.B) {
	run(b, func(w *experiments.Workloads) (*experiments.CalibrationResult, error) {
		return experiments.Calibration(w)
	})
}

// --- Ablation benchmarks (DESIGN.md Sec. 5) ---

func benchDataset(b *testing.B) *core.Dataset {
	b.Helper()
	w := benchW(b)
	d, err := w.Dataset(experiments.ProfileCIV)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// Per-row nearest caching vs full matrix rescan in the GLOVE loop.
func BenchmarkAblationNearestCache(b *testing.B) {
	d := benchDataset(b)
	for _, naive := range []bool{false, true} {
		name := "cached"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Glove(d, core.GloveOptions{K: 2, NaiveMinPair: naive}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Two-stage merge matching (paper) vs single-stage.
func BenchmarkAblationMergeStages(b *testing.B) {
	d := benchDataset(b)
	for _, disable := range []bool{false, true} {
		name := "two-stage"
		if disable {
			name = "single-stage"
		}
		b.Run(name, func(b *testing.B) {
			var samples int
			for i := 0; i < b.N; i++ {
				out, _, err := core.Glove(d, core.GloveOptions{
					K:     2,
					Merge: core.MergeOptions{DisableTwoStage: disable},
				})
				if err != nil {
					b.Fatal(err)
				}
				samples = out.TotalSamples()
			}
			b.ReportMetric(float64(samples), "published-samples")
		})
	}
}

// Reshaping on/off: the overlap count it removes and its cost.
func BenchmarkAblationReshape(b *testing.B) {
	d := benchDataset(b)
	for _, disable := range []bool{false, true} {
		name := "reshape"
		if disable {
			name = "no-reshape"
		}
		b.Run(name, func(b *testing.B) {
			var overlaps int
			for i := 0; i < b.N; i++ {
				out, _, err := core.Glove(d, core.GloveOptions{
					K:     2,
					Merge: core.MergeOptions{DisableReshape: disable},
				})
				if err != nil {
					b.Fatal(err)
				}
				overlaps = 0
				for _, f := range out.Fingerprints {
					overlaps += core.CountTemporalOverlaps(f.Samples)
				}
			}
			b.ReportMetric(float64(overlaps), "temporal-overlaps")
		})
	}
}

// Parallel pair-effort computation across worker counts.
func BenchmarkAblationParallelScaling(b *testing.B) {
	d := benchDataset(b)
	p := core.DefaultParams()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.KGapAll(p, d, 2, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Bounding-volume pruning of the k-gap analysis vs exhaustive pairs.
func BenchmarkAblationPruning(b *testing.B) {
	d := benchDataset(b)
	p := core.DefaultParams()
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.KGapAll(p, d, 2, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.KGapAllNoPruning(p, d, 2, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Chunked GLOVE vs whole-dataset GLOVE: the scalability extension of
// internal/core.GloveChunked, trading cross-block merges for a sum of
// small quadratics.
func BenchmarkAblationChunked(b *testing.B) {
	d := benchDataset(b)
	b.Run("whole", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Glove(d, core.GloveOptions{K: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, chunk := range []int{30, 60} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := core.GloveChunked(d, core.ChunkedGloveOptions{
					Glove:     core.GloveOptions{K: 2},
					ChunkSize: chunk,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Dense matrix vs sparse spatial-grid pair-selection index: the two
// EffortIndex implementations behind core.Anonymize produce identical
// output (asserted by the core equivalence property test); this ablation
// tracks the time cost of trading the O(n²) matrix for O(n·m) candidate
// lists across candidate budgets.
func BenchmarkAblationIndex(b *testing.B) {
	d := benchDataset(b)
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Glove(d, core.GloveOptions{K: 2, Index: core.IndexDense}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, m := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("sparse/m=%d", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := core.Glove(d, core.GloveOptions{
					K: 2, Index: core.IndexSparse, IndexNeighbors: m,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Observability overhead on the k=2 civ run: "bare" is the engine
// alone, "instrumented" adds the exact per-run work the service layer
// performs — a span tree with the shard/phase children and attrs, plus
// the counter and histogram updates folded from GloveStats. The engine
// hot loop itself is never instrumented (stats are lock-free counters
// read once at the end), so the two series must stay within the
// acceptance bound (2%) of each other.
func BenchmarkAblationInstrumentation(b *testing.B) {
	d := benchDataset(b)
	b.Run("bare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Glove(d, core.GloveOptions{K: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		calls := reg.Counter("bench_effort_kernel_calls_total", "kernel calls.")
		pruned := reg.Counter("bench_effort_kernel_pruned_total", "pruned calls.")
		merges := reg.Counter("bench_merges_total", "merges.")
		dur := reg.Histogram("bench_run_seconds", "run durations.", nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace(obs.SpanJob, "bench")
			span := tr.Root().Child(obs.SpanShard, "shard 0")
			start := time.Now()
			_, stats, err := core.Glove(d, core.GloveOptions{K: 2})
			if err != nil {
				b.Fatal(err)
			}
			span.SetAttr("fingerprints", stats.InputFingerprints)
			span.AddCompleted(obs.SpanIndexBuild, "", start,
				time.Duration(stats.IndexBuildNanos), nil)
			span.AddCompleted(obs.SpanMerge, "", start,
				time.Duration(stats.MergeNanos), map[string]any{"merges": stats.Merges})
			span.End()
			tr.Root().End()
			calls.Add(float64(stats.EffortKernelCalls))
			pruned.Add(float64(stats.EffortKernelPruned))
			merges.Add(float64(stats.Merges))
			dur.Observe(time.Since(start).Seconds())
		}
	})
}

// The pruned-vs-naive effort kernel comparison lives next to the
// kernel as core.BenchmarkEffortKernelViews (clustered vs uniform, one
// op = one thresholded row scan over cached SoA views — the production
// shape); `make bench-json` includes it via the ./internal/core
// package.

// The hot kernel itself: Eq. 10 over one pair, the unit the paper's GPU
// implementation parallelizes.
func BenchmarkFingerprintEffortKernel(b *testing.B) {
	d := benchDataset(b)
	rng := rand.New(rand.NewSource(1))
	p := core.DefaultParams()
	n := d.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := d.Fingerprints[rng.Intn(n)]
		c := d.Fingerprints[rng.Intn(n)]
		p.FingerprintEffort(a, c)
	}
}
