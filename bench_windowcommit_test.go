package repro_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// followFeed synthesizes a feed whose records arrive window by window:
// the same subscriber population reappears in every one-hour window
// with jittered positions and timestamps. Slicing the record list at a
// window boundary reproduces exactly what a follow job's registry
// snapshot shows after that window's appends.
func followFeed(windows, users, samples int) *cdr.Table {
	rng := rand.New(rand.NewSource(7))
	recs := make([]cdr.Record, 0, windows*users*samples)
	for w := 0; w < windows; w++ {
		for u := 0; u < users; u++ {
			for s := 0; s < samples; s++ {
				recs = append(recs, cdr.Record{
					User:   fmt.Sprintf("u%03d", u),
					Pos:    geo.LatLon{Lat: 7.54 + rng.Float64()*0.2 - 0.1, Lon: -5.55 + rng.Float64()*0.2 - 0.1},
					Minute: float64(w)*60 + rng.Float64()*60,
				})
			}
		}
	}
	return &cdr.Table{
		Records:  recs,
		Center:   geo.LatLon{Lat: 7.54, Lon: -5.55},
		SpanDays: (windows*60)/1440 + 1,
	}
}

// benchWindowCommit replays the incremental commit loop of a follow
// job: advance a record cursor over the growing feed with TailWindows,
// fuse each closed window's fragments, and anonymize it on a warm
// session. The reported ns/commit is the close-to-commit latency of one
// window release.
func benchWindowCommit(b *testing.B, windows, users, samples int) {
	feed := followFeed(windows, users, samples)
	perWindow := users * samples
	opt := core.AnonymizeOptions{Glove: core.GloveOptions{K: 2, Workers: 1}}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := core.NewWindowedSession()
		cursor := 0
		for w := 0; w < windows; w++ {
			// The feed as a follow job sees it after window w's appends.
			snap := &cdr.Table{
				Records:  feed.Records[:(w+1)*perWindow],
				Center:   feed.Center,
				SpanDays: feed.SpanDays,
			}
			frags, err := snap.TailWindows(cursor, time.Hour)
			if err != nil {
				b.Fatal(err)
			}
			cursor = snap.NumRecords()
			srcs := make([]cdr.Source, len(frags))
			for j, f := range frags {
				srcs[j] = f.Source
			}
			table, err := cdr.MaterializeTable(srcs...)
			if err != nil {
				b.Fatal(err)
			}
			ds, err := table.BuildDataset()
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sess.Anonymize(ctx, ds, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*windows), "ns/commit")
}

// BenchmarkWindowCommit pins the streaming pipeline's scaling claim:
// per-window commit latency tracks the volume of NEW data a window
// carries, not the total size of the feed. The windows=4/8/16 series
// holds per-window volume fixed while the feed quadruples — ns/commit
// must stay flat. The users=20/80 series holds the window count fixed
// while per-window volume quadruples — ns/commit must grow with it.
func BenchmarkWindowCommit(b *testing.B) {
	const samples = 3
	for _, windows := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("windows=%d/users=40", windows), func(b *testing.B) {
			benchWindowCommit(b, windows, 40, samples)
		})
	}
	for _, users := range []int{20, 80} {
		b.Run(fmt.Sprintf("windows=8/users=%d", users), func(b *testing.B) {
			benchWindowCommit(b, 8, users, samples)
		})
	}
}
