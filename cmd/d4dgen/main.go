// Command d4dgen generates synthetic D4D-like CDR datasets (the stand-in
// for the paper's proprietary Ivory Coast and Senegal data) and writes
// them as CSV for consumption by glovectl or external tools.
//
// Usage:
//
//	d4dgen -profile civ -users 1000 -days 14 -out civ.csv
package main

import (
	"fmt"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "d4dgen: %v\n", err)
		os.Exit(1)
	}
}
