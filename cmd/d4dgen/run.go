package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cdr"
	"repro/internal/synth"
)

// run executes d4dgen with the given arguments; the CSV goes to stdout
// unless -out is given, diagnostics to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("d4dgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile = fs.String("profile", "civ", "dataset profile: civ or sen")
		users   = fs.Int("users", 1000, "number of subscribers")
		days    = fs.Int("days", 14, "recording period in days")
		seed    = fs.Int64("seed", 0, "override the profile's generator seed (0 keeps it)")
		out     = fs.String("out", "", "output CSV path (default stdout)")
		screen  = fs.Bool("screen", true, "apply the paper's screening (>= 1 sample/day)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cfg synth.Config
	switch *profile {
	case "civ":
		cfg = synth.CIV(*users)
	case "sen":
		cfg = synth.SEN(*users)
	default:
		return fmt.Errorf("unknown profile %q (want civ or sen)", *profile)
	}
	cfg.Days = *days
	if *seed != 0 {
		cfg.Seed = *seed
	}

	table, country, _, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	if *screen {
		table = table.FilterMinRate(1)
	}

	w := stdout
	var of *os.File
	if *out != "" {
		of, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = of
	}
	if err := cdr.WriteCSV(w, table); err != nil {
		if of != nil {
			of.Close()
		}
		return err
	}
	if of != nil {
		if err := of.Close(); err != nil {
			return err
		}
	}

	fmt.Fprintf(stderr,
		"d4dgen: %s profile, %d users, %d records, %d antennas in %d cities, center %v\n",
		cfg.Name, table.Users(), len(table.Records),
		len(country.Antennas), len(country.Cities), cfg.Center)
	return nil
}
