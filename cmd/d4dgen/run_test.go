package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cdr"
)

func TestRunGeneratesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.csv")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-users", "25", "-days", "2", "-out", out}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := cdr.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("empty dataset generated")
	}
	if !strings.Contains(stderr.String(), "civ profile") {
		t.Errorf("diagnostics = %q", stderr.String())
	}
}

func TestRunProfilesAndSeeds(t *testing.T) {
	var a, b, c, stderr bytes.Buffer
	if err := run([]string{"-profile", "sen", "-users", "20", "-days", "2"}, &a, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-profile", "sen", "-users", "20", "-days", "2"}, &b, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different datasets")
	}
	if err := run([]string{"-profile", "sen", "-users", "20", "-days", "2", "-seed", "7"}, &c, &stderr); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seed produced identical dataset")
	}
}

func TestRunScreeningFlag(t *testing.T) {
	var with, without, stderr bytes.Buffer
	if err := run([]string{"-users", "30", "-days", "2", "-screen=true"}, &with, &stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-users", "30", "-days", "2", "-screen=false"}, &without, &stderr); err != nil {
		t.Fatal(err)
	}
	if with.Len() > without.Len() {
		t.Error("screening increased the dataset")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-profile", "mars"}, &stdout, &stderr); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := run([]string{"-users", "0"}, &stdout, &stderr); err == nil {
		t.Error("zero users accepted")
	}
	if err := run([]string{"-nope"}, &stdout, &stderr); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run([]string{"-users", "10", "-out", "/nonexistent-dir/x.csv"}, &stdout, &stderr); err == nil {
		t.Error("unwritable output path accepted")
	}
}
