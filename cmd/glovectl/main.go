// Command glovectl k-anonymizes a CDR dataset with GLOVE: it reads raw
// records, builds mobile fingerprints (projecting positions onto the
// 100 m grid), runs the GLOVE algorithm with optional suppression,
// validates the result (k-anonymity + truthfulness), reports the
// accuracy of the published data, and writes the anonymized dataset.
//
// SIGINT/SIGTERM cancel the run gracefully: the GLOVE loop stops at the
// next iteration and no partial -out file is left behind (output is
// written to a temporary file and renamed only on success).
//
// Usage:
//
//	glovectl -in civ.csv -lat 7.54 -lon -5.55 -days 14 -k 2 \
//	         -suppress-km 15 -suppress-min 360 -out civ-anon.csv
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "glovectl: %v\n", err)
		os.Exit(1)
	}
}
