package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/pkg/client"
)

// remoteJob carries the parsed flags of a remote-mode invocation.
type remoteJob struct {
	in          string
	lat, lon    float64
	days        int
	k           int
	suppressKm  float64
	suppressMin float64
	workers     int
	strategy    string
	chunkSize   int
	index       string
	window      float64
	out         string
	trace       bool

	// Streaming mode: follow the feed's appends instead of freezing a
	// snapshot; dataset attaches to a feed already resident on the
	// daemon (a one-shot ingest would never grow, so its last window
	// would never close).
	follow        bool
	followWindows int
	dataset       string
}

// runRemote drives a resident gloved through the pkg/client SDK: it
// ingests the input CSV as a fresh dataset, submits the job, follows
// the Server-Sent-Events stream for progress, downloads the batch
// release (or one CSV per window), validates every release locally
// exactly as local mode does, and cleans up after itself. The job is
// submitted with one shard and the explicit batch spelling
// (window_hours = -1) when -window is unset, so the downloaded bytes
// are identical to what local mode writes for the same input.
func runRemote(ctx context.Context, server string, job remoteJob, stdout, stderr io.Writer) error {
	c, err := client.New(server)
	if err != nil {
		return err
	}

	var ds client.DatasetInfo
	if job.dataset != "" {
		// Attach to a feed the daemon already owns. It is not ours to
		// delete, so no cleanup.
		if ds, err = c.GetDataset(ctx, job.dataset); err != nil {
			return fmt.Errorf("glovectl: -dataset %s: %w", job.dataset, err)
		}
		fmt.Fprintf(stderr, "glovectl: attached to %s (%d records, %d users, v%d)\n",
			ds.ID, ds.Records, ds.Users, ds.Version)
	} else {
		f, err := os.Open(job.in)
		if err != nil {
			return err
		}
		ds, err = c.CreateDataset(ctx, f, client.IngestOptions{
			Name: filepath.Base(job.in), Lat: job.lat, Lon: job.lon, Days: job.days,
		})
		// The HTTP transport closes request bodies that implement io.Closer;
		// this close is only the fallback for paths that never built a
		// request, so its error is meaningless.
		f.Close()
		if err != nil {
			return fmt.Errorf("glovectl: ingesting into %s: %w", server, err)
		}
		// One-shot CLI runs should not accumulate state on the daemon:
		// delete the dataset on every exit path. Cleanup gets its own
		// context so it still runs after a SIGINT cancelled ctx.
		defer func() {
			//lint:ignore ctxflow cleanup must still run after SIGINT cancels ctx
			cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			c.DeleteDataset(cctx, ds.ID)
		}()
		fmt.Fprintf(stderr, "glovectl: ingested %s as %s (%d records, %d users)\n",
			job.in, ds.ID, ds.Records, ds.Users)
	}

	spec := client.JobSpec{
		DatasetID:   ds.ID,
		K:           job.k,
		SuppressKm:  job.suppressKm,
		SuppressMin: job.suppressMin,
		// One shard: sharding trades accuracy for throughput and would
		// diverge from the local single-table run; remote mode promises
		// byte-identical releases instead.
		Shards:    1,
		Workers:   job.workers,
		Strategy:  job.strategy,
		ChunkSize: job.chunkSize,
		Index:     job.index,
		// -1 is the wire contract's explicit batch spelling, overriding
		// any daemon-wide -window-hours default.
		WindowHours: -1,
	}
	if job.window > 0 {
		spec.WindowHours = job.window
	}
	if job.follow {
		spec.Follow = true
		spec.FollowWindows = job.followWindows
	}
	st, err := c.SubmitJob(ctx, spec)
	if err != nil {
		return fmt.Errorf("glovectl: submit: %w", err)
	}
	fmt.Fprintf(stderr, "glovectl: submitted %s (dataset %s v%d)\n", st.ID, ds.ID, ds.Version)
	defer func() {
		//lint:ignore ctxflow job cleanup must still run after SIGINT cancels ctx
		cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// A still-active job (interrupted run) is only cancelled by the
		// purge request, so wait for it to reach a terminal state and
		// purge again — otherwise the daemon would retain the job until
		// its retention policy fires.
		c.CancelJob(cctx, st.ID) // no-op once terminal
		for c.PurgeJob(cctx, st.ID) == client.ErrNotPurged {
			if _, werr := c.WaitJob(cctx, st.ID); werr != nil {
				return
			}
		}
	}()

	// Follow the event stream; progress is printed in coarse steps so a
	// long run stays observable without drowning the terminal. In
	// streaming mode each committed window is downloaded the moment its
	// done event arrives — the stream may never end, so releases cannot
	// wait for a terminal state.
	lastPct := -10
	streamed := 0
	var streamErr error
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	final, err := c.WatchJob(watchCtx, st.ID, func(e client.JobEvent) {
		switch e.Type {
		case api.EventState:
			fmt.Fprintf(stderr, "glovectl: job %s\n", e.State)
		case api.EventProgress:
			if pct := int(e.Progress * 100); pct >= lastPct+10 {
				lastPct = pct
				fmt.Fprintf(stderr, "glovectl: progress %d%%\n", pct)
			}
		case api.EventWindow:
			switch e.Window.State {
			case api.WindowDone:
				fmt.Fprintf(stderr, "glovectl: window %d done (%d groups)\n", e.Window.Index, e.Window.Groups)
				if job.follow && streamErr == nil {
					if err := streamWindow(ctx, c, st.ID, e.Window.Index, job, stderr); err != nil {
						streamErr = err
						stopWatch()
					} else {
						streamed++
					}
				}
			case api.WindowEmpty:
				fmt.Fprintf(stderr, "glovectl: window %d empty (no records, no release)\n", e.Window.Index)
			case api.WindowRunning:
				fmt.Fprintf(stderr, "glovectl: window %d running\n", e.Window.Index)
			}
		}
	})
	if streamErr != nil {
		return streamErr
	}
	if err != nil {
		if ctx.Err() != nil {
			if streamed > 0 {
				return fmt.Errorf("interrupted, %d window release(s) already written", streamed)
			}
			return fmt.Errorf("interrupted, no output written")
		}
		return err
	}
	// Fetch the trace before the outcome check: the span tree of a
	// failed run is exactly what the flag exists to show.
	if job.trace {
		tr, terr := c.JobTrace(ctx, final.ID)
		if terr != nil {
			fmt.Fprintf(stderr, "glovectl: trace unavailable: %v\n", terr)
		} else {
			fmt.Fprintf(stderr, "glovectl: trace of %s:\n", tr.JobID)
			printSpan(stderr, tr.Root, 1)
		}
	}
	if final.State != api.JobDone {
		return fmt.Errorf("glovectl: job finished %s: %s", final.State, final.Error)
	}

	if job.follow {
		// Every committed release was written as it streamed past.
		printRemoteSummary(stderr, final, job.k)
		fmt.Fprintf(stderr, "glovectl: %d window release(s) written\n", streamed)
		return nil
	}
	if job.window > 0 {
		return downloadWindows(ctx, c, final, job, stderr)
	}
	return downloadBatch(ctx, c, final, job, stdout, stderr)
}

// streamWindow downloads, validates, and writes one committed window
// release of a follow job the moment its done event arrives.
func streamWindow(ctx context.Context, c *client.Client, jobID string, index int, job remoteJob, stderr io.Writer) error {
	raw, err := fetchCSV(func() (io.ReadCloser, error) { return c.WindowResult(ctx, jobID, index) })
	if err != nil {
		return fmt.Errorf("glovectl: window %d: %w", index, err)
	}
	rel, err := cdr.ReadAnonymizedCSV(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("glovectl: window %d release unparseable: %w", index, err)
	}
	if err := validateRelease(rel, nil, job.k, index); err != nil {
		return err
	}
	path := windowOutPath(job.out, index)
	if err := writeBytesAtomic(path, raw); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "glovectl: window %d: %d groups -> %s\n", index, rel.Len(), path)
	return nil
}

// downloadBatch fetches and validates the single release of a batch
// run, writing it to -out (atomically) or stdout — the same contract
// as local mode.
func downloadBatch(ctx context.Context, c *client.Client, final client.JobStatus, job remoteJob, stdout, stderr io.Writer) error {
	raw, err := fetchCSV(func() (io.ReadCloser, error) { return c.JobResult(ctx, final.ID) })
	if err != nil {
		return err
	}
	published, err := cdr.ReadAnonymizedCSV(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("glovectl: downloaded release unparseable: %w", err)
	}
	if err := validateRelease(published, final.Stats, job.k, -1); err != nil {
		return err
	}
	printRemoteSummary(stderr, final, job.k)
	if job.out == "" {
		_, err := stdout.Write(raw)
		return err
	}
	return writeBytesAtomic(job.out, raw)
}

// downloadWindows fetches every window release the moment the job is
// done, validating each independently and writing the same
// "out.wN.csv" series local mode produces.
func downloadWindows(ctx context.Context, c *client.Client, final client.JobStatus, job remoteJob, stderr io.Writer) error {
	type release struct {
		path string
		raw  []byte
	}
	releases := make([]release, 0, len(final.Windows))
	for _, w := range final.Windows {
		raw, err := fetchCSV(func() (io.ReadCloser, error) { return c.WindowResult(ctx, final.ID, w.Index) })
		if err != nil {
			return fmt.Errorf("glovectl: window %d: %w", w.Index, err)
		}
		rel, err := cdr.ReadAnonymizedCSV(bytes.NewReader(raw))
		if err != nil {
			return fmt.Errorf("glovectl: window %d release unparseable: %w", w.Index, err)
		}
		if err := validateRelease(rel, w.Stats, job.k, w.Index); err != nil {
			return err
		}
		path := windowOutPath(job.out, w.Index)
		fmt.Fprintf(stderr, "glovectl: window %d [%.0f, %.0f) min: %d users -> %d groups -> %s\n",
			w.Index, w.StartMinute, w.EndMinute, w.Users, rel.Len(), path)
		releases = append(releases, release{path, raw})
	}
	// Like local mode, nothing is written until every release
	// validated, so a failed run leaves no partial series behind.
	for _, r := range releases {
		if err := writeBytesAtomic(r.path, r.raw); err != nil {
			return err
		}
	}
	printRemoteSummary(stderr, final, job.k)
	if final.Linkage != nil {
		fmt.Fprintf(stderr, "glovectl: cross-window linkage: %s\n", final.Linkage)
	}
	return nil
}

// printSpan renders one node of a job trace as an indented tree line,
// attributes sorted for stable output, then recurses into children.
func printSpan(w io.Writer, s *client.TraceSpan, depth int) {
	if s == nil {
		return
	}
	name := string(s.Kind)
	if s.Name != "" {
		name += " " + s.Name
	}
	line := fmt.Sprintf("%s%s %.1fms", strings.Repeat("  ", depth), name, s.DurationMS)
	if s.Unfinished {
		line += " (unfinished)"
	}
	if len(s.Attrs) > 0 {
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf(" %s=%v", k, s.Attrs[k])
		}
	}
	fmt.Fprintln(w, line)
	for _, c := range s.Children {
		printSpan(w, c, depth+1)
	}
}

// fetchCSV drains one download into memory (releases are small relative
// to the raw feed; buffering enables validate-before-write).
// Cancellation flows through the context captured by open.
func fetchCSV(open func() (io.ReadCloser, error)) ([]byte, error) {
	body, err := open()
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return io.ReadAll(body)
}

// validateRelease applies the local-mode gates to a downloaded release:
// k-anonymity, and the truthfulness accounting that every missing
// subscriber is explained by suppression discards.
func validateRelease(ds *core.Dataset, stats *core.GloveStats, k, window int) error {
	where := "release"
	if window >= 0 {
		where = fmt.Sprintf("window %d", window)
	}
	if err := core.ValidateKAnonymity(ds, k); err != nil {
		return fmt.Errorf("glovectl: %s validation failed: %w", where, err)
	}
	if stats != nil {
		missing := stats.InputUsers - ds.Users()
		if missing != stats.DiscardedUsers {
			return fmt.Errorf("glovectl: %s: %d subscribers missing but %d accounted as discarded",
				where, missing, stats.DiscardedUsers)
		}
	}
	return nil
}

// printRemoteSummary mirrors the local-mode diagnostics from the
// server-computed statistics.
func printRemoteSummary(stderr io.Writer, final client.JobStatus, k int) {
	if s := final.Stats; s != nil {
		fmt.Fprintf(stderr,
			"glovectl: %d-anonymized into %d groups (%d merges); suppressed %d samples (%d users discarded)\n",
			k, s.OutputFingerprints, s.Merges, s.SuppressedSamples, s.DiscardedUsers)
	}
	if a := final.Accuracy; a != nil {
		fmt.Fprintf(stderr,
			"glovectl: accuracy: position mean %.0f m / median %.0f m; time mean %.0f min / median %.0f min\n",
			a.MeanPositionM, a.MedianPositionM, a.MeanTimeMin, a.MedianTimeMin)
	}
}
