package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// startDaemon hosts the real service surface for remote-mode tests.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	reg := service.NewRegistry()
	mgr := service.NewManager(reg, service.ManagerOptions{MaxConcurrentJobs: 2})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(service.NewServer(reg, mgr))
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteBatchByteIdentical is the acceptance pin of remote mode:
// the same input driven through -server against a live gloved yields a
// release byte-identical to the local run — and the daemon is left
// clean (no datasets, no jobs) afterwards.
func TestRemoteBatchByteIdentical(t *testing.T) {
	srv := startDaemon(t)
	in := writeTestCSV(t)
	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.csv")
	remoteOut := filepath.Join(dir, "remote.csv")

	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-out", localOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("local run: %v\n%s", err, stderr.String())
	}
	stderr.Reset()
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-server", srv.URL, "-out", remoteOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("remote run: %v\n%s", err, stderr.String())
	}

	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := os.ReadFile(remoteOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, remote) {
		t.Fatalf("remote release differs from local (%d vs %d bytes)", len(remote), len(local))
	}
	if !strings.Contains(stderr.String(), "job done") {
		t.Errorf("remote run did not report the streamed terminal event:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "2-anonymized") {
		t.Errorf("remote run missing the summary line:\n%s", stderr.String())
	}

	// The one-shot run cleaned up after itself.
	resp, err := srv.Client().Get(srv.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `"datasets": []`) {
		t.Errorf("daemon still holds datasets after the run: %s", buf.String())
	}
}

// TestRemoteWindowedByteIdentical pins the continuous-release path:
// remote -window runs produce the same per-window release series, byte
// for byte, as local -window runs.
func TestRemoteWindowedByteIdentical(t *testing.T) {
	srv := startDaemon(t)
	in := writeTestCSV(t)
	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.csv")
	remoteOut := filepath.Join(dir, "remote.csv")

	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-window", "24", "-out", localOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("local windowed run: %v\n%s", err, stderr.String())
	}
	stderr.Reset()
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-window", "24", "-server", srv.URL, "-out", remoteOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("remote windowed run: %v\n%s", err, stderr.String())
	}

	localFiles, err := filepath.Glob(filepath.Join(dir, "local.w*.csv"))
	if err != nil || len(localFiles) == 0 {
		t.Fatalf("no local window releases (%v)", err)
	}
	for _, lf := range localFiles {
		rf := strings.Replace(lf, "local.", "remote.", 1)
		local, err := os.ReadFile(lf)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(rf)
		if err != nil {
			t.Fatalf("remote missing release %s: %v", filepath.Base(rf), err)
		}
		if !bytes.Equal(local, remote) {
			t.Errorf("%s differs between local and remote", filepath.Base(lf))
		}
	}
	remoteFiles, _ := filepath.Glob(filepath.Join(dir, "remote.w*.csv"))
	if len(remoteFiles) != len(localFiles) {
		t.Errorf("remote wrote %d releases, local %d", len(remoteFiles), len(localFiles))
	}
	if !strings.Contains(stderr.String(), "window") {
		t.Errorf("remote windowed run reported no window events:\n%s", stderr.String())
	}
}

// TestRemoteErrors covers remote-mode failure modes: unreachable
// server, bad URL, and a job the dataset cannot satisfy.
func TestRemoteErrors(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer

	if err := run(context.Background(),
		[]string{"-in", in, "-server", "ftp://nope"}, &stdout, &stderr); err == nil {
		t.Error("bad server scheme accepted")
	}
	if err := run(context.Background(),
		[]string{"-in", in, "-server", "http://127.0.0.1:1"}, &stdout, &stderr); err == nil {
		t.Error("unreachable server accepted")
	}

	// k larger than the subscriber count is rejected at submission and
	// surfaced as the remote error; the ingested dataset is cleaned up.
	srv := startDaemon(t)
	err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "1000", "-server", srv.URL}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "invalid_spec") {
		t.Errorf("oversized k: err = %v", err)
	}
}

// TestRemoteFollow drives the streaming mode end to end: attach to a
// resident feed with -dataset, follow it, and receive each window
// release as the feed closes it.
func TestRemoteFollow(t *testing.T) {
	srv := startDaemon(t)
	dir := t.TempDir()

	csvWindow := func(w int, users ...string) string {
		var b strings.Builder
		b.WriteString("user,lat,lon,minute\n")
		for i, u := range users {
			fmt.Fprintf(&b, "%s,7.5,-5.5,%d\n", u, w*60+i)
		}
		return b.String()
	}
	post := func(url, body string) []byte {
		t.Helper()
		resp, err := srv.Client().Post(url, "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: %d %s", url, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}

	// The feed is resident on the daemon: window 0 ingested, then
	// window 1 appended — which closes window 0 for the follow job.
	raw := post(srv.URL+"/v1/datasets?name=feed&lat=7.54&lon=-5.55&days=1", csvWindow(0, "a", "b", "c"))
	var ds service.DatasetInfo
	if err := json.Unmarshal(raw, &ds); err != nil {
		t.Fatal(err)
	}
	post(srv.URL+"/v1/datasets/"+ds.ID+"/records", csvWindow(1, "a", "b"))

	out := filepath.Join(dir, "stream.csv")
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-server", srv.URL, "-dataset", ds.ID, "-k", "2",
			"-window", "1", "-follow", "-follow-windows", "1", "-out", out},
		&stdout, &stderr); err != nil {
		t.Fatalf("follow run: %v\n%s", err, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "stream.w0.csv")); err != nil {
		t.Errorf("window 0 release not written: %v\n%s", err, stderr.String())
	}
	log := stderr.String()
	for _, want := range []string{"attached to " + ds.ID, "window 0 done", "1 window release(s) written"} {
		if !strings.Contains(log, want) {
			t.Errorf("follow run output missing %q:\n%s", want, log)
		}
	}
	// Attach mode must leave the feed on the daemon — it is not ours.
	resp, err := srv.Client().Get(srv.URL + "/v1/datasets/" + ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("attached dataset deleted after the run (status %d)", resp.StatusCode)
	}
}

// Follow flag plumbing is rejected locally before any network traffic.
func TestFollowFlagValidation(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"follow without server", []string{"-in", in, "-follow", "-window", "1", "-out", "x.csv"}},
		{"follow without window", []string{"-in", in, "-follow", "-server", "http://127.0.0.1:1"}},
		{"follow-windows without follow", []string{"-in", in, "-follow-windows", "2", "-server", "http://127.0.0.1:1"}},
		{"negative follow-windows", []string{"-in", in, "-follow", "-follow-windows", "-1", "-window", "1", "-out", "x.csv", "-server", "http://127.0.0.1:1"}},
		{"dataset without server", []string{"-dataset", "ds-1"}},
	} {
		if err := run(context.Background(), tc.args, &stdout, &stderr); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
