package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
)

// startDaemon hosts the real service surface for remote-mode tests.
func startDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	reg := service.NewRegistry()
	mgr := service.NewManager(reg, service.ManagerOptions{MaxConcurrentJobs: 2})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(service.NewServer(reg, mgr))
	t.Cleanup(srv.Close)
	return srv
}

// TestRemoteBatchByteIdentical is the acceptance pin of remote mode:
// the same input driven through -server against a live gloved yields a
// release byte-identical to the local run — and the daemon is left
// clean (no datasets, no jobs) afterwards.
func TestRemoteBatchByteIdentical(t *testing.T) {
	srv := startDaemon(t)
	in := writeTestCSV(t)
	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.csv")
	remoteOut := filepath.Join(dir, "remote.csv")

	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-out", localOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("local run: %v\n%s", err, stderr.String())
	}
	stderr.Reset()
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-server", srv.URL, "-out", remoteOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("remote run: %v\n%s", err, stderr.String())
	}

	local, err := os.ReadFile(localOut)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := os.ReadFile(remoteOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local, remote) {
		t.Fatalf("remote release differs from local (%d vs %d bytes)", len(remote), len(local))
	}
	if !strings.Contains(stderr.String(), "job done") {
		t.Errorf("remote run did not report the streamed terminal event:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "2-anonymized") {
		t.Errorf("remote run missing the summary line:\n%s", stderr.String())
	}

	// The one-shot run cleaned up after itself.
	resp, err := srv.Client().Get(srv.URL + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), `"datasets": []`) {
		t.Errorf("daemon still holds datasets after the run: %s", buf.String())
	}
}

// TestRemoteWindowedByteIdentical pins the continuous-release path:
// remote -window runs produce the same per-window release series, byte
// for byte, as local -window runs.
func TestRemoteWindowedByteIdentical(t *testing.T) {
	srv := startDaemon(t)
	in := writeTestCSV(t)
	dir := t.TempDir()
	localOut := filepath.Join(dir, "local.csv")
	remoteOut := filepath.Join(dir, "remote.csv")

	var stdout, stderr bytes.Buffer
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-window", "24", "-out", localOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("local windowed run: %v\n%s", err, stderr.String())
	}
	stderr.Reset()
	if err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "2", "-window", "24", "-server", srv.URL, "-out", remoteOut},
		&stdout, &stderr); err != nil {
		t.Fatalf("remote windowed run: %v\n%s", err, stderr.String())
	}

	localFiles, err := filepath.Glob(filepath.Join(dir, "local.w*.csv"))
	if err != nil || len(localFiles) == 0 {
		t.Fatalf("no local window releases (%v)", err)
	}
	for _, lf := range localFiles {
		rf := strings.Replace(lf, "local.", "remote.", 1)
		local, err := os.ReadFile(lf)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := os.ReadFile(rf)
		if err != nil {
			t.Fatalf("remote missing release %s: %v", filepath.Base(rf), err)
		}
		if !bytes.Equal(local, remote) {
			t.Errorf("%s differs between local and remote", filepath.Base(lf))
		}
	}
	remoteFiles, _ := filepath.Glob(filepath.Join(dir, "remote.w*.csv"))
	if len(remoteFiles) != len(localFiles) {
		t.Errorf("remote wrote %d releases, local %d", len(remoteFiles), len(localFiles))
	}
	if !strings.Contains(stderr.String(), "window") {
		t.Errorf("remote windowed run reported no window events:\n%s", stderr.String())
	}
}

// TestRemoteErrors covers remote-mode failure modes: unreachable
// server, bad URL, and a job the dataset cannot satisfy.
func TestRemoteErrors(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer

	if err := run(context.Background(),
		[]string{"-in", in, "-server", "ftp://nope"}, &stdout, &stderr); err == nil {
		t.Error("bad server scheme accepted")
	}
	if err := run(context.Background(),
		[]string{"-in", in, "-server", "http://127.0.0.1:1"}, &stdout, &stderr); err == nil {
		t.Error("unreachable server accepted")
	}

	// k larger than the subscriber count is rejected at submission and
	// surfaced as the remote error; the ingested dataset is cleaned up.
	srv := startDaemon(t)
	err := run(context.Background(),
		[]string{"-in", in, "-days", "3", "-k", "1000", "-server", srv.URL}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "invalid_spec") {
		t.Errorf("oversized k: err = %v", err)
	}
}
