package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/version"
)

// run executes glovectl with the given arguments, writing the anonymized
// CSV to stdout (or -out) and diagnostics to stderr. A cancelled ctx
// (SIGINT) aborts the GLOVE run and leaves no partial output file.
// Extracted from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("glovectl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("in", "", "input CSV of raw records (required)")
		lat         = fs.Float64("lat", 7.54, "projection center latitude")
		lon         = fs.Float64("lon", -5.55, "projection center longitude")
		days        = fs.Int("days", 14, "recording period in days")
		k           = fs.Int("k", 2, "anonymity level (>= 2)")
		suppressKm  = fs.Float64("suppress-km", 0, "suppress samples wider than this many km (0 = off)")
		suppressMin = fs.Float64("suppress-min", 0, "suppress samples longer than this many minutes (0 = off)")
		out         = fs.String("out", "", "output CSV path for the anonymized dataset (default stdout)")
		workers     = fs.Int("workers", 0, "worker count (0 = all CPUs)")
		strategy    = fs.String("strategy", "", "execution strategy: auto, single or chunked (empty = auto)")
		chunkSize   = fs.Int("chunk-size", 0, "fingerprints per chunked block (0 = core default)")
		index       = fs.String("index", "", "pair-selection index: auto, dense or sparse (empty = auto)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("glovectl"))
		return nil
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("glovectl: -in is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	records, err := cdr.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	table := &cdr.Table{
		Records:  records,
		Center:   geo.LatLon{Lat: *lat, Lon: *lon},
		SpanDays: *days,
	}
	if err := table.Validate(); err != nil {
		return err
	}

	dataset, err := table.BuildDataset()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "glovectl: %d fingerprints, %d samples, mean length %.1f\n",
		dataset.Len(), dataset.TotalSamples(), dataset.MeanFingerprintLen())

	strategyKind, err := core.ParseStrategy(*strategy)
	if err != nil {
		return fmt.Errorf("glovectl: -strategy: %w", err)
	}
	indexKind, err := core.ParseIndexKind(*index)
	if err != nil {
		return fmt.Errorf("glovectl: -index: %w", err)
	}
	aopt := core.AnonymizeOptions{
		Glove: core.GloveOptions{
			K: *k,
			Suppress: core.SuppressionThresholds{
				MaxSpatialMeters:   *suppressKm * 1000,
				MaxTemporalMinutes: *suppressMin,
			},
			Workers: *workers,
			Index:   indexKind,
		},
		Strategy:  strategyKind,
		ChunkSize: *chunkSize,
	}
	plan, err := core.PlanFor(dataset.Len(), aopt)
	if err != nil {
		return err
	}
	if plan.Strategy == core.StrategyChunked {
		fmt.Fprintf(stderr, "glovectl: plan: strategy=%s chunk=%d index=%s\n",
			plan.Strategy, plan.ChunkSize, plan.Index)
	} else {
		fmt.Fprintf(stderr, "glovectl: plan: strategy=%s index=%s\n", plan.Strategy, plan.Index)
	}

	published, stats, err := core.RunPlan(ctx, dataset, aopt, plan)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted, no output written")
		}
		return err
	}

	if err := core.ValidateKAnonymity(published, *k); err != nil {
		return fmt.Errorf("glovectl: validation failed: %w", err)
	}
	rep := core.CheckTruthfulness(dataset, published)
	if rep.MissingFP != stats.DiscardedUsers {
		return fmt.Errorf("glovectl: %d subscribers missing but %d accounted as discarded",
			rep.MissingFP, stats.DiscardedUsers)
	}

	acc := metrics.Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr,
		"glovectl: %d-anonymized into %d groups (%d merges); suppressed %d samples (%d users discarded)\n",
		*k, stats.OutputFingerprints, stats.Merges, stats.SuppressedSamples, stats.DiscardedUsers)
	fmt.Fprintf(stderr,
		"glovectl: accuracy: position mean %.0f m / median %.0f m; time mean %.0f min / median %.0f min\n",
		sum.MeanPositionM, sum.MedianPositionM, sum.MeanTimeMin, sum.MedianTimeMin)

	if *out == "" {
		return cdr.WriteAnonymizedCSV(stdout, published)
	}
	return writeFileAtomic(*out, published)
}

// writeFileAtomic writes the anonymized dataset to path via a temporary
// sibling file and a rename, so an interrupted or failed run never
// leaves a truncated output behind.
func writeFileAtomic(path string, d *core.Dataset) error {
	tmp := path + ".tmp"
	of, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := cdr.WriteAnonymizedCSV(of, d); err != nil {
		of.Close()
		os.Remove(tmp)
		return err
	}
	if err := of.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
