package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/version"
)

// run executes glovectl with the given arguments, writing the anonymized
// CSV to stdout (or -out) and diagnostics to stderr. A cancelled ctx
// (SIGINT) aborts the GLOVE run and leaves no partial output file.
// Extracted from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("glovectl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in          = fs.String("in", "", "input CSV of raw records (required)")
		lat         = fs.Float64("lat", 7.54, "projection center latitude")
		lon         = fs.Float64("lon", -5.55, "projection center longitude")
		days        = fs.Int("days", 14, "recording period in days")
		k           = fs.Int("k", 2, "anonymity level (>= 2)")
		suppressKm  = fs.Float64("suppress-km", 0, "suppress samples wider than this many km (0 = off)")
		suppressMin = fs.Float64("suppress-min", 0, "suppress samples longer than this many minutes (0 = off)")
		out         = fs.String("out", "", "output CSV path for the anonymized dataset (default stdout)")
		workers     = fs.Int("workers", 0, "worker count (0 = all CPUs)")
		strategy    = fs.String("strategy", "", "execution strategy: auto, single or chunked (empty = auto)")
		chunkSize   = fs.Int("chunk-size", 0, "fingerprints per chunked block (0 = core default)")
		index       = fs.String("index", "", "pair-selection index: auto, dense or sparse (empty = auto)")
		window      = fs.Float64("window", 0, "continuous release: anonymize per time window of this many hours (0 = one batch release; requires -out)")
		follow      = fs.Bool("follow", false, "streaming mode: subscribe to the dataset's appends and download each window release as the feed closes it (requires -server and -window)")
		followWin   = fs.Int("follow-windows", 0, "stop -follow after this many committed window releases (0 = run until interrupted)")
		datasetID   = fs.String("dataset", "", "remote mode: run against this existing dataset on the daemon instead of ingesting -in (requires -server)")
		server      = fs.String("server", "", "remote mode: drive a resident gloved at this base URL (e.g. http://localhost:8080) instead of anonymizing in-process")
		trace       = fs.Bool("trace", false, "remote mode: print the job's span tree after it finishes (requires -server)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("glovectl"))
		return nil
	}
	if *in == "" && *datasetID == "" {
		fs.Usage()
		return fmt.Errorf("glovectl: -in is required")
	}
	if *window < 0 {
		return fmt.Errorf("glovectl: -window %g is negative", *window)
	}
	if *window > 0 && *out == "" {
		return fmt.Errorf("glovectl: -window needs -out (one CSV per window release)")
	}

	if *trace && *server == "" {
		return fmt.Errorf("glovectl: -trace needs -server (the span tree is recorded by the daemon)")
	}
	if *datasetID != "" && *server == "" {
		return fmt.Errorf("glovectl: -dataset needs -server (it names a dataset resident on the daemon)")
	}
	if *follow && *server == "" {
		return fmt.Errorf("glovectl: -follow needs -server (only a resident daemon can watch a feed for appends)")
	}
	if *follow && *window <= 0 {
		return fmt.Errorf("glovectl: -follow needs -window (the release cadence of the stream)")
	}
	if *followWin < 0 {
		return fmt.Errorf("glovectl: -follow-windows %d is negative", *followWin)
	}
	if *followWin > 0 && !*follow {
		return fmt.Errorf("glovectl: -follow-windows needs -follow")
	}
	if *server != "" {
		return runRemote(ctx, *server, remoteJob{
			in: *in, lat: *lat, lon: *lon, days: *days,
			k: *k, suppressKm: *suppressKm, suppressMin: *suppressMin,
			workers: *workers, strategy: *strategy, chunkSize: *chunkSize, index: *index,
			window: *window, out: *out, trace: *trace,
			follow: *follow, followWindows: *followWin, dataset: *datasetID,
		}, stdout, stderr)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	records, err := cdr.ReadCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	table := &cdr.Table{
		Records:  records,
		Center:   geo.LatLon{Lat: *lat, Lon: *lon},
		SpanDays: *days,
	}
	if err := table.Validate(); err != nil {
		return err
	}

	strategyKind, err := core.ParseStrategy(*strategy)
	if err != nil {
		return fmt.Errorf("glovectl: -strategy: %w", err)
	}
	indexKind, err := core.ParseIndexKind(*index)
	if err != nil {
		return fmt.Errorf("glovectl: -index: %w", err)
	}
	aopt := core.AnonymizeOptions{
		Glove: core.GloveOptions{
			K: *k,
			Suppress: core.SuppressionThresholds{
				MaxSpatialMeters:   *suppressKm * 1000,
				MaxTemporalMinutes: *suppressMin,
			},
			Workers: *workers,
			Index:   indexKind,
		},
		Strategy:  strategyKind,
		ChunkSize: *chunkSize,
	}

	if *window > 0 {
		return runWindowed(ctx, table, aopt, *window, *out, stderr)
	}

	dataset, err := table.BuildDataset()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "glovectl: %d fingerprints, %d samples, mean length %.1f\n",
		dataset.Len(), dataset.TotalSamples(), dataset.MeanFingerprintLen())

	plan, err := core.PlanFor(dataset.Len(), aopt)
	if err != nil {
		return err
	}
	if plan.Strategy == core.StrategyChunked {
		fmt.Fprintf(stderr, "glovectl: plan: strategy=%s chunk=%d index=%s\n",
			plan.Strategy, plan.ChunkSize, plan.Index)
	} else {
		fmt.Fprintf(stderr, "glovectl: plan: strategy=%s index=%s\n", plan.Strategy, plan.Index)
	}

	published, stats, err := core.RunPlan(ctx, dataset, aopt, plan)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted, no output written")
		}
		return err
	}

	if err := core.ValidateKAnonymity(published, *k); err != nil {
		return fmt.Errorf("glovectl: validation failed: %w", err)
	}
	rep := core.CheckTruthfulness(dataset, published)
	if rep.MissingFP != stats.DiscardedUsers {
		return fmt.Errorf("glovectl: %d subscribers missing but %d accounted as discarded",
			rep.MissingFP, stats.DiscardedUsers)
	}

	acc := metrics.Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr,
		"glovectl: %d-anonymized into %d groups (%d merges); suppressed %d samples (%d users discarded)\n",
		*k, stats.OutputFingerprints, stats.Merges, stats.SuppressedSamples, stats.DiscardedUsers)
	fmt.Fprintf(stderr,
		"glovectl: accuracy: position mean %.0f m / median %.0f m; time mean %.0f min / median %.0f min\n",
		sum.MeanPositionM, sum.MedianPositionM, sum.MeanTimeMin, sum.MedianTimeMin)

	if *out == "" {
		return cdr.WriteAnonymizedCSV(stdout, published)
	}
	return writeFileAtomic(*out, published)
}

// runWindowed is the continuous-release mode: the input is partitioned
// into time windows of `hours`, each window is anonymized independently
// (every release is k-anonymous on its own), one CSV is written per
// window, and the residual cross-window linkage is reported.
func runWindowed(ctx context.Context, table *cdr.Table, aopt core.AnonymizeOptions, hours float64, out string, stderr io.Writer) error {
	wins, err := table.SplitByWindow(time.Duration(hours * float64(time.Hour)))
	if err != nil {
		return err
	}
	originals := make([]*core.Dataset, len(wins))
	for i, w := range wins {
		if originals[i], err = w.Table.BuildDataset(); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "glovectl: %d windows of %g h over %d records\n",
		len(wins), hours, len(table.Records))

	releases, err := core.AnonymizeWindowsContext(ctx, originals, aopt, nil)
	if err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("interrupted, no output written")
		}
		return err
	}
	k := aopt.Glove.K
	paths := make([]string, len(releases))
	for i, rel := range releases {
		if err := core.ValidateKAnonymity(rel.Output, k); err != nil {
			return fmt.Errorf("glovectl: window %d validation failed: %w", wins[i].Index, err)
		}
		// Same truthfulness gate as the batch path: a subscriber may only
		// go missing from a release when accounted as suppression-discarded.
		rep := core.CheckTruthfulness(originals[i], rel.Output)
		if rep.MissingFP != rel.Stats.DiscardedUsers {
			return fmt.Errorf("glovectl: window %d: %d subscribers missing but %d accounted as discarded",
				wins[i].Index, rep.MissingFP, rel.Stats.DiscardedUsers)
		}
		paths[i] = windowOutPath(out, wins[i].Index)
		fmt.Fprintf(stderr,
			"glovectl: window %d [%.0f, %.0f) min: %d users -> %d groups (%d merges) -> %s\n",
			wins[i].Index, wins[i].StartMinute, wins[i].EndMinute,
			originals[i].Len(), rel.Output.Len(), rel.Stats.Merges, paths[i])
	}
	// Releases are written only after every window validated, so an
	// interrupted run leaves no partial release sequence behind.
	published := make([]*core.Dataset, len(releases))
	for i, rel := range releases {
		published[i] = rel.Output
		if err := writeFileAtomic(paths[i], rel.Output); err != nil {
			return err
		}
	}
	if len(releases) >= 2 {
		link, err := analysis.CrossWindowLinkage(originals, published, 4, 200,
			rand.New(rand.NewSource(1)), aopt.Glove.Workers)
		if err != nil {
			return err
		}
		for i := range link.Pairs {
			link.Pairs[i].Window = wins[i].Index
		}
		fmt.Fprintf(stderr, "glovectl: cross-window linkage: %s\n", link)
	}
	return nil
}

// windowOutPath derives the per-window output path: "anon.csv" with
// window 3 becomes "anon.w3.csv".
func windowOutPath(out string, index int) string {
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.w%d%s", strings.TrimSuffix(out, ext), index, ext)
}

// writeFileAtomic writes the anonymized dataset to path via a temporary
// sibling file and a rename, so an interrupted or failed run never
// leaves a truncated output behind.
func writeFileAtomic(path string, d *core.Dataset) error {
	return writeAtomic(path, func(w io.Writer) error {
		return cdr.WriteAnonymizedCSV(w, d)
	})
}

// writeBytesAtomic is the raw-bytes flavor used by remote mode, where
// the release arrives pre-rendered off the wire.
func writeBytesAtomic(path string, raw []byte) error {
	return writeAtomic(path, func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
}

// writeAtomic runs the produce function against a temporary sibling
// file and renames it into place only on success, so no failure mode
// leaves a truncated output behind.
func writeAtomic(path string, produce func(io.Writer) error) error {
	tmp := path + ".tmp"
	of, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := produce(of); err != nil {
		of.Close()
		os.Remove(tmp)
		return err
	}
	if err := of.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
