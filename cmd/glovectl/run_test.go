package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cdr"
	"repro/internal/synth"
)

// writeTestCSV generates a small synthetic dataset and writes it to a
// temp CSV, returning its path.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	cfg := synth.CIV(30)
	cfg.Days = 3
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := cdr.WriteCSV(f, table); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	in := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "anon.csv")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-in", in, "-days", "3", "-k", "2", "-out", out}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "group,count,") {
		t.Errorf("output header wrong: %.60s", data)
	}
	if !strings.Contains(stderr.String(), "2-anonymized") {
		t.Errorf("missing diagnostics: %s", stderr.String())
	}
	// Every published group hides >= 2 users.
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n")[1:] {
		fields := strings.Split(line, ",")
		if fields[1] == "0" || fields[1] == "1" {
			t.Fatalf("group with count %s published", fields[1])
		}
	}
}

func TestRunToStdout(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-in", in, "-days", "3"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "group,count,") {
		t.Error("stdout missing CSV")
	}
}

func TestRunWithSuppression(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{"-in", in, "-days", "3", "-suppress-km", "15", "-suppress-min", "360"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "suppressed") {
		t.Error("missing suppression report")
	}
}

// An explicit strategy and index run through the planner; the chosen
// plan is reported and the output still validates.
func TestRunExplicitStrategy(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-in", in, "-days", "3", "-k", "2",
		"-strategy", "chunked", "-chunk-size", "10", "-index", "sparse",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "plan: strategy=chunked chunk=10 index=sparse") {
		t.Errorf("plan line missing: %s", stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "group,count,") {
		t.Error("stdout missing CSV")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{}, &stdout, &stderr); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(context.Background(), []string{"-in", "/nonexistent/file.csv"}, &stdout, &stderr); err == nil {
		t.Error("nonexistent input accepted")
	}
	in := writeTestCSV(t)
	if err := run(context.Background(), []string{"-in", in, "-k", "1"}, &stdout, &stderr); err == nil {
		t.Error("k=1 accepted")
	}
	if err := run(context.Background(), []string{"-in", in, "-lat", "400"}, &stdout, &stderr); err == nil {
		t.Error("invalid projection center accepted")
	}
	if err := run(context.Background(), []string{"-bogus-flag"}, &stdout, &stderr); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-in", in, "-strategy", "warp"}, &stdout, &stderr); err == nil {
		t.Error("bogus -strategy accepted")
	}
	if err := run(context.Background(), []string{"-in", in, "-index", "quadtree"}, &stdout, &stderr); err == nil {
		t.Error("bogus -index accepted")
	}
	if err := run(context.Background(), []string{"-in", in, "-k", "3", "-chunk-size", "4"}, &stdout, &stderr); err == nil {
		t.Error("chunk size below 2k accepted")
	}
	// Malformed CSV content.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("not,a,valid,header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-in", bad}, &stdout, &stderr); err == nil {
		t.Error("malformed CSV accepted")
	}
}

func TestRunVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "glovectl ") {
		t.Errorf("version output %q", stdout.String())
	}
}

// TestRunCancelled interrupts the run via context (the SIGINT path) and
// checks that no partial -out file is left behind.
func TestRunCancelled(t *testing.T) {
	in := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "anon.csv")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	err := run(ctx, []string{"-in", in, "-days", "3", "-out", out}, &stdout, &stderr)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("err = %v, want interruption message", err)
	}
	if _, serr := os.Stat(out); !os.IsNotExist(serr) {
		t.Errorf("partial output file left behind: %v", serr)
	}
	if _, serr := os.Stat(out + ".tmp"); !os.IsNotExist(serr) {
		t.Errorf("temporary output file left behind: %v", serr)
	}
}
