package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cdr"
	"repro/internal/core"
)

// -window splits the 3-day input into daily windows and writes one
// independently k-anonymous release per window, reporting the residual
// cross-window linkage.
func TestRunWindowed(t *testing.T) {
	in := writeTestCSV(t)
	out := filepath.Join(t.TempDir(), "anon.csv")
	var stdout, stderr bytes.Buffer
	err := run(context.Background(), []string{
		"-in", in, "-days", "3", "-k", "2", "-window", "24", "-out", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	for w := 0; w < 3; w++ {
		path := windowOutPath(out, w)
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("window %d release missing: %v", w, err)
		}
		rel, rerr := cdr.ReadAnonymizedCSV(f)
		f.Close()
		if rerr != nil {
			t.Fatalf("window %d release unreadable: %v", w, rerr)
		}
		if err := core.ValidateKAnonymity(rel, 2); err != nil {
			t.Errorf("window %d release: %v", w, err)
		}
	}
	if !strings.Contains(stderr.String(), "cross-window linkage") {
		t.Errorf("linkage report missing: %s", stderr.String())
	}
}

// A span that fits one window produces exactly the batch output bytes.
func TestRunWindowedSingleWindowByteIdentical(t *testing.T) {
	in := writeTestCSV(t)
	dir := t.TempDir()
	batch := filepath.Join(dir, "batch.csv")
	windowed := filepath.Join(dir, "win.csv")
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{
		"-in", in, "-days", "3", "-k", "2", "-out", batch,
	}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	// 96 h covers the whole 3-day span.
	if err := run(context.Background(), []string{
		"-in", in, "-days", "3", "-k", "2", "-window", "96", "-out", windowed,
	}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(windowOutPath(windowed, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("single-window release differs from the batch output")
	}
}

func TestRunWindowedErrors(t *testing.T) {
	in := writeTestCSV(t)
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-in", in, "-window", "24"}, &stdout, &stderr); err == nil {
		t.Error("-window without -out accepted")
	}
	if err := run(context.Background(), []string{"-in", in, "-window", "-3", "-out", "x.csv"}, &stdout, &stderr); err == nil {
		t.Error("negative -window accepted")
	}
}

func TestWindowOutPath(t *testing.T) {
	cases := map[string]string{
		"anon.csv":     "anon.w2.csv",
		"dir/rel.csv":  "dir/rel.w2.csv",
		"no-extension": "no-extension.w2",
	}
	for in, want := range cases {
		if got := windowOutPath(in, 2); got != want {
			t.Errorf("windowOutPath(%q) = %q, want %q", in, got, want)
		}
	}
}
