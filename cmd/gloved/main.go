// Command gloved is the resident GLOVE anonymization service: a long-
// running HTTP daemon that ingests raw CDR datasets as streaming CSV,
// schedules k-anonymization jobs over sharded worker pools, reports
// live per-job progress, and serves the anonymized datasets and their
// utility metrics.
//
// Usage:
//
//	gloved -addr :8080 -max-jobs 2 -workers 0
//
// See the README for the endpoint reference and an example curl
// session.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gloved: %v\n", err)
		os.Exit(1)
	}
}
