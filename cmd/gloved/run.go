package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/version"
)

// run starts the daemon and blocks until ctx is cancelled (SIGINT /
// SIGTERM) or the listener fails. Extracted from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gloved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxJobs     = fs.Int("max-jobs", 1, "jobs executed concurrently")
		queueLimit  = fs.Int("queue-limit", 256, "queued job limit")
		workers     = fs.Int("workers", 0, "per-job worker count (0 = all CPUs)")
		maxRecords  = fs.Int("max-records", 0, "per-dataset record limit (0 = unlimited)")
		maxBody     = fs.Int64("max-body-bytes", 0, "per-ingestion body byte limit (0 = unlimited)")
		analysisCap = fs.Int("analysis-cap", 2000, "max input fingerprints for the k-gap analysis pass")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("gloved"))
		return nil
	}

	reg := service.NewRegistry()
	reg.MaxRecords = *maxRecords
	mgr := service.NewManager(reg, service.ManagerOptions{
		MaxConcurrentJobs:       *maxJobs,
		QueueLimit:              *queueLimit,
		Workers:                 *workers,
		AnalysisMaxFingerprints: *analysisCap,
	})
	defer mgr.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := service.NewServer(reg, mgr)
	handler.MaxIngestBytes = *maxBody
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(stderr, "gloved: %s listening on %s\n", version.Version, ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, let in-flight
	// requests finish, then cancel whatever jobs are still running via
	// mgr.Close (deferred).
	fmt.Fprintln(stderr, "gloved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}
