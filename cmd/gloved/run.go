package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/version"
)

// run starts the daemon and blocks until ctx is cancelled (SIGINT /
// SIGTERM) or the listener fails. Extracted from main for testability.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gloved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		maxJobs     = fs.Int("max-jobs", 1, "jobs executed concurrently")
		queueLimit  = fs.Int("queue-limit", 256, "queued job limit")
		workers     = fs.Int("workers", 0, "per-job worker count (0 = all CPUs)")
		maxRecords  = fs.Int("max-records", 0, "per-dataset record limit (0 = unlimited)")
		columnar    = fs.Bool("columnar", false, "store datasets in the memory-bounded columnar backend")
		colBudget   = fs.Int64("columnar-budget-mb", 0, "resident column bytes per columnar dataset, in MiB; overflow spills to disk (0 = unbounded)")
		colSpillDir = fs.String("columnar-spill-dir", "", "directory for columnar spill files (empty = system temp)")
		maxBody     = fs.Int64("max-body-bytes", 0, "per-ingestion body byte limit (0 = unlimited)")
		analysisCap = fs.Int("analysis-cap", 2000, "max input fingerprints for the k-gap analysis pass")
		strategy    = fs.String("strategy", "", "default job strategy: auto, single or chunked (empty = auto)")
		chunkSize   = fs.Int("chunk-size", 0, "default fingerprints per chunked block (0 = core default)")
		index       = fs.String("index", "", "default pair-selection index: auto, dense or sparse (empty = auto)")
		windowHours = fs.Float64("window-hours", 0, "default job release window in hours (0 = batch jobs)")
		followMaxW  = fs.Int("follow-max-windows", 0, "daemon-wide cap on windows a follow job may commit (0 = unbounded)")
		retainJobs  = fs.Int("retain-jobs", 64, "finished jobs retained in memory, oldest evicted first (0 = unlimited)")
		retainAge   = fs.Duration("retain-age", 0, "evict finished jobs older than this (0 = no age bound)")
		accessLog   = fs.Bool("access-log", true, "log one structured record per request to stderr")
		logFormat   = fs.String("log-format", "text", "structured log encoding: text or json")
		pprofAddr   = fs.String("pprof", "", "mount net/http/pprof on this private listen address (empty = disabled)")
		routeTO     = fs.Duration("route-timeout", service.DefaultRouteTimeout, "processing budget of the quick JSON routes (0 = unlimited; streaming routes are never bounded)")
		dataDir     = fs.String("data-dir", "", "directory for the write-ahead journal; datasets, jobs, and committed releases survive restarts (empty = fully in-memory)")
		fsync       = fs.Bool("fsync", true, "fsync journal commits before acknowledging mutations (with -data-dir)")
		drainTO     = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for running jobs before they are cancelled")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Fprintln(stdout, version.String("gloved"))
		return nil
	}
	// Fail fast on bad planner defaults instead of rejecting every
	// future job submission.
	if _, err := core.ParseStrategy(*strategy); err != nil {
		return fmt.Errorf("gloved: -strategy: %w", err)
	}
	if _, err := core.ParseIndexKind(*index); err != nil {
		return fmt.Errorf("gloved: -index: %w", err)
	}
	if *chunkSize < 0 {
		return fmt.Errorf("gloved: -chunk-size %d is negative", *chunkSize)
	}
	if *windowHours < 0 {
		return fmt.Errorf("gloved: -window-hours %g is negative", *windowHours)
	}
	if *followMaxW < 0 {
		return fmt.Errorf("gloved: -follow-max-windows %d is negative", *followMaxW)
	}
	if *retainAge < 0 {
		return fmt.Errorf("gloved: -retain-age %v is negative", *retainAge)
	}
	if *routeTO < 0 {
		return fmt.Errorf("gloved: -route-timeout %v is negative", *routeTO)
	}
	if *colBudget < 0 {
		return fmt.Errorf("gloved: -columnar-budget-mb %d is negative", *colBudget)
	}
	if *drainTO < 0 {
		return fmt.Errorf("gloved: -drain-timeout %v is negative", *drainTO)
	}
	// In ManagerOptions, 0 finished jobs means "use the default"; the
	// operator-facing spelling for unlimited is 0 (or below).
	maxFinished := *retainJobs
	if maxFinished <= 0 {
		maxFinished = -1
	}

	// One slog logger backs the request log and the manager's job
	// lifecycle records, so job_id/request_id correlation lands in a
	// single stream.
	var logger *slog.Logger
	switch *logFormat {
	case "text":
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(stderr, nil))
	default:
		return fmt.Errorf("gloved: -log-format %q, need text or json", *logFormat)
	}

	// The journal is opened (and replayed) before anything else exists:
	// its recovered state seeds the registry and the manager below.
	tel := service.NewTelemetry()
	var jrnl *service.Journal
	var recovered *service.RecoveredState
	spillDir := *colSpillDir
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			return fmt.Errorf("gloved: -data-dir: %w", err)
		}
		var err error
		jrnl, recovered, err = service.OpenJournal(*dataDir, *fsync, tel)
		if err != nil {
			return fmt.Errorf("gloved: opening journal: %w", err)
		}
		defer jrnl.Close()
		if spillDir == "" {
			// Keep columnar spill next to the journal instead of the
			// system temp dir, so one -data-dir owns all daemon state.
			spillDir = filepath.Join(*dataDir, "spill")
		}
	}

	reg := service.NewRegistry()
	reg.MaxRecords = *maxRecords
	reg.Columnar = *columnar
	reg.ColumnarByteBudget = *colBudget << 20
	reg.ColumnarSpillDir = spillDir
	// Deferred before mgr.Close so the spill files outlive job shutdown.
	defer reg.Close()
	if recovered != nil {
		if err := reg.Restore(recovered); err != nil {
			return fmt.Errorf("gloved: %w", err)
		}
	}
	mgr := service.NewManager(reg, service.ManagerOptions{
		MaxConcurrentJobs:       *maxJobs,
		QueueLimit:              *queueLimit,
		Workers:                 *workers,
		AnalysisMaxFingerprints: *analysisCap,
		MaxFinishedJobs:         maxFinished,
		MaxFinishedAge:          *retainAge,
		DefaultStrategy:         *strategy,
		DefaultChunkSize:        *chunkSize,
		DefaultIndex:            *index,
		DefaultWindowHours:      *windowHours,
		MaxFollowWindows:        *followMaxW,
		Telemetry:               tel,
		Log:                     logger,
		Journal:                 jrnl,
	})
	defer mgr.Close()
	if recovered != nil {
		// Requeued jobs may start executing the moment they are enqueued.
		if err := mgr.Restore(recovered); err != nil {
			return fmt.Errorf("gloved: %w", err)
		}
	}
	// Attach last: the restore above replays journaled CSV through the
	// normal ingest paths, which must not re-journal it.
	reg.AttachJournal(jrnl)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := service.NewServer(reg, mgr)
	handler.MaxIngestBytes = *maxBody
	if *accessLog {
		handler.Log = logger
	}
	// The operator-facing spelling for "no budget" is 0; the Server's
	// is negative (its 0 means the default).
	handler.RouteTimeout = *routeTO
	if *routeTO == 0 {
		handler.RouteTimeout = -1
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(stderr, "gloved: %s listening on %s\n", version.Version, ln.Addr())

	// The profiling listener is private and separate from the API
	// address: pprof exposes heap contents and must never ride on the
	// public port.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("gloved: -pprof: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		defer psrv.Close()
		go psrv.Serve(pln)
		fmt.Fprintf(stderr, "gloved: pprof listening on %s\n", pln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain, in dependency order: stop accepting connections
	// and let in-flight requests finish; stop admitting jobs and give
	// running ones the drain budget; then checkpoint the journal and
	// append the clean-shutdown marker. The deferred mgr.Close cancels
	// whatever outlived the budget (suppressed from the journal, so the
	// next boot requeues it).
	fmt.Fprintln(stderr, "gloved: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-errc // Serve has returned http.ErrServerClosed
	mgr.Drain(*drainTO)
	if jrnl != nil {
		if err := jrnl.Checkpoint(reg, mgr); err != nil {
			fmt.Fprintf(stderr, "gloved: journal checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintln(stderr, "gloved: journal checkpointed, shutdown clean")
		}
	}
	return nil
}
