package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(stdout.String(), "gloved ") {
		t.Errorf("version output %q", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(context.Background(), []string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:0"}, &stdout, &stderr); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-strategy", "warp"}, &stdout, &stderr); err == nil {
		t.Error("bogus -strategy default accepted")
	}
	if err := run(context.Background(), []string{"-index", "quadtree"}, &stdout, &stderr); err == nil {
		t.Error("bogus -index default accepted")
	}
	if err := run(context.Background(), []string{"-chunk-size", "-3"}, &stdout, &stderr); err == nil {
		t.Error("negative -chunk-size default accepted")
	}
	if err := run(context.Background(), []string{"-window-hours", "-2"}, &stdout, &stderr); err == nil {
		t.Error("negative -window-hours default accepted")
	}
	if err := run(context.Background(), []string{"-retain-age", "-1s"}, &stdout, &stderr); err == nil {
		t.Error("negative -retain-age accepted")
	}
}

// TestRunServeAndShutdown boots the daemon on an ephemeral port, checks
// the health endpoint, and verifies that cancelling the context shuts
// it down cleanly — the same path a SIGINT takes.
func TestRunServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout bytes.Buffer
	stderr := &syncBuffer{}

	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &stdout, stderr) }()

	// Wait for the "listening on" line to learn the port.
	re := regexp.MustCompile(`listening on (\S+)`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" && time.Now().Before(deadline) {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("daemon never started: %q", stderr.String())
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// syncBuffer is a bytes.Buffer safe for concurrent use (the daemon
// goroutine logs while the test polls).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
