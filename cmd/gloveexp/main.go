// Command gloveexp reproduces the paper's evaluation: every figure and
// table of Secs. 5 and 7 (see DESIGN.md for the experiment index), at a
// configurable workload scale.
//
// Usage:
//
//	gloveexp -run all -users 300 -days 14
//	gloveexp -run table2 -users 200
//	gloveexp -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

// runner executes one experiment and renders it.
type runner struct {
	name string
	desc string
	run  func(*experiments.Workloads, io.Writer) error
}

var runners = []runner{
	{"fig3a", "CDF of 2-gap, both datasets", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig3a(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig3b", "CDF of k-gap for k = 2..100", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig3b(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig4", "2-gap under uniform generalization", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig4(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig5", "TWI and temporal/spatial decomposition", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig5(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig7", "accuracy of GLOVE 2-anonymization", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig7(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig8", "accuracy vs k", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig8(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig9", "suppression trade-off", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig9(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"table2", "W4M-LC vs GLOVE comparison", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Table2(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig10", "accuracy vs dataset timespan", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig10(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"fig11", "accuracy vs dataset size", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Fig11(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"uniqueness", "partial-knowledge uniqueness (Sec. 1 motivation)", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Uniqueness(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"utility", "aggregate-analysis utility preservation (Sec. 2.4)", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Utility(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"risk", "residual-risk diagnostics vs k (Sec. 2.4 limitations)", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Risk(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
	{"calibration", "stretch-effort calibration ablation (footnote 3)", func(w *experiments.Workloads, out io.Writer) error {
		r, err := experiments.Calibration(w)
		if err != nil {
			return err
		}
		r.Render(out)
		return nil
	}},
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "gloveexp: %v\n", err)
		os.Exit(1)
	}
}

// run executes gloveexp with the given arguments; extracted from main
// for testability.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gloveexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runArg  = fs.String("run", "all", "experiment to run (see -list), or comma-separated list, or all")
		users   = fs.Int("users", 300, "subscribers per nationwide dataset")
		days    = fs.Int("days", 14, "recording period in days")
		workers = fs.Int("workers", 0, "worker count (0 = all CPUs)")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range runners {
			fmt.Fprintf(stdout, "%-10s %s\n", r.name, r.desc)
		}
		return nil
	}

	w, err := experiments.NewWorkloads(experiments.Config{
		Users: *users, Days: *days, Workers: *workers,
	})
	if err != nil {
		return err
	}

	want := map[string]bool{}
	if *runArg != "all" {
		for _, name := range strings.Split(*runArg, ",") {
			want[strings.TrimSpace(name)] = true
		}
		for name := range want {
			if !known(name) {
				return fmt.Errorf("unknown experiment %q (use -list)", name)
			}
		}
	}

	fmt.Fprintf(stdout, "workload scale: %d users, %d days per nationwide dataset\n\n", *users, *days)
	for _, r := range runners {
		if *runArg != "all" && !want[r.name] {
			continue
		}
		start := time.Now()
		if err := r.run(w, stdout); err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Fprintf(stdout, "[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func known(name string) bool {
	for _, r := range runners {
		if r.name == name {
			return true
		}
	}
	return false
}
