package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-list"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig3a", "table2", "uniqueness", "utility"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("list missing %s", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "fig3a", "-users", "30", "-days", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Fig. 3a") {
		t.Error("output missing figure header")
	}
	if !strings.Contains(stdout.String(), "completed") {
		t.Error("output missing completion line")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-run", "fig3a, uniqueness", "-users", "30", "-days", "2"}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "Uniqueness") {
		t.Error("second experiment missing")
	}
}

func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "fig99"}, &stdout, &stderr); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-users", "2"}, &stdout, &stderr); err == nil {
		t.Error("tiny workload accepted")
	}
	if err := run([]string{"-zzz"}, &stdout, &stderr); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestKnown(t *testing.T) {
	if !known("fig3a") || known("nope") {
		t.Error("known() wrong")
	}
}
