// Command glovelint runs the repository's custom static-analysis suite
// (internal/lint): a dependency-free multi-analyzer driver that loads
// and typechecks every package in the module and enforces the
// invariants DESIGN.md states in prose — append-only error-code,
// span-kind, journal-kind, and metric vocabularies, DTO placement and
// dependency direction, lock hygiene on the group-commit paths, and
// context threading (DESIGN.md Sec. 14).
//
// Usage:
//
//	glovelint [-root dir] [-json] [-enable a,b] [-disable a,b]
//	glovelint -list
//	glovelint -gen-vocab
//
// Findings print as `file:line:col: [analyzer] message`; the exit
// status is 1 when there are findings, 2 on a driver failure.
package main

import (
	"fmt"
	"os"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "glovelint: %v\n", err)
		if code == 0 {
			code = 2
		}
	}
	os.Exit(code)
}
