package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// run executes glovelint and returns the process exit code: 0 clean,
// 1 findings, 2 driver failure (the error, if any, is printed by main).
func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("glovelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		root     = fs.String("root", "", "module root (default: nearest go.mod upward from the working directory)")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
		enable   = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzers to skip")
		list     = fs.Bool("list", false, "list registered analyzers and exit")
		genVocab = fs.Bool("gen-vocab", false, "regenerate the committed vocabulary files from the tree (append-only) and exit")
		vocabDir = fs.String("vocab", "", "vocabulary directory (default: <root>/internal/lint/vocab)")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	moduleRoot, modPath, err := findModule(*root)
	if err != nil {
		return 2, err
	}
	cfg := lint.DefaultConfig(moduleRoot, modPath)
	if *vocabDir != "" {
		cfg.VocabDir = *vocabDir
	}
	cfg.Enable = splitList(*enable)
	cfg.Disable = splitList(*disable)

	if *genVocab {
		return 0, regenerateVocab(cfg, stdout)
	}

	findings, err := lint.Run(cfg)
	if err != nil {
		return 2, err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			return 2, err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "glovelint: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

// regenerateVocab rewrites the vocabulary files as the append-only
// merge of the committed entries with the names currently in the tree.
func regenerateVocab(cfg lint.Config, stdout io.Writer) error {
	prog, loadFindings, err := lint.LoadModule(cfg)
	if err != nil {
		return err
	}
	for _, f := range loadFindings {
		return fmt.Errorf("cannot regenerate vocabularies from a broken tree: %s", f)
	}
	current := lint.GenerateVocabs(prog)
	if err := os.MkdirAll(cfg.VocabDir, 0o755); err != nil {
		return err
	}
	for _, file := range lint.VocabFiles() {
		existing, err := lint.ReadVocab(cfg.VocabDir, file)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		merged := lint.MergeVocab(existing, current[file])
		if err := lint.WriteVocab(cfg.VocabDir, file, merged); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "glovelint: %s: %d entries (%d new)\n", file, len(merged), len(merged)-len(existing))
	}
	return nil
}

// findModule locates the module root and path: an explicit -root must
// hold a go.mod; otherwise the nearest go.mod upward from the working
// directory wins.
func findModule(root string) (dir, modPath string, err error) {
	if root == "" {
		root, err = os.Getwd()
		if err != nil {
			return "", "", err
		}
		for {
			if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
				break
			}
			parent := filepath.Dir(root)
			if parent == root {
				return "", "", fmt.Errorf("no go.mod found upward from the working directory (use -root)")
			}
			root = parent
		}
	}
	modPath, err = readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", "", err
	}
	return root, modPath, nil
}

// readModulePath extracts the module path from a go.mod.
func readModulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
