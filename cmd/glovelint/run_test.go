package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// seedModule builds a throwaway module with one ctxflow violation.
func seedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "app", "app.go"), `package app

import "context"

func use(ctx context.Context) {}

func Bad(ctx context.Context) {
	use(context.Background())
}
`)
	return dir
}

func TestRunJSONFindings(t *testing.T) {
	dir := seedModule(t)
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-root", dir, "-json"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, stderr.String())
	}
	if code != 1 {
		t.Fatalf("seeded violation must exit 1, got %d (stdout: %s)", code, stdout.String())
	}
	var findings []lint.Finding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not round-trip through encoding/json: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 || findings[0].Analyzer != "ctxflow" {
		t.Fatalf("want one ctxflow finding, got %+v", findings)
	}
	if findings[0].Line == 0 || !strings.HasSuffix(findings[0].File, "app.go") {
		t.Errorf("finding lost its position: %+v", findings[0])
	}
}

func TestRunDisableSilencesAnalyzer(t *testing.T) {
	dir := seedModule(t)
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-root", dir, "-disable", "ctxflow"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("disabled analyzer must be silent: code=%d err=%v stdout=%s", code, err, stdout.String())
	}
	code, err = run([]string{"-root", dir, "-enable", "dtoplace,lockedio"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("enable without ctxflow must be silent: code=%d err=%v", code, err)
	}
	code, err = run([]string{"-root", dir, "-enable", "nope"}, &stdout, &stderr)
	if err == nil || code != 2 {
		t.Fatalf("unknown analyzer must be a driver error: code=%d err=%v", code, err)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-list"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("list: code=%d err=%v", code, err)
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list missing analyzer %s:\n%s", a.Name, stdout.String())
		}
	}
}

// TestRunGenVocabThenClean: -gen-vocab over a fresh module writes the
// vocabularies, after which the same module lints clean; a second
// regeneration is byte-stable.
func TestRunGenVocabThenClean(t *testing.T) {
	dir := seedModule(t)
	// Replace the violation with a registry so vocab generation has input.
	writeFile(t, filepath.Join(dir, "app", "app.go"), "package app\n")
	writeFile(t, filepath.Join(dir, "internal", "api", "api.go"), `package api

type Code string

const CodeOK Code = "ok"
`)
	var stdout, stderr bytes.Buffer
	if code, err := run([]string{"-root", dir, "-gen-vocab"}, &stdout, &stderr); err != nil || code != 0 {
		t.Fatalf("gen-vocab: code=%d err=%v", code, err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "internal", "lint", "vocab", "errcodes.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), "ok") {
		t.Fatalf("generated vocabulary missing the declared code:\n%s", first)
	}
	if code, err := run([]string{"-root", dir}, &stdout, &stderr); err != nil || code != 0 {
		t.Fatalf("module must lint clean after gen-vocab: code=%d err=%v stdout=%s", code, err, stdout.String())
	}
	if code, err := run([]string{"-root", dir, "-gen-vocab"}, &stdout, &stderr); err != nil || code != 0 {
		t.Fatalf("second gen-vocab: code=%d err=%v", code, err)
	}
	second, err := os.ReadFile(filepath.Join(dir, "internal", "lint", "vocab", "errcodes.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("regeneration over an unchanged tree is not byte-stable:\n%s\nvs\n%s", first, second)
	}
}
