// Attack: a record linkage attack under the paper's strongest adversary
// model — one who knows the target's complete original trajectory
// (quasi-identifier-blind anonymity, Sec. 2.3).
//
// On the raw (pseudonymized) dataset the attack pins almost every
// subscriber uniquely: pseudonyms do not help when trajectories
// themselves are unique (Sec. 1, "high uniqueness"). On the GLOVE'd
// dataset the same knowledge always matches a crowd of at least k.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.SEN(100)
	cfg.Days = 7
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Replace identifiers with pseudonyms — the naive anonymization the
	// paper shows to be insufficient.
	table, err = table.Pseudonymize(0xD4D)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := table.BuildDataset()
	if err != nil {
		log.Fatal(err)
	}

	// The adversary knows the full trajectory of every target and counts
	// how many database records are consistent with that knowledge.
	attack := func(published *core.Dataset, label string) {
		unique, protected := 0, 0
		for _, target := range dataset.Fingerprints {
			crowd := core.MinMatchCrowd(published, target.Samples)
			switch {
			case crowd == 1:
				unique++
			case crowd >= 2:
				protected++
			}
		}
		fmt.Printf("%-22s uniquely re-linked: %3d / %d   hidden in a crowd: %3d\n",
			label, unique, dataset.Len(), protected)
	}

	fmt.Println("record linkage attack with full-trajectory knowledge")
	attack(dataset, "pseudonymized only:")

	for _, k := range []int{2, 5} {
		published, _, err := core.Glove(dataset, core.GloveOptions{K: k})
		if err != nil {
			log.Fatal(err)
		}
		attack(published, fmt.Sprintf("GLOVE k=%d:", k))

		// The crowd guarantee, per target.
		worst := dataset.Len() + 1
		for _, target := range dataset.Fingerprints {
			if c := core.MinMatchCrowd(published, target.Samples); c < worst {
				worst = c
			}
		}
		fmt.Printf("%-22s worst-case crowd size: %d (>= k = %d)\n",
			fmt.Sprintf("GLOVE k=%d:", k), worst, k)
	}
}
