// Commute-study: a downstream utility study of the kind the paper says
// k-anonymized data should still support (Sec. 2.4: "routine behaviors
// of individual subscribers (e.g., home and work locations)" and
// "aggregate statistics ... commuting flows").
//
// It infers each subscriber's home and work locations from (a) the
// original micro-data and (b) the GLOVE 2-anonymized release, scores
// both against the generator's ground truth, and compares the inferred
// city-to-city commute matrix — quantifying how much analysis value
// survives anonymization.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.CIV(150)
	cfg.Days = 7
	table, country, pop, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dataset, err := table.BuildDataset()
	if err != nil {
		log.Fatal(err)
	}
	published, _, err := core.Glove(dataset, core.GloveOptions{K: 2})
	if err != nil {
		log.Fatal(err)
	}

	truth := make(map[string]synth.User, len(pop.Users))
	for _, u := range pop.Users {
		truth[u.ID] = u
	}

	// Per-user fingerprint view of the published data: every member of a
	// group shares the group's samples.
	publishedOf := make(map[string]*core.Fingerprint)
	for _, f := range published.Fingerprints {
		for _, m := range f.Members {
			publishedOf[m] = f
		}
	}

	var errHomeRaw, errHomeAnon, errWorkRaw, errWorkAnon []float64
	for _, f := range dataset.Fingerprints {
		u := truth[f.ID]
		homeTrue := country.Antennas[u.Home].Pos
		workTrue := country.Antennas[u.Work].Pos

		hr, wr := inferAnchors(f)
		errHomeRaw = append(errHomeRaw, hr.Dist(homeTrue))
		errWorkRaw = append(errWorkRaw, wr.Dist(workTrue))

		if g := publishedOf[f.ID]; g != nil {
			ha, wa := inferAnchors(g)
			errHomeAnon = append(errHomeAnon, ha.Dist(homeTrue))
			errWorkAnon = append(errWorkAnon, wa.Dist(workTrue))
		}
	}

	fmt.Println("home/work detection error vs ground truth (meters)")
	fmt.Printf("  %-22s median home %6.0f   median work %6.0f\n",
		"original micro-data:", median(errHomeRaw), median(errWorkRaw))
	fmt.Printf("  %-22s median home %6.0f   median work %6.0f\n",
		"GLOVE 2-anonymized:", median(errHomeAnon), median(errWorkAnon))

	// Aggregate commute matrix: fraction of users whose home and work
	// fall in the same city, per data source, against the truth.
	same := func(h, w geo.Point) bool { return h.Dist(w) < 10000 }
	var truthSame, rawSame, anonSame, n int
	for _, f := range dataset.Fingerprints {
		u := truth[f.ID]
		n++
		if same(country.Antennas[u.Home].Pos, country.Antennas[u.Work].Pos) {
			truthSame++
		}
		hr, wr := inferAnchors(f)
		if same(hr, wr) {
			rawSame++
		}
		if g := publishedOf[f.ID]; g != nil {
			if ha, wa := inferAnchors(g); same(ha, wa) {
				anonSame++
			}
		}
	}
	fmt.Println("short-commute share (home and work within 10 km)")
	fmt.Printf("  ground truth:          %.0f%%\n", 100*float64(truthSame)/float64(n))
	fmt.Printf("  original micro-data:   %.0f%%\n", 100*float64(rawSame)/float64(n))
	fmt.Printf("  GLOVE 2-anonymized:    %.0f%%\n", 100*float64(anonSame)/float64(n))
}

// inferAnchors estimates home and work positions from a fingerprint:
// home = weighted centroid of night samples (22h-7h), work = weighted
// centroid of weekday working-hour samples (9h-17h). Falls back to the
// overall centroid when a class is empty.
func inferAnchors(f *core.Fingerprint) (home, work geo.Point) {
	var hx, hy, hw, wx, wy, ww, ax, ay, aw float64
	for _, s := range f.Samples {
		c := geo.Point{X: s.X + s.DX/2, Y: s.Y + s.DY/2}
		mid := s.T + s.DT/2
		hour := int(mid/60) % 24
		day := int(mid / (24 * 60))
		weight := float64(s.Weight)
		ax += c.X * weight
		ay += c.Y * weight
		aw += weight
		switch {
		case hour >= 22 || hour < 7:
			hx += c.X * weight
			hy += c.Y * weight
			hw += weight
		case day%7 < 5 && hour >= 9 && hour < 17:
			wx += c.X * weight
			wy += c.Y * weight
			ww += weight
		}
	}
	if aw == 0 {
		return geo.Point{}, geo.Point{}
	}
	avg := geo.Point{X: ax / aw, Y: ay / aw}
	home, work = avg, avg
	if hw > 0 {
		home = geo.Point{X: hx / hw, Y: hy / hw}
	}
	if ww > 0 {
		work = geo.Point{X: wx / ww, Y: wy / ww}
	}
	return home, work
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s[len(s)/2]
}
