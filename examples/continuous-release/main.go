// Continuous-release: the operator workflow the windowed pipeline was
// built for — publishing a growing CDR feed as a sequence of
// time-windowed, independently k-anonymous releases, and measuring the
// risk that single-snapshot anonymization cannot see: an adversary who
// re-links a target ACROSS consecutive releases. The motivating attacks
// of the paper's Sec. 1 (Zang & Bolot's top locations, de Montjoye et
// al.'s spatiotemporal points) get stronger with every release an
// operator publishes; this example quantifies how much of that
// cross-release linkability GLOVE removes.
//
//  1. simulate a 6-day operator feed;
//  2. pseudonymize and screen it (the usual, insufficient, first steps);
//  3. partition into 48 h release windows;
//  4. GLOVE-anonymize every window independently (each release is
//     k-anonymous on its own);
//  5. validate and publish one CSV per window;
//  6. compare cross-window linkage of the raw feed vs the releases.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("continuous: ")

	// 1. The feed: six days of synthetic country-scale traffic.
	cfg := synth.CIV(120)
	cfg.Days = 6
	raw, _, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed            %6d records, %d subscribers over %d days\n",
		len(raw.Records), raw.Users(), cfg.Days)

	// 2. Pseudonymize + screen, as any release pipeline must.
	pseudo, err := raw.Pseudonymize(2015)
	if err != nil {
		log.Fatal(err)
	}
	screened := pseudo.FilterMinRate(1)

	// 3. Partition into 48 h release windows.
	const windowHours = 48
	wins, err := screened.SplitByWindow(windowHours * time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	originals := make([]*core.Dataset, len(wins))
	for i, w := range wins {
		if originals[i], err = w.Table.BuildDataset(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("windows         %6d releases of %d h each\n", len(wins), windowHours)

	// 4. Anonymize each window independently.
	const k = 2
	releases, err := core.AnonymizeWindows(originals, core.AnonymizeOptions{
		Glove: core.GloveOptions{K: k},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Validate and publish every release.
	dir, err := os.MkdirTemp("", "glove-continuous-")
	if err != nil {
		log.Fatal(err)
	}
	published := make([]*core.Dataset, len(releases))
	for i, rel := range releases {
		if err := core.ValidateKAnonymity(rel.Output, k); err != nil {
			log.Fatalf("RELEASE BLOCKED: window %d: %v", wins[i].Index, err)
		}
		published[i] = rel.Output
		path := filepath.Join(dir, fmt.Sprintf("release-w%d.csv", wins[i].Index))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := cdr.WriteAnonymizedCSV(f, rel.Output); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("window %d        %6d users -> %4d groups (%4d merges, plan %s/%s) -> %s\n",
			wins[i].Index, originals[i].Len(), rel.Output.Len(), rel.Stats.Merges,
			rel.Plan.Strategy, rel.Plan.Index, path)
	}

	// 6. The continuous-publication risk: how many subscribers can a
	//    partial-knowledge adversary re-link across consecutive
	//    releases? Raw feed first (the upper bound), then the GLOVE
	//    releases.
	const known, probes = 4, 200
	rawLink, err := analysis.CrossWindowLinkage(originals, originals, known, probes,
		rand.New(rand.NewSource(1)), 0)
	if err != nil {
		log.Fatal(err)
	}
	gloveLink, err := analysis.CrossWindowLinkage(originals, published, known, probes,
		rand.New(rand.NewSource(1)), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-window linkage (adversary knows", known, "samples per window):")
	fmt.Printf("  raw releases         %s\n", rawLink)
	fmt.Printf("  GLOVE releases       %s\n", gloveLink)
	if gloveLink.LinkedFraction > rawLink.LinkedFraction {
		log.Fatal("anonymized releases leak more than raw ones — impossible")
	}
}
