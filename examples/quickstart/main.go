// Quickstart: generate a small synthetic CDR dataset, 2-anonymize it
// with GLOVE, and inspect what happened — the 30-second tour of the
// library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic Ivory Coast-like CDR dataset: 120 subscribers,
	//    one week of traffic.
	cfg := synth.CIV(120)
	cfg.Days = 7
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Movement micro-data: project positions, snap to the 100 m grid,
	//    one fingerprint per subscriber.
	dataset, err := table.BuildDataset()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw dataset: %d fingerprints, %d spatiotemporal samples\n",
		dataset.Len(), dataset.TotalSamples())

	// 3. k-anonymize with GLOVE: every published fingerprint hides at
	//    least k subscribers.
	const k = 2
	published, stats, err := core.Glove(dataset, core.GloveOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GLOVE: %d merges -> %d published groups, nobody discarded\n",
		stats.Merges, published.Len())

	// 4. Verify the privacy and truthfulness guarantees.
	if err := metrics.ValidatePublished(dataset, published, k); err != nil {
		log.Fatal(err)
	}
	fmt.Println("validated: k-anonymity and record-level truthfulness hold")

	// 5. How much accuracy did anonymity cost?
	acc := metrics.Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accuracy: median position %.0f m, median time %.0f min\n",
		sum.MedianPositionM, sum.MedianTimeMin)

	pc, err := acc.PositionCDF()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("samples within 2 km: %.0f%%\n", 100*pc.At(2000))
}
