// Release-pipeline: a realistic Privacy-Preserving Data Publishing run,
// end to end — what a mobile operator's data office would execute before
// an open-data release (the workflow the paper's introduction motivates).
//
//  1. ingest raw CDR records;
//  2. pseudonymize identifiers;
//  3. screen low-activity subscribers (the paper's >= 1 sample/day);
//  4. GLOVE k-anonymization with suppression of over-generalized
//     samples (Sec. 7.1, thresholds 15 km / 6 h as in Table 2);
//  5. validate privacy (k-anonymity) and truthfulness (PPDP P2);
//  6. write the publishable CSV and a utility datasheet;
//  7. quantify the residual risks k-anonymity does not cover.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("release: ")

	// 1. Ingest: in production this is the operator's probe feed; here,
	//    the synthetic substrate.
	cfg := synth.CIV(150)
	cfg.Days = 7
	raw, _, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested        %6d records, %d subscribers\n", len(raw.Records), raw.Users())

	// 2. Pseudonymize: mandatory, insufficient alone.
	pseudo, err := raw.Pseudonymize(2015)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Screening: drop subscribers too inactive to carry analysis value.
	screened := pseudo.FilterMinRate(1)
	fmt.Printf("screened        %6d records, %d subscribers (>= 1 sample/day)\n",
		len(screened.Records), screened.Users())

	dataset, err := screened.BuildDataset()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Anonymize: 2-anonymity with the paper's suppression thresholds.
	const k = 2
	published, stats, err := core.Glove(dataset, core.GloveOptions{
		K: k,
		Suppress: core.SuppressionThresholds{
			MaxSpatialMeters:   15000,
			MaxTemporalMinutes: 360,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized      %6d groups (k >= %d), %d samples suppressed (%.1f%%)\n",
		published.Len(), k, stats.SuppressedSamples,
		100*float64(stats.SuppressedSamples)/float64(stats.InputSamples))

	// 5. Validate: release gate. Privacy violations abort publication;
	//    subscribers fully removed by suppression are a documented
	//    exclusion (removing a user can never hurt that user's privacy),
	//    but any other discrepancy blocks the release.
	if err := published.Validate(); err != nil {
		log.Fatalf("RELEASE BLOCKED: %v", err)
	}
	if err := core.ValidateKAnonymity(published, k); err != nil {
		log.Fatalf("RELEASE BLOCKED: %v", err)
	}
	rep := core.CheckTruthfulness(dataset, published)
	if rep.MissingFP != stats.DiscardedUsers {
		log.Fatalf("RELEASE BLOCKED: %d subscribers missing but only %d accounted as suppression-discarded",
			rep.MissingFP, stats.DiscardedUsers)
	}
	fmt.Printf("validated       %d original samples covered, %d suppressed, 0 fabricated, %d subscribers excluded\n",
		rep.Covered, rep.Suppressed, stats.DiscardedUsers)

	// 6. Publish: the anonymized CSV plus a datasheet documenting the
	//    residual utility for downstream researchers.
	dir, err := os.MkdirTemp("", "glove-release-")
	if err != nil {
		log.Fatal(err)
	}
	outPath := filepath.Join(dir, "release.csv")
	f, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := cdr.WriteAnonymizedCSV(f, published); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	acc := metrics.Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		log.Fatal(err)
	}
	pcdf, err := acc.PositionCDF()
	if err != nil {
		log.Fatal(err)
	}
	tcdf, err := acc.TimeCDF()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("published       %s\n", outPath)
	fmt.Println("datasheet:")
	fmt.Printf("  anonymity              k = %d (validated)\n", k)
	fmt.Printf("  position accuracy      mean %.0f m, median %.0f m, %.0f%% within 2 km\n",
		sum.MeanPositionM, sum.MedianPositionM, 100*pcdf.At(2000))
	fmt.Printf("  time accuracy          mean %.0f min, median %.0f min, %.0f%% within 2 h\n",
		sum.MeanTimeMin, sum.MedianTimeMin, 100*tcdf.At(120))
	fmt.Printf("  records published      %d generalized samples for %d subscribers\n",
		published.TotalSamples(), published.Users())

	// 7. Residual-risk diagnostics: quantify the k-anonymity limitations
	//    the paper acknowledges (Sec. 2.4) so the release decision is an
	//    informed one.
	risk, err := privacy.Report(published, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(risk)
}
