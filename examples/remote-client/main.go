// Remote-client: the pkg/client quickstart — everything a service
// consumer does against a resident gloved, in one program, without
// touching internal/service directly:
//
//  1. spin up a gloved (in-process here; point -server anywhere);
//  2. stream a synthetic CDR feed in as a dataset;
//  3. append a second day to the feed (the version bumps);
//  4. submit a windowed k=2 job;
//  5. follow the Server-Sent-Events stream instead of polling;
//  6. download every window release as soon as the job is done;
//  7. read the typed error codes the wire contract guarantees.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/cdr"
	"repro/internal/service"
	"repro/internal/synth"
	"repro/pkg/client"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("remote-client: ")
	server := flag.String("server", "", "existing gloved base URL (empty = start one in-process)")
	flag.Parse()
	ctx := context.Background()

	// 1. A server to talk to. A real deployment runs `gloved -addr` and
	// passes -server http://host:8080; the example self-hosts so it
	// works standalone.
	base := *server
	if base == "" {
		reg := service.NewRegistry()
		mgr := service.NewManager(reg, service.ManagerOptions{})
		defer mgr.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, service.NewServer(reg, mgr))
		base = "http://" + ln.Addr().String()
	}
	c, err := client.New(base)
	if err != nil {
		log.Fatal(err)
	}
	health, err := c.Health(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server          %s (%s)\n", base, health.Version)

	// 2. Ingest: the reader streams straight onto the wire.
	cfg := synth.CIV(80)
	cfg.Days = 2
	feed, _, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var csv bytes.Buffer
	if err := cdr.WriteCSV(&csv, feed); err != nil {
		log.Fatal(err)
	}
	ds, err := c.CreateDataset(ctx, &csv, client.IngestOptions{
		Name: "quickstart", Lat: feed.Center.Lat, Lon: feed.Center.Lon, Days: cfg.Days,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset         %s v%d: %d records, %d subscribers\n",
		ds.ID, ds.Version, ds.Records, ds.Users)

	// 3. Append a third day; running jobs would never see it (they
	// snapshot their version at start).
	day3 := synth.CIV(80)
	day3.Days = 3
	grown, _, _, err := synth.Generate(day3)
	if err != nil {
		log.Fatal(err)
	}
	var day3Records []cdr.Record
	for _, r := range grown.Records {
		if r.Minute >= 2*24*60 {
			day3Records = append(day3Records, r)
		}
	}
	var extra bytes.Buffer
	if err := cdr.WriteCSV(&extra, &cdr.Table{
		Records: day3Records, Center: grown.Center, SpanDays: 3,
	}); err != nil {
		log.Fatal(err)
	}
	if ds, err = c.AppendRecords(ctx, ds.ID, &extra); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("append          -> v%d, %d records\n", ds.Version, ds.Records)

	// 4 + 5. Submit a windowed job and watch its event stream: state
	// transitions, coalesced progress, and a commit event per window.
	job, err := c.SubmitJob(ctx, client.JobSpec{
		DatasetID: ds.ID, K: 2, WindowHours: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	final, err := c.WatchJob(ctx, job.ID, func(e client.JobEvent) {
		switch e.Type {
		case "state":
			fmt.Printf("event %3d       state -> %s\n", e.Seq, e.State)
		case "window":
			fmt.Printf("event %3d       window %d -> %s\n", e.Seq, e.Window.Index, e.Window.State)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	// 6. Every committed window is an independently k-anonymous release.
	for _, w := range final.Windows {
		body, err := c.WindowResult(ctx, job.ID, w.Index)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := cdr.ReadAnonymizedCSV(body)
		body.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("release w%d      minutes [%.0f, %.0f): %d users -> %d groups\n",
			w.Index, w.StartMinute, w.EndMinute, w.Users, rel.Len())
	}

	// 7. Typed errors: branch on the machine-readable code, not text.
	_, err = c.GetDataset(ctx, "ds-does-not-exist")
	fmt.Printf("typed error     code=%s (http %d)\n",
		client.ErrorCode(err), err.(*client.APIError).StatusCode)

	if err := c.PurgeJob(ctx, job.ID); err != nil {
		log.Fatal(err)
	}
	if err := c.DeleteDataset(ctx, ds.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cleaned up      dataset and job purged")
}
