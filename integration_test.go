package repro_test

import (
	"bytes"
	"testing"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/w4m"
)

// TestEndToEndPipeline drives the full release pipeline — generate,
// screen, pseudonymize, fingerprint, anonymize, validate, serialize —
// and checks every cross-module invariant along the way.
func TestEndToEndPipeline(t *testing.T) {
	cfg := synth.CIV(70)
	cfg.Days = 5
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	table, err = table.Pseudonymize(99)
	if err != nil {
		t.Fatal(err)
	}
	table = table.FilterMinRate(1)

	dataset, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.Validate(); err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 3} {
		published, stats, err := core.Glove(dataset, core.GloveOptions{K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := metrics.ValidatePublished(dataset, published, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if published.Users() != dataset.Len() {
			t.Fatalf("k=%d: %d users in, %d out", k, dataset.Len(), published.Users())
		}
		if stats.SuppressedSamples != 0 {
			t.Fatalf("k=%d: suppression without thresholds", k)
		}

		// The strongest-adversary attack must be defeated for every user.
		for _, target := range dataset.Fingerprints[:10] {
			if crowd := core.MinMatchCrowd(published, target.Samples); crowd < k {
				t.Fatalf("k=%d: target %s narrowed to crowd %d", k, target.ID, crowd)
			}
		}

		// Serialization round trip of the published data.
		var buf bytes.Buffer
		if err := cdr.WriteAnonymizedCSV(&buf, published); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("k=%d: empty serialization", k)
		}
	}
}

// TestGloveBeatsUniformGeneralization reproduces the paper's central
// claim end to end: at comparable privacy (2-anonymity), GLOVE's
// specialized generalization preserves far more accuracy than the
// uniform generalization that would be needed — indeed uniform
// generalization cannot even reach 2-anonymity for most users at the
// coarsest level the accuracy comparison tolerates.
func TestGloveBeatsUniformGeneralization(t *testing.T) {
	cfg := synth.SEN(60)
	cfg.Days = 4
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()

	// Uniform generalization at the paper's coarsest level.
	coarse, err := generalize.Dataset(dataset, generalize.Level{SpatialMeters: 20000, TemporalMinutes: 480})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.KGapAll(p, coarse, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var anon int
	for _, r := range rs {
		if r.KGap <= 1e-12 {
			anon++
		}
	}
	uniformFrac := float64(anon) / float64(len(rs))

	// GLOVE: everyone is 2-anonymous, by construction.
	published, _, err := core.Glove(dataset, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateKAnonymity(published, 2); err != nil {
		t.Fatal(err)
	}

	if uniformFrac > 0.7 {
		t.Errorf("uniform 20km/8h generalization anonymized %.0f%% — dataset too easy to be meaningful", 100*uniformFrac)
	}

	// And GLOVE's published data is far finer than 20 km / 8 h for the
	// median sample.
	acc := metrics.Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.MedianPositionM >= 20000 {
		t.Errorf("GLOVE median position %.0f m not better than the uniform 20 km cell", sum.MedianPositionM)
	}
	if sum.MedianTimeMin >= 480 {
		t.Errorf("GLOVE median time %.0f min not better than the uniform 8 h slot", sum.MedianTimeMin)
	}
}

// TestGloveVsW4MShapes checks the Table 2 shape on one dataset: GLOVE
// is truthful (no fabricated samples) and loses less accuracy; W4M
// fabricates synchronization samples and pays large time errors on
// heterogeneously sampled data.
func TestGloveVsW4MShapes(t *testing.T) {
	cfg := synth.CIV(60)
	cfg.Days = 4
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}

	gOut, gStats, err := core.Glove(dataset, core.GloveOptions{K: 2, Suppress: core.SuppressionThresholds{
		MaxSpatialMeters: 15000, MaxTemporalMinutes: 360,
	}})
	if err != nil {
		t.Fatal(err)
	}
	_, wStats, err := w4m.Run(dataset, w4m.DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}

	// Truthfulness: GLOVE fabricates nothing; W4M fabricates plenty on
	// heterogeneous sampling.
	rep := core.CheckTruthfulness(dataset, gOut)
	if rep.MissingFP > 0 && gStats.DiscardedUsers == 0 {
		t.Error("GLOVE lost subscribers without suppression discards")
	}
	if wStats.CreatedSamples == 0 {
		t.Error("W4M fabricated no samples")
	}

	// Accuracy: GLOVE's mean time accuracy beats W4M's mean time error.
	acc := metrics.Measure(gOut)
	sum, err := acc.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanTimeMin >= wStats.MeanTimeError() {
		t.Errorf("GLOVE mean time %.0f min not better than W4M %.0f min",
			sum.MeanTimeMin, wStats.MeanTimeError())
	}
}

// TestSuppressionSweepMonotone checks Fig. 9's mechanism end to end:
// tightening thresholds discards more samples and improves the mean
// accuracy of what remains.
func TestSuppressionSweepMonotone(t *testing.T) {
	cfg := synth.SEN(50)
	cfg.Days = 4
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dataset, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}

	prevDiscard := -1.0
	for _, thrMin := range []float64{480, 240, 120} {
		out, st, err := core.Glove(dataset, core.GloveOptions{K: 2, Suppress: core.SuppressionThresholds{
			MaxTemporalMinutes: thrMin,
		}})
		if err != nil {
			t.Fatal(err)
		}
		discard := float64(st.SuppressedSamples)
		if discard < prevDiscard {
			t.Errorf("threshold %g min discarded less (%g) than looser threshold (%g)",
				thrMin, discard, prevDiscard)
		}
		prevDiscard = discard
		for _, f := range out.Fingerprints {
			for _, s := range f.Samples {
				if s.TemporalSpan() > thrMin {
					t.Fatalf("sample with span %g min survived %g min threshold", s.TemporalSpan(), thrMin)
				}
			}
		}
	}
}
