// Package analysis implements the anonymizability analysis of Sec. 5:
// k-gap distributions (Figs. 3-4), the disaggregation of fingerprint
// stretch efforts into per-sample spatial and temporal components with
// their Tail Weight Index (Fig. 5a), and the temporal-to-spatial effort
// ratios (Fig. 5b) — the evidence that the *temporal* dimension is what
// makes mobile fingerprints hard to hide.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// Decomposition is the per-fingerprint disaggregation of Sec. 5.3: the
// sample stretch efforts between a fingerprint and its k-1 nearest
// neighbours, split into spatial (S^k_a = {w_σ φ_σ}) and temporal
// (T^k_a = {w_τ φ_τ}) components.
type Decomposition struct {
	Index    int
	Total    []float64 // δ per matched sample pair
	Spatial  []float64 // w_σ φ_σ components
	Temporal []float64 // w_τ φ_τ components
}

// TemporalToSpatialRatio returns Σ T^k_a / Σ S^k_a, the quantity of
// Fig. 5b. It returns +Inf when the spatial component is exactly zero
// and the temporal one is not.
func (d *Decomposition) TemporalToSpatialRatio() float64 {
	var st, ss float64
	for _, v := range d.Temporal {
		st += v
	}
	for _, v := range d.Spatial {
		ss += v
	}
	if ss == 0 {
		if st == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return st / ss
}

// TemporalShare returns Σ T / (Σ T + Σ S), the fraction of the total
// stretch effort attributable to time, in [0, 1].
func (d *Decomposition) TemporalShare() float64 {
	var st, ss float64
	for _, v := range d.Temporal {
		st += v
	}
	for _, v := range d.Spatial {
		ss += v
	}
	if st+ss == 0 {
		return 0
	}
	return st / (st + ss)
}

// Decompose disaggregates, for every fingerprint a, the fingerprint
// stretch efforts Δ_ab towards its k-1 nearest neighbours b (from a
// prior KGapAll run) into per-sample spatial and temporal components,
// replaying the min-effort matching of Eq. 10.
func Decompose(p core.Params, d *core.Dataset, kgaps []core.KGapResult, workers int) []Decomposition {
	return parallel.Map(len(kgaps), workers, func(i int) Decomposition {
		r := kgaps[i]
		dec := Decomposition{Index: r.Index}
		a := d.Fingerprints[r.Index]
		for _, bi := range r.Nearest {
			b := d.Fingerprints[bi]
			appendPairComponents(p, a, b, &dec)
		}
		return dec
	})
}

// appendPairComponents replays Eq. 10 on the pair (a, b): for each
// sample of the longer fingerprint, the min-effort counterpart in the
// shorter one, recording the effort split of each matched pair.
func appendPairComponents(p core.Params, a, b *core.Fingerprint, dec *Decomposition) {
	long, short := a, b
	if long.Len() < short.Len() {
		long, short = short, long
	}
	nl, ns := long.Count, short.Count
	for _, s := range long.Samples {
		best := math.Inf(1)
		var bestSp, bestTm float64
		for _, o := range short.Samples {
			sp, tm := p.SampleEffortParts(s, o, nl, ns)
			if d := sp + tm; d < best {
				best = d
				bestSp, bestTm = sp, tm
			}
		}
		dec.Total = append(dec.Total, best)
		dec.Spatial = append(dec.Spatial, bestSp)
		dec.Temporal = append(dec.Temporal, bestTm)
	}
}

// TWIResult carries the per-fingerprint Tail Weight Indexes of Fig. 5a.
// Fingerprints whose component distribution is degenerate (too few
// samples or zero spread) are reported in the Skipped counts.
type TWIResult struct {
	Total    []float64
	Spatial  []float64
	Temporal []float64
	Skipped  int // fingerprints with no computable TWI at all
}

// TWIs computes the Tail Weight Index of the total, spatial and temporal
// effort distributions of every decomposition.
func TWIs(decs []Decomposition) *TWIResult {
	res := &TWIResult{}
	for _, dec := range decs {
		tw, errT := stats.TWI(dec.Total)
		sw, errS := stats.TWI(dec.Spatial)
		mw, errM := stats.TWI(dec.Temporal)
		if errT != nil && errS != nil && errM != nil {
			res.Skipped++
			continue
		}
		if errT == nil {
			res.Total = append(res.Total, tw)
		}
		if errS == nil {
			res.Spatial = append(res.Spatial, sw)
		}
		if errM == nil {
			res.Temporal = append(res.Temporal, mw)
		}
	}
	return res
}

// HeavyTailFraction returns the fraction of values >= 1.5, the threshold
// the paper uses to call a distribution heavy-tailed (footnote 5).
func HeavyTailFraction(twis []float64) float64 {
	if len(twis) == 0 {
		return 0
	}
	var n int
	for _, v := range twis {
		if v >= 1.5 {
			n++
		}
	}
	return float64(n) / float64(len(twis))
}

// KGapCDF runs the k-gap analysis and returns its CDF, the headline
// measurement of Figs. 3 and 4.
func KGapCDF(p core.Params, d *core.Dataset, k, workers int) (*stats.ECDF, []core.KGapResult, error) {
	rs, err := core.KGapAll(p, d, k, workers)
	if err != nil {
		return nil, nil, err
	}
	cdf, err := stats.NewECDF(core.KGaps(rs))
	if err != nil {
		return nil, nil, err
	}
	return cdf, rs, nil
}

// AnonymousFraction returns the fraction of fingerprints whose k-gap is
// (numerically) zero, i.e. already k-anonymous — what Fig. 4 reports
// under increasing generalization.
func AnonymousFraction(rs []core.KGapResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var n int
	for _, r := range rs {
		if r.KGap <= 1e-12 {
			n++
		}
	}
	return float64(n) / float64(len(rs))
}

// FormatCDF renders a CDF as aligned x/F(x) text rows for the experiment
// drivers.
func FormatCDF(cdf *stats.ECDF, points int, xFmt string) string {
	var out string
	for _, pt := range cdf.Points(points) {
		out += fmt.Sprintf("  "+xFmt+"  F=%.3f\n", pt.X, pt.F)
	}
	return out
}
