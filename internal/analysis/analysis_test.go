package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func randDataset(rng *rand.Rand, n, maxLen int) *core.Dataset {
	fps := make([]*core.Fingerprint, n)
	for i := range fps {
		m := 1 + rng.Intn(maxLen)
		ax, ay := rng.Float64()*4e4, rng.Float64()*4e4
		samples := make([]core.Sample, m)
		for j := range samples {
			samples[j] = core.Sample{
				X: ax + rng.NormFloat64()*2000, DX: 100,
				Y: ay + rng.NormFloat64()*2000, DY: 100,
				T: rng.Float64() * 20000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(fmt.Sprintf("u%03d", i), samples)
	}
	return core.NewDataset(fps)
}

func TestDecomposeComponentsConsistent(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 20, 10)
	rs, err := core.KGapAll(p, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	decs := Decompose(p, d, rs, 0)
	if len(decs) != 20 {
		t.Fatalf("got %d decompositions", len(decs))
	}
	for _, dec := range decs {
		if len(dec.Total) != len(dec.Spatial) || len(dec.Total) != len(dec.Temporal) {
			t.Fatal("component slices have different lengths")
		}
		if len(dec.Total) == 0 {
			t.Fatal("empty decomposition")
		}
		for i := range dec.Total {
			if math.Abs(dec.Spatial[i]+dec.Temporal[i]-dec.Total[i]) > 1e-12 {
				t.Fatalf("components do not sum: %g + %g != %g",
					dec.Spatial[i], dec.Temporal[i], dec.Total[i])
			}
			if dec.Spatial[i] < 0 || dec.Temporal[i] < 0 {
				t.Fatal("negative component")
			}
		}
	}
}

// The mean of the per-pair efforts in a decomposition must reproduce the
// k-gap: the decomposition is a refinement of Eq. 11.
func TestDecomposeMatchesKGap(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(2))
	d := randDataset(rng, 15, 8)
	rs, err := core.KGapAll(p, d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	decs := Decompose(p, d, rs, 0)
	for i, dec := range decs {
		// For k=2 there is a single neighbour; the mean of the per-sample
		// efforts equals Δ_ab... except for equal-length pairs, where
		// FingerprintEffort averages both directions and the decomposition
		// replays only one. Allow that case a tolerance.
		var sum float64
		for _, v := range dec.Total {
			sum += v
		}
		got := sum / float64(len(dec.Total))
		want := rs[i].KGap
		a := d.Fingerprints[rs[i].Index]
		b := d.Fingerprints[rs[i].Nearest[0]]
		if a.Len() != b.Len() {
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("fingerprint %d: decomposition mean %g != k-gap %g", i, got, want)
			}
		}
	}
}

func TestTemporalRatioAndShare(t *testing.T) {
	dec := &Decomposition{
		Spatial:  []float64{0.1, 0.1},
		Temporal: []float64{0.3, 0.5},
	}
	if r := dec.TemporalToSpatialRatio(); math.Abs(r-4) > 1e-12 {
		t.Errorf("ratio = %g, want 4", r)
	}
	if s := dec.TemporalShare(); math.Abs(s-0.8) > 1e-12 {
		t.Errorf("share = %g, want 0.8", s)
	}
	zero := &Decomposition{Spatial: []float64{0}, Temporal: []float64{0.2}}
	if !math.IsInf(zero.TemporalToSpatialRatio(), 1) {
		t.Error("zero spatial ratio not +Inf")
	}
	empty := &Decomposition{}
	if empty.TemporalToSpatialRatio() != 0 || empty.TemporalShare() != 0 {
		t.Error("empty decomposition ratios not 0")
	}
}

func TestTWIs(t *testing.T) {
	// Build decompositions with known shapes: exponential-ish temporal,
	// uniform spatial.
	rng := rand.New(rand.NewSource(3))
	var decs []Decomposition
	for i := 0; i < 30; i++ {
		var dec Decomposition
		for j := 0; j < 4000; j++ {
			sp := rng.Float64() * 0.01
			tm := rng.ExpFloat64() * 0.01
			dec.Spatial = append(dec.Spatial, sp)
			dec.Temporal = append(dec.Temporal, tm)
			dec.Total = append(dec.Total, sp+tm)
		}
		decs = append(decs, dec)
	}
	res := TWIs(decs)
	if res.Skipped != 0 {
		t.Errorf("skipped %d", res.Skipped)
	}
	if len(res.Temporal) != 30 {
		t.Fatalf("temporal TWIs = %d", len(res.Temporal))
	}
	// Exponential temporal components: heavy tails (TWI >= 1.5 mostly);
	// uniform spatial: light tails.
	if f := HeavyTailFraction(res.Temporal); f < 0.5 {
		t.Errorf("temporal heavy-tail fraction = %.2f, want >= 0.5", f)
	}
	if f := HeavyTailFraction(res.Spatial); f > 0.2 {
		t.Errorf("spatial heavy-tail fraction = %.2f, want <= 0.2", f)
	}
}

func TestTWIsSkipsDegenerate(t *testing.T) {
	decs := []Decomposition{
		{Total: []float64{1, 1, 1, 1}, Spatial: []float64{1, 1, 1, 1}, Temporal: []float64{1, 1, 1, 1}},
	}
	res := TWIs(decs)
	if res.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", res.Skipped)
	}
}

func TestHeavyTailFractionEmpty(t *testing.T) {
	if HeavyTailFraction(nil) != 0 {
		t.Error("empty fraction != 0")
	}
}

func TestKGapCDFAndAnonymousFraction(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 25, 6)
	cdf, rs, err := KGapCDF(p, d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cdf.Len() != 25 {
		t.Errorf("CDF over %d values", cdf.Len())
	}
	// Unique random fingerprints: nobody is 2-anonymous (paper Fig. 3a).
	if f := AnonymousFraction(rs); f != 0 {
		t.Errorf("anonymous fraction = %g, want 0 on raw data", f)
	}
	// Duplicate everything: everyone is 2-anonymous.
	fps := make([]*core.Fingerprint, 0, 2*d.Len())
	for _, f := range d.Fingerprints {
		fps = append(fps, f)
		c := f.Clone()
		c.ID = f.ID + "-dup"
		c.Members = []string{c.ID}
		fps = append(fps, c)
	}
	dd := core.NewDataset(fps)
	_, rs2, err := KGapCDF(p, dd, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f := AnonymousFraction(rs2); f != 1 {
		t.Errorf("anonymous fraction = %g, want 1 on duplicated data", f)
	}
	if AnonymousFraction(nil) != 0 {
		t.Error("empty anonymous fraction != 0")
	}
}

func TestKGapCDFArgErrors(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 5, 4)
	if _, _, err := KGapCDF(p, d, 1, 0); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestFormatCDF(t *testing.T) {
	p := core.DefaultParams()
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 10, 4)
	cdf, _, err := KGapCDF(p, d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCDF(cdf, 5, "x=%.3f")
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Errorf("FormatCDF produced %d lines, want 5", lines)
	}
	if !strings.Contains(out, "F=1.000") {
		t.Error("missing final CDF point")
	}
}
