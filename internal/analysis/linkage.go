package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/parallel"
)

// Continuous publication opens an attack surface that a single release
// does not have: the motivating attacks of Sec. 1 (Zang & Bolot's top
// locations, de Montjoye et al.'s spatiotemporal points) get stronger
// when the adversary can correlate a target across repeated releases.
// Even if every release is k-anonymous on its own, a subscriber whose
// partial trajectory pins a unique group in release t AND in release
// t+1 is re-linked across the two — the adversary now owns a longer
// joint trajectory than either release exposed. CrossWindowLinkage
// quantifies that residual risk.

// LinkagePair is the linkage measurement between one pair of
// consecutive releases.
type LinkagePair struct {
	// Window labels the earlier release of the pair. CrossWindowLinkage
	// fills it with the release's position in the probed sequence;
	// callers whose windows carry absolute indices (which may jump over
	// empty windows) should relabel it so the pair can be correlated
	// with their window numbering.
	Window int `json:"window"`
	// Shared is the number of subscribers active in both windows of the
	// original feed.
	Shared int `json:"shared"`
	// Probed is how many of the shared subscribers were attacked.
	Probed int `json:"probed"`
	// Linked counts probed subscribers whose known samples matched
	// exactly one group in both releases.
	Linked int `json:"linked"`
}

// LinkageResult aggregates cross-window linkage over a release
// sequence.
type LinkageResult struct {
	// KnownSamples is the adversary knowledge per window (h samples of
	// the target's original trajectory in each window).
	KnownSamples int `json:"known_samples"`
	// Pairs holds one measurement per consecutive release pair.
	Pairs []LinkagePair `json:"pairs"`
	// Probed and Linked sum over all pairs; LinkedFraction is their
	// ratio — the fraction of attacked subscribers re-linked across at
	// least one consecutive release boundary.
	Probed         int     `json:"probed"`
	Linked         int     `json:"linked"`
	LinkedFraction float64 `json:"linked_fraction"`
}

func (r LinkageResult) String() string {
	return fmt.Sprintf("h=%d: %d/%d probed subscribers re-linked across consecutive releases (%.1f%%)",
		r.KnownSamples, r.Linked, r.Probed, 100*r.LinkedFraction)
}

// CrossWindowLinkage probes a windowed release sequence with a
// partial-knowledge adversary. originals[i] is the fingerprint dataset
// of window i before anonymization (one fingerprint per subscriber,
// IDs carrying the subscriber pseudo-identifier); releases[i] is the
// published dataset of the same window. For each consecutive pair of
// windows, up to probes subscribers present in both are drawn, `known`
// original samples of each window are given to the adversary, and the
// subscriber counts as re-linked when the samples pin a unique match
// (crowd 1) in both releases. rng drives probe selection for
// reproducibility; workers bounds parallelism.
func CrossWindowLinkage(originals, releases []*core.Dataset, known, probes int, rng *rand.Rand, workers int) (LinkageResult, error) {
	if len(originals) != len(releases) {
		return LinkageResult{}, fmt.Errorf("analysis: %d original windows vs %d releases",
			len(originals), len(releases))
	}
	if len(releases) < 2 {
		return LinkageResult{}, fmt.Errorf("analysis: cross-window linkage needs >= 2 releases, got %d", len(releases))
	}
	if known < 1 {
		return LinkageResult{}, fmt.Errorf("analysis: known = %d", known)
	}
	if probes < 1 {
		return LinkageResult{}, fmt.Errorf("analysis: probes = %d", probes)
	}

	res := LinkageResult{KnownSamples: known}
	for w := 0; w+1 < len(releases); w++ {
		pair, err := linkPair(originals[w], originals[w+1], releases[w], releases[w+1], w, known, probes, rng, workers)
		if err != nil {
			return LinkageResult{}, err
		}
		res.Pairs = append(res.Pairs, pair)
		res.Probed += pair.Probed
		res.Linked += pair.Linked
	}
	if res.Probed > 0 {
		res.LinkedFraction = float64(res.Linked) / float64(res.Probed)
	}
	return res, nil
}

// linkPair measures one consecutive release pair.
func linkPair(origA, origB, relA, relB *core.Dataset, w, known, probes int, rng *rand.Rand, workers int) (LinkagePair, error) {
	byID := make(map[string]*core.Fingerprint, origB.Len())
	for _, f := range origB.Fingerprints {
		byID[f.ID] = f
	}
	type target struct{ a, b *core.Fingerprint }
	var shared []target
	for _, f := range origA.Fingerprints {
		if g, ok := byID[f.ID]; ok {
			shared = append(shared, target{f, g})
		}
	}
	// origA fingerprint order follows dataset construction; sort by ID so
	// probe selection depends only on the rng, not on upstream ordering.
	sort.Slice(shared, func(i, j int) bool { return shared[i].a.ID < shared[j].a.ID })

	pair := LinkagePair{Window: w, Shared: len(shared)}
	if len(shared) == 0 {
		return pair, nil
	}
	n := probes
	if n > len(shared) {
		n = len(shared)
	}
	// Pre-draw targets and sample choices serially so the result is
	// independent of worker interleaving (same discipline as
	// PartialKnowledgeUniqueness).
	type probe struct{ sa, sb []core.Sample }
	ps := make([]probe, n)
	for i, ti := range rng.Perm(len(shared))[:n] {
		tg := shared[ti]
		ps[i] = probe{
			sa: drawSamples(tg.a, known, rng),
			sb: drawSamples(tg.b, known, rng),
		}
	}
	linked := parallel.Map(n, workers, func(i int) int {
		if core.MinMatchCrowd(relA, ps[i].sa) == 1 && core.MinMatchCrowd(relB, ps[i].sb) == 1 {
			return 1
		}
		return 0
	})
	pair.Probed = n
	for _, l := range linked {
		pair.Linked += l
	}
	return pair, nil
}

// drawSamples picks up to h random samples of the fingerprint.
func drawSamples(f *core.Fingerprint, h int, rng *rand.Rand) []core.Sample {
	if h > f.Len() {
		h = f.Len()
	}
	out := make([]core.Sample, h)
	for j, s := range rng.Perm(f.Len())[:h] {
		out[j] = f.Samples[s]
	}
	return out
}
