package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// linkFP builds a single-subscriber fingerprint with `n` distinct point
// samples offset by `base`, so different subscribers never overlap.
func linkFP(id string, base float64, n int) *core.Fingerprint {
	samples := make([]core.Sample, n)
	for i := range samples {
		samples[i] = core.Sample{
			X: base + float64(i)*1000, DX: 100,
			Y: base, DY: 100,
			T: float64(i) * 10, DT: 1,
			Weight: 1,
		}
	}
	return core.NewFingerprint(id, samples)
}

// groupOf merges member fingerprints into one published group carrying
// the union of their samples (every member's sample is covered).
func groupOf(id string, members ...*core.Fingerprint) *core.Fingerprint {
	var samples []core.Sample
	var ids []string
	for _, m := range members {
		samples = append(samples, m.Samples...)
		ids = append(ids, m.Members...)
	}
	g := core.NewFingerprint(id, samples)
	g.Count = len(members)
	g.Members = ids
	return g
}

func TestCrossWindowLinkage(t *testing.T) {
	u1a, u2a, u3a := linkFP("u1", 0, 4), linkFP("u2", 1e5, 4), linkFP("u3", 2e5, 4)
	u1b, u2b, u4b := linkFP("u1", 3e5, 4), linkFP("u2", 4e5, 4), linkFP("u4", 5e5, 4)
	origA := core.NewDataset([]*core.Fingerprint{u1a, u2a, u3a})
	origB := core.NewDataset([]*core.Fingerprint{u1b, u2b, u4b})

	// Publishing the raw windows re-links every shared subscriber: each
	// probe pins a unique count-1 record in both windows.
	res, err := CrossWindowLinkage(
		[]*core.Dataset{origA, origB},
		[]*core.Dataset{origA, origB},
		2, 10, rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].Shared != 2 {
		t.Fatalf("pairs = %+v, want one pair sharing u1 and u2", res.Pairs)
	}
	if res.Probed != 2 || res.LinkedFraction != 1 {
		t.Errorf("raw windows: linked %d/%d (%.2f), want 2/2",
			res.Linked, res.Probed, res.LinkedFraction)
	}

	// Anonymized windows hide every subscriber in a crowd of 3: no probe
	// pins a unique group, so nothing is re-linked.
	relA := core.NewDataset([]*core.Fingerprint{groupOf("gA", u1a, u2a, u3a)})
	relB := core.NewDataset([]*core.Fingerprint{groupOf("gB", u1b, u2b, u4b)})
	res, err = CrossWindowLinkage(
		[]*core.Dataset{origA, origB},
		[]*core.Dataset{relA, relB},
		2, 10, rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linked != 0 || res.LinkedFraction != 0 {
		t.Errorf("anonymized windows: linked %d/%d, want 0", res.Linked, res.Probed)
	}

	// Mixed case: u1 is published alone (count 1) in both windows while
	// u2 hides in a crowd — exactly half the probes re-link.
	relA = core.NewDataset([]*core.Fingerprint{u1a, groupOf("gA", u2a, u3a)})
	relB = core.NewDataset([]*core.Fingerprint{u1b, groupOf("gB", u2b, u4b)})
	res, err = CrossWindowLinkage(
		[]*core.Dataset{origA, origB},
		[]*core.Dataset{relA, relB},
		2, 10, rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Linked != 1 || res.LinkedFraction != 0.5 {
		t.Errorf("mixed windows: linked %d/%d (%.2f), want 1/2",
			res.Linked, res.Probed, res.LinkedFraction)
	}
}

func TestCrossWindowLinkageNoSharedSubscribers(t *testing.T) {
	origA := core.NewDataset([]*core.Fingerprint{linkFP("u1", 0, 3)})
	origB := core.NewDataset([]*core.Fingerprint{linkFP("u2", 1e5, 3)})
	res, err := CrossWindowLinkage(
		[]*core.Dataset{origA, origB},
		[]*core.Dataset{origA, origB},
		2, 5, rand.New(rand.NewSource(2)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 0 || res.LinkedFraction != 0 {
		t.Errorf("disjoint windows probed %d, linked fraction %g", res.Probed, res.LinkedFraction)
	}
}

func TestCrossWindowLinkageArgs(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{linkFP("u1", 0, 3)})
	one := []*core.Dataset{d}
	two := []*core.Dataset{d, d}
	rng := rand.New(rand.NewSource(3))
	if _, err := CrossWindowLinkage(one, two, 2, 5, rng, 0); err == nil {
		t.Error("mismatched window counts accepted")
	}
	if _, err := CrossWindowLinkage(one, one, 2, 5, rng, 0); err == nil {
		t.Error("single release accepted")
	}
	if _, err := CrossWindowLinkage(two, two, 0, 5, rng, 0); err == nil {
		t.Error("known = 0 accepted")
	}
	if _, err := CrossWindowLinkage(two, two, 2, 0, rng, 0); err == nil {
		t.Error("probes = 0 accepted")
	}
}
