package analysis

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/parallel"
)

// UniquenessResult quantifies how identifiable subscribers are under an
// adversary who knows only part of a target's trajectory — the
// experiments of the paper's motivation (Sec. 1): Zang & Bolot's top
// locations [5] and de Montjoye et al.'s random spatiotemporal points
// [6]. The paper's own model is the h = full-trajectory limit.
type UniquenessResult struct {
	KnownSamples int
	// UniqueFraction is the fraction of probed subscribers whose known
	// samples match exactly one record of the published dataset.
	UniqueFraction float64
	// MeanCrowd is the mean number of subscribers hidden across matching
	// records (1 = unique).
	MeanCrowd float64
	Probed    int
}

func (r UniquenessResult) String() string {
	return fmt.Sprintf("h=%d: unique %.1f%% of %d probed, mean crowd %.2f",
		r.KnownSamples, 100*r.UniqueFraction, r.Probed, r.MeanCrowd)
}

// PartialKnowledgeUniqueness probes the published dataset with partial
// adversary knowledge: for each of `probes` randomly chosen subscribers
// of the original dataset, `known` samples of their original fingerprint
// are drawn at random, and the matching records of the published dataset
// are counted. Published may equal original (raw-data uniqueness, as in
// [6]) or be an anonymized version (residual linkability).
//
// The probe selection is driven by rng for reproducibility; workers
// bounds parallelism.
func PartialKnowledgeUniqueness(original, published *core.Dataset, known, probes int, rng *rand.Rand, workers int) (UniquenessResult, error) {
	if known < 1 {
		return UniquenessResult{}, fmt.Errorf("analysis: known = %d", known)
	}
	if probes < 1 {
		return UniquenessResult{}, fmt.Errorf("analysis: probes = %d", probes)
	}
	if original.Len() == 0 {
		return UniquenessResult{}, fmt.Errorf("analysis: empty dataset")
	}

	// Pre-draw all probe targets and sample choices serially so the
	// result is independent of worker interleaving.
	type probe struct {
		samples []core.Sample
	}
	ps := make([]probe, probes)
	for i := range ps {
		f := original.Fingerprints[rng.Intn(original.Len())]
		ps[i].samples = drawSamples(f, known, rng)
	}

	crowds := parallel.Map(probes, workers, func(i int) int {
		return core.MinMatchCrowd(published, ps[i].samples)
	})

	res := UniquenessResult{KnownSamples: known, Probed: probes}
	var unique int
	var crowdSum float64
	for _, c := range crowds {
		if c == 1 {
			unique++
		}
		if c > 0 {
			crowdSum += float64(c)
		}
	}
	res.UniqueFraction = float64(unique) / float64(probes)
	res.MeanCrowd = crowdSum / float64(probes)
	return res, nil
}

// Sparsity evaluates the (ε, δ)-sparsity of a dataset under the k-gap
// dissimilarity (Sec. 5's pointer to Narayanan & Shmatikov): a dataset
// is (ε, δ)-sparse when at most a δ fraction of records have another
// record within dissimilarity ε. Given the 2-gap results (each record's
// distance to its nearest neighbour), it returns δ for the given ε.
func Sparsity(rs []core.KGapResult, eps float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	var within int
	for _, r := range rs {
		// For k = 2 the k-gap is exactly the nearest-neighbour effort;
		// for larger k it upper-bounds it, so use the first effort when
		// available.
		nn := r.KGap
		if len(r.Efforts) > 0 {
			nn = r.Efforts[0]
		}
		if nn <= eps {
			within++
		}
	}
	return float64(within) / float64(len(rs))
}
