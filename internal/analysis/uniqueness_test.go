package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestPartialKnowledgeUniquenessRawData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 40, 12)
	// The de Montjoye et al. experiment: a handful of random points
	// identifies most users uniquely in raw micro-data.
	res, err := PartialKnowledgeUniqueness(d, d, 4, 60, rand.New(rand.NewSource(2)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueFraction < 0.8 {
		t.Errorf("only %.0f%% unique with 4 random points on raw data", 100*res.UniqueFraction)
	}
	if res.Probed != 60 || res.KnownSamples != 4 {
		t.Errorf("result metadata %+v", res)
	}
	if res.MeanCrowd < 1 {
		t.Errorf("mean crowd %.2f < 1", res.MeanCrowd)
	}
	if !strings.Contains(res.String(), "h=4") {
		t.Error("String() missing h")
	}
}

func TestPartialKnowledgeUniquenessMonotoneInH(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDataset(rng, 30, 10)
	prev := -1.0
	for _, h := range []int{1, 3, 8} {
		res, err := PartialKnowledgeUniqueness(d, d, h, 80, rand.New(rand.NewSource(4)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.UniqueFraction+0.15 < prev {
			t.Errorf("uniqueness dropped markedly from h-1 to h=%d: %.2f -> %.2f", h, prev, res.UniqueFraction)
		}
		prev = res.UniqueFraction
	}
}

func TestPartialKnowledgeUniquenessDefeatedByGlove(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 30, 10)
	published, _, err := core.Glove(d, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := PartialKnowledgeUniqueness(d, published, 5, 60, rand.New(rand.NewSource(6)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UniqueFraction != 0 {
		t.Errorf("%.0f%% of probes unique against 2-anonymized data, want 0", 100*res.UniqueFraction)
	}
	if res.MeanCrowd < 2 {
		t.Errorf("mean crowd %.2f < k = 2", res.MeanCrowd)
	}
}

func TestPartialKnowledgeUniquenessDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 20, 8)
	a, err := PartialKnowledgeUniqueness(d, d, 3, 40, rand.New(rand.NewSource(8)), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartialKnowledgeUniqueness(d, d, 3, 40, rand.New(rand.NewSource(8)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("results differ across worker counts: %+v vs %+v", a, b)
	}
}

func TestPartialKnowledgeUniquenessArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randDataset(rng, 5, 4)
	r := rand.New(rand.NewSource(10))
	if _, err := PartialKnowledgeUniqueness(d, d, 0, 10, r, 0); err == nil {
		t.Error("known=0 accepted")
	}
	if _, err := PartialKnowledgeUniqueness(d, d, 3, 0, r, 0); err == nil {
		t.Error("probes=0 accepted")
	}
	empty := core.NewDataset(nil)
	if _, err := PartialKnowledgeUniqueness(empty, empty, 3, 10, r, 0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSparsity(t *testing.T) {
	rs := []core.KGapResult{
		{KGap: 0.05, Efforts: []float64{0.05}},
		{KGap: 0.20, Efforts: []float64{0.20}},
		{KGap: 0.50, Efforts: []float64{0.50}},
	}
	if got := Sparsity(rs, 0.1); got != 1.0/3 {
		t.Errorf("Sparsity(0.1) = %g, want 1/3", got)
	}
	if got := Sparsity(rs, 1); got != 1 {
		t.Errorf("Sparsity(1) = %g, want 1", got)
	}
	if got := Sparsity(rs, 0); got != 0 {
		t.Errorf("Sparsity(0) = %g, want 0", got)
	}
	if Sparsity(nil, 0.5) != 0 {
		t.Error("empty sparsity != 0")
	}
	// Falls back to KGap when efforts are absent.
	noEff := []core.KGapResult{{KGap: 0.05}}
	if got := Sparsity(noEff, 0.1); got != 1 {
		t.Errorf("fallback sparsity = %g", got)
	}
}
