// Package api is the versioned wire contract of the gloved service:
// every request/response DTO, the structured error envelope, the job
// event stream payloads, and the cursor page-token format live here and
// nowhere else. The HTTP server (internal/service) and the Go client
// SDK (pkg/client) both build on this package verbatim, so the two
// sides of the wire can never drift.
//
// Contract invariants (DESIGN.md Sec. 9):
//
//   - Error codes are append-only: a code, once shipped, never changes
//     meaning and is never removed.
//   - DTOs are defined only in this package; internal/service aliases
//     them and pkg/client re-exposes them.
//   - Every non-2xx response body is the Error envelope.
package api

import (
	"fmt"
	"net/http"
)

// Code is a stable, machine-readable error code carried by the error
// envelope. Codes are part of the wire contract: clients branch on
// them, so the set is append-only and a code's meaning never changes.
type Code string

const (
	// CodeInvalidArgument rejects a malformed query parameter, path
	// element, or request body outside the job-spec path.
	CodeInvalidArgument Code = "invalid_argument"
	// CodeInvalidSpec rejects a job spec that fails validation.
	CodeInvalidSpec Code = "invalid_spec"
	// CodeInvalidPageToken rejects a page_token that is malformed, was
	// issued for a different collection, or names an item that no
	// longer exists (stale cursor).
	CodeInvalidPageToken Code = "invalid_page_token"
	// CodeDatasetNotFound / CodeJobNotFound / CodeWindowNotFound name a
	// resource the service does not have.
	CodeDatasetNotFound Code = "dataset_not_found"
	CodeJobNotFound     Code = "job_not_found"
	CodeWindowNotFound  Code = "window_not_found"
	// CodeNotFound is the route-level fallthrough for paths outside the
	// API surface.
	CodeNotFound Code = "not_found"
	// CodeMethodNotAllowed rejects a known path with an unsupported
	// method; the response carries an Allow header.
	CodeMethodNotAllowed Code = "method_not_allowed"
	// CodeBodyTooLarge rejects an ingestion body over the daemon's
	// byte cap.
	CodeBodyTooLarge Code = "body_too_large"
	// CodeQueueFull rejects a submission while the job queue is at
	// capacity — transient; retry after the Retry-After delay.
	CodeQueueFull Code = "queue_full"
	// CodeShuttingDown rejects requests while the daemon drains.
	CodeShuttingDown Code = "shutting_down"
	// CodeJobNotTerminal rejects purging a job that is still queued or
	// running (cancel it first).
	CodeJobNotTerminal Code = "job_not_terminal"
	// CodeJobTerminal rejects cancelling a job that already finished.
	CodeJobTerminal Code = "job_terminal"
	// CodeResultNotReady means the job exists but has not produced its
	// result yet (or failed / was cancelled) — retry when done.
	CodeResultNotReady Code = "result_not_ready"
	// CodeResultWindowed means the job published multiple per-window
	// releases; download them via /windows/{w}/result.
	CodeResultWindowed Code = "result_windowed"
	// CodeWindowNotReady means the window exists but has not committed
	// its release yet — retry when that window is done.
	CodeWindowNotReady Code = "window_not_ready"
	// CodeTraceNotFound means the job exists but has recorded no trace
	// (it has not started executing, or the server predates tracing).
	CodeTraceNotFound Code = "trace_not_found"
	// CodeTimeout means the route's processing budget elapsed.
	CodeTimeout Code = "timeout"
	// CodeInternal is the recovery middleware's catch-all.
	CodeInternal Code = "internal"
)

// HTTPStatus maps a code to its canonical HTTP status. Unknown codes
// (from a newer server) map to 500 so clients still surface them.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeInvalidArgument, CodeInvalidSpec, CodeInvalidPageToken:
		return http.StatusBadRequest
	case CodeDatasetNotFound, CodeJobNotFound, CodeWindowNotFound,
		CodeTraceNotFound, CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodeBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeQueueFull, CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeJobNotTerminal, CodeJobTerminal, CodeResultNotReady,
		CodeResultWindowed, CodeWindowNotReady:
		return http.StatusConflict
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeInternal:
		return http.StatusInternalServerError
	}
	return http.StatusInternalServerError
}

// Retryable reports whether the condition the code names is transient,
// so a client may retry the identical request and expect it to succeed
// eventually.
func (c Code) Retryable() bool {
	switch c {
	case CodeQueueFull, CodeShuttingDown, CodeTimeout:
		return true
	}
	return false
}

// Codes lists every registered code; tests pin that servers never emit
// an unregistered one.
func Codes() []Code {
	return []Code{
		CodeInvalidArgument, CodeInvalidSpec, CodeInvalidPageToken,
		CodeDatasetNotFound, CodeJobNotFound, CodeWindowNotFound,
		CodeNotFound, CodeMethodNotAllowed, CodeBodyTooLarge,
		CodeQueueFull, CodeShuttingDown, CodeJobNotTerminal,
		CodeJobTerminal, CodeResultNotReady, CodeResultWindowed,
		CodeWindowNotReady, CodeTraceNotFound, CodeTimeout, CodeInternal,
	}
}

// Error is the structured error envelope: the JSON body of every
// non-2xx response. It implements the error interface so the server
// can return it through ordinary error paths and the client can
// surface it via errors.As.
type Error struct {
	// Code is the stable machine-readable condition.
	Code Code `json:"code"`
	// Message is a human-readable description; clients must branch on
	// Code, never on Message.
	Message string `json:"message"`
	// Details carries optional structured context (e.g. the offending
	// dataset id, the request id, a retry hint).
	Details map[string]any `json:"details,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// Errorf builds an envelope with a formatted message.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// With returns e with one detail added (initializing Details as
// needed). It mutates and returns the receiver for chaining.
func (e *Error) With(key string, value any) *Error {
	if e.Details == nil {
		e.Details = make(map[string]any)
	}
	e.Details[key] = value
	return e
}
