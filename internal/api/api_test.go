package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"
)

// Every registered code maps to a sensible HTTP status and the mapping
// is total (no code falls through to the 500 default accidentally).
func TestCodeHTTPStatus(t *testing.T) {
	for _, c := range Codes() {
		st := c.HTTPStatus()
		if st < 400 || st > 599 {
			t.Errorf("code %s maps to non-error status %d", c, st)
		}
	}
	if got := Code("from_the_future").HTTPStatus(); got != 500 {
		t.Errorf("unknown code status = %d, want 500", got)
	}
	if !CodeQueueFull.Retryable() || CodeInvalidSpec.Retryable() {
		t.Error("Retryable classification wrong")
	}
}

// The envelope round-trips through JSON with the exact field names the
// contract documents, and behaves as an error value.
func TestErrorEnvelope(t *testing.T) {
	e := Errorf(CodeDatasetNotFound, "unknown dataset %q", "ds-1").With("dataset_id", "ds-1")
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["code"] != "dataset_not_found" || m["message"] != `unknown dataset "ds-1"` {
		t.Errorf("envelope = %v", m)
	}
	if det, ok := m["details"].(map[string]any); !ok || det["dataset_id"] != "ds-1" {
		t.Errorf("details = %v", m["details"])
	}

	var wrapped error = fmt.Errorf("submit: %w", e)
	var ae *Error
	if !errors.As(wrapped, &ae) || ae.Code != CodeDatasetNotFound {
		t.Errorf("errors.As through wrapping failed: %v", wrapped)
	}
}

func TestPageTokenRoundTrip(t *testing.T) {
	tok := EncodePageToken("jobs", "job-000042")
	id, err := DecodePageToken("jobs", tok)
	if err != nil || id != "job-000042" {
		t.Fatalf("round trip = %q, %v", id, err)
	}
	// Wrong collection, garbage, and empty ids are all invalid_page_token.
	for _, bad := range []func() (string, error){
		func() (string, error) { return DecodePageToken("datasets", tok) },
		func() (string, error) { return DecodePageToken("jobs", "!!!not-base64!!!") },
		func() (string, error) { return DecodePageToken("jobs", EncodePageToken("jobs", "")) },
	} {
		if _, err := bad(); err == nil {
			t.Error("bad token accepted")
		} else {
			var ae *Error
			if !errors.As(err, &ae) || ae.Code != CodeInvalidPageToken {
				t.Errorf("bad token error = %v, want invalid_page_token", err)
			}
		}
	}
}

func TestPaginate(t *testing.T) {
	ids := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("it-%03d", i)
		}
		return out
	}
	self := func(s string) string { return s }

	items := ids(5)
	// Page through with limit 2: 2 + 2 + 1, then exhausted.
	var got []string
	token := ""
	pages := 0
	for {
		page, next, err := Paginate(items, self, "things", 2, token)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
		pages++
		if next == "" {
			break
		}
		token = next
	}
	if pages != 3 || len(got) != 5 {
		t.Fatalf("pages = %d, items = %d", pages, len(got))
	}
	for i, id := range got {
		if id != items[i] {
			t.Fatalf("page order wrong at %d: %s", i, id)
		}
	}

	// Exact-limit page: limit == len leaves no next token.
	page, next, err := Paginate(items, self, "things", 5, "")
	if err != nil || len(page) != 5 || next != "" {
		t.Errorf("exact-limit page = %d items, next %q, err %v", len(page), next, err)
	}

	// Empty listing yields an empty page with no token.
	page, next, err = Paginate(nil, self, "things", 2, "")
	if err != nil || len(page) != 0 || next != "" {
		t.Errorf("empty listing page = %d items, next %q, err %v", len(page), next, err)
	}

	// A stale cursor (item removed) is invalid_page_token.
	_, staleNext, err := Paginate(items, self, "things", 2, "")
	if err != nil {
		t.Fatal(err)
	}
	shrunk := append(append([]string(nil), items[:1]...), items[2:]...) // drop it-001, the cursor
	if _, _, err := Paginate(shrunk, self, "things", 2, staleNext); err == nil {
		t.Error("stale cursor accepted")
	} else {
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeInvalidPageToken {
			t.Errorf("stale cursor error = %v", err)
		}
	}

	// Oversized limits clamp rather than error.
	if _, _, err := Paginate(items, self, "things", MaxPageLimit+1, ""); err != nil {
		t.Errorf("clamped limit rejected: %v", err)
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{DatasetID: "ds-1", K: 2, WindowHours: 12.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	if got := good.WindowDuration(); got != 12*time.Hour+30*time.Minute {
		t.Errorf("WindowDuration = %v", got)
	}
	bad := []JobSpec{
		{K: 2},                 // no dataset
		{DatasetID: "d", K: 1}, // k too small
		{DatasetID: "d", K: 2, SuppressKm: -1},
		{DatasetID: "d", K: 2, Strategy: "warp"},
		{DatasetID: "d", K: 2, Index: "quadtree"},
		{DatasetID: "d", K: 2, ChunkSize: -4},
		{DatasetID: "d", K: 3, ChunkSize: 4},
		{DatasetID: "d", K: 2, ChunkSize: 8, Strategy: "single"},
		{DatasetID: "d", K: 2, WindowHours: -1},
	}
	for i, spec := range bad {
		err := spec.Validate()
		if err == nil {
			t.Errorf("bad spec %d accepted", i)
			continue
		}
		var ae *Error
		if !errors.As(err, &ae) || ae.Code != CodeInvalidSpec {
			t.Errorf("bad spec %d: error %v, want invalid_spec", i, err)
		}
	}
}

func TestJobEventTerminal(t *testing.T) {
	if (JobEvent{Type: EventProgress, Progress: 0.5}).Terminal() {
		t.Error("progress event terminal")
	}
	if (JobEvent{Type: EventState, State: JobRunning}).Terminal() {
		t.Error("running state terminal")
	}
	for _, s := range []JobState{JobDone, JobFailed, JobCancelled} {
		if !(JobEvent{Type: EventState, State: s}).Terminal() {
			t.Errorf("state %s not terminal", s)
		}
	}
}
