package api

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// DatasetInfo is the public metadata of a registered dataset.
type DatasetInfo struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Records  int    `json:"records"`
	Users    int    `json:"users"`
	SpanDays int    `json:"span_days"`
	// Version is a monotone counter starting at 1, incremented by every
	// record append. Jobs snapshot the dataset at submission of the run,
	// so a job's reported dataset_version names exactly the feed state it
	// anonymized.
	Version   int        `json:"version"`
	Center    geo.LatLon `json:"center"`
	CreatedAt time.Time  `json:"created_at"`
	UpdatedAt time.Time  `json:"updated_at"`
}

// DatasetPage is one page of GET /v1/datasets.
type DatasetPage struct {
	Datasets []DatasetInfo `json:"datasets"`
	// NextPageToken resumes the listing after the last dataset of this
	// page; empty when the listing is exhausted.
	NextPageToken string `json:"next_page_token,omitempty"`
}

// JobPage is one page of GET /v1/jobs.
type JobPage struct {
	Jobs          []JobStatus `json:"jobs"`
	NextPageToken string      `json:"next_page_token,omitempty"`
}

// Health is the payload of GET /healthz.
type Health struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// JobState is the lifecycle state of an anonymization job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// JobSpec is the client-supplied description of an anonymization job.
type JobSpec struct {
	// DatasetID names a dataset previously registered via ingestion.
	DatasetID string `json:"dataset_id"`
	// K is the anonymity level (>= 2).
	K int `json:"k"`
	// SuppressKm / SuppressMin optionally discard over-generalized
	// samples (Sec. 7.1); 0 disables that dimension.
	SuppressKm  float64 `json:"suppress_km,omitempty"`
	SuppressMin float64 `json:"suppress_min,omitempty"`
	// Shards is the requested number of dataset shards anonymized
	// independently; <= 0 lets the scheduler pick one per worker. The
	// effective count is clamped so every shard can k-anonymize on its
	// own.
	Shards int `json:"shards,omitempty"`
	// Workers bounds the job's CPU parallelism; <= 0 uses all CPUs.
	Workers int `json:"workers,omitempty"`

	// Strategy selects single-run vs chunked execution inside each
	// shard: "auto" (or empty), "single" or "chunked". Auto picks by
	// shard size (core.SingleRunMaxN).
	Strategy string `json:"strategy,omitempty"`
	// ChunkSize is the target fingerprints per chunked block; 0 uses
	// core.DefaultChunkSize. Must be >= 2k when set, and requires a
	// strategy other than "single".
	ChunkSize int `json:"chunk_size,omitempty"`
	// Index selects the pair-selection index: "auto" (or empty),
	// "dense" or "sparse". Auto picks dense up to core.DenseIndexMaxN
	// fingerprints per run and sparse (O(n·m) memory) above.
	Index string `json:"index,omitempty"`

	// WindowHours, when > 0, turns the job into a continuous-release
	// run: the dataset snapshot is partitioned into time windows of this
	// many hours (aligned at multiples from the dataset epoch) and each
	// window is anonymized independently into its own release, published
	// as it completes. 0 anonymizes the whole snapshot in one release
	// (or inherits the daemon-wide default); a negative value submitted
	// to the manager explicitly forces a batch run even when the daemon
	// defaults to windowed.
	WindowHours float64 `json:"window_hours,omitempty"`

	// Follow, when true, turns a windowed job into a streaming run: the
	// job subscribes to the dataset's appends and commits each window the
	// moment the feed moves past it (a record in a later window proves
	// the earlier one closed), instead of splitting one frozen snapshot.
	// Windows the feed skipped entirely are reported as explicit empty
	// windows. Requires window_hours > 0. The job runs until cancelled
	// unless follow_windows bounds it.
	Follow bool `json:"follow,omitempty"`
	// FollowWindows bounds how many non-empty windows a follow job
	// commits before finishing on its own; 0 follows until cancelled (or
	// until the daemon-wide cap, when one is configured). Empty windows
	// do not count toward the bound.
	FollowWindows int `json:"follow_windows,omitempty"`
}

// Validate checks the statically checkable parts of the spec. A
// violation is reported as an *Error with CodeInvalidSpec.
func (s JobSpec) Validate() error {
	if s.DatasetID == "" {
		return Errorf(CodeInvalidSpec, "job without dataset_id")
	}
	if s.K < 2 {
		return Errorf(CodeInvalidSpec, "job k = %d, need k >= 2", s.K)
	}
	if s.SuppressKm < 0 || s.SuppressMin < 0 {
		return Errorf(CodeInvalidSpec, "negative suppression thresholds")
	}
	strategy, err := core.ParseStrategy(s.Strategy)
	if err != nil {
		return Errorf(CodeInvalidSpec, "%v", err)
	}
	if _, err := core.ParseIndexKind(s.Index); err != nil {
		return Errorf(CodeInvalidSpec, "%v", err)
	}
	switch {
	case s.ChunkSize < 0:
		return Errorf(CodeInvalidSpec, "negative chunk_size %d", s.ChunkSize)
	case s.ChunkSize > 0 && s.ChunkSize < 2*s.K:
		return Errorf(CodeInvalidSpec, "chunk_size %d < 2k = %d", s.ChunkSize, 2*s.K)
	case s.ChunkSize > 0 && strategy == core.StrategySingle:
		return Errorf(CodeInvalidSpec, "chunk_size %d set but strategy is single", s.ChunkSize)
	}
	if s.WindowHours < 0 {
		return Errorf(CodeInvalidSpec, "negative window_hours %g", s.WindowHours)
	}
	if s.Follow && s.WindowHours == 0 {
		return Errorf(CodeInvalidSpec, "follow requires window_hours > 0")
	}
	if s.FollowWindows < 0 {
		return Errorf(CodeInvalidSpec, "negative follow_windows %d", s.FollowWindows)
	}
	if s.FollowWindows > 0 && !s.Follow {
		return Errorf(CodeInvalidSpec, "follow_windows %d set without follow", s.FollowWindows)
	}
	return nil
}

// WindowDuration converts the spec's window length for the partitioner.
func (s JobSpec) WindowDuration() time.Duration {
	return time.Duration(s.WindowHours * float64(time.Hour))
}

// WindowState is the lifecycle of one window of a windowed job. A
// window becomes downloadable the moment it is done — releases stream
// out while later windows are still running.
type WindowState string

const (
	WindowPending WindowState = "pending"
	WindowRunning WindowState = "running"
	WindowDone    WindowState = "done"
	// WindowAborted marks windows that never completed because the job
	// failed or was cancelled; they published nothing.
	WindowAborted WindowState = "aborted"
	// WindowEmpty marks a window of a follow job the feed skipped
	// entirely: the gap is reported explicitly (with its own window
	// event) so downstream consumers can distinguish "no data in this
	// interval" from "release still pending". Empty windows publish
	// nothing and have no downloadable result.
	WindowEmpty WindowState = "empty"
)

// WindowStatus is the per-window progress and accounting of a windowed
// job, one entry per non-empty time window of the snapshot.
type WindowStatus struct {
	// Index is the window's position on the absolute time axis (window i
	// covers minutes [i*w, (i+1)*w) of the dataset epoch).
	Index int `json:"index"`
	// StartMinute / EndMinute delimit the half-open window interval.
	StartMinute float64 `json:"start_minute"`
	EndMinute   float64 `json:"end_minute"`
	// Records and Users describe the window's slice of the snapshot.
	Records int `json:"records"`
	Users   int `json:"users"`

	State WindowState `json:"state"`
	// Progress advances from 0 to 1 over the window's anonymization.
	Progress float64 `json:"progress"`
	// Groups and Stats are populated once the window is done; the
	// window's release is then downloadable at
	// /v1/jobs/{id}/windows/{index}/result.
	Groups int              `json:"groups,omitempty"`
	Stats  *core.GloveStats `json:"stats,omitempty"`
}

// JobStatus is a point-in-time snapshot of a job, the payload of
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Progress advances from 0 to 1 over the job's lifetime; while
	// running it is the mean completion fraction across shards.
	Progress float64 `json:"progress"`
	// Shards is the effective shard count chosen by the scheduler (0
	// until the job starts).
	Shards int    `json:"shards"`
	Error  string `json:"error,omitempty"`

	// Plan is the execution plan the core planner resolved for the
	// job's largest shard (strategy, chunk size, index); nil until the
	// job starts.
	Plan *core.Plan `json:"plan,omitempty"`

	// DatasetVersion is the registry version of the dataset snapshot the
	// job anonymizes; 0 until the run snapshots its input. Appends
	// racing the job bump the dataset's version but never this one.
	DatasetVersion int `json:"dataset_version,omitempty"`
	// Windows holds the per-window progress of a windowed job
	// (window_hours > 0), in time order; empty for batch jobs.
	Windows []WindowStatus `json:"windows,omitempty"`
	// Linkage is the cross-window linkage measurement over consecutive
	// releases of a finished windowed job (nil for batch jobs,
	// single-window runs, or when the analysis was skipped).
	Linkage *analysis.LinkageResult `json:"linkage,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Stats and Accuracy are populated once the job is done.
	Stats    *core.GloveStats `json:"stats,omitempty"`
	Accuracy *metrics.Summary `json:"accuracy,omitempty"`
	// AnonymousFraction is the fraction of input fingerprints that were
	// already k-anonymous (Sec. 5 k-gap analysis); nil when the input
	// was too large for the quadratic analysis pass.
	AnonymousFraction *float64 `json:"anonymous_fraction,omitempty"`
}

// MetricsReport aggregates what the service has published so far, the
// payload of GET /v1/metrics.
type MetricsReport struct {
	Datasets    int              `json:"datasets"`
	Jobs        int              `json:"jobs"`
	JobsByState map[JobState]int `json:"jobs_by_state"`
	// JobsByStrategy / JobsByIndex count jobs by the execution plan the
	// core planner resolved (auto rules included), so operators can see
	// which path — single vs chunked, dense vs sparse — their traffic
	// actually takes. Jobs that never started (no plan yet) are absent.
	JobsByStrategy map[core.Strategy]int  `json:"jobs_by_strategy"`
	JobsByIndex    map[core.IndexKind]int `json:"jobs_by_index"`
	// WindowedJobs counts jobs submitted with window_hours > 0;
	// WindowReleases counts the committed per-window releases across
	// them (completed windows of running or cancelled jobs included).
	// Both are incremental lifetime totals: they survive terminal-job
	// eviction rather than being recomputed from retained jobs.
	WindowedJobs   int `json:"windowed_jobs"`
	WindowReleases int `json:"window_releases"`
	// MeanCrossWindowLinkage averages the linked fraction of the
	// cross-window linkage analysis over finished windowed jobs that
	// reported one — the service-wide residual re-identification risk of
	// continuous publication. Nil when no job measured it.
	MeanCrossWindowLinkage *float64 `json:"mean_cross_window_linkage,omitempty"`
	// EffortKernelCalls / EffortKernelPruned aggregate the pruned
	// effort-kernel accounting (DESIGN.md Sec. 8) over every finished
	// job since boot (incremental, eviction-proof), so operators can
	// watch how much Eq. 10 work the threshold pruning is eliding on
	// their real traffic.
	EffortKernelCalls  int `json:"effort_kernel_calls"`
	EffortKernelPruned int `json:"effort_kernel_pruned"`
	// CompletedTotal counts every job that reached the done state since
	// boot; Completed below is capped, so the two can differ.
	CompletedTotal int `json:"completed_total"`
	// Completed holds the per-job utility summaries (accuracy from
	// internal/metrics, anonymizability and cross-window linkage from
	// internal/analysis) of the most recently finished jobs, newest
	// first, capped so the report stays bounded under job churn.
	Completed []JobStatus `json:"completed"`
	// Runtime snapshots process health (goroutines, heap, GC, uptime,
	// boot id) so restarts and leaks are visible without a scraper.
	Runtime obs.RuntimeInfo `json:"runtime"`
	// Colstore snapshots the memory-bounded columnar storage tier;
	// omitted entirely on daemons running the in-memory table backend.
	Colstore *ColstoreInfo `json:"colstore,omitempty"`
	// Durability snapshots the write-ahead journal behind gloved
	// -data-dir; omitted entirely on daemons running without one.
	Durability *DurabilityInfo `json:"durability,omitempty"`
}

// ColstoreInfo snapshots the columnar storage tier of the dataset
// registry (gloved -columnar): the live resident/spilled footprint and
// the cumulative spill-path traffic since boot.
type ColstoreInfo struct {
	// Datasets counts the registered columnar-backed datasets.
	Datasets int `json:"datasets"`
	// ResidentBytes is the column bytes currently held in memory across
	// all columnar stores; bounded by the per-dataset byte budget.
	ResidentBytes int64 `json:"resident_bytes"`
	// ResidentChunks / SpilledChunks split the column chunks by where
	// they currently live.
	ResidentChunks int `json:"resident_chunks"`
	SpilledChunks  int `json:"spilled_chunks"`
	// ChunkFaults / ChunkSpills count chunk reads from and writes to the
	// spill file since boot (monotone, deletion-proof).
	ChunkFaults int64 `json:"chunk_faults"`
	ChunkSpills int64 `json:"chunk_spills"`
}

// DurabilityInfo snapshots the write-ahead journal of a durable daemon
// (gloved -data-dir): the live journal footprint, what the last boot
// recovered, and whether the previous shutdown was clean.
type DurabilityInfo struct {
	// JournalDir is the directory holding the journal segments.
	JournalDir string `json:"journal_dir"`
	// Fsync reports whether commits fsync (gloved -fsync).
	Fsync bool `json:"fsync"`
	// JournalSegments / JournalBytes are the live journal footprint.
	JournalSegments int   `json:"journal_segments"`
	JournalBytes    int64 `json:"journal_bytes"`
	// LastCompaction is when the journal was last compacted to a
	// snapshot (every boot compacts, so this is at least the boot time).
	LastCompaction *time.Time `json:"last_compaction,omitempty"`
	// LastShutdownClean reports whether the previous run ended with the
	// clean-shutdown marker (graceful drain) rather than a crash.
	LastShutdownClean bool `json:"last_shutdown_clean"`
	// TornTailRecovered reports that this boot truncated a partially
	// written frame off the journal tail — the signature of a crash
	// mid-append; everything before the tear was recovered.
	TornTailRecovered bool `json:"torn_tail_recovered,omitempty"`
	// RecoveredDatasets counts datasets rebuilt from the journal at
	// boot; RecoveredJobs counts rebuilt jobs by outcome (restored /
	// requeued / resumed).
	RecoveredDatasets int            `json:"recovered_datasets"`
	RecoveredJobs     map[string]int `json:"recovered_jobs,omitempty"`
}
