package api

// JobEventType discriminates the payload of a job event.
type JobEventType string

const (
	// EventState reports a job state transition. The stream ends after
	// the event whose State is terminal.
	EventState JobEventType = "state"
	// EventProgress reports overall job progress advancing (coalesced
	// to whole-percent steps, so a stream replays in bounded space).
	EventProgress JobEventType = "progress"
	// EventWindow reports a window of a windowed job changing state;
	// a "done" window's release is downloadable the moment the event
	// is observed.
	EventWindow JobEventType = "window"
	// EventSpan summarizes a completed trace span (plan, window,
	// validate); the full tree is at GET /v1/jobs/{id}/trace.
	EventSpan JobEventType = "span"
)

// JobEvent is one entry of a job's append-only event log, streamed by
// GET /v1/jobs/{id}/events as a Server-Sent Event: the SSE `id` field
// carries Seq, the `event` field carries Type, and the `data` field
// carries the JSON encoding of the whole struct. A client resumes a
// broken stream with ?after=<seq> (or the standard Last-Event-ID
// header) and never misses or repeats an event.
type JobEvent struct {
	// Seq numbers events from 1 per job, dense and strictly
	// increasing in emission order.
	Seq   int          `json:"seq"`
	Type  JobEventType `json:"type"`
	JobID string       `json:"job_id"`

	// State and Error accompany EventState.
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`

	// Progress accompanies EventProgress (overall fraction in (0, 1]).
	Progress float64 `json:"progress,omitempty"`

	// Window accompanies EventWindow.
	Window *WindowEvent `json:"window,omitempty"`

	// Span accompanies EventSpan.
	Span *SpanEvent `json:"span,omitempty"`
}

// WindowEvent describes one window transition of a windowed job.
type WindowEvent struct {
	// Index is the absolute window index (WindowStatus.Index), the
	// same index /v1/jobs/{id}/windows/{index}/result serves.
	Index int         `json:"index"`
	State WindowState `json:"state"`
	// Groups is the published group count of a done window.
	Groups int `json:"groups,omitempty"`
}

// SpanEvent summarizes one completed trace span in the event log. Only
// coarse per-job phases are summarized (plan, each window, validate) —
// per-shard spans stay in the trace tree so the event log stays small.
type SpanEvent struct {
	// Kind is the span vocabulary entry (obs.SpanKinds); append-only.
	Kind string `json:"kind"`
	// Name distinguishes repeated kinds, e.g. the window label.
	Name string `json:"name,omitempty"`
	// DurationMS is the span's wall-clock duration in milliseconds.
	DurationMS float64 `json:"duration_ms"`
}

// Terminal reports whether this event closes the stream.
func (e JobEvent) Terminal() bool {
	return e.Type == EventState && e.State.Terminal()
}
