package api

import (
	"encoding/base64"
	"fmt"
	"strings"
)

// Cursor pagination: list endpoints accept limit and page_token query
// parameters and return next_page_token while more items remain. The
// token is an opaque cursor naming the last item of the previous page;
// the next page starts strictly after it. Tokens are collection-scoped
// (a dataset token is rejected by the jobs listing) and become invalid
// when the item they name disappears — clients restart from the first
// page on CodeInvalidPageToken.

// DefaultPageLimit applies when a listing omits limit; MaxPageLimit
// clamps explicit limits.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

const pageTokenVersion = "v1"

// EncodePageToken builds the opaque cursor for a collection ("datasets"
// or "jobs") positioned after the item with the given id.
func EncodePageToken(collection, id string) string {
	raw := fmt.Sprintf("%s:%s:%s", pageTokenVersion, collection, id)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// DecodePageToken parses a cursor, returning the id the page resumes
// after. A malformed token or one issued for another collection is a
// CodeInvalidPageToken error.
func DecodePageToken(collection, token string) (id string, err error) {
	raw, derr := base64.RawURLEncoding.DecodeString(token)
	if derr != nil {
		return "", Errorf(CodeInvalidPageToken, "malformed page_token")
	}
	parts := strings.SplitN(string(raw), ":", 3)
	if len(parts) != 3 || parts[0] != pageTokenVersion || parts[2] == "" {
		return "", Errorf(CodeInvalidPageToken, "malformed page_token")
	}
	if parts[1] != collection {
		return "", Errorf(CodeInvalidPageToken,
			"page_token was issued for the %s collection, not %s", parts[1], collection)
	}
	return parts[2], nil
}

// ClampPageLimit normalizes a client-supplied limit: unset (<= 0)
// becomes the default, oversized clamps to the maximum.
func ClampPageLimit(limit int) int {
	switch {
	case limit <= 0:
		return DefaultPageLimit
	case limit > MaxPageLimit:
		return MaxPageLimit
	}
	return limit
}

// ErrStalePageToken builds the error for a cursor whose item no longer
// exists in the collection.
func ErrStalePageToken(collection, after string) *Error {
	return Errorf(CodeInvalidPageToken,
		"page_token names a %s entry that no longer exists", collection).With("after", after)
}

// Paginate slices one page out of the full ordered listing. idOf names
// each item; token positions the page (empty = from the start) and is
// invalid when the named item is no longer present — the stale-cursor
// case. The returned next token is empty when the listing is
// exhausted. (The reference semantics; the service's ListPage methods
// implement the same contract without materializing the whole
// collection per page.)
func Paginate[T any](items []T, idOf func(T) string, collection string, limit int, token string) (page []T, next string, err error) {
	limit = ClampPageLimit(limit)
	start := 0
	if token != "" {
		after, err := DecodePageToken(collection, token)
		if err != nil {
			return nil, "", err
		}
		start = -1
		for i, it := range items {
			if idOf(it) == after {
				start = i + 1
				break
			}
		}
		if start < 0 {
			return nil, "", ErrStalePageToken(collection, after)
		}
	}
	end := start + limit
	if end > len(items) {
		end = len(items)
	}
	page = items[start:end:end]
	if end < len(items) {
		next = EncodePageToken(collection, idOf(page[len(page)-1]))
	}
	return page, next, nil
}
