package api

import "repro/internal/obs"

// TraceSpan is one node of a job's trace tree. The shape is defined by
// internal/obs (the recorder) and re-exported here because it crosses
// the wire: span kinds are an append-only vocabulary, like error codes.
type TraceSpan = obs.Span

// JobTrace is the payload of GET /v1/jobs/{id}/trace: the span tree a
// job's execution recorded so far. For a running job the tree is a
// live snapshot with open spans marked unfinished; for a terminal job
// it is final.
type JobTrace struct {
	JobID string     `json:"job_id"`
	State JobState   `json:"state"`
	Root  *TraceSpan `json:"root"`
}
