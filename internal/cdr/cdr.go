// Package cdr models movement micro-data extracted from Call Detail
// Records, mirroring the D4D datasets of Sec. 3: each record is one
// network event with a pseudonymous subscriber identifier, the antenna
// position, and a timestamp. The package converts record streams into
// core fingerprint datasets (projecting and discretizing positions as
// the paper does), applies the paper's screening filters, and carves the
// dataset subsets used by the evaluation (timespans for Fig. 10, user
// fractions for Fig. 11, city regions for the abidjan/dakar subsets of
// Table 2).
package cdr

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
)

// MinutesPerDay is the length of a day in the dataset time unit.
const MinutesPerDay = 24 * 60

// Record is one logged mobile-traffic event.
type Record struct {
	User   string     // pseudo-identifier of the subscriber
	Pos    geo.LatLon // antenna position
	Minute float64    // minutes since the dataset epoch
}

// Validate checks structural sanity of a record.
func (r Record) Validate() error {
	if r.User == "" {
		return fmt.Errorf("cdr: record with empty user")
	}
	if !r.Pos.Valid() {
		return fmt.Errorf("cdr: record with invalid position %v", r.Pos)
	}
	if r.Minute < 0 {
		return fmt.Errorf("cdr: record with negative time %g", r.Minute)
	}
	return nil
}

// Table is an ordered collection of records with the metadata needed to
// interpret them.
type Table struct {
	Records []Record
	// Center is the projection center used when building fingerprints,
	// typically the centroid of the covered country.
	Center geo.LatLon
	// SpanDays is the nominal duration of the recording period.
	SpanDays int
}

// Validate checks every record.
func (t *Table) Validate() error {
	if !t.Center.Valid() {
		return fmt.Errorf("cdr: invalid table center %v", t.Center)
	}
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("cdr: record %d: %w", i, err)
		}
	}
	return nil
}

// Users returns the number of distinct subscribers in the table.
func (t *Table) Users() int {
	seen := make(map[string]struct{})
	for _, r := range t.Records {
		seen[r.User] = struct{}{}
	}
	return len(seen)
}

// byUser groups record indices per subscriber, preserving order.
func (t *Table) byUser() map[string][]int {
	m := make(map[string][]int)
	for i, r := range t.Records {
		m[r.User] = append(m[r.User], i)
	}
	return m
}

// BuildDataset converts the table into a core fingerprint dataset: each
// position is projected with the Lambert azimuthal equal-area projection
// centered on the table's Center and snapped to the 100 m grid, each
// timestamp becomes a 1 min interval (the paper's maximum granularity).
// Users are emitted in sorted pseudo-identifier order so the result is
// deterministic.
func (t *Table) BuildDataset() (*core.Dataset, error) {
	proj, err := geo.NewProjection(t.Center)
	if err != nil {
		return nil, err
	}
	grid := geo.Grid{}

	groups := t.byUser()
	users := make([]string, 0, len(groups))
	for u := range groups {
		users = append(users, u)
	}
	sort.Strings(users)

	fps := make([]*core.Fingerprint, 0, len(users))
	for _, u := range users {
		idxs := groups[u]
		samples := make([]core.Sample, 0, len(idxs))
		for _, i := range idxs {
			r := t.Records[i]
			pt, err := proj.Forward(r.Pos)
			if err != nil {
				return nil, fmt.Errorf("cdr: user %s: %w", u, err)
			}
			box := grid.BoxAround(pt)
			samples = append(samples, core.Sample{
				X: box.X, DX: box.DX,
				Y: box.Y, DY: box.DY,
				T: r.Minute, DT: 1,
				Weight: 1,
			})
		}
		fps = append(fps, core.NewFingerprint(u, samples))
	}
	return core.NewDataset(fps), nil
}

// FilterMinRate returns a table keeping only subscribers with at least
// minPerDay samples per day on average over the table's span: the
// screening applied to the Ivory Coast dataset ("filtering out users
// that have less than one sample per day", Sec. 3).
func (t *Table) FilterMinRate(minPerDay float64) *Table {
	if t.SpanDays <= 0 {
		return t.clone(t.Records)
	}
	counts := make(map[string]int)
	for _, r := range t.Records {
		counts[r.User]++
	}
	need := minPerDay * float64(t.SpanDays)
	kept := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if float64(counts[r.User]) >= need {
			kept = append(kept, r)
		}
	}
	return t.clone(kept)
}

// SubsetDays returns a table restricted to the first `days` days of the
// recording period (the timespan sweep of Fig. 10).
func (t *Table) SubsetDays(days int) *Table {
	limit := float64(days) * MinutesPerDay
	kept := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if r.Minute < limit {
			kept = append(kept, r)
		}
	}
	out := t.clone(kept)
	out.SpanDays = days
	return out
}

// SubsetUserFraction returns a table keeping approximately the given
// fraction of subscribers (the dataset-size sweep of Fig. 11). Selection
// is deterministic: users are kept by a stable hash of their identifier
// mixed with the seed, so nested fractions are monotone (the 25% subset
// is contained in the 50% subset for the same seed).
func (t *Table) SubsetUserFraction(frac float64, seed uint64) *Table {
	if frac >= 1 {
		return t.clone(t.Records)
	}
	if frac <= 0 {
		return t.clone(nil)
	}
	limit := uint64(frac * float64(^uint64(0)>>1))
	kept := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if userHash(r.User, seed)>>1 <= limit {
			kept = append(kept, r)
		}
	}
	return t.clone(kept)
}

// SubsetRegion returns a table keeping subscribers whose sample centroid
// lies within radiusMeters of the given center — the citywide subsets
// (abidjan, dakar) of Sec. 7.2. Keeping or dropping whole users (rather
// than clipping trajectories) preserves full-length fingerprints.
func (t *Table) SubsetRegion(center geo.LatLon, radiusMeters float64) (*Table, error) {
	proj, err := geo.NewProjection(t.Center)
	if err != nil {
		return nil, err
	}
	cpt, err := proj.Forward(center)
	if err != nil {
		return nil, err
	}

	type acc struct {
		sx, sy float64
		n      int
	}
	accs := make(map[string]*acc)
	for _, r := range t.Records {
		pt, err := proj.Forward(r.Pos)
		if err != nil {
			return nil, err
		}
		a := accs[r.User]
		if a == nil {
			a = &acc{}
			accs[r.User] = a
		}
		a.sx += pt.X
		a.sy += pt.Y
		a.n++
	}
	inside := make(map[string]bool, len(accs))
	for u, a := range accs {
		c := geo.Point{X: a.sx / float64(a.n), Y: a.sy / float64(a.n)}
		inside[u] = c.Dist(cpt) <= radiusMeters
	}
	kept := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if inside[r.User] {
			kept = append(kept, r)
		}
	}
	return t.clone(kept), nil
}

func (t *Table) clone(records []Record) *Table {
	rs := make([]Record, len(records))
	copy(rs, records)
	return &Table{Records: rs, Center: t.Center, SpanDays: t.SpanDays}
}

// userHash is a 64-bit FNV-1a hash of the user ID mixed with a seed,
// giving a deterministic, uniform-ish assignment for fraction subsetting.
func userHash(user string, seed uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset) ^ seed
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= prime
	}
	// Final avalanche (splitmix64 tail) to decorrelate similar IDs.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Pseudonymize replaces user identifiers with opaque pseudo-identifiers
// derived from a keyed hash, the (inadequate on its own, Sec. 1) first
// step of any release pipeline. The mapping is deterministic for a given
// salt and collision-checked.
func (t *Table) Pseudonymize(salt uint64) (*Table, error) {
	ids := make(map[string]string)
	rev := make(map[string]string)
	out := t.clone(t.Records)
	for i := range out.Records {
		u := out.Records[i].User
		p, ok := ids[u]
		if !ok {
			p = fmt.Sprintf("p%016x", userHash(u, salt))
			if prev, dup := rev[p]; dup && prev != u {
				return nil, fmt.Errorf("cdr: pseudonym collision between %q and %q", prev, u)
			}
			ids[u] = p
			rev[p] = u
		}
		out.Records[i].User = p
	}
	return out, nil
}
