package cdr

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
)

var testCenter = geo.LatLon{Lat: 7.54, Lon: -5.55}

// testTable builds a small deterministic table: nUsers subscribers, each
// with nRecs events around a per-user anchor.
func testTable(nUsers, nRecs int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	t := &Table{Center: testCenter, SpanDays: 14}
	for u := 0; u < nUsers; u++ {
		anchorLat := testCenter.Lat + rng.Float64()*2 - 1
		anchorLon := testCenter.Lon + rng.Float64()*2 - 1
		id := userName(u)
		for r := 0; r < nRecs; r++ {
			t.Records = append(t.Records, Record{
				User: id,
				Pos: geo.LatLon{
					Lat: anchorLat + rng.NormFloat64()*0.01,
					Lon: anchorLon + rng.NormFloat64()*0.01,
				},
				Minute: rng.Float64() * 14 * MinutesPerDay,
			})
		}
	}
	return t
}

func userName(u int) string {
	return "user" + string(rune('A'+u%26)) + string(rune('0'+u/26))
}

func TestRecordValidate(t *testing.T) {
	good := Record{User: "u", Pos: testCenter, Minute: 5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Record{
		{User: "", Pos: testCenter, Minute: 5},
		{User: "u", Pos: geo.LatLon{Lat: 999}, Minute: 5},
		{User: "u", Pos: testCenter, Minute: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestTableUsersAndValidate(t *testing.T) {
	tab := testTable(7, 4, 1)
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tab.Users(); got != 7 {
		t.Errorf("Users = %d, want 7", got)
	}
	tab.Center = geo.LatLon{Lat: 400}
	if err := tab.Validate(); err == nil {
		t.Error("invalid center accepted")
	}
}

func TestBuildDataset(t *testing.T) {
	tab := testTable(5, 10, 2)
	d, err := tab.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 {
		t.Fatalf("dataset has %d fingerprints, want 5", d.Len())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, f := range d.Fingerprints {
		if f.Len() != 10 {
			t.Errorf("fingerprint %s has %d samples, want 10", f.ID, f.Len())
		}
		for _, s := range f.Samples {
			if s.DX != geo.GridPitchMeters || s.DY != geo.GridPitchMeters {
				t.Fatalf("sample not snapped to grid: %+v", s)
			}
			if s.DT != 1 || s.Weight != 1 {
				t.Fatalf("sample granularity wrong: %+v", s)
			}
			if math.Mod(s.X, geo.GridPitchMeters) != 0 || math.Mod(s.Y, geo.GridPitchMeters) != 0 {
				t.Fatalf("sample origin off-grid: %+v", s)
			}
		}
	}
}

func TestBuildDatasetDeterministic(t *testing.T) {
	tab := testTable(6, 5, 3)
	d1, err := tab.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tab.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Fingerprints {
		if d1.Fingerprints[i].ID != d2.Fingerprints[i].ID {
			t.Fatal("user order not deterministic")
		}
	}
}

func TestFilterMinRate(t *testing.T) {
	tab := &Table{Center: testCenter, SpanDays: 2}
	// heavy: 4 records over 2 days (2/day); light: 1 record (0.5/day).
	for i := 0; i < 4; i++ {
		tab.Records = append(tab.Records, Record{User: "heavy", Pos: testCenter, Minute: float64(i)})
	}
	tab.Records = append(tab.Records, Record{User: "light", Pos: testCenter, Minute: 0})

	out := tab.FilterMinRate(1)
	if out.Users() != 1 {
		t.Fatalf("filter kept %d users, want 1", out.Users())
	}
	if len(out.Records) != 4 {
		t.Fatalf("filter kept %d records, want 4", len(out.Records))
	}
	// Zero span: no filtering possible.
	tab.SpanDays = 0
	if out := tab.FilterMinRate(1); out.Users() != 2 {
		t.Error("zero-span table filtered")
	}
}

func TestSubsetDays(t *testing.T) {
	tab := testTable(4, 20, 4)
	out := tab.SubsetDays(3)
	if out.SpanDays != 3 {
		t.Errorf("SpanDays = %d", out.SpanDays)
	}
	limit := 3.0 * MinutesPerDay
	for _, r := range out.Records {
		if r.Minute >= limit {
			t.Fatalf("record at minute %g survived 3-day subset", r.Minute)
		}
	}
	// Monotone: longer subsets contain shorter ones.
	out7 := tab.SubsetDays(7)
	if len(out7.Records) < len(out.Records) {
		t.Error("7-day subset smaller than 3-day subset")
	}
}

func TestSubsetUserFractionMonotoneNested(t *testing.T) {
	tab := testTable(200, 2, 5)
	users := func(t *Table) map[string]bool {
		m := make(map[string]bool)
		for _, r := range t.Records {
			m[r.User] = true
		}
		return m
	}
	prev := map[string]bool{}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		sub := tab.SubsetUserFraction(frac, 99)
		cur := users(sub)
		for u := range prev {
			if !cur[u] {
				t.Fatalf("user %s in smaller fraction but not larger", u)
			}
		}
		got := float64(len(cur)) / 200
		if math.Abs(got-frac) > 0.12 {
			t.Errorf("fraction %.2f kept %.2f of users", frac, got)
		}
		prev = cur
	}
	if n := len(tab.SubsetUserFraction(0, 99).Records); n != 0 {
		t.Errorf("fraction 0 kept %d records", n)
	}
}

func TestSubsetRegion(t *testing.T) {
	tab := &Table{Center: testCenter, SpanDays: 14}
	city := geo.LatLon{Lat: testCenter.Lat, Lon: testCenter.Lon}
	far := geo.LatLon{Lat: testCenter.Lat + 2, Lon: testCenter.Lon + 2}
	for i := 0; i < 5; i++ {
		tab.Records = append(tab.Records,
			Record{User: "urban", Pos: city, Minute: float64(i)},
			Record{User: "rural", Pos: far, Minute: float64(i)},
		)
	}
	out, err := tab.SubsetRegion(city, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if out.Users() != 1 {
		t.Fatalf("region subset kept %d users, want 1", out.Users())
	}
	if out.Records[0].User != "urban" {
		t.Errorf("kept wrong user %s", out.Records[0].User)
	}
}

func TestPseudonymize(t *testing.T) {
	tab := testTable(10, 3, 6)
	out, err := tab.Pseudonymize(42)
	if err != nil {
		t.Fatal(err)
	}
	if out.Users() != 10 {
		t.Fatalf("pseudonymized table has %d users", out.Users())
	}
	orig := make(map[string]bool)
	for _, r := range tab.Records {
		orig[r.User] = true
	}
	for i, r := range out.Records {
		if orig[r.User] {
			t.Fatalf("record %d kept its original identifier", i)
		}
		// Same user, same pseudonym: group sizes preserved.
		if tab.Records[i].Minute != r.Minute {
			t.Fatal("pseudonymization reordered records")
		}
	}
	// Deterministic for the same salt, different for another salt.
	out2, err := tab.Pseudonymize(42)
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].User != out2.Records[0].User {
		t.Error("pseudonymization not deterministic")
	}
	out3, err := tab.Pseudonymize(43)
	if err != nil {
		t.Fatal(err)
	}
	if out.Records[0].User == out3.Records[0].User {
		t.Error("different salts produced the same pseudonym")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := testTable(4, 6, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	records, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(tab.Records) {
		t.Fatalf("round trip changed record count: %d != %d", len(records), len(tab.Records))
	}
	for i := range records {
		a, b := records[i], tab.Records[i]
		if a.User != b.User || a.Pos != b.Pos || a.Minute != b.Minute {
			t.Fatalf("record %d changed: %+v != %+v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b,c,d\nu,1,2,3\n",
		"user,lat,lon,minute\nu,xx,2,3\n",
		"user,lat,lon,minute\nu,1,yy,3\n",
		"user,lat,lon,minute\nu,1,2,zz\n",
		"user,lat,lon,minute\nu,999,2,3\n",
		"user,lat,lon,minute\n,1,2,3\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestWriteAnonymizedCSV(t *testing.T) {
	tab := testTable(4, 5, 8)
	d, err := tab.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAnonymizedCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+d.TotalSamples() {
		t.Fatalf("got %d lines, want %d", len(lines), 1+d.TotalSamples())
	}
	if !strings.HasPrefix(lines[0], "group,count,") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestUserHashUniform(t *testing.T) {
	// Crude uniformity check: over 2000 users, bucket counts into 4
	// quartiles of the hash range and expect rough balance.
	var buckets [4]int
	for i := 0; i < 2000; i++ {
		h := userHash(userName(i)+string(rune(i)), 7)
		buckets[h>>62]++
	}
	for i, c := range buckets {
		if c < 350 || c > 650 {
			t.Errorf("bucket %d has %d of 2000", i, c)
		}
	}
}
