package cdr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
	"repro/internal/geo"
)

// CSV formats. Raw CDR tables use the 3-column format
//
//	user,lat,lon,minute
//
// (header required). Anonymized datasets use the generalized 7-column
// format
//
//	group,x,dx,y,dy,t,dt
//
// with planar coordinates in meters and times in minutes, one row per
// published sample, plus a `count` column carrying the group size.

// WriteCSV writes the raw record table.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "lat", "lon", "minute"}); err != nil {
		return err
	}
	row := make([]string, 4)
	for _, r := range t.Records {
		row[0] = r.User
		row[1] = strconv.FormatFloat(r.Pos.Lat, 'f', -1, 64)
		row[2] = strconv.FormatFloat(r.Pos.Lon, 'f', -1, 64)
		row[3] = strconv.FormatFloat(r.Minute, 'f', -1, 64)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a raw record table written by WriteCSV. Center and
// SpanDays must be supplied by the caller (they are dataset metadata, not
// per-record data).
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("cdr: reading header: %w", err)
	}
	if header[0] != "user" || header[1] != "lat" || header[2] != "lon" || header[3] != "minute" {
		return nil, fmt.Errorf("cdr: unexpected header %v", header)
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: %w", line, err)
		}
		lat, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: bad lat: %w", line, err)
		}
		lon, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: bad lon: %w", line, err)
		}
		min, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: bad minute: %w", line, err)
		}
		rec := Record{User: row[0], Pos: geo.LatLon{Lat: lat, Lon: lon}, Minute: min}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("cdr: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteAnonymizedCSV writes a k-anonymized dataset in the generalized
// format, one row per (group, sample) pair.
func WriteAnonymizedCSV(w io.Writer, d *core.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "count", "x", "dx", "y", "dy", "t", "dt"}); err != nil {
		return err
	}
	row := make([]string, 8)
	for _, f := range d.Fingerprints {
		for _, s := range f.Samples {
			row[0] = f.ID
			row[1] = strconv.Itoa(f.Count)
			row[2] = strconv.FormatFloat(s.X, 'f', 1, 64)
			row[3] = strconv.FormatFloat(s.DX, 'f', 1, 64)
			row[4] = strconv.FormatFloat(s.Y, 'f', 1, 64)
			row[5] = strconv.FormatFloat(s.DY, 'f', 1, 64)
			row[6] = strconv.FormatFloat(s.T, 'f', 1, 64)
			row[7] = strconv.FormatFloat(s.DT, 'f', 1, 64)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
