package cdr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// CSV formats. Raw CDR tables use the 3-column format
//
//	user,lat,lon,minute
//
// (header required). Anonymized datasets use the generalized 7-column
// format
//
//	group,x,dx,y,dy,t,dt
//
// with planar coordinates in meters and times in minutes, one row per
// published sample, plus a `count` column carrying the group size.

// WriteCSV writes the raw record table. It is WriteSourceCSV over the
// in-memory backend; both spellings stay because callers predate the
// Source seam.
func WriteCSV(w io.Writer, t *Table) error {
	return WriteSourceCSV(w, t)
}

// ReadCSV reads a raw record table written by WriteCSV. Center and
// SpanDays must be supplied by the caller (they are dataset metadata, not
// per-record data). It is a convenience wrapper over RecordReader for
// callers that want the whole table in memory.
func ReadCSV(r io.Reader) ([]Record, error) {
	var out []Record
	rr := NewRecordReader(r)
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadAnonymizedCSV reads a dataset in the generalized format written by
// WriteAnonymizedCSV, reconstructing one fingerprint per group. Members
// are synthesized as "<group>#<i>" placeholders: the published format
// deliberately does not carry subscriber identities, only crowd sizes.
func ReadAnonymizedCSV(r io.Reader) (*core.Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 8
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("cdr: reading header: %w", err)
	}
	want := []string{"group", "count", "x", "dx", "y", "dy", "t", "dt"}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("cdr: unexpected anonymized header %v", header)
		}
	}
	type group struct {
		count   int
		samples []core.Sample
	}
	groups := make(map[string]*group)
	var order []string
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: %w", line, err)
		}
		count, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("cdr: line %d: bad count: %w", line, err)
		}
		if count < 1 {
			return nil, fmt.Errorf("cdr: line %d: group count %d < 1", line, count)
		}
		var vals [6]float64
		for i := 0; i < 6; i++ {
			vals[i], err = strconv.ParseFloat(row[2+i], 64)
			if err != nil {
				return nil, fmt.Errorf("cdr: line %d: bad %s: %w", line, want[2+i], err)
			}
		}
		g := groups[row[0]]
		if g == nil {
			g = &group{count: count}
			groups[row[0]] = g
			order = append(order, row[0])
		} else if g.count != count {
			return nil, fmt.Errorf("cdr: line %d: group %s count changed %d -> %d", line, row[0], g.count, count)
		}
		g.samples = append(g.samples, core.Sample{
			X: vals[0], DX: vals[1],
			Y: vals[2], DY: vals[3],
			T: vals[4], DT: vals[5],
			Weight: 1,
		})
	}
	fps := make([]*core.Fingerprint, 0, len(order))
	for _, id := range order {
		g := groups[id]
		members := make([]string, g.count)
		for i := range members {
			members[i] = fmt.Sprintf("%s#%d", id, i)
		}
		f := core.NewFingerprint(id, g.samples)
		f.Count = g.count
		f.Members = members
		fps = append(fps, f)
	}
	return core.NewDataset(fps), nil
}

// WriteAnonymizedCSV writes a k-anonymized dataset in the generalized
// format, one row per (group, sample) pair.
func WriteAnonymizedCSV(w io.Writer, d *core.Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"group", "count", "x", "dx", "y", "dy", "t", "dt"}); err != nil {
		return err
	}
	row := make([]string, 8)
	for _, f := range d.Fingerprints {
		for _, s := range f.Samples {
			row[0] = f.ID
			row[1] = strconv.Itoa(f.Count)
			row[2] = strconv.FormatFloat(s.X, 'f', 1, 64)
			row[3] = strconv.FormatFloat(s.DX, 'f', 1, 64)
			row[4] = strconv.FormatFloat(s.Y, 'f', 1, 64)
			row[5] = strconv.FormatFloat(s.DY, 'f', 1, 64)
			row[6] = strconv.FormatFloat(s.T, 'f', 1, 64)
			row[7] = strconv.FormatFloat(s.DT, 'f', 1, 64)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
