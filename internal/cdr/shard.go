package cdr

// ShardByUser partitions the table into at most `shards` disjoint tables,
// assigning whole subscribers (never splitting a trajectory) by a stable
// hash of their identifier mixed with the seed — the same family of
// hashes as SubsetUserFraction, so assignment is deterministic across
// runs and processes. Empty shards are dropped, so the result may be
// shorter than `shards`.
//
// Sharding is the unit of parallelism of the gloved service: each shard
// is anonymized independently, which preserves the k-anonymity guarantee
// (every shard output hides >= k subscribers per group) while turning
// GLOVE's quadratic cost into a sum of smaller quadratics, as the
// paper's locality analysis (Sec. 7.3) licenses.
func (t *Table) ShardByUser(shards int, seed uint64) []*Table {
	if shards <= 1 {
		return []*Table{t.clone(t.Records)}
	}
	buckets := make([][]Record, shards)
	assigned := make(map[string]int)
	for _, r := range t.Records {
		b, ok := assigned[r.User]
		if !ok {
			b = ShardOfUser(r.User, shards, seed)
			assigned[r.User] = b
		}
		buckets[b] = append(buckets[b], r)
	}
	out := make([]*Table, 0, shards)
	for _, recs := range buckets {
		if len(recs) == 0 {
			continue
		}
		out = append(out, t.clone(recs))
	}
	return out
}
