package cdr

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
)

// Source is the read seam between dataset storage and the anonymization
// pipeline. The service historically handed *Table values around; the
// columnar store (internal/colstore) serves the same operations by
// streaming over column chunks without ever materializing []Record, so
// everything downstream of a registry snapshot — planning, sharding,
// window splitting, fingerprint building — consumes this interface
// instead of a concrete table.
//
// Implementations must be safe for concurrent readers: a snapshot is
// shared by every shard worker of a job. All derived sources (windows,
// shards) observe exactly the rows of the parent source, in the parent's
// record order, so the byte-identity guarantees of the windowed release
// driver carry over unchanged.
type Source interface {
	// TableMeta returns the dataset metadata the per-record formats do
	// not carry (projection center, nominal recording span).
	TableMeta() Meta

	// NumRecords returns the number of records in the source.
	NumRecords() int

	// NumUsers returns the number of distinct subscribers.
	NumUsers() int

	// EachRecord streams every record in order. A non-nil error from fn
	// stops the iteration and is returned unchanged.
	EachRecord(fn func(Record) error) error

	// BuildDataset converts the records into a core fingerprint dataset,
	// exactly as Table.BuildDataset does (same projection, same grid
	// snapping, users emitted in sorted pseudo-identifier order).
	BuildDataset() (*core.Dataset, error)

	// WindowSplit partitions the records into consecutive time windows
	// of duration d, mirroring Table.SplitByWindow (empty windows
	// omitted, input order preserved inside each window).
	WindowSplit(d time.Duration) ([]SourceWindow, error)

	// TailWindows is the window cursor of the streaming pipeline: it
	// partitions only the records at positions [fromRecord, NumRecords())
	// into windows of duration d, with the same index/interval semantics
	// as WindowSplit. The returned slices are window *fragments* — a
	// follow executor accumulates fragments per index across appends and
	// concatenates them (in arrival order) when a window closes, which
	// reproduces exactly the record order WindowSplit would assign that
	// window over the full feed, because appends only ever extend the
	// record sequence. Empty fragments are omitted; fragments are sorted
	// by index.
	TailWindows(fromRecord int, d time.Duration) ([]SourceWindow, error)

	// UserShards partitions the source into at most n disjoint sources
	// by the stable user hash of ShardOfUser, never splitting a
	// subscriber. Empty shards are dropped.
	UserShards(n int, seed uint64) []Source
}

// Meta is the dataset-level metadata shared by every Source
// implementation.
type Meta struct {
	// Center is the projection center used when building fingerprints.
	Center geo.LatLon
	// SpanDays is the nominal duration of the recording period.
	SpanDays int
}

// SourceWindow is one time slice of a source produced by WindowSplit —
// the Source-level analogue of Window.
type SourceWindow struct {
	// Index is the window's position on the absolute time axis: window i
	// covers minutes [i*w, (i+1)*w).
	Index int
	// StartMinute and EndMinute delimit the half-open window interval.
	StartMinute, EndMinute float64
	// Source holds the window's records in input order.
	Source Source
}

// ShardOfUser returns the shard a subscriber is assigned to by the
// user-hash sharding scheme — shared by Table.ShardByUser and the
// columnar store so both backends produce identical shard assignments.
func ShardOfUser(user string, shards int, seed uint64) int {
	return int(userHash(user, seed) % uint64(shards))
}

// *Table implements Source directly; the methods below delegate to the
// existing table operations.

// TableMeta returns the table's dataset metadata.
func (t *Table) TableMeta() Meta {
	return Meta{Center: t.Center, SpanDays: t.SpanDays}
}

// NumRecords returns the number of records in the table.
func (t *Table) NumRecords() int { return len(t.Records) }

// NumUsers returns the number of distinct subscribers (Users).
func (t *Table) NumUsers() int { return t.Users() }

// EachRecord streams the table's records in order.
func (t *Table) EachRecord(fn func(Record) error) error {
	for _, r := range t.Records {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// WindowSplit is SplitByWindow lifted to the Source interface.
func (t *Table) WindowSplit(d time.Duration) ([]SourceWindow, error) {
	wins, err := t.SplitByWindow(d)
	if err != nil {
		return nil, err
	}
	out := make([]SourceWindow, len(wins))
	for i, w := range wins {
		out[i] = SourceWindow{
			Index:       w.Index,
			StartMinute: w.StartMinute,
			EndMinute:   w.EndMinute,
			Source:      w.Table,
		}
	}
	return out, nil
}

// TailWindows implements the streaming window cursor over the in-memory
// table: only Records[fromRecord:] are bucketed.
func (t *Table) TailWindows(fromRecord int, d time.Duration) ([]SourceWindow, error) {
	if fromRecord < 0 || fromRecord > len(t.Records) {
		return nil, fmt.Errorf("cdr: tail cursor %d out of range [0, %d]", fromRecord, len(t.Records))
	}
	wins, err := splitWindows(t.Records[fromRecord:], t.Center, d)
	if err != nil {
		return nil, err
	}
	out := make([]SourceWindow, len(wins))
	for i, w := range wins {
		out[i] = SourceWindow{
			Index:       w.Index,
			StartMinute: w.StartMinute,
			EndMinute:   w.EndMinute,
			Source:      w.Table,
		}
	}
	return out, nil
}

// MaterializeTable collects a source's records into a plain in-memory
// table carrying the source's metadata — the step a follow executor uses
// to fuse accumulated window fragments into one runnable window.
func MaterializeTable(srcs ...Source) (*Table, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("cdr: materialize of zero sources")
	}
	meta := srcs[0].TableMeta()
	total := 0
	for _, s := range srcs {
		total += s.NumRecords()
	}
	t := &Table{
		Records:  make([]Record, 0, total),
		Center:   meta.Center,
		SpanDays: meta.SpanDays,
	}
	for _, s := range srcs {
		if err := s.EachRecord(func(r Record) error {
			t.Records = append(t.Records, r)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// UserShards is ShardByUser lifted to the Source interface.
func (t *Table) UserShards(n int, seed uint64) []Source {
	shards := t.ShardByUser(n, seed)
	out := make([]Source, len(shards))
	for i, s := range shards {
		out[i] = s
	}
	return out
}

// WriteSourceCSV streams a source's records in the raw 4-column CSV
// format, byte-identical to WriteCSV over an equivalent in-memory table
// (both format floats with strconv's shortest exact representation, so
// any backend storing positions and times as float64 round-trips
// identically).
func WriteSourceCSV(w io.Writer, s Source) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user", "lat", "lon", "minute"}); err != nil {
		return err
	}
	row := make([]string, 4)
	if err := s.EachRecord(func(r Record) error {
		row[0] = r.User
		row[1] = strconv.FormatFloat(r.Pos.Lat, 'f', -1, 64)
		row[2] = strconv.FormatFloat(r.Pos.Lon, 'f', -1, 64)
		row[3] = strconv.FormatFloat(r.Minute, 'f', -1, 64)
		return cw.Write(row)
	}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
