package cdr

import (
	"encoding/csv"
	"fmt"
	"io"
	"iter"
	"strconv"

	"repro/internal/geo"
)

// RecordReader decodes a raw record CSV stream one record at a time, so
// ingestion of an operator-sized feed never needs the whole table in
// memory. The header row is consumed and checked lazily on the first
// Next call.
type RecordReader struct {
	cr     *csv.Reader
	line   int
	header bool
	err    error
}

// NewRecordReader wraps an io.Reader producing the WriteCSV format
// (user,lat,lon,minute with header).
func NewRecordReader(r io.Reader) *RecordReader {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true
	return &RecordReader{cr: cr, line: 1}
}

// Next returns the next record. It returns io.EOF after the last record
// and any other error exactly once; subsequent calls repeat the error.
func (rr *RecordReader) Next() (Record, error) {
	if rr.err != nil {
		return Record{}, rr.err
	}
	if !rr.header {
		h, err := rr.cr.Read()
		if err != nil {
			rr.err = fmt.Errorf("cdr: reading header: %w", err)
			return Record{}, rr.err
		}
		if h[0] != "user" || h[1] != "lat" || h[2] != "lon" || h[3] != "minute" {
			rr.err = fmt.Errorf("cdr: unexpected header %v", h)
			return Record{}, rr.err
		}
		rr.header = true
	}
	rr.line++
	row, err := rr.cr.Read()
	if err == io.EOF {
		rr.err = io.EOF
		return Record{}, io.EOF
	}
	if err != nil {
		rr.err = fmt.Errorf("cdr: line %d: %w", rr.line, err)
		return Record{}, rr.err
	}
	rec, err := parseRecord(row, rr.line)
	if err != nil {
		rr.err = err
		return Record{}, err
	}
	return rec, nil
}

func parseRecord(row []string, line int) (Record, error) {
	lat, err := strconv.ParseFloat(row[1], 64)
	if err != nil {
		return Record{}, fmt.Errorf("cdr: line %d: bad lat: %w", line, err)
	}
	lon, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("cdr: line %d: bad lon: %w", line, err)
	}
	min, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("cdr: line %d: bad minute: %w", line, err)
	}
	rec := Record{User: row[0], Pos: geo.LatLon{Lat: lat, Lon: lon}, Minute: min}
	if err := rec.Validate(); err != nil {
		return Record{}, fmt.Errorf("cdr: line %d: %w", line, err)
	}
	return rec, nil
}

// Records returns an iterator over the record stream. Iteration stops at
// the first error, which is yielded with a zero Record; a clean end of
// stream yields nothing (io.EOF is not surfaced).
func Records(r io.Reader) iter.Seq2[Record, error] {
	rr := NewRecordReader(r)
	return func(yield func(Record, error) bool) {
		for {
			rec, err := rr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				yield(Record{}, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}
