package cdr

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/geo"
)

func streamTestTable() *Table {
	return &Table{
		Center:   geo.LatLon{Lat: 7.5, Lon: -5.5},
		SpanDays: 2,
		Records: []Record{
			{User: "a", Pos: geo.LatLon{Lat: 7.51, Lon: -5.52}, Minute: 10},
			{User: "b", Pos: geo.LatLon{Lat: 7.52, Lon: -5.51}, Minute: 20},
			{User: "a", Pos: geo.LatLon{Lat: 7.53, Lon: -5.50}, Minute: 30},
			{User: "c", Pos: geo.LatLon{Lat: 7.54, Lon: -5.49}, Minute: 40},
		},
	}
}

func TestRecordReaderRoundTrip(t *testing.T) {
	table := streamTestTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	rr := NewRecordReader(&buf)
	var got []Record
	for {
		rec, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	if len(got) != len(table.Records) {
		t.Fatalf("read %d records, want %d", len(got), len(table.Records))
	}
	for i, rec := range got {
		if rec != table.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, rec, table.Records[i])
		}
	}
	// EOF is sticky.
	if _, err := rr.Next(); err != io.EOF {
		t.Errorf("post-EOF Next err = %v", err)
	}
}

func TestRecordReaderErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":   "not,a,valid,header\na,1,2,3\n",
		"bad lat":      "user,lat,lon,minute\na,nope,2,3\n",
		"bad lon":      "user,lat,lon,minute\na,1,nope,3\n",
		"bad minute":   "user,lat,lon,minute\na,1,2,nope\n",
		"empty user":   "user,lat,lon,minute\n,1,2,3\n",
		"bad position": "user,lat,lon,minute\na,400,2,3\n",
		"neg time":     "user,lat,lon,minute\na,1,2,-3\n",
		"short row":    "user,lat,lon,minute\na,1,2\n",
	}
	for name, csv := range cases {
		rr := NewRecordReader(strings.NewReader(csv))
		var err error
		for err == nil {
			_, err = rr.Next()
		}
		if err == io.EOF {
			t.Errorf("%s: accepted", name)
			continue
		}
		// Errors are sticky too.
		if _, err2 := rr.Next(); err2 != err {
			t.Errorf("%s: error not sticky: %v then %v", name, err, err2)
		}
	}
}

func TestRecordsIterator(t *testing.T) {
	table := streamTestTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	var n int
	for rec, err := range Records(&buf) {
		if err != nil {
			t.Fatal(err)
		}
		if rec != table.Records[n] {
			t.Errorf("record %d = %+v, want %+v", n, rec, table.Records[n])
		}
		n++
	}
	if n != len(table.Records) {
		t.Fatalf("iterated %d records, want %d", n, len(table.Records))
	}

	// Early break works.
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, table); err != nil {
		t.Fatal(err)
	}
	n = 0
	for _, err := range Records(&buf2) {
		if err != nil {
			t.Fatal(err)
		}
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break did not stop iteration: %d", n)
	}

	// Errors surface once.
	var errs int
	for _, err := range Records(strings.NewReader("user,lat,lon,minute\na,nope,2,3\n")) {
		if err != nil {
			errs++
		}
	}
	if errs != 1 {
		t.Fatalf("got %d errors, want 1", errs)
	}
}

func TestReadCSVStillWorks(t *testing.T) {
	table := streamTestTable()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(table.Records) {
		t.Fatalf("read %d records, want %d", len(recs), len(table.Records))
	}
}

func TestShardByUser(t *testing.T) {
	table := streamTestTable()
	shards := table.ShardByUser(2, 42)
	if len(shards) == 0 || len(shards) > 2 {
		t.Fatalf("got %d shards", len(shards))
	}
	// Every record lands in exactly one shard, whole users together.
	userShard := make(map[string]int)
	var total int
	for si, s := range shards {
		if s.Center != table.Center || s.SpanDays != table.SpanDays {
			t.Errorf("shard %d lost metadata", si)
		}
		for _, r := range s.Records {
			if prev, ok := userShard[r.User]; ok && prev != si {
				t.Errorf("user %s split across shards %d and %d", r.User, prev, si)
			}
			userShard[r.User] = si
			total++
		}
	}
	if total != len(table.Records) {
		t.Errorf("shards hold %d records, want %d", total, len(table.Records))
	}
	// Deterministic.
	again := table.ShardByUser(2, 42)
	if len(again) != len(shards) {
		t.Fatalf("resharding changed shard count")
	}
	for i := range shards {
		if len(again[i].Records) != len(shards[i].Records) {
			t.Errorf("shard %d not deterministic", i)
		}
	}
	// shards <= 1 returns a single clone.
	one := table.ShardByUser(1, 42)
	if len(one) != 1 || len(one[0].Records) != len(table.Records) {
		t.Errorf("ShardByUser(1) = %d shards", len(one))
	}
}

func TestReadAnonymizedCSVRoundTrip(t *testing.T) {
	table := streamTestTable()
	ds, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteAnonymizedCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnonymizedCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.TotalSamples() != ds.TotalSamples() {
		t.Errorf("round trip: %d groups / %d samples, want %d / %d",
			got.Len(), got.TotalSamples(), ds.Len(), ds.TotalSamples())
	}
	if err := got.Validate(); err != nil {
		t.Errorf("round-tripped dataset invalid: %v", err)
	}
}

func TestReadAnonymizedCSVErrors(t *testing.T) {
	header := "group,count,x,dx,y,dy,t,dt\n"
	cases := map[string]string{
		"bad header":     "nope,count,x,dx,y,dy,t,dt\ng,2,0,1,0,1,0,1\n",
		"bad count":      header + "g,two,0,1,0,1,0,1\n",
		"zero count":     header + "g,0,0,1,0,1,0,1\n",
		"negative count": header + "g,-1,0,1,0,1,0,1\n",
		"bad x":          header + "g,2,nope,1,0,1,0,1\n",
		"count changed":  header + "g,2,0,1,0,1,0,1\ng,3,0,1,0,1,5,1\n",
	}
	for name, csv := range cases {
		if _, err := ReadAnonymizedCSV(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
