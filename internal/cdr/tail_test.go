package cdr

import (
	"testing"
	"time"
)

// collectRecords drains a source into a slice.
func collectRecords(t *testing.T, s Source) []Record {
	t.Helper()
	var recs []Record
	if err := s.EachRecord(func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TailWindows is the streaming cursor: fragments accumulated per window
// index across a sequence of cursor positions, concatenated in arrival
// order, must reproduce exactly what WindowSplit assigns each window
// over the full feed.
func TestTailWindowsFragmentsReassemble(t *testing.T) {
	// Arrival order interleaves windows: the feed delivers records for
	// windows 0, 2, 0, 1, 3, ... so fragments of one window span several
	// appends and indexes appear out of order within an append.
	recs := []Record{
		windowRec("a", 5), windowRec("b", 130), windowRec("c", 12),
		windowRec("a", 70), windowRec("d", 200), windowRec("b", 45),
		windowRec("e", 61), windowRec("c", 199), windowRec("a", 30),
	}
	tab := windowTable(recs)
	full, err := tab.WindowSplit(time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	// Cursor positions simulating appends of 2, 0, 4 and 3 records. Each
	// iteration sees the table as it stood after the append (recs[:to])
	// and tails from where the previous iteration left off.
	cursors := []int{0, 2, 2, 6, len(recs)}
	byIndex := map[int][]Record{}
	for c := 0; c+1 < len(cursors); c++ {
		from, to := cursors[c], cursors[c+1]
		part := windowTable(recs[:to])
		frags, err := part.TailWindows(from, time.Hour)
		if err != nil {
			t.Fatalf("tail from %d: %v", from, err)
		}
		if from == to && len(frags) != 0 {
			t.Fatalf("empty append produced %d fragments", len(frags))
		}
		last := -1
		for _, f := range frags {
			if f.Index <= last {
				t.Fatalf("fragments not sorted by index: %d after %d", f.Index, last)
			}
			last = f.Index
			if f.Source.NumRecords() == 0 {
				t.Fatalf("tail from %d emitted empty fragment %d", from, f.Index)
			}
			byIndex[f.Index] = append(byIndex[f.Index], collectRecords(t, f.Source)...)
		}
	}

	if len(byIndex) != len(full) {
		t.Fatalf("reassembled %d windows, want %d", len(byIndex), len(full))
	}
	for _, w := range full {
		want := collectRecords(t, w.Source)
		got := byIndex[w.Index]
		if len(got) != len(want) {
			t.Fatalf("window %d reassembled %d records, want %d", w.Index, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("window %d record %d: %+v != %+v", w.Index, i, got[i], want[i])
			}
		}
	}
}

func TestTailWindowsFullRangeMatchesWindowSplit(t *testing.T) {
	recs := []Record{windowRec("a", 5), windowRec("b", 65), windowRec("c", 185)}
	tab := windowTable(recs)
	split, err := tab.WindowSplit(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := tab.TailWindows(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(split) {
		t.Fatalf("%d tail windows vs %d split windows", len(tail), len(split))
	}
	for i := range split {
		if tail[i].Index != split[i].Index ||
			tail[i].StartMinute != split[i].StartMinute ||
			tail[i].EndMinute != split[i].EndMinute {
			t.Fatalf("window %d header differs: %+v vs %+v", i, tail[i], split[i])
		}
	}
	// Cursor at the end: no fragments, no error.
	empty, err := tab.TailWindows(len(recs), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("cursor at end produced %d fragments", len(empty))
	}
}

func TestTailWindowsErrors(t *testing.T) {
	tab := windowTable([]Record{windowRec("a", 0)})
	if _, err := tab.TailWindows(-1, time.Hour); err == nil {
		t.Error("negative cursor accepted")
	}
	if _, err := tab.TailWindows(2, time.Hour); err == nil {
		t.Error("cursor past end accepted")
	}
	if _, err := tab.TailWindows(0, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestMaterializeTable(t *testing.T) {
	recs := []Record{windowRec("a", 5), windowRec("b", 30), windowRec("c", 70)}
	tab := windowTable(recs)
	frags, err := tab.TailWindows(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]Source, len(frags))
	for i, f := range frags {
		srcs[i] = f.Source
	}
	m, err := MaterializeTable(srcs...)
	if err != nil {
		t.Fatal(err)
	}
	// Fragments carry per-window metadata (a 1-hour window spans 1 day,
	// not the feed's 3), exactly like cold WindowSplit windows — the
	// materialized window must preserve it so warm and cold runs build
	// fingerprints from identical tables.
	if m.Center != tab.Center || m.SpanDays != frags[0].Source.TableMeta().SpanDays {
		t.Fatalf("metadata lost: %+v", m)
	}
	if len(m.Records) != len(recs) {
		t.Fatalf("materialized %d records, want %d", len(m.Records), len(recs))
	}
	if _, err := MaterializeTable(); err == nil {
		t.Error("zero sources accepted")
	}
}
