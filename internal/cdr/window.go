package cdr

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/geo"
)

// Continuous publication (the operator workflow the paper's Sec. 1
// motivates) releases a long record feed as a sequence of time-windowed
// datasets, each anonymized independently. This file provides the
// building blocks: incremental appends to a growing table, cheap
// copy-on-write snapshots so releases run against a frozen version of
// the feed, and the time-window partitioner itself.

// Append validates and appends records to the table in place. The table
// is left unchanged when any record is invalid, so a partially bad batch
// never corrupts an operator feed.
func (t *Table) Append(recs ...Record) error {
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("cdr: appended record %d: %w", i, err)
		}
	}
	t.Records = append(t.Records, recs...)
	return nil
}

// Snapshot returns a frozen view of the table at its current length.
// The record slice is shared, not copied, with its capacity clamped to
// its length: a later Append to the parent table reallocates (or writes
// past the snapshot's reach) instead of mutating records the snapshot
// can see, so snapshots are safe to read concurrently with appends.
func (t *Table) Snapshot() *Table {
	n := len(t.Records)
	return &Table{Records: t.Records[:n:n], Center: t.Center, SpanDays: t.SpanDays}
}

// Window is one time slice of a table produced by SplitByWindow.
type Window struct {
	// Index is the window's position on the absolute time axis: window i
	// covers minutes [i*w, (i+1)*w). Indices of consecutive returned
	// windows may jump when an intermediate window holds no records.
	Index int
	// StartMinute and EndMinute delimit the half-open window interval in
	// dataset minutes.
	StartMinute, EndMinute float64
	// Table holds the window's records in input order.
	Table *Table
}

// SplitByWindow partitions the table's records into consecutive time
// windows of duration d, aligned at multiples of d from the dataset
// epoch (minute 0). Records keep their input order within a window, so a
// table whose whole span fits one window yields exactly one window with
// the records unchanged — the property the windowed release driver's
// byte-identity guarantee rests on. Empty windows are omitted; the
// returned windows are sorted by index and partition the records.
func (t *Table) SplitByWindow(d time.Duration) ([]Window, error) {
	return splitWindows(t.Records, t.Center, d)
}

// splitWindows is the shared bucketing core of SplitByWindow and the
// TailWindows cursor: it partitions one record run into windows. Both
// callers go through the same index arithmetic and ordering, which is
// what makes fragment concatenation reproduce a full split exactly.
func splitWindows(records []Record, center geo.LatLon, d time.Duration) ([]Window, error) {
	w := d.Minutes()
	if w <= 0 {
		return nil, fmt.Errorf("cdr: window duration %v, need > 0", d)
	}
	buckets := make(map[int][]Record)
	for _, r := range records {
		idx := int(r.Minute / w)
		buckets[idx] = append(buckets[idx], r)
	}
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	// A window's nominal span feeds rate-based screening
	// (FilterMinRate); round the duration up to whole days.
	spanDays := windowSpanDays(w)
	out := make([]Window, 0, len(idxs))
	for _, i := range idxs {
		rs := make([]Record, len(buckets[i]))
		copy(rs, buckets[i])
		out = append(out, Window{
			Index:       i,
			StartMinute: float64(i) * w,
			EndMinute:   float64(i+1) * w,
			Table:       &Table{Records: rs, Center: center, SpanDays: spanDays},
		})
	}
	return out, nil
}

// windowSpanDays converts a window width in minutes to the nominal
// SpanDays stamped on every window table (rounded up, at least one day).
func windowSpanDays(w float64) int {
	spanDays := int(math.Ceil(w / MinutesPerDay))
	if spanDays < 1 {
		spanDays = 1
	}
	return spanDays
}
