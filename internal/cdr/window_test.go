package cdr

import (
	"testing"
	"time"

	"repro/internal/geo"
)

func windowTable(recs []Record) *Table {
	return &Table{Records: recs, Center: geo.LatLon{Lat: 7.54, Lon: -5.55}, SpanDays: 3}
}

func windowRec(user string, minute float64) Record {
	return Record{User: user, Pos: geo.LatLon{Lat: 7.5, Lon: -5.5}, Minute: minute}
}

func TestAppend(t *testing.T) {
	tab := windowTable(nil)
	if err := tab.Append(windowRec("a", 0), windowRec("b", 10)); err != nil {
		t.Fatal(err)
	}
	if len(tab.Records) != 2 {
		t.Fatalf("appended %d records, want 2", len(tab.Records))
	}

	// A batch with one invalid record must leave the table unchanged.
	err := tab.Append(windowRec("c", 20), Record{User: "", Minute: 30})
	if err == nil {
		t.Fatal("invalid record accepted")
	}
	if len(tab.Records) != 2 {
		t.Fatalf("failed batch still appended: %d records", len(tab.Records))
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tab := windowTable(nil)
	if err := tab.Append(windowRec("a", 0), windowRec("b", 10)); err != nil {
		t.Fatal(err)
	}
	snap := tab.Snapshot()
	if err := tab.Append(windowRec("c", 20), windowRec("d", 30), windowRec("e", 40)); err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 2 {
		t.Fatalf("snapshot grew to %d records after parent append", len(snap.Records))
	}
	if snap.Records[0].User != "a" || snap.Records[1].User != "b" {
		t.Fatalf("snapshot records changed: %+v", snap.Records)
	}
	if len(tab.Records) != 5 {
		t.Fatalf("parent has %d records, want 5", len(tab.Records))
	}
}

func TestSplitByWindow(t *testing.T) {
	// Two records in window 0, one exactly on the boundary (goes to
	// window 1), none in window 2, one in window 3.
	recs := []Record{
		windowRec("a", 5), windowRec("b", 30), windowRec("a", 60), windowRec("c", 185),
	}
	tab := windowTable(recs)
	wins, err := tab.SplitByWindow(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (empty window omitted)", len(wins))
	}
	wantIdx := []int{0, 1, 3}
	wantLen := []int{2, 1, 1}
	total := 0
	for i, w := range wins {
		if w.Index != wantIdx[i] {
			t.Errorf("window %d has index %d, want %d", i, w.Index, wantIdx[i])
		}
		if len(w.Table.Records) != wantLen[i] {
			t.Errorf("window %d has %d records, want %d", i, len(w.Table.Records), wantLen[i])
		}
		if got := w.EndMinute - w.StartMinute; got != 60 {
			t.Errorf("window %d spans %g minutes, want 60", i, got)
		}
		for _, r := range w.Table.Records {
			if r.Minute < w.StartMinute || r.Minute >= w.EndMinute {
				t.Errorf("window %d [%g, %g) holds record at minute %g",
					i, w.StartMinute, w.EndMinute, r.Minute)
			}
		}
		total += len(w.Table.Records)
	}
	if total != len(recs) {
		t.Errorf("windows hold %d records, want %d", total, len(recs))
	}
	// The boundary record at minute 60 belongs to window 1, not 0.
	if wins[1].Table.Records[0].Minute != 60 {
		t.Errorf("boundary record landed in the wrong window")
	}
}

func TestSplitByWindowSingleWindowPreservesOrder(t *testing.T) {
	recs := []Record{windowRec("b", 3), windowRec("a", 1), windowRec("b", 2), windowRec("c", 50)}
	tab := windowTable(recs)
	wins, err := tab.SplitByWindow(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 1 {
		t.Fatalf("got %d windows, want 1", len(wins))
	}
	for i, r := range wins[0].Table.Records {
		if r != recs[i] {
			t.Fatalf("record %d reordered: %+v != %+v", i, r, recs[i])
		}
	}
}

func TestSplitByWindowRejectsBadDuration(t *testing.T) {
	tab := windowTable([]Record{windowRec("a", 0)})
	for _, d := range []time.Duration{0, -time.Hour} {
		if _, err := tab.SplitByWindow(d); err == nil {
			t.Errorf("duration %v accepted", d)
		}
	}
}
