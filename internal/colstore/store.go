// Package colstore is the memory-bounded columnar record store behind
// the service registry's large-dataset tier. Records are decomposed
// into flat per-column arenas — latitude, longitude and minute as
// float64 columns, the subscriber identifier dictionary-encoded into a
// uint32 column — held in fixed-size chunks. Sealed chunks can spill to
// an unlinked temporary file under an explicit resident-byte budget
// with LRU replacement, so a nation-scale feed streams through a small,
// configurable working set instead of a []Record that must fit in RAM.
//
// The store is exposed to the pipeline through cdr.Source views:
// snapshots are O(1) and frozen (appends never mutate rows a view can
// see), window splits and user shards are row-index selections over the
// shared columns, and fingerprint building streams straight from the
// columns. Every derived operation is bit-identical to the in-memory
// cdr.Table path — positions and timestamps are stored as the exact
// float64 values that arrived, so CSV round-trips are byte-identical
// (pinned by the equivalence tests).
package colstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/cdr"
)

// DefaultChunkRecords is the chunk size used when Options.ChunkRecords
// is not positive: 8192 records, i.e. 224 KiB of column data per chunk
// (3 float64 columns + 1 uint32 column), large enough to amortize spill
// I/O and small enough for fine-grained budget control.
const DefaultChunkRecords = 8192

// bytesPerRecord is the column footprint of one record: three float64
// columns plus the uint32 user-dictionary column.
const bytesPerRecord = 3*8 + 4

// ErrTooManyRecords is returned by AppendStream when admitting the next
// record would exceed the caller's record allowance. The stream stops
// without buffering the offending record and the store is rolled back.
var ErrTooManyRecords = errors.New("colstore: record cap exceeded")

// Counters accumulates spill-path activity. They are cumulative and
// never reset, so a single Counters value shared across every store of
// a registry backs monotone service counters even as datasets come and
// go.
type Counters struct {
	// Faults counts chunk fault-ins (reads from the spill file).
	Faults atomic.Int64
	// Spills counts chunk spill-outs (writes to the spill file; a chunk
	// evicted twice writes only once, its on-disk copy is immutable).
	Spills atomic.Int64
}

// Options configures a Store.
type Options struct {
	// ChunkRecords is the number of records per column chunk; <= 0 uses
	// DefaultChunkRecords.
	ChunkRecords int
	// ByteBudget caps the resident column bytes; sealed chunks beyond
	// the budget spill to disk, least recently used first. 0 disables
	// spilling (everything stays resident).
	ByteBudget int64
	// SpillDir is the directory holding the spill file ("" uses the
	// system temp directory). The file is unlinked at creation, so its
	// space is reclaimed when the store is garbage collected or the
	// process exits, whichever comes first.
	SpillDir string
	// Counters, when non-nil, receives the store's cumulative spill
	// accounting (shared across stores by the registry).
	Counters *Counters
}

// chunk is one fixed-size segment of the column arenas. Chunks seal
// when full; sealed chunks are immutable and therefore spillable. The
// unsealed tail chunk is always resident.
type chunk struct {
	lat, lon, minute []float64
	user             []uint32

	n        int   // records in the chunk
	sealed   bool  // full, immutable from here on
	resident bool  // column slices are populated
	spilled  bool  // an immutable on-disk copy exists at off
	off      int64 // spill-file offset, valid when spilled
	pins     int   // active readers; pinned chunks are not evictable
	tick     int64 // LRU clock value of the last touch
}

// Store is a columnar record store. All methods are safe for concurrent
// use; appends are serialized against each other, while readers
// (snapshot views) only take the chunk lock briefly to pin chunks.
type Store struct {
	opt  Options
	meta cdr.Meta

	// appendMu serializes whole AppendStream calls so their atomic
	// commit-or-rollback semantics hold without blocking readers for
	// the duration of a stream.
	appendMu sync.Mutex

	mu       sync.Mutex
	chunks   []*chunk
	n        int      // committed records
	dict     []string // user id -> identifier
	dictIdx  map[string]uint32
	resident int64 // resident column bytes
	clock    int64 // LRU clock
	spill    *os.File
	spillEnd int64 // allocation cursor in the spill file
}

// New returns an empty store for a dataset with the given metadata.
func New(meta cdr.Meta, opt Options) *Store {
	if opt.ChunkRecords <= 0 {
		opt.ChunkRecords = DefaultChunkRecords
	}
	return &Store{
		opt:     opt,
		meta:    meta,
		dictIdx: make(map[string]uint32),
	}
}

// Meta returns the dataset metadata.
func (s *Store) Meta() cdr.Meta {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meta
}

// SetSpanDays updates the nominal recording span (appends can extend
// it). Snapshots taken before the change keep the old value.
func (s *Store) SetSpanDays(days int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta.SpanDays = days
}

// Len returns the committed record count — the authoritative figure the
// registry enforces its record cap against.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Users returns the number of distinct subscribers ever committed.
func (s *Store) Users() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dict)
}

// Stats is a point-in-time snapshot of the store's footprint.
type Stats struct {
	Records        int
	Users          int
	Chunks         int
	ResidentChunks int
	SpilledChunks  int   // chunks currently on disk only
	ResidentBytes  int64 // resident column bytes
}

// Stats returns the store's current footprint.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Records:       s.n,
		Users:         len(s.dict),
		Chunks:        len(s.chunks),
		ResidentBytes: s.resident,
	}
	for _, c := range s.chunks {
		if c.resident {
			st.ResidentChunks++
		} else {
			st.SpilledChunks++
		}
	}
	return st
}

// Close releases the spill file. Views faulting a spilled chunk after
// Close fail; the registry only closes stores at daemon shutdown, and a
// store dropped without Close is cleaned up by the runtime (the spill
// file is unlinked at creation and the descriptor has a finalizer).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spill == nil {
		return nil
	}
	err := s.spill.Close()
	s.spill = nil
	return err
}

// AppendStream consumes records from next until io.EOF and commits them
// atomically: any decode/validation error from next, any spill failure,
// or exceeding room rolls the store back to its pre-call state. room
// caps the records admitted by this call (< 0 means unlimited); when
// the stream holds more, the call fails with ErrTooManyRecords without
// buffering past the cap. Because the cap check runs against the
// store's committed count inside the same critical path that commits,
// it is authoritative: concurrent appends cannot double-admit.
func (s *Store) AppendStream(next func() (cdr.Record, error), room int) (added int, err error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	return s.appendStream(next, room)
}

// AppendStreamMax is AppendStream with the cap expressed as a bound on
// the committed total (< 0 = unbounded) instead of per-call room. The
// room is derived from the committed count after append serialization,
// so the bound holds under concurrent appends: this is the registry's
// record-cap enforcement point, accounted against the store's own
// authoritative count rather than a metadata copy that may lag.
func (s *Store) AppendStreamMax(next func() (cdr.Record, error), max int) (added int, err error) {
	s.appendMu.Lock()
	defer s.appendMu.Unlock()
	room := -1
	if max >= 0 {
		s.mu.Lock()
		room = max - s.n
		s.mu.Unlock()
		if room < 0 {
			room = 0
		}
	}
	return s.appendStream(next, room)
}

// appendStream is the body of the append entry points; the caller holds
// s.appendMu.
func (s *Store) appendStream(next func() (cdr.Record, error), room int) (added int, err error) {
	s.mu.Lock()
	n0, dict0 := s.n, len(s.dict)
	s.mu.Unlock()

	defer func() {
		if err != nil {
			s.mu.Lock()
			s.rollbackLocked(n0, dict0)
			s.mu.Unlock()
		}
	}()

	for {
		rec, rerr := next()
		if rerr == io.EOF {
			return added, nil
		}
		if rerr != nil {
			return 0, rerr
		}
		if room >= 0 && added >= room {
			return 0, ErrTooManyRecords
		}
		s.mu.Lock()
		aerr := s.appendLocked(rec)
		s.mu.Unlock()
		if aerr != nil {
			return 0, aerr
		}
		added++
	}
}

// Append validates and commits a batch of records atomically (the
// cdr.Table.Append analogue, used by tests and direct embedders).
func (s *Store) Append(recs ...cdr.Record) error {
	for i, r := range recs {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("colstore: appended record %d: %w", i, err)
		}
	}
	i := 0
	_, err := s.AppendStream(func() (cdr.Record, error) {
		if i == len(recs) {
			return cdr.Record{}, io.EOF
		}
		r := recs[i]
		i++
		return r, nil
	}, -1)
	return err
}

// appendLocked commits one record. Caller holds s.mu.
func (s *Store) appendLocked(r cdr.Record) error {
	var tail *chunk
	if len(s.chunks) > 0 {
		if c := s.chunks[len(s.chunks)-1]; !c.sealed {
			tail = c
		}
	}
	if tail == nil {
		tail = &chunk{
			lat:      make([]float64, 0, s.opt.ChunkRecords),
			lon:      make([]float64, 0, s.opt.ChunkRecords),
			minute:   make([]float64, 0, s.opt.ChunkRecords),
			user:     make([]uint32, 0, s.opt.ChunkRecords),
			resident: true,
		}
		s.chunks = append(s.chunks, tail)
		s.resident += s.chunkBytes()
		if err := s.evictLocked(); err != nil {
			return err
		}
	}
	id, ok := s.dictIdx[r.User]
	if !ok {
		if len(s.dict) >= math.MaxUint32 {
			return fmt.Errorf("colstore: user dictionary overflow")
		}
		id = uint32(len(s.dict))
		s.dict = append(s.dict, r.User)
		s.dictIdx[r.User] = id
	}
	// The tail chunk's backing arrays are preallocated at full chunk
	// capacity, so these appends never reallocate: slice headers read by
	// concurrent views (under s.mu) stay valid and element writes land
	// beyond any committed row a view can reference.
	tail.lat = append(tail.lat, r.Pos.Lat)
	tail.lon = append(tail.lon, r.Pos.Lon)
	tail.minute = append(tail.minute, r.Minute)
	tail.user = append(tail.user, id)
	tail.n++
	s.n++
	if tail.n == s.opt.ChunkRecords {
		tail.sealed = true
		return s.evictLocked()
	}
	return nil
}

// rollbackLocked restores the store to exactly n0 committed records and
// dict0 dictionary entries, undoing a failed append. Views can only
// reference rows below their snapshot length <= n0, so dropping the
// newer chunks and truncating the tail never invalidates a reader.
// Caller holds s.mu.
func (s *Store) rollbackLocked(n0, dict0 int) {
	keepChunks := (n0 + s.opt.ChunkRecords - 1) / s.opt.ChunkRecords
	for _, c := range s.chunks[keepChunks:] {
		if c.resident {
			s.resident -= s.chunkBytes()
		}
		// A spilled copy of a dropped chunk leaves a hole in the spill
		// file; the file is temporary and appends rarely fail, so the
		// space is simply not reused.
	}
	s.chunks = s.chunks[:keepChunks]
	if k := n0 % s.opt.ChunkRecords; k != 0 || n0 == 0 {
		if len(s.chunks) > 0 {
			// The pre-append tail was partial, hence unsealed, hence never
			// evicted: it is resident and truncatable in place.
			c := s.chunks[len(s.chunks)-1]
			c.lat = c.lat[:k]
			c.lon = c.lon[:k]
			c.minute = c.minute[:k]
			c.user = c.user[:k]
			c.n = k
			c.sealed = false
		}
	}
	for _, u := range s.dict[dict0:] {
		delete(s.dictIdx, u)
	}
	s.dict = s.dict[:dict0]
	s.n = n0
}

// chunkBytes is the resident footprint of one chunk's columns. Chunks
// preallocate full capacity, so the footprint is constant per chunk.
func (s *Store) chunkBytes() int64 {
	return int64(s.opt.ChunkRecords) * bytesPerRecord
}

// evictLocked spills least-recently-used sealed chunks until the
// resident bytes fit the budget. Pinned chunks and the unsealed tail
// are never evicted, so a budget smaller than the pinned set degrades
// to keeping everything needed resident rather than failing. Caller
// holds s.mu.
func (s *Store) evictLocked() error {
	if s.opt.ByteBudget <= 0 {
		return nil
	}
	for s.resident > s.opt.ByteBudget {
		var victim *chunk
		for _, c := range s.chunks {
			if !c.resident || !c.sealed || c.pins > 0 {
				continue
			}
			if victim == nil || c.tick < victim.tick {
				victim = c
			}
		}
		if victim == nil {
			return nil
		}
		if err := s.spillLocked(victim); err != nil {
			return err
		}
		victim.lat, victim.lon, victim.minute, victim.user = nil, nil, nil, nil
		victim.resident = false
		s.resident -= s.chunkBytes()
	}
	return nil
}

// spillLocked ensures the chunk has an on-disk copy. Sealed chunks are
// immutable, so a chunk evicted more than once writes only on the first
// eviction. Caller holds s.mu.
func (s *Store) spillLocked(c *chunk) error {
	if c.spilled {
		return nil
	}
	if s.spill == nil {
		// The configured spill directory may not exist yet (e.g. a fresh
		// gloved -data-dir whose spill/ subdirectory is created lazily).
		if s.opt.SpillDir != "" {
			if err := os.MkdirAll(s.opt.SpillDir, 0o755); err != nil {
				return fmt.Errorf("colstore: creating spill dir: %w", err)
			}
		}
		f, err := os.CreateTemp(s.opt.SpillDir, "colstore-*.spill")
		if err != nil {
			return fmt.Errorf("colstore: creating spill file: %w", err)
		}
		// Unlink immediately: the descriptor keeps the file alive, and
		// the space is reclaimed no matter how the process ends.
		if err := os.Remove(f.Name()); err != nil {
			f.Close()
			return fmt.Errorf("colstore: unlinking spill file: %w", err)
		}
		s.spill = f
	}
	buf := encodeChunk(c)
	off := s.spillEnd
	if _, err := s.spill.WriteAt(buf, off); err != nil {
		return fmt.Errorf("colstore: spilling chunk: %w", err)
	}
	s.spillEnd += int64(len(buf))
	c.off = off
	c.spilled = true
	if s.opt.Counters != nil {
		s.opt.Counters.Spills.Add(1)
	}
	return nil
}

// faultLocked loads a spilled chunk back into memory and re-applies the
// budget (which may evict a colder chunk instead). Caller holds s.mu.
func (s *Store) faultLocked(c *chunk) error {
	if c.resident {
		return nil
	}
	if s.spill == nil {
		return fmt.Errorf("colstore: faulting chunk after Close")
	}
	buf := make([]byte, int(s.chunkBytes()))
	if _, err := s.spill.ReadAt(buf, c.off); err != nil {
		return fmt.Errorf("colstore: faulting chunk: %w", err)
	}
	decodeChunk(c, buf, s.opt.ChunkRecords)
	c.resident = true
	s.resident += s.chunkBytes()
	if s.opt.Counters != nil {
		s.opt.Counters.Faults.Add(1)
	}
	return s.evictLocked()
}

// cols is a borrowed reference to one chunk's column slices.
type cols struct {
	lat, lon, minute []float64
	user             []uint32
}

// acquire pins chunk ci and returns its columns; release unpins. While
// pinned the chunk cannot be evicted, so the returned slices stay valid
// outside the lock. Spilled chunks fault in (only sealed full chunks
// ever spill, so every fault restores a complete chunk).
func (s *Store) acquire(ci int) (cols, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.chunks[ci]
	// Pin before faulting: the fault re-applies the byte budget, and the
	// pin keeps the freshly loaded chunk itself off the victim list.
	c.pins++
	s.clock++
	c.tick = s.clock
	if err := s.faultLocked(c); err != nil {
		c.pins--
		return cols{}, nil, err
	}
	release := func() {
		s.mu.Lock()
		c.pins--
		s.mu.Unlock()
	}
	return cols{lat: c.lat, lon: c.lon, minute: c.minute, user: c.user}, release, nil
}

// encodeChunk serializes a sealed chunk's columns: the three float64
// columns then the uint32 column, little-endian, fixed width (sealed
// chunks are always full).
func encodeChunk(c *chunk) []byte {
	n := len(c.lat)
	buf := make([]byte, n*bytesPerRecord)
	o := 0
	for _, col := range [][]float64{c.lat, c.lon, c.minute} {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[o:], math.Float64bits(v))
			o += 8
		}
	}
	for _, v := range c.user {
		binary.LittleEndian.PutUint32(buf[o:], v)
		o += 4
	}
	return buf
}

// decodeChunk rebuilds a full chunk's columns from its encoding.
func decodeChunk(c *chunk, buf []byte, n int) {
	f := make([]float64, 3*n)
	o := 0
	for i := range f {
		f[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[o:]))
		o += 8
	}
	u := make([]uint32, n)
	for i := range u {
		u[i] = binary.LittleEndian.Uint32(buf[o:])
		o += 4
	}
	c.lat = f[0*n : 1*n : 1*n]
	c.lon = f[1*n : 2*n : 2*n]
	c.minute = f[2*n : 3*n : 3*n]
	c.user = u
}
