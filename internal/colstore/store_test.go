package colstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/geo"
)

func testMeta() cdr.Meta {
	return cdr.Meta{Center: geo.LatLon{Lat: 7.54, Lon: -5.55}, SpanDays: 9}
}

// testRecords builds a deterministic record set spanning several users,
// chunks, and time windows, with coordinates that exercise non-trivial
// float formatting.
func testRecords(n, users int) []cdr.Record {
	recs := make([]cdr.Record, n)
	for i := range recs {
		recs[i] = cdr.Record{
			User:   fmt.Sprintf("u%03d", i%users),
			Pos:    geo.LatLon{Lat: 7.5 + float64(i%17)*0.013, Lon: -5.5 + float64(i%13)*0.017},
			Minute: float64(i) * 7.3,
		}
	}
	return recs
}

func newTestStore(t *testing.T, recs []cdr.Record, opt Options) *Store {
	t.Helper()
	if opt.SpillDir == "" {
		opt.SpillDir = t.TempDir()
	}
	s := New(testMeta(), opt)
	t.Cleanup(func() { s.Close() })
	if err := s.Append(recs...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return s
}

func sourceCSV(t *testing.T, s cdr.Source) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := cdr.WriteSourceCSV(&buf, s); err != nil {
		t.Fatalf("WriteSourceCSV: %v", err)
	}
	return buf.Bytes()
}

// TestEquivalenceWithTable pins the tentpole invariant: the columnar
// backend is bit-identical to the in-memory table for every Source
// operation — record streams, CSV bytes, fingerprint datasets, window
// splits, and user shards.
func TestEquivalenceWithTable(t *testing.T) {
	recs := testRecords(1000, 37)
	meta := testMeta()
	table := &cdr.Table{Records: recs, Center: meta.Center, SpanDays: meta.SpanDays}
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"resident", Options{ChunkRecords: 128}},
		{"spilling", Options{ChunkRecords: 64, ByteBudget: 3 * 64 * bytesPerRecord}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			view := newTestStore(t, recs, tc.opt).Snapshot()

			if got, want := view.NumRecords(), table.NumRecords(); got != want {
				t.Fatalf("NumRecords = %d, want %d", got, want)
			}
			if got, want := view.NumUsers(), table.NumUsers(); got != want {
				t.Fatalf("NumUsers = %d, want %d", got, want)
			}
			if got, want := view.TableMeta(), table.TableMeta(); got != want {
				t.Fatalf("TableMeta = %+v, want %+v", got, want)
			}
			if got, want := sourceCSV(t, view), sourceCSV(t, table); !bytes.Equal(got, want) {
				t.Fatalf("CSV round-trip differs between columnar and in-RAM paths")
			}

			vd, err := view.BuildDataset()
			if err != nil {
				t.Fatalf("view BuildDataset: %v", err)
			}
			td, err := table.BuildDataset()
			if err != nil {
				t.Fatalf("table BuildDataset: %v", err)
			}
			if !reflect.DeepEqual(vd, td) {
				t.Fatalf("BuildDataset differs between columnar and in-RAM paths")
			}

			const win = 36 * time.Hour
			vw, err := view.WindowSplit(win)
			if err != nil {
				t.Fatalf("view WindowSplit: %v", err)
			}
			tw, err := table.WindowSplit(win)
			if err != nil {
				t.Fatalf("table WindowSplit: %v", err)
			}
			if len(vw) != len(tw) {
				t.Fatalf("WindowSplit yields %d windows, want %d", len(vw), len(tw))
			}
			for i := range vw {
				if vw[i].Index != tw[i].Index || vw[i].StartMinute != tw[i].StartMinute || vw[i].EndMinute != tw[i].EndMinute {
					t.Fatalf("window %d bounds differ: %+v vs %+v", i, vw[i], tw[i])
				}
				if got, want := vw[i].Source.TableMeta(), tw[i].Source.TableMeta(); got != want {
					t.Fatalf("window %d meta = %+v, want %+v", i, got, want)
				}
				if got, want := vw[i].Source.NumUsers(), tw[i].Source.NumUsers(); got != want {
					t.Fatalf("window %d users = %d, want %d", i, got, want)
				}
				if got, want := sourceCSV(t, vw[i].Source), sourceCSV(t, tw[i].Source); !bytes.Equal(got, want) {
					t.Fatalf("window %d records differ", i)
				}
			}

			vs := view.UserShards(4, 99)
			ts := table.UserShards(4, 99)
			if len(vs) != len(ts) {
				t.Fatalf("UserShards yields %d shards, want %d", len(vs), len(ts))
			}
			for i := range vs {
				if got, want := vs[i].NumUsers(), ts[i].NumUsers(); got != want {
					t.Fatalf("shard %d users = %d, want %d", i, got, want)
				}
				if got, want := sourceCSV(t, vs[i]), sourceCSV(t, ts[i]); !bytes.Equal(got, want) {
					t.Fatalf("shard %d records differ", i)
				}
			}
		})
	}
}

// TestSpillRespectsBudget pins the memory bound: with a budget of three
// chunks, the store spills the rest, every read still sees every
// record, and the resident footprint never exceeds the budget once the
// working set is sealed.
func TestSpillRespectsBudget(t *testing.T) {
	const chunk = 64
	budget := int64(3 * chunk * bytesPerRecord)
	var counters Counters
	recs := testRecords(10*chunk+7, 11)
	s := newTestStore(t, recs, Options{ChunkRecords: chunk, ByteBudget: budget, Counters: &counters})

	st := s.Stats()
	if st.SpilledChunks == 0 {
		t.Fatalf("no chunks spilled under budget %d: %+v", budget, st)
	}
	// The unsealed tail is always resident, so the bound is budget plus
	// at most one chunk.
	if max := budget + int64(chunk*bytesPerRecord); st.ResidentBytes > max {
		t.Fatalf("resident bytes %d exceed budget bound %d", st.ResidentBytes, max)
	}
	if counters.Spills.Load() == 0 {
		t.Fatalf("spill counter not incremented")
	}

	var got []cdr.Record
	if err := s.Snapshot().EachRecord(func(r cdr.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("EachRecord: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("scan over spilled store lost or reordered records")
	}
	if counters.Faults.Load() == 0 {
		t.Fatalf("fault counter not incremented by a scan over spilled chunks")
	}
	if st := s.Stats(); st.ResidentBytes > budget+int64(chunk*bytesPerRecord) {
		t.Fatalf("resident bytes %d exceed budget after scan", st.ResidentBytes)
	}
}

// TestAppendStreamRollback pins the atomicity contract: a mid-stream
// error leaves the store byte-identical to its pre-append state,
// including the user dictionary.
func TestAppendStreamRollback(t *testing.T) {
	recs := testRecords(150, 7)
	s := newTestStore(t, recs, Options{ChunkRecords: 64})
	before := sourceCSV(t, s.Snapshot())
	usersBefore := s.Users()

	boom := errors.New("boom")
	extra := testRecords(100, 40) // new users that must be rolled back
	i := 0
	_, err := s.AppendStream(func() (cdr.Record, error) {
		if i == len(extra) {
			return cdr.Record{}, boom
		}
		r := extra[i]
		i++
		return r, nil
	}, -1)
	if !errors.Is(err, boom) {
		t.Fatalf("AppendStream error = %v, want %v", err, boom)
	}
	if got := s.Len(); got != len(recs) {
		t.Fatalf("Len after rollback = %d, want %d", got, len(recs))
	}
	if got := s.Users(); got != usersBefore {
		t.Fatalf("Users after rollback = %d, want %d", got, usersBefore)
	}
	if got := sourceCSV(t, s.Snapshot()); !bytes.Equal(got, before) {
		t.Fatalf("records differ after rollback")
	}

	// The rolled-back dictionary entries must be reusable: appending the
	// same users again must succeed and count them once.
	if err := s.Append(extra[:10]...); err != nil {
		t.Fatalf("Append after rollback: %v", err)
	}
	if got, want := s.Len(), len(recs)+10; got != want {
		t.Fatalf("Len after re-append = %d, want %d", got, want)
	}
}

// TestAppendStreamRoom pins the cap boundary: exactly room records are
// admitted, one more fails with ErrTooManyRecords and rolls back.
func TestAppendStreamRoom(t *testing.T) {
	s := newTestStore(t, nil, Options{ChunkRecords: 16})
	recs := testRecords(33, 5)
	feed := func(rs []cdr.Record) func() (cdr.Record, error) {
		i := 0
		return func() (cdr.Record, error) {
			if i == len(rs) {
				return cdr.Record{}, io.EOF
			}
			r := rs[i]
			i++
			return r, nil
		}
	}
	added, err := s.AppendStream(feed(recs[:20]), 20)
	if err != nil || added != 20 {
		t.Fatalf("AppendStream at exactly room: added=%d err=%v", added, err)
	}
	if _, err := s.AppendStream(feed(recs[20:]), 12); !errors.Is(err, ErrTooManyRecords) {
		t.Fatalf("AppendStream beyond room: err=%v, want ErrTooManyRecords", err)
	}
	if got := s.Len(); got != 20 {
		t.Fatalf("Len after cap violation = %d, want 20 (rollback)", got)
	}
}

// TestSnapshotIsolation pins the copy-on-write contract: a snapshot
// taken before an append never observes the appended rows, even while
// chunks spill and fault underneath it.
func TestSnapshotIsolation(t *testing.T) {
	recs := testRecords(200, 9)
	s := newTestStore(t, recs[:120], Options{ChunkRecords: 32, ByteBudget: 2 * 32 * bytesPerRecord})
	snap := s.Snapshot()
	want := sourceCSV(t, snap)
	if err := s.Append(recs[120:]...); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := sourceCSV(t, snap); !bytes.Equal(got, want) {
		t.Fatalf("snapshot observed appended rows")
	}
	if got, want := snap.NumRecords(), 120; got != want {
		t.Fatalf("snapshot NumRecords = %d, want %d", got, want)
	}
	if got, want := s.Snapshot().NumRecords(), 200; got != want {
		t.Fatalf("fresh snapshot NumRecords = %d, want %d", got, want)
	}
}

// TestConcurrentReadersAndAppends exercises the pin/evict/append
// machinery under the race detector: several goroutines scan, split and
// shard snapshots while appends land, all over a store small enough
// that every reader faults spilled chunks continuously.
func TestConcurrentReadersAndAppends(t *testing.T) {
	recs := testRecords(600, 23)
	s := newTestStore(t, recs[:300], Options{ChunkRecords: 32, ByteBudget: 2 * 32 * bytesPerRecord})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		snap := s.Snapshot()
		wantLen := snap.NumRecords()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				n := 0
				if err := snap.EachRecord(func(r cdr.Record) error {
					n++
					return nil
				}); err != nil {
					t.Errorf("EachRecord: %v", err)
					return
				}
				if n != wantLen {
					t.Errorf("scan saw %d records, want %d", n, wantLen)
					return
				}
				if _, err := snap.WindowSplit(24 * time.Hour); err != nil {
					t.Errorf("WindowSplit: %v", err)
					return
				}
				snap.UserShards(3, 7)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 300; i < 600; i += 50 {
			if err := s.Append(recs[i : i+50]...); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := s.Len(); got != 600 {
		t.Fatalf("Len = %d, want 600", got)
	}
}

// TestTailWindowsEquivalence pins the columnar tail cursor to the
// in-memory table's: identical fragments for every cursor position,
// including cursors that land mid-chunk (the offset arithmetic of the
// chunk-pinning row scan), for both resident and spilling stores.
func TestTailWindowsEquivalence(t *testing.T) {
	recs := testRecords(500, 23)
	meta := testMeta()
	table := &cdr.Table{Records: recs, Center: meta.Center, SpanDays: meta.SpanDays}
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"resident", Options{ChunkRecords: 64}},
		{"spilling", Options{ChunkRecords: 64, ByteBudget: 2 * 64 * bytesPerRecord}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			view := newTestStore(t, recs, tc.opt).Snapshot()
			const win = 12 * time.Hour
			// 0 = full range; 37, 129, 200 land mid-chunk; 448 inside the
			// last partial chunk; 500 = at end.
			for _, from := range []int{0, 37, 64, 129, 200, 448, 500} {
				vf, err := view.TailWindows(from, win)
				if err != nil {
					t.Fatalf("view tail from %d: %v", from, err)
				}
				tf, err := table.TailWindows(from, win)
				if err != nil {
					t.Fatalf("table tail from %d: %v", from, err)
				}
				if len(vf) != len(tf) {
					t.Fatalf("tail from %d: %d fragments, want %d", from, len(vf), len(tf))
				}
				for i := range vf {
					if vf[i].Index != tf[i].Index || vf[i].StartMinute != tf[i].StartMinute || vf[i].EndMinute != tf[i].EndMinute {
						t.Fatalf("tail from %d fragment %d bounds differ: %+v vs %+v", from, i, vf[i], tf[i])
					}
					if got, want := sourceCSV(t, vf[i].Source), sourceCSV(t, tf[i].Source); !bytes.Equal(got, want) {
						t.Fatalf("tail from %d fragment %d records differ", from, i)
					}
				}
			}
			if _, err := view.TailWindows(-1, win); err == nil {
				t.Error("negative cursor accepted")
			}
			if _, err := view.TailWindows(len(recs)+1, win); err == nil {
				t.Error("cursor past end accepted")
			}
		})
	}
}
