package colstore

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// View is a frozen cdr.Source over a store: a snapshot of the first n
// committed rows, or a row selection derived from one (a time window or
// a user shard). Snapshots are O(1) — no rows are copied; appends only
// ever add rows beyond n and never move committed columns, so a view's
// rows are immutable. Views are safe for concurrent readers; they pin
// chunks while scanning so the budget-driven eviction never frees
// columns mid-read.
type View struct {
	s    *Store
	meta cdr.Meta
	// dict is the frozen dictionary prefix covering every user id a row
	// of this view can reference.
	dict []string
	// rows selects the view's records (ascending); nil means the prefix
	// [0, n).
	rows  []int64
	n     int // record count
	users int // distinct subscribers among the view's rows
	// fail is a sticky error from the row scan that derived this view
	// (UserShards cannot report one directly); every read surfaces it.
	fail error
}

// Snapshot returns a frozen view of the store's committed records. The
// snapshot observes exactly the rows committed before the call,
// regardless of concurrent appends — the registry's copy-on-write
// contract, at O(1) cost.
func (s *Store) Snapshot() *View {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := len(s.dict)
	return &View{
		s:     s,
		meta:  s.meta,
		dict:  s.dict[:d:d],
		n:     s.n,
		users: d,
	}
}

// TableMeta returns the dataset metadata frozen at snapshot time.
func (v *View) TableMeta() cdr.Meta { return v.meta }

// NumRecords returns the view's record count.
func (v *View) NumRecords() int { return v.n }

// NumUsers returns the number of distinct subscribers in the view.
func (v *View) NumUsers() int { return v.users }

// eachRow streams the view's rows in order, handing fn the raw column
// values. Chunks are pinned for the duration of their scan only.
func (v *View) eachRow(fn func(lat, lon, minute float64, user uint32) error) error {
	return v.eachRowFrom(0, fn)
}

// eachRowFrom streams the view's rows starting at view-relative position
// `from` — the column-store analogue of slicing Records[from:]. In
// prefix mode the scan starts inside the chunk holding row `from`
// instead of walking (and pinning) every chunk before it, which is what
// keeps a follow executor's per-append cost proportional to the appended
// volume rather than the feed size.
func (v *View) eachRowFrom(from int, fn func(lat, lon, minute float64, user uint32) error) error {
	if v.fail != nil {
		return v.fail
	}
	if from >= v.n {
		return nil
	}
	k := v.s.opt.ChunkRecords
	if v.rows == nil {
		off := from % k
		for start := from - off; start < v.n; start += k {
			end := start + k
			if end > v.n {
				end = v.n
			}
			c, release, err := v.s.acquire(start / k)
			if err != nil {
				return err
			}
			for i := off; i < end-start; i++ {
				if err := fn(c.lat[i], c.lon[i], c.minute[i], c.user[i]); err != nil {
					release()
					return err
				}
			}
			release()
			off = 0
		}
		return nil
	}
	cur := -1
	var c cols
	var release func()
	for _, r := range v.rows[from:] {
		ci := int(r) / k
		if ci != cur {
			if release != nil {
				release()
				release = nil
			}
			var err error
			c, release, err = v.s.acquire(ci)
			if err != nil {
				return err
			}
			cur = ci
		}
		i := int(r) % k
		if err := fn(c.lat[i], c.lon[i], c.minute[i], c.user[i]); err != nil {
			release()
			return err
		}
	}
	if release != nil {
		release()
	}
	return nil
}

// EachRecord streams the view's records in order.
func (v *View) EachRecord(fn func(cdr.Record) error) error {
	return v.eachRow(func(lat, lon, minute float64, user uint32) error {
		return fn(cdr.Record{
			User:   v.dict[user],
			Pos:    geo.LatLon{Lat: lat, Lon: lon},
			Minute: minute,
		})
	})
}

// BuildDataset converts the view into a core fingerprint dataset with
// exactly the arithmetic of cdr.Table.BuildDataset — same projection,
// same grid snapping, same per-user sample order (record order), users
// emitted in sorted identifier order — so both backends produce
// bit-identical fingerprints. The conversion streams over the columns;
// no []cdr.Record is ever materialized.
func (v *View) BuildDataset() (*core.Dataset, error) {
	proj, err := geo.NewProjection(v.meta.Center)
	if err != nil {
		return nil, err
	}
	grid := geo.Grid{}
	perUser := make([][]core.Sample, len(v.dict))
	err = v.eachRow(func(lat, lon, minute float64, user uint32) error {
		pt, err := proj.Forward(geo.LatLon{Lat: lat, Lon: lon})
		if err != nil {
			return fmt.Errorf("colstore: user %s: %w", v.dict[user], err)
		}
		box := grid.BoxAround(pt)
		perUser[user] = append(perUser[user], core.Sample{
			X: box.X, DX: box.DX,
			Y: box.Y, DY: box.DY,
			T: minute, DT: 1,
			Weight: 1,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	type userGroup struct {
		name string
		id   uint32
	}
	groups := make([]userGroup, 0, v.users)
	for id, samples := range perUser {
		if len(samples) > 0 {
			groups = append(groups, userGroup{name: v.dict[id], id: uint32(id)})
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].name < groups[j].name })
	fps := make([]*core.Fingerprint, 0, len(groups))
	for _, g := range groups {
		fps = append(fps, core.NewFingerprint(g.name, perUser[g.id]))
	}
	return core.NewDataset(fps), nil
}

// WindowSplit partitions the view's rows into consecutive time windows
// of duration d, mirroring cdr.Table.SplitByWindow: windows align at
// multiples of d from minute 0, rows keep their order, empty windows
// are omitted, and each window's nominal span rounds the duration up to
// whole days.
func (v *View) WindowSplit(d time.Duration) ([]cdr.SourceWindow, error) {
	return v.tailWindows(0, d)
}

// TailWindows implements the streaming window cursor: only the view's
// rows at positions [fromRecord, NumRecords()) are bucketed, mirroring
// cdr.Table.TailWindows.
func (v *View) TailWindows(fromRecord int, d time.Duration) ([]cdr.SourceWindow, error) {
	if fromRecord < 0 || fromRecord > v.n {
		return nil, fmt.Errorf("colstore: tail cursor %d out of range [0, %d]", fromRecord, v.n)
	}
	return v.tailWindows(fromRecord, d)
}

// tailWindows buckets the view's rows from view-relative position `from`
// into time windows; from == 0 is a full WindowSplit.
func (v *View) tailWindows(from int, d time.Duration) ([]cdr.SourceWindow, error) {
	w := d.Minutes()
	if w <= 0 {
		return nil, fmt.Errorf("colstore: window duration %v, need > 0", d)
	}
	buckets := make(map[int][]int64)
	row := int64(from)
	err := v.eachRowFrom(from, func(_, _, minute float64, _ uint32) error {
		idx := int(minute / w)
		buckets[idx] = append(buckets[idx], v.rowAt(row))
		row++
		return nil
	})
	if err != nil {
		return nil, err
	}
	idxs := make([]int, 0, len(buckets))
	for i := range buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)

	spanDays := int(math.Ceil(w / cdr.MinutesPerDay))
	if spanDays < 1 {
		spanDays = 1
	}
	out := make([]cdr.SourceWindow, 0, len(idxs))
	seen := make([]int32, len(v.dict))
	for stamp, i := range idxs {
		rows := buckets[i]
		wm := v.meta
		wm.SpanDays = spanDays
		out = append(out, cdr.SourceWindow{
			Index:       i,
			StartMinute: float64(i) * w,
			EndMinute:   float64(i+1) * w,
			Source: &View{
				s:     v.s,
				meta:  wm,
				dict:  v.dict,
				rows:  rows,
				n:     len(rows),
				users: v.countUsers(rows, seen, int32(stamp+1)),
			},
		})
	}
	return out, nil
}

// rowAt maps a view-relative row position to an absolute store row.
func (v *View) rowAt(i int64) int64 {
	if v.rows == nil {
		return i
	}
	return v.rows[i]
}

// countUsers counts distinct user ids among the given absolute rows,
// reusing a stamp array across calls (stamp must be unique per call).
func (v *View) countUsers(rows []int64, seen []int32, stamp int32) int {
	sub := &View{s: v.s, dict: v.dict, rows: rows, n: len(rows)}
	users := 0
	// Row data is committed and immutable, so the scan cannot fail other
	// than by a spill I/O error; that error is deferred to the first real
	// read of the window (the count stays a best-effort 0 then).
	_ = sub.eachRow(func(_, _, _ float64, user uint32) error {
		if seen[user] != stamp {
			seen[user] = stamp
			users++
		}
		return nil
	})
	return users
}

// UserShards partitions the view into at most n disjoint sources by the
// stable user hash shared with cdr.Table.ShardByUser, never splitting a
// subscriber. Empty shards are dropped.
func (v *View) UserShards(n int, seed uint64) []cdr.Source {
	if n <= 1 {
		c := *v
		return []cdr.Source{&c}
	}
	assigned := make([]int32, len(v.dict))
	for i := range assigned {
		assigned[i] = -1
	}
	buckets := make([][]int64, n)
	usersPer := make([]int, n)
	row := int64(0)
	scanErr := v.eachRow(func(_, _, _ float64, user uint32) error {
		b := assigned[user]
		if b < 0 {
			b = int32(cdr.ShardOfUser(v.dict[user], n, seed))
			assigned[user] = b
			usersPer[b]++
		}
		buckets[b] = append(buckets[b], v.rowAt(row))
		row++
		return nil
	})
	out := make([]cdr.Source, 0, n)
	for b, rows := range buckets {
		if len(rows) == 0 {
			continue
		}
		out = append(out, &View{
			s:     v.s,
			meta:  v.meta,
			dict:  v.dict,
			rows:  rows,
			n:     len(rows),
			users: usersPer[b],
			fail:  scanErr,
		})
	}
	if scanErr != nil && len(out) == 0 {
		c := *v
		c.fail = scanErr
		out = append(out, &c)
	}
	return out
}
