package core

import "math"

// FingerprintBounds caches the spatiotemporal bounding volume of a
// fingerprint. It yields a cheap lower bound on the fingerprint stretch
// effort to any other fingerprint, used to prune the O(|M|^2) pair
// computations of the anonymizability analysis: two fingerprints whose
// bounding boxes are far apart (e.g. subscribers of different cities)
// cannot have a low Δ_ab, so the exact Eq. 10 evaluation can be skipped.
type FingerprintBounds struct {
	MinX, MaxX float64 // spatial bounding box, meters
	MinY, MaxY float64
	MinT, MaxT float64 // temporal range, minutes
}

// BoundsOf computes the bounding volume of a fingerprint.
func BoundsOf(f *Fingerprint) FingerprintBounds {
	b := FingerprintBounds{
		MinX: math.Inf(1), MaxX: math.Inf(-1),
		MinY: math.Inf(1), MaxY: math.Inf(-1),
		MinT: math.Inf(1), MaxT: math.Inf(-1),
	}
	for _, s := range f.Samples {
		b.MinX = math.Min(b.MinX, s.X)
		b.MaxX = math.Max(b.MaxX, s.X+s.DX)
		b.MinY = math.Min(b.MinY, s.Y)
		b.MaxY = math.Max(b.MaxY, s.Y+s.DY)
		b.MinT = math.Min(b.MinT, s.T)
		b.MaxT = math.Max(b.MaxT, s.T+s.DT)
	}
	return b
}

// gap1D returns the distance between the intervals [aLo, aHi] and
// [bLo, bHi], zero if they intersect.
func gap1D(aLo, aHi, bLo, bHi float64) float64 {
	if bLo > aHi {
		return bLo - aHi
	}
	if aLo > bHi {
		return aLo - bHi
	}
	return 0
}

// EffortLowerBound returns a lower bound on Δ_ab given only the two
// fingerprints' bounding volumes. Every sample of a lies within a's
// bounds and likewise for b, so any sample pair must be stretched across
// at least the L1 gap between the spatial boxes and the gap between the
// temporal ranges; both stretches appear in Eq. 4/7 for each side with
// weights summing to one, so the bound survives the count weighting.
func (p Params) EffortLowerBound(a, b FingerprintBounds) float64 {
	dSpace := gap1D(a.MinX, a.MaxX, b.MinX, b.MaxX) + gap1D(a.MinY, a.MaxY, b.MinY, b.MaxY)
	dTime := gap1D(a.MinT, a.MaxT, b.MinT, b.MaxT)
	if dSpace > p.MaxSpatial {
		dSpace = p.MaxSpatial
	}
	if dTime > p.MaxTemporal {
		dTime = p.MaxTemporal
	}
	return p.WSpatial*dSpace/p.MaxSpatial + p.WTemporal*dTime/p.MaxTemporal
}
