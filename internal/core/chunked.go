package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// ChunkedGloveOptions configures GloveChunked, the scalable variant of
// the algorithm. GLOVE is quadratic in the dataset size (Sec. 6.3);
// the paper addresses this with GPU parallelism, and its locality
// analysis (Sec. 7.3: most fingerprints are confined to a city-sized
// region and are hidden among neighbours of the same area) implies that
// partitioning the dataset into spatially coherent blocks and
// anonymizing the blocks independently loses little accuracy while
// turning the cost into a sum of much smaller quadratics — and the
// blocks run in parallel.
type ChunkedGloveOptions struct {
	// Glove carries the per-block options (K, Params, Merge, Suppress).
	Glove GloveOptions

	// ChunkSize is the target number of fingerprints per block; blocks
	// are at least 2*K so every block can anonymize on its own.
	ChunkSize int
}

// GloveChunked runs GLOVE independently on spatially coherent blocks of
// the dataset. The k-anonymity guarantee is unchanged — every published
// group hides at least K subscribers — because each block is anonymized
// completely; what changes is that merges never cross block boundaries,
// which can cost accuracy for fingerprints whose true nearest
// neighbours land in another block (measured in
// BenchmarkAblationChunked).
func GloveChunked(d *Dataset, opt ChunkedGloveOptions) (*Dataset, *GloveStats, error) {
	gopt := opt.Glove.withDefaults()
	if gopt.K < 2 {
		return nil, nil, fmt.Errorf("core: chunked glove k = %d, need k >= 2", gopt.K)
	}
	if opt.ChunkSize < 2*gopt.K {
		return nil, nil, fmt.Errorf("core: chunk size %d < 2k = %d", opt.ChunkSize, 2*gopt.K)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if d.Users() < gopt.K {
		return nil, nil, fmt.Errorf("core: dataset hides %d users, cannot %d-anonymize", d.Users(), gopt.K)
	}
	if d.Len() <= opt.ChunkSize {
		return Glove(d, gopt)
	}

	blocks := spatialBlocks(d, opt.ChunkSize)

	type blockResult struct {
		out   *Dataset
		stats *GloveStats
		err   error
	}
	results := parallel.Map(len(blocks), gopt.Workers, func(i int) blockResult {
		sub := &Dataset{Fingerprints: blocks[i]}
		// Per-block pair computations stay serial; parallelism comes
		// from running blocks concurrently.
		o := gopt
		o.Workers = 1
		out, st, err := Glove(sub, o)
		return blockResult{out, st, err}
	})

	total := &GloveStats{}
	var fps []*Fingerprint
	for i, r := range results {
		if r.err != nil {
			return nil, nil, fmt.Errorf("core: block %d: %w", i, r.err)
		}
		fps = append(fps, r.out.Fingerprints...)
		total.InputFingerprints += r.stats.InputFingerprints
		total.InputUsers += r.stats.InputUsers
		total.InputSamples += r.stats.InputSamples
		total.Merges += r.stats.Merges
		total.SuppressedSamples += r.stats.SuppressedSamples
		total.SuppressedPublished += r.stats.SuppressedPublished
		total.DiscardedFingerprints += r.stats.DiscardedFingerprints
		total.DiscardedUsers += r.stats.DiscardedUsers
	}
	out := &Dataset{Fingerprints: fps}
	total.OutputFingerprints = out.Len()
	total.OutputSamples = out.TotalSamples()
	return out, total, nil
}

// spatialBlocks partitions the fingerprints into blocks of roughly
// chunkSize, spatially coherent: fingerprints are ordered by the grid
// cell of their spatial centroid (column-major over ~25 km tiles, the
// scale of a large city) and split in order. Every block ends up with
// at least chunkSize/2 fingerprints because a short tail merges into
// the previous block.
func spatialBlocks(d *Dataset, chunkSize int) [][]*Fingerprint {
	type keyed struct {
		fp   *Fingerprint
		tile [2]float64
		id   string
	}
	ks := make([]keyed, d.Len())
	for i, f := range d.Fingerprints {
		var cx, cy, w float64
		for _, s := range f.Samples {
			cx += (s.X + s.DX/2) * float64(s.Weight)
			cy += (s.Y + s.DY/2) * float64(s.Weight)
			w += float64(s.Weight)
		}
		if w > 0 {
			cx /= w
			cy /= w
		}
		ks[i] = keyed{
			fp:   f,
			tile: [2]float64{math.Floor(cx / 25000), math.Floor(cy / 25000)},
			id:   f.ID,
		}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].tile[0] != ks[b].tile[0] {
			return ks[a].tile[0] < ks[b].tile[0]
		}
		if ks[a].tile[1] != ks[b].tile[1] {
			return ks[a].tile[1] < ks[b].tile[1]
		}
		return ks[a].id < ks[b].id
	})

	var blocks [][]*Fingerprint
	for start := 0; start < len(ks); start += chunkSize {
		end := start + chunkSize
		if end > len(ks) {
			end = len(ks)
		}
		block := make([]*Fingerprint, 0, end-start)
		for _, k := range ks[start:end] {
			block = append(block, k.fp)
		}
		// A tail shorter than half a chunk joins the previous block so no
		// block is too small to anonymize well.
		if len(block) < chunkSize/2 && len(blocks) > 0 {
			last := len(blocks) - 1
			blocks[last] = append(blocks[last], block...)
		} else {
			blocks = append(blocks, block)
		}
	}
	return blocks
}
