package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/parallel"
)

// ChunkedGloveOptions configures GloveChunked, the scalable variant of
// the algorithm. GLOVE is quadratic in the dataset size (Sec. 6.3);
// the paper addresses this with GPU parallelism, and its locality
// analysis (Sec. 7.3: most fingerprints are confined to a city-sized
// region and are hidden among neighbours of the same area) implies that
// partitioning the dataset into spatially coherent blocks and
// anonymizing the blocks independently loses little accuracy while
// turning the cost into a sum of much smaller quadratics — and the
// blocks run in parallel.
type ChunkedGloveOptions struct {
	// Glove carries the per-block options (K, Params, Merge, Suppress).
	Glove GloveOptions

	// ChunkSize is the target number of fingerprints per block; blocks
	// are at least 2*K so every block can anonymize on its own.
	ChunkSize int
}

// GloveChunked runs GLOVE independently on spatially coherent blocks of
// the dataset. The k-anonymity guarantee is unchanged — every published
// group hides at least K subscribers — because each block is anonymized
// completely; what changes is that merges never cross block boundaries,
// which can cost accuracy for fingerprints whose true nearest
// neighbours land in another block (measured in
// BenchmarkAblationChunked).
func GloveChunked(d *Dataset, opt ChunkedGloveOptions) (*Dataset, *GloveStats, error) {
	return GloveChunkedContext(context.Background(), d, opt)
}

// GloveChunkedContext is GloveChunked with cooperative cancellation:
// when ctx is done, no new blocks start, in-flight blocks stop at their
// next merge iteration, and ctx.Err() is returned.
func GloveChunkedContext(ctx context.Context, d *Dataset, opt ChunkedGloveOptions) (*Dataset, *GloveStats, error) {
	gopt := opt.Glove.withDefaults()
	if gopt.K < 2 {
		return nil, nil, fmt.Errorf("core: chunked glove k = %d, need k >= 2", gopt.K)
	}
	if opt.ChunkSize < 2*gopt.K {
		return nil, nil, fmt.Errorf("core: chunk size %d < 2k = %d", opt.ChunkSize, 2*gopt.K)
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if d.Users() < gopt.K {
		return nil, nil, fmt.Errorf("core: dataset hides %d users, cannot %d-anonymize", d.Users(), gopt.K)
	}
	if d.Len() <= opt.ChunkSize {
		return GloveContext(ctx, d, gopt)
	}

	blocks := spatialBlocks(d, opt.ChunkSize)

	// Blocks run concurrently and each reports progress at its own
	// (done, total) scale, so the caller's hook cannot be handed to them
	// directly: it would see interleaved scales and hit 100% when the
	// first block finishes. Aggregate instead — each block's fraction is
	// weighted by its size, the hook is serialized under a mutex, and
	// the reported done grows monotonically to the summed total.
	blockProgress := func(i, done, total int) {}
	if gopt.Progress != nil {
		weights := make([]int, len(blocks))
		var totalUnits int
		for i, b := range blocks {
			// Match the per-run total of GloveContext (merges + build
			// step): fingerprints that arrive pre-anonymized (Count >= K)
			// never enter the working set, so they contribute no merge
			// steps and must not inflate the block's weight.
			active := 0
			for _, f := range b {
				if f.Count < gopt.K {
					active++
				}
			}
			weights[i] = active + 1
			totalUnits += weights[i]
		}
		acc := make([]int, len(blocks))
		var doneUnits int
		var mu sync.Mutex
		caller := gopt.Progress
		blockProgress = func(i, done, total int) {
			if total <= 0 {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			u := done * weights[i] / total
			if u > acc[i] {
				doneUnits += u - acc[i]
				acc[i] = u
				caller(doneUnits, totalUnits)
			}
		}
	}

	type blockResult struct {
		out   *Dataset
		stats *GloveStats
		err   error
	}
	results := make([]blockResult, len(blocks))
	ferr := parallel.ForContext(ctx, len(blocks), gopt.Workers, func(i int) {
		sub := &Dataset{Fingerprints: blocks[i]}
		// Per-block pair computations stay serial; parallelism comes
		// from running blocks concurrently.
		o := gopt
		o.Workers = 1
		o.Progress = func(done, total int) { blockProgress(i, done, total) }
		out, st, err := GloveContext(ctx, sub, o)
		results[i] = blockResult{out, st, err}
	})
	if ferr != nil {
		return nil, nil, ferr
	}

	total := &GloveStats{}
	var fps []*Fingerprint
	for i, r := range results {
		if r.err != nil {
			return nil, nil, fmt.Errorf("core: block %d: %w", i, r.err)
		}
		fps = append(fps, r.out.Fingerprints...)
		total.Add(r.stats)
	}
	out := &Dataset{Fingerprints: fps}
	total.OutputFingerprints = out.Len()
	total.OutputSamples = out.TotalSamples()
	return out, total, nil
}

// spatialBlocks partitions the fingerprints into blocks of roughly
// chunkSize, spatially coherent: fingerprints are ordered by the grid
// cell of their spatial centroid (column-major over ~25 km tiles, the
// scale of a large city) and split in order. Every block ends up with
// at least chunkSize/2 fingerprints because a short tail merges into
// the previous block.
func spatialBlocks(d *Dataset, chunkSize int) [][]*Fingerprint {
	type keyed struct {
		fp   *Fingerprint
		tile [2]float64
		id   string
	}
	ks := make([]keyed, d.Len())
	for i, f := range d.Fingerprints {
		var cx, cy, w float64
		for _, s := range f.Samples {
			cx += (s.X + s.DX/2) * float64(s.Weight)
			cy += (s.Y + s.DY/2) * float64(s.Weight)
			w += float64(s.Weight)
		}
		if w > 0 {
			cx /= w
			cy /= w
		}
		ks[i] = keyed{
			fp:   f,
			tile: [2]float64{math.Floor(cx / 25000), math.Floor(cy / 25000)},
			id:   f.ID,
		}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		if ks[a].tile[0] != ks[b].tile[0] {
			return ks[a].tile[0] < ks[b].tile[0]
		}
		if ks[a].tile[1] != ks[b].tile[1] {
			return ks[a].tile[1] < ks[b].tile[1]
		}
		return ks[a].id < ks[b].id
	})

	var blocks [][]*Fingerprint
	for start := 0; start < len(ks); start += chunkSize {
		end := start + chunkSize
		if end > len(ks) {
			end = len(ks)
		}
		block := make([]*Fingerprint, 0, end-start)
		for _, k := range ks[start:end] {
			block = append(block, k.fp)
		}
		// A tail shorter than half a chunk joins the previous block so no
		// block is too small to anonymize well.
		if len(block) < chunkSize/2 && len(blocks) > 0 {
			last := len(blocks) - 1
			blocks[last] = append(blocks[last], block...)
		} else {
			blocks = append(blocks, block)
		}
	}
	return blocks
}
