package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestGloveChunkedArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 12, 5)
	if _, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 1}, ChunkSize: 10}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 3}, ChunkSize: 5}); err == nil {
		t.Error("chunk < 2k accepted")
	}
	if _, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 20}, ChunkSize: 40}); err == nil {
		t.Error("k > users accepted")
	}
}

func TestGloveChunkedKAnonymity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randDataset(rng, 60, 8)
	for _, k := range []int{2, 3} {
		out, stats, err := GloveChunked(d, ChunkedGloveOptions{
			Glove:     GloveOptions{K: k},
			ChunkSize: 15,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := ValidateKAnonymity(out, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if out.Users() != 60 {
			t.Errorf("k=%d: %d users out, want 60", k, out.Users())
		}
		if stats.InputFingerprints != 60 {
			t.Errorf("k=%d: input accounting %d", k, stats.InputFingerprints)
		}
		if stats.OutputFingerprints != out.Len() {
			t.Errorf("k=%d: output accounting mismatch", k)
		}
	}
}

func TestGloveChunkedTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDataset(rng, 40, 6)
	out, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 2}, ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckTruthfulness(d, out)
	if rep.MissingFP != 0 || rep.Suppressed != 0 {
		t.Errorf("truthfulness report %+v", rep)
	}
}

func TestGloveChunkedSmallDatasetFallsThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 8, 5)
	chunked, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 2}, ChunkSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if chunked.Len() != plain.Len() {
		t.Error("small dataset not identical to plain GLOVE")
	}
}

func TestGloveChunkedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 50, 6)
	opt := ChunkedGloveOptions{Glove: GloveOptions{K: 2, Workers: 4}, ChunkSize: 12}
	out1, _, err := GloveChunked(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Glove.Workers = 1
	out2, _, err := GloveChunked(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != out2.Len() {
		t.Fatalf("chunked runs differ: %d vs %d groups", out1.Len(), out2.Len())
	}
	for i := range out1.Fingerprints {
		if out1.Fingerprints[i].ID != out2.Fingerprints[i].ID {
			t.Fatal("chunked output order differs across worker counts")
		}
	}
}

// Blocks are spatially coherent: two well-separated clusters must not
// be mixed within blocks.
func TestSpatialBlocksCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var fps []*Fingerprint
	for i := 0; i < 30; i++ {
		f := randFingerprint(rng, fmt.Sprintf("w%02d", i), 5)
		fps = append(fps, f) // west cluster (randFingerprint uses [0, 5e4])
	}
	for i := 0; i < 30; i++ {
		f := randFingerprint(rng, fmt.Sprintf("e%02d", i), 5)
		for j := range f.Samples {
			f.Samples[j].X += 5e5 // east cluster, 500 km away
		}
		fps = append(fps, f)
	}
	d := NewDataset(fps)
	blocks := spatialBlocks(d, 15)
	for bi, block := range blocks {
		var west, east int
		for _, f := range block {
			if f.Samples[0].X > 2.5e5 {
				east++
			} else {
				west++
			}
		}
		if west > 0 && east > 0 {
			t.Errorf("block %d mixes clusters: %d west, %d east", bi, west, east)
		}
	}
}

func TestSpatialBlocksSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 53, 4)
	blocks := spatialBlocks(d, 10)
	var total int
	for _, b := range blocks {
		total += len(b)
		if len(b) < 5 { // chunkSize/2
			t.Errorf("block of %d fingerprints below half chunk", len(b))
		}
	}
	if total != 53 {
		t.Errorf("blocks cover %d fingerprints, want 53", total)
	}
}

// Chunked accuracy should be close to (and never absurdly far from)
// whole-dataset GLOVE on spatially clustered data.
func TestGloveChunkedAccuracyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randDataset(rng, 40, 8)
	whole, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	chunked, _, err := GloveChunked(d, ChunkedGloveOptions{Glove: GloveOptions{K: 2}, ChunkSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(ds *Dataset) float64 {
		var sum, n float64
		for _, f := range ds.Fingerprints {
			for _, s := range f.Samples {
				sum += s.SpatialSpan() * float64(s.Weight)
				n += float64(s.Weight)
			}
		}
		return sum / n
	}
	mw, mc := mean(whole), mean(chunked)
	if mc > 4*mw+1000 {
		t.Errorf("chunked mean span %.0f m far above whole-dataset %.0f m", mc, mw)
	}
}
