package core

import (
	"fmt"
	"math"
)

// Default stretch-effort calibration from the paper (footnote 3): spatial
// and temporal thresholds above which the information loss saturates at
// 1, chosen so that ~0.5 km of spatial generalization weighs the same as
// ~15 min of temporal generalization.
const (
	DefaultMaxSpatialMeters   = 20000 // φmax_σ = 20 km
	DefaultMaxTemporalMinutes = 480   // φmax_τ = 8 h
	DefaultSpatialWeight      = 0.5   // w_σ
	DefaultTemporalWeight     = 0.5   // w_τ
)

// Params calibrates the stretch-effort measure (Eqs. 1-3). The zero value
// is not valid; use DefaultParams or fill every field.
type Params struct {
	MaxSpatial  float64 // φmax_σ, meters
	MaxTemporal float64 // φmax_τ, minutes
	WSpatial    float64 // w_σ
	WTemporal   float64 // w_τ
}

// DefaultParams returns the paper's calibration: 20 km, 8 h, equal
// weights.
func DefaultParams() Params {
	return Params{
		MaxSpatial:  DefaultMaxSpatialMeters,
		MaxTemporal: DefaultMaxTemporalMinutes,
		WSpatial:    DefaultSpatialWeight,
		WTemporal:   DefaultTemporalWeight,
	}
}

// Validate checks that the calibration is usable.
func (p Params) Validate() error {
	if !(p.MaxSpatial > 0) || !(p.MaxTemporal > 0) {
		return fmt.Errorf("core: non-positive effort thresholds %+v", p)
	}
	if p.WSpatial < 0 || p.WTemporal < 0 || p.WSpatial+p.WTemporal == 0 {
		return fmt.Errorf("core: bad effort weights %+v", p)
	}
	return nil
}

// stretch1D returns the left+right stretch needed for the interval
// [a, a+da] to cover [b, b+db] (Eqs. 5-6, 8-9 in one dimension).
func stretch1D(a, da, b, db float64) float64 {
	var s float64
	if b < a {
		s += a - b // left stretch
	}
	if b+db > a+da {
		s += b + db - (a + da) // right stretch
	}
	return s
}

// SpatialStretch returns φ*_σ of Eq. 4: the count-weighted sum of the
// stretches required for a's sample to cover b's and vice versa, along
// both axes, in meters. na and nb are the subscriber counts behind the
// two samples' fingerprints.
func SpatialStretch(a, b Sample, na, nb int) float64 {
	wa := float64(na) / float64(na+nb)
	wb := float64(nb) / float64(na+nb)
	sa := stretch1D(a.X, a.DX, b.X, b.DX) + stretch1D(a.Y, a.DY, b.Y, b.DY)
	sb := stretch1D(b.X, b.DX, a.X, a.DX) + stretch1D(b.Y, b.DY, a.Y, a.DY)
	return sa*wa + sb*wb
}

// TemporalStretch returns φ*_τ of Eq. 7 in minutes.
func TemporalStretch(a, b Sample, na, nb int) float64 {
	wa := float64(na) / float64(na+nb)
	wb := float64(nb) / float64(na+nb)
	sa := stretch1D(a.T, a.DT, b.T, b.DT)
	sb := stretch1D(b.T, b.DT, a.T, a.DT)
	return sa*wa + sb*wb
}

// SampleEffort returns the sample stretch effort δ_ab(i, j) of Eq. 1:
// the normalized, weighted loss of accuracy required to generalize the
// two samples into one. The result is in [0, 1] when the weights sum to
// one.
func (p Params) SampleEffort(a, b Sample, na, nb int) float64 {
	wa := float64(na) / float64(na+nb)
	wb := float64(nb) / float64(na+nb)
	return p.sampleEffortWeighted(a, b, wa, wb)
}

// sampleEffortWeighted is SampleEffort with the count weights already
// resolved, so callers scanning many candidates at fixed subscriber
// counts (the merge matching stage, via NearestSampleIndex) do not
// recompute the two divisions per candidate. Same arithmetic, in the
// same order, as the SpatialStretch/TemporalStretch path.
func (p Params) sampleEffortWeighted(a, b Sample, wa, wb float64) float64 {
	sa := stretch1D(a.X, a.DX, b.X, b.DX) + stretch1D(a.Y, a.DY, b.Y, b.DY)
	sb := stretch1D(b.X, b.DX, a.X, a.DX) + stretch1D(b.Y, b.DY, a.Y, a.DY)
	spatial := sa*wa + sb*wb
	lossS := 1.0
	if spatial < p.MaxSpatial {
		lossS = spatial / p.MaxSpatial
	}
	ta := stretch1D(a.T, a.DT, b.T, b.DT)
	tb := stretch1D(b.T, b.DT, a.T, a.DT)
	temporal := ta*wa + tb*wb
	lossT := 1.0
	if temporal < p.MaxTemporal {
		lossT = temporal / p.MaxTemporal
	}
	return p.WSpatial*lossS + p.WTemporal*lossT
}

// SampleEffortParts returns the spatial and temporal contributions
// w_σ·φ_σ and w_τ·φ_τ of Eq. 1 separately; the analysis of Sec. 5.3
// studies their distributions independently.
func (p Params) SampleEffortParts(a, b Sample, na, nb int) (spatial, temporal float64) {
	return p.WSpatial * p.spatialLoss(a, b, na, nb), p.WTemporal * p.temporalLoss(a, b, na, nb)
}

// spatialLoss is φ_σ of Eq. 2: the spatial stretch linearly normalized by
// φmax_σ and saturated at 1.
func (p Params) spatialLoss(a, b Sample, na, nb int) float64 {
	s := SpatialStretch(a, b, na, nb)
	if s >= p.MaxSpatial {
		return 1
	}
	return s / p.MaxSpatial
}

// temporalLoss is φ_τ of Eq. 3.
func (p Params) temporalLoss(a, b Sample, na, nb int) float64 {
	s := TemporalStretch(a, b, na, nb)
	if s >= p.MaxTemporal {
		return 1
	}
	return s / p.MaxTemporal
}

// FingerprintEffort returns the fingerprint stretch effort Δ_ab of Eq.
// 10: for each sample of the longer fingerprint, the minimum sample
// stretch effort to any sample of the shorter one, averaged over the
// longer fingerprint. Eq. 10 leaves the equal-length case ambiguous (its
// two branches disagree there); we average the two directions so the
// measure is symmetric in its arguments, which the effort matrix and the
// nearest-neighbour analysis rely on.
func (p Params) FingerprintEffort(a, b *Fingerprint) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		// Degenerate; callers validate against empty fingerprints, but be
		// explicit: an empty side needs no stretching.
		return 0
	}
	if a.Len() == b.Len() {
		return (p.directedEffort(a, b) + p.directedEffort(b, a)) / 2
	}
	if a.Len() > b.Len() {
		return p.directedEffort(a, b)
	}
	return p.directedEffort(b, a)
}

// directedEffort evaluates Eq. 10 with `long` as the averaged side.
func (p Params) directedEffort(long, short *Fingerprint) float64 {
	nl, ns := long.Count, short.Count
	var sum float64
	for i := range long.Samples {
		sum += p.minEffortTo(long.Samples[i], nl, short.Samples, ns)
	}
	return sum / float64(long.Len())
}

// minEffortTo returns min_j δ(s, short[j]). This is the hot loop of the
// whole system — Eq. 10 is evaluated O(|M|^2) times — so it is written to
// be allocation-free and inlinable-friendly.
func (p Params) minEffortTo(s Sample, ns int, short []Sample, nShort int) float64 {
	wa := float64(ns) / float64(ns+nShort)
	wb := float64(nShort) / float64(ns+nShort)
	best := math.Inf(1)
	for k := range short {
		o := &short[k]
		// Inline stretch1D for x, y, t against o.
		var sa, sb float64
		if o.X < s.X {
			sa += s.X - o.X
		}
		if o.X+o.DX > s.X+s.DX {
			sa += o.X + o.DX - (s.X + s.DX)
		}
		if o.Y < s.Y {
			sa += s.Y - o.Y
		}
		if o.Y+o.DY > s.Y+s.DY {
			sa += o.Y + o.DY - (s.Y + s.DY)
		}
		if s.X < o.X {
			sb += o.X - s.X
		}
		if s.X+s.DX > o.X+o.DX {
			sb += s.X + s.DX - (o.X + o.DX)
		}
		if s.Y < o.Y {
			sb += o.Y - s.Y
		}
		if s.Y+s.DY > o.Y+o.DY {
			sb += s.Y + s.DY - (o.Y + o.DY)
		}
		spatial := sa*wa + sb*wb
		if spatial >= p.MaxSpatial {
			spatial = p.MaxSpatial
		}

		var ta, tb float64
		if o.T < s.T {
			ta += s.T - o.T
		}
		if o.T+o.DT > s.T+s.DT {
			ta += o.T + o.DT - (s.T + s.DT)
		}
		if s.T < o.T {
			tb += o.T - s.T
		}
		if s.T+s.DT > o.T+o.DT {
			tb += s.T + s.DT - (o.T + o.DT)
		}
		temporal := ta*wa + tb*wb
		if temporal >= p.MaxTemporal {
			temporal = p.MaxTemporal
		}

		d := p.WSpatial*spatial/p.MaxSpatial + p.WTemporal*temporal/p.MaxTemporal
		if d < best {
			best = d
		}
	}
	return best
}

// NearestSampleIndex returns the index j of the sample in candidates at
// minimum stretch effort from s (ties broken by lowest index), used by
// the GLOVE merge matching stage. The count weights depend only on the
// two fingerprints, not on the candidate, so they are resolved once
// outside the scan — the merge matching stage calls this once per
// long-side sample.
func (p Params) NearestSampleIndex(s Sample, ns int, candidates []Sample, nc int) int {
	wa := float64(ns) / float64(ns+nc)
	wb := float64(nc) / float64(ns+nc)
	best := math.Inf(1)
	bestIdx := 0
	for j := range candidates {
		d := p.sampleEffortWeighted(s, candidates[j], wa, wb)
		if d < best {
			best = d
			bestIdx = j
		}
	}
	return bestIdx
}
