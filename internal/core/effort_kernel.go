package core

import (
	"math"
	"sort"
	"sync/atomic"
)

// This file is the exact pruned evaluation kernel for the fingerprint
// stretch effort Δ_ab (Eq. 10) — the hot loop of the whole system. The
// naive kernel (Params.FingerprintEffort in effort.go) evaluates all
// mₐ·m_b sample pairs; every pair-selection path (dense matrix build and
// reinsertion, sparse candidate refills, the leftover fold, the k-gap
// analysis) only ever asks "is Δ_ab below my current best/cutoff?", so
// this kernel prunes with two true lower bounds and stays bit-exact with
// the naive path wherever it reports an effort (DESIGN.md Sec. 8):
//
//  1. Running-sum abort. Eq. 10 averages per-sample minima over the
//     longer fingerprint. Each minimum is >= the bounding-volume effort
//     lower bound of the pair (EffortLowerBound, bounds.go), so as soon
//     as the partial sum plus the bound for the unprocessed remainder
//     guarantees Δ_ab > threshold, the scan aborts: the caller only
//     needed to know the pair loses.
//
//  2. Temporal-gap outward scan. Fingerprint.Samples are time-sorted;
//     for one long-side sample the scan starts at the short side's
//     binary-searched time position and walks outward. The temporal gap
//     between disjoint intervals lower-bounds the temporal stretch on
//     BOTH sides of Eq. 7 (each side must at least bridge the gap), and
//     the count weights sum to one, so w_τ·min(gap, φmax_τ)/φmax_τ is a
//     valid per-candidate lower bound on δ — once it reaches the current
//     per-sample best, the whole remaining direction is skipped. The
//     minimum over the candidates actually evaluated equals the full
//     minimum, so the per-sample result is exactly the naive one.
//
// The kernel runs over fpView, a structure-of-arrays snapshot of a
// fingerprint (flat x/xHi/y/yHi/t/tHi slices plus precomputed bounds and
// a prefix max of interval ends), cached per working-set slot and
// invalidated on merge/reinsert, so the inner loop recomputes no
// s.X+s.DX and allocates nothing.

// fpView is the structure-of-arrays snapshot of one fingerprint the
// pruned kernel operates on. The arrays mirror Fingerprint.Samples in
// order: x/y/t are the interval starts, xHi/yHi/tHi the interval ends
// (start + extent, precomputed once so the value is identical to the
// naive kernel's s.X+s.DX). tHiMax[k] is max(tHi[0..k]) — interval
// starts are sorted but ends are not, and the leftward scan needs a
// monotone envelope of "latest end so far" to stop early soundly.
type fpView struct {
	x, xHi, y, yHi, t, tHi []float64
	tHiMax                 []float64
	bounds                 FingerprintBounds
	count                  int // n_a, the subscriber count behind the fingerprint

	// backing is the single allocation behind the seven arrays, kept so
	// the working set can recycle it through its view pool when the slot
	// dies (DESIGN.md Sec. 11: the merge loop allocates no views in
	// steady state). Arena-built views carry their arena segment here;
	// recycling it is harmless (capacity-checked on reuse).
	backing []float64
}

// fill (re)builds the view for f inside the given backing slice, which
// must hold exactly 7*len(f.Samples) float64s. The bounding volume is
// accumulated in the same pass — the column spans being merged are
// exactly the bounds, so the former second BoundsOf sweep is free here
// (identical values: samples are finite, so running comparisons match
// math.Min/Max).
func (v *fpView) fill(f *Fingerprint, backing []float64) {
	m := len(f.Samples)
	*v = fpView{
		x:       backing[0*m : 1*m],
		xHi:     backing[1*m : 2*m],
		y:       backing[2*m : 3*m],
		yHi:     backing[3*m : 4*m],
		t:       backing[4*m : 5*m],
		tHi:     backing[5*m : 6*m],
		tHiMax:  backing[6*m : 7*m],
		count:   f.Count,
		backing: backing,
	}
	b := FingerprintBounds{
		MinX: math.Inf(1), MaxX: math.Inf(-1),
		MinY: math.Inf(1), MaxY: math.Inf(-1),
		MinT: math.Inf(1), MaxT: math.Inf(-1),
	}
	hiMax := math.Inf(-1)
	for i := range f.Samples {
		s := &f.Samples[i]
		v.x[i] = s.X
		v.xHi[i] = s.X + s.DX
		v.y[i] = s.Y
		v.yHi[i] = s.Y + s.DY
		v.t[i] = s.T
		v.tHi[i] = s.T + s.DT
		if v.tHi[i] > hiMax {
			hiMax = v.tHi[i]
		}
		v.tHiMax[i] = hiMax
		if v.x[i] < b.MinX {
			b.MinX = v.x[i]
		}
		if v.xHi[i] > b.MaxX {
			b.MaxX = v.xHi[i]
		}
		if v.y[i] < b.MinY {
			b.MinY = v.y[i]
		}
		if v.yHi[i] > b.MaxY {
			b.MaxY = v.yHi[i]
		}
		if v.t[i] < b.MinT {
			b.MinT = v.t[i]
		}
		if v.tHi[i] > b.MaxT {
			b.MaxT = v.tHi[i]
		}
	}
	v.bounds = b
}

// newFPView flattens a fingerprint into its SoA kernel view with a
// fresh backing allocation. Hot paths use the working set's pooled and
// arena variants instead.
func newFPView(f *Fingerprint) *fpView {
	v := &fpView{}
	v.fill(f, make([]float64, 7*len(f.Samples)))
	return v
}

// kernelCounters tracks pruned-kernel work. The kernel runs under the
// parallel helpers, so the counters are atomic; they feed the
// GloveStats.EffortKernel* accounting and the pruning-effectiveness
// tests.
type kernelCounters struct {
	calls  atomic.Int64 // kernel invocations (pair evaluations requested)
	pruned atomic.Int64 // invocations that early-exited via the threshold
}

// FingerprintEffortBelow is the threshold-aware form of
// FingerprintEffort: it reports whether Δ_ab <= threshold, computing the
// exact effort only as far as needed.
//
// Contract: when below is true, effort is exactly FingerprintEffort(a, b)
// (bit-identical to the naive kernel) and effort <= threshold. When
// below is false, the true effort is strictly greater than threshold and
// effort is a lower bound on it (possibly the exact value). Callers that
// keep a current best/cutoff and skip pairs proven worse therefore make
// exactly the decisions the naive kernel would.
//
// This convenience form builds the SoA views per call; the hot paths go
// through the per-slot cached views of the working set instead.
func (p Params) FingerprintEffortBelow(a, b *Fingerprint, threshold float64) (effort float64, below bool) {
	return p.effortBelowViews(newFPView(a), newFPView(b), threshold)
}

// effortBelowViews is FingerprintEffortBelow over prebuilt views. It
// mirrors FingerprintEffort's direction choice exactly: the longer
// fingerprint is averaged, equal lengths average both directions.
func (p Params) effortBelowViews(a, b *fpView, threshold float64) (float64, bool) {
	la, lb := len(a.t), len(b.t)
	if la == 0 || lb == 0 {
		return 0, threshold >= 0
	}
	if la == lb {
		// e = (d1 + d2)/2 with both directions exact; each direction gets
		// the slack the other's partial result leaves (d2 >= 0, so d1 >
		// 2·threshold already proves e > threshold).
		d1, exact := p.directedEffortBelow(a, b, 2*threshold)
		if !exact {
			return d1 / 2, false
		}
		d2, exact := p.directedEffortBelow(b, a, 2*threshold-d1)
		e := (d1 + d2) / 2
		if !exact {
			return e, false
		}
		return e, e <= threshold
	}
	long, short := a, b
	if la < lb {
		long, short = b, a
	}
	d, exact := p.directedEffortBelow(long, short, threshold)
	return d, exact && d <= threshold
}

// directedEffortBelow evaluates Eq. 10 with `long` as the averaged side.
// When exact is true the result is bit-identical to directedEffort;
// otherwise the scan aborted with the returned value a lower bound and
// the true directed effort strictly above threshold.
func (p Params) directedEffortBelow(long, short *fpView, threshold float64) (float64, bool) {
	m := len(long.t)
	wa := float64(long.count) / float64(long.count+short.count)
	wb := float64(short.count) / float64(long.count+short.count)
	// Every per-sample minimum is at least the pair's bounding-volume
	// effort lower bound; it prices the unprocessed remainder in the
	// abort test below.
	perLB := p.EffortLowerBound(long.bounds, short.bounds)
	var sum float64
	last := m - 1
	for i := 0; i < m; i++ {
		sum += p.minEffortToView(long.x[i], long.xHi[i], long.y[i], long.yHi[i],
			long.t[i], long.tHi[i], wa, wb, short)
		if i == last {
			break
		}
		// Abort only mid-scan: once the last sample is in, the exact
		// average is one division away, and deciding ties on the exact
		// value (in the caller) avoids any multiply-vs-divide rounding
		// disagreement with the naive kernel at thresholds that equal
		// the true effort — which is common, since thresholds are other
		// pairs' computed efforts.
		if lb := (sum + float64(last-i)*perLB) / float64(m); lb > threshold {
			return lb, false
		}
	}
	return sum / float64(m), true
}

// temporalGapLB converts a temporal-only separation (minutes) into an
// effort lower bound: both sides of Eq. 7 must stretch at least across
// the gap and the count weights sum to one, so φ*_τ >= gap; the spatial
// term only adds. Mirrors the temporal half of EffortLowerBound.
func (p Params) temporalGapLB(gap float64) float64 {
	if gap >= p.MaxTemporal {
		gap = p.MaxTemporal
	}
	return p.WTemporal * gap / p.MaxTemporal
}

// minEffortToView returns min_j δ(s, short[j]) for the long-side sample
// (sx..stHi), scanning outward from the binary-searched time position
// and stopping each direction once the temporal-gap lower bound reaches
// the current best. Identical in value to minEffortTo (effort.go): only
// candidates provably unable to improve the minimum are skipped.
func (p Params) minEffortToView(sx, sxHi, sy, syHi, st, stHi, wa, wb float64, short *fpView) float64 {
	ts := short.t
	m := len(ts)
	pivot := sort.SearchFloat64s(ts, st)
	best := math.Inf(1)
	// Rightward: candidate starts are sorted, so once a candidate starts
	// far enough after s ends, every later one does too.
	for k := pivot; k < m; k++ {
		if g := ts[k] - stHi; g > 0 && p.temporalGapLB(g) >= best {
			break
		}
		if d := p.viewSampleEffort(sx, sxHi, sy, syHi, st, stHi, wa, wb, short, k); d < best {
			best = d
		}
	}
	// Leftward: ends are not sorted, so the stop test uses the prefix
	// max of ends — when even the latest end among the remaining
	// candidates leaves a big enough gap before s starts, stop.
	for k := pivot - 1; k >= 0; k-- {
		if g := st - short.tHiMax[k]; g > 0 && p.temporalGapLB(g) >= best {
			break
		}
		if d := p.viewSampleEffort(sx, sxHi, sy, syHi, st, stHi, wa, wb, short, k); d < best {
			best = d
		}
	}
	return best
}

// viewSampleEffort is δ(s, short[k]) over the SoA view — the same
// arithmetic, in the same order, as the naive kernel's inlined loop body
// (minEffortTo), so results are bit-identical.
func (p Params) viewSampleEffort(sx, sxHi, sy, syHi, st, stHi, wa, wb float64, short *fpView, k int) float64 {
	ox, oxHi := short.x[k], short.xHi[k]
	oy, oyHi := short.y[k], short.yHi[k]
	var sa, sb float64
	if ox < sx {
		sa += sx - ox
	}
	if oxHi > sxHi {
		sa += oxHi - sxHi
	}
	if oy < sy {
		sa += sy - oy
	}
	if oyHi > syHi {
		sa += oyHi - syHi
	}
	if sx < ox {
		sb += ox - sx
	}
	if sxHi > oxHi {
		sb += sxHi - oxHi
	}
	if sy < oy {
		sb += oy - sy
	}
	if syHi > oyHi {
		sb += syHi - oyHi
	}
	spatial := sa*wa + sb*wb
	if spatial >= p.MaxSpatial {
		spatial = p.MaxSpatial
	}

	ot, otHi := short.t[k], short.tHi[k]
	var ta, tb float64
	if ot < st {
		ta += st - ot
	}
	if otHi > stHi {
		ta += otHi - stHi
	}
	if st < ot {
		tb += ot - st
	}
	if stHi > otHi {
		tb += stHi - otHi
	}
	temporal := ta*wa + tb*wb
	if temporal >= p.MaxTemporal {
		temporal = p.MaxTemporal
	}

	return p.WSpatial*spatial/p.MaxSpatial + p.WTemporal*temporal/p.MaxTemporal
}
