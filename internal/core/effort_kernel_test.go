package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The pruned kernel must be indistinguishable from the naive Eq. 10
// evaluation wherever it reports an effort: bit-identical values when it
// says "below", and a sound strict verdict when it prunes. Randomized
// over fingerprint lengths (covering the equal-length symmetric-average
// branch), subscriber counts and threshold positions.
func TestQuickFingerprintEffortBelowMatchesNaive(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFingerprint(rng, "a", 1+rng.Intn(15))
		b := randFingerprint(rng, "b", 1+rng.Intn(15))
		if rng.Intn(3) == 0 {
			// Force the equal-length branch often; Eq. 10 is ambiguous
			// there and the symmetric average must match exactly.
			b = randFingerprint(rng, "b", a.Len())
		}
		a.Count = 1 + rng.Intn(5)
		b.Count = 1 + rng.Intn(5)
		a.Members = make([]string, a.Count)
		b.Members = make([]string, b.Count)
		if rng.Intn(2) == 0 {
			// Spread the pair out so the running-sum abort actually fires.
			dx := rng.Float64() * 1e5
			dt := rng.Float64() * 5e3
			for i := range b.Samples {
				b.Samples[i].X += dx
				b.Samples[i].T += dt
			}
		}
		want := p.FingerprintEffort(a, b)
		// Thresholds straddling the true effort, including the exact
		// value itself (a tie must report below with the exact effort).
		thresholds := []float64{
			math.Inf(1), want, want * 1.5, want * 0.5, want - 1e-3, want + 1e-3, 0, 1,
		}
		for _, thr := range thresholds {
			got, below := p.FingerprintEffortBelow(a, b, thr)
			if below {
				if got != want {
					t.Logf("thr=%g: below with %g, naive %g", thr, got, want)
					return false
				}
				if got > thr {
					t.Logf("thr=%g: below with effort %g above threshold", thr, got)
					return false
				}
			} else {
				if want <= thr {
					t.Logf("thr=%g: pruned but naive effort %g is below", thr, want)
					return false
				}
				if got > want+1e-9 {
					t.Logf("thr=%g: reported bound %g exceeds true effort %g", thr, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(41)); err != nil {
		t.Error(err)
	}
}

// The sorted-scan kernel must stay exact at the saturation plateau:
// fingerprints beyond both φmax thresholds have effort exactly 1, and a
// threshold of 1 is a tie, not a prune.
func TestFingerprintEffortBelowSaturation(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(7))
	a := randFingerprint(rng, "a", 8)
	b := randFingerprint(rng, "b", 5)
	for i := range b.Samples {
		// Far beyond both saturation thresholds from anywhere a random
		// fingerprint can lie (anchors stay within ~5e4 m and ~2e4 min).
		b.Samples[i].X += 1e6
		b.Samples[i].T += 1e6
	}
	if want := p.FingerprintEffort(a, b); want != 1 {
		t.Fatalf("saturated naive effort = %g, want 1", want)
	}
	if e, below := p.FingerprintEffortBelow(a, b, 1); !below || e != 1 {
		t.Fatalf("FingerprintEffortBelow(thr=1) = (%g, %v), want (1, true)", e, below)
	}
	if e, below := p.FingerprintEffortBelow(a, b, 0.5); below {
		t.Fatalf("FingerprintEffortBelow(thr=0.5) = (%g, %v), want pruned", e, below)
	} else if e <= 0.5 {
		t.Fatalf("pruned lower bound %g does not exceed the threshold", e)
	}
}

// Identical fingerprints at threshold zero: zero effort is a tie at the
// threshold, and the bounding-envelope term must not push the kernel
// into a spurious abort.
func TestFingerprintEffortBelowZero(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(8))
	a := randFingerprint(rng, "a", 10)
	b := a.Clone()
	b.ID = "b"
	if e, below := p.FingerprintEffortBelow(a, b, 0); !below || e != 0 {
		t.Fatalf("FingerprintEffortBelow(identical, 0) = (%g, %v), want (0, true)", e, below)
	}
}

// The SoA view must mirror the sample arrays exactly, including the
// prefix max of interval ends the leftward scan stop relies on.
func TestFPViewLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := randFingerprint(rng, "a", 12)
	f.Samples[3].DT = 900 // a long interval mid-way exercises the prefix max
	v := newFPView(f)
	hiMax := math.Inf(-1)
	for i, s := range f.Samples {
		if v.x[i] != s.X || v.xHi[i] != s.X+s.DX || v.y[i] != s.Y || v.yHi[i] != s.Y+s.DY ||
			v.t[i] != s.T || v.tHi[i] != s.T+s.DT {
			t.Fatalf("view row %d does not match sample %+v", i, s)
		}
		hiMax = math.Max(hiMax, s.T+s.DT)
		if v.tHiMax[i] != hiMax {
			t.Fatalf("tHiMax[%d] = %g, want %g", i, v.tHiMax[i], hiMax)
		}
	}
	if v.bounds != BoundsOf(f) {
		t.Fatalf("view bounds %+v != BoundsOf %+v", v.bounds, BoundsOf(f))
	}
	if v.count != f.Count {
		t.Fatalf("view count %d != %d", v.count, f.Count)
	}
}

// On a clustered (civ-like) workload the threshold abort must actually
// fire — the speedup claim rests on it — while the published output
// stays identical to the unpruned naive path. Exercised for the dense
// matrix and the sparse candidate index.
func TestEffortKernelPruneCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var fps []*Fingerprint
	centers := [][2]float64{{0, 0}, {60000, 0}, {0, 60000}}
	id := 0
	for _, c := range centers {
		for u := 0; u < 12; u++ {
			f := randFingerprint(rng, fmt.Sprintf("u%d", id), 4+rng.Intn(8))
			for s := range f.Samples {
				f.Samples[s].X += c[0]
				f.Samples[s].Y += c[1]
			}
			fps = append(fps, f)
			id++
		}
	}
	d := NewDataset(fps)

	naive, _, err := Glove(d, GloveOptions{K: 2, NaiveMinPair: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  GloveOptions
	}{
		{"dense", GloveOptions{K: 2, Index: IndexDense}},
		{"sparse", GloveOptions{K: 2, Index: IndexSparse, IndexNeighbors: 4}},
	} {
		out, stats, err := Glove(d, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		datasetsEqual(t, tc.name+"-vs-naive", naive, out)
		if stats.EffortKernelCalls == 0 {
			t.Fatalf("%s: no kernel calls recorded", tc.name)
		}
		if stats.EffortKernelPruned == 0 {
			t.Fatalf("%s: pruning never fired on a clustered dataset (calls %d)",
				tc.name, stats.EffortKernelCalls)
		}
		t.Logf("%s: %d kernel calls, %d pruned (%.0f%%)", tc.name,
			stats.EffortKernelCalls, stats.EffortKernelPruned,
			100*float64(stats.EffortKernelPruned)/float64(stats.EffortKernelCalls))
	}
}

// BenchmarkEffortKernelViews measures the kernel in its production
// shape — over cached SoA views, as the dense/sparse indexes, the fold
// and the k-gap analysis run it, with no per-call view construction.
// One op is one row scan with a running-minimum threshold (the dense
// build's access pattern) against the naive exhaustive evaluation, on
// two geometries: tight city-like clusters (the paper's locality
// observation, where both lower bounds bite) and a uniform 60 km
// spread (the adversarial case: the spatial term saturates for most
// pairs, so the temporal-gap stop rarely clears the per-sample best
// and only the running-sum abort helps).
func BenchmarkEffortKernelViews(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(17))
	clustered := func() []*Fingerprint {
		centers := [][2]float64{{0, 0}, {60000, 0}, {0, 60000}, {90000, 90000}}
		var fps []*Fingerprint
		for ci, c := range centers {
			for u := 0; u < 30; u++ {
				// Per-subscriber anchors a few km apart, samples within
				// ~2 km of the anchor.
				ax := c[0] + rng.Float64()*6000
				ay := c[1] + rng.Float64()*6000
				samples := make([]Sample, 80)
				for s := range samples {
					samples[s] = Sample{
						X: ax + rng.NormFloat64()*2000, DX: 100,
						Y: ay + rng.NormFloat64()*2000, DY: 100,
						T: rng.Float64() * 7 * 24 * 60, DT: 1,
						Weight: 1,
					}
				}
				fps = append(fps, NewFingerprint(fmt.Sprintf("u%d-%d", ci, u), samples))
			}
		}
		return fps
	}
	uniform := func() []*Fingerprint {
		fps := make([]*Fingerprint, 120)
		for i := range fps {
			samples := make([]Sample, 80)
			for s := range samples {
				samples[s] = Sample{
					X: rng.Float64() * 60000, DX: 100,
					Y: rng.Float64() * 60000, DY: 100,
					T: rng.Float64() * 7 * 24 * 60, DT: 1,
					Weight: 1,
				}
			}
			fps[i] = NewFingerprint(fmt.Sprintf("u%d", i), samples)
		}
		return fps
	}
	for _, w := range []struct {
		name string
		fps  []*Fingerprint
	}{
		{"clustered", clustered()},
		{"uniform", uniform()},
	} {
		n := len(w.fps)
		views := make([]*fpView, n)
		for i, f := range w.fps {
			views[i] = newFPView(f)
		}
		b.Run(w.name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				probe := w.fps[i%n]
				best := math.Inf(1)
				for j, f := range w.fps {
					if j == i%n {
						continue
					}
					if e := p.FingerprintEffort(probe, f); e < best {
						best = e
					}
				}
			}
		})
		b.Run(w.name+"/pruned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				probe := views[i%n]
				best := math.Inf(1)
				for j := range views {
					if j == i%n {
						continue
					}
					if e, below := p.effortBelowViews(probe, views[j], best); below && e < best {
						best = e
					}
				}
			}
		})
	}
}

// The chunked driver aggregates kernel counters across blocks.
func TestEffortKernelCountersAggregated(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := randDataset(rng, 40, 6)
	_, stats, err := GloveChunked(d, ChunkedGloveOptions{
		Glove:     GloveOptions{K: 2},
		ChunkSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.EffortKernelCalls == 0 {
		t.Fatal("chunked run reported no kernel calls")
	}
}
