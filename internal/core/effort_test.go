package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{},
		{MaxSpatial: 1, MaxTemporal: 0, WSpatial: 1, WTemporal: 1},
		{MaxSpatial: 0, MaxTemporal: 1, WSpatial: 1, WTemporal: 1},
		{MaxSpatial: 1, MaxTemporal: 1, WSpatial: -1, WTemporal: 1},
		{MaxSpatial: 1, MaxTemporal: 1, WSpatial: 0, WTemporal: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestStretch1D(t *testing.T) {
	cases := []struct {
		a, da, b, db float64
		want         float64
	}{
		{0, 10, 0, 10, 0},   // identical
		{0, 10, 2, 5, 0},    // contained
		{0, 10, -5, 3, 5},   // left stretch only
		{0, 10, 8, 10, 8},   // right stretch only
		{0, 10, -5, 30, 20}, // both sides (5 left + 15 right)
		{0, 10, 20, 5, 15},  // disjoint right: extend right edge 10->25
		{20, 5, 0, 10, 20},  // disjoint left: extend left edge 20->0
		{0, 0, 0, 0, 0},     // degenerate points
		{5, 0, 2, 0, 3},     // point to point
	}
	for i, c := range cases {
		if got := stretch1D(c.a, c.da, c.b, c.db); got != c.want {
			t.Errorf("case %d: stretch1D = %g, want %g", i, got, c.want)
		}
	}
}

func TestSpatialStretchPaperGeometry(t *testing.T) {
	// Two disjoint 100 m cells with a 1 km gap along x (Fig. 2a): each
	// must be stretched 1100 m to cover the other (the gap plus the other
	// cell's extent), so with equal counts φ*_σ = 1100.
	a := Sample{X: 0, DX: 100, Y: 0, DY: 100, Weight: 1}
	b := Sample{X: 1100, DX: 100, Y: 0, DY: 100, Weight: 1}
	if got := SpatialStretch(a, b, 1, 1); got != 1100 {
		t.Errorf("disjoint stretch = %g, want 1100", got)
	}
	// Total overlap (Fig. 2c): zero stretch.
	inner := Sample{X: 10, DX: 10, Y: 10, DY: 10, Weight: 1}
	outer := Sample{X: 0, DX: 100, Y: 0, DY: 100, Weight: 1}
	// inner must stretch to cover outer; outer needs nothing.
	want := (10.0+80+10+80)/2 + 0.0/2
	if got := SpatialStretch(inner, outer, 1, 1); got != want {
		t.Errorf("contained stretch = %g, want %g", got, want)
	}
}

func TestTemporalStretchSymmetric(t *testing.T) {
	a := Sample{T: 0, DT: 1, Weight: 1}
	b := Sample{T: 59, DT: 1, Weight: 1}
	x := TemporalStretch(a, b, 1, 1)
	y := TemporalStretch(b, a, 1, 1)
	if x != y {
		t.Errorf("TemporalStretch asymmetric: %g vs %g", x, y)
	}
	if x != 59 {
		t.Errorf("TemporalStretch = %g, want 59", x)
	}
}

func TestCountWeighting(t *testing.T) {
	// When a hides 3 users and b hides 1, stretching a's sample costs 3x
	// more per meter: the weighted stretch reflects it (Eq. 4).
	a := Sample{X: 0, DX: 100, Y: 0, DY: 100, Weight: 1}
	b := Sample{X: 1100, DX: 100, Y: 0, DY: 100, Weight: 1}
	// Both need 1100 m of stretch (gap + other extent); weights 3/4, 1/4.
	want := 1100*0.75 + 1100*0.25
	if got := SpatialStretch(a, b, 3, 1); got != want {
		t.Errorf("weighted stretch = %g, want %g", got, want)
	}
	// Asymmetric geometry: b contained in a. Only b pays stretch.
	outer := Sample{X: 0, DX: 2000, Y: 0, DY: 2000, Weight: 1}
	inner := Sample{X: 900, DX: 100, Y: 900, DY: 100, Weight: 1}
	innerCost := 900.0 + 1000 + 900 + 1000
	if got := SpatialStretch(outer, inner, 9, 1); got != innerCost*0.1 {
		t.Errorf("weighted contained stretch = %g, want %g", got, innerCost*0.1)
	}
}

func TestSampleEffortRange(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		a, b := randSample(rng), randSample(rng)
		na, nb := 1+rng.Intn(10), 1+rng.Intn(10)
		d := p.SampleEffort(a, b, na, nb)
		if d < 0 || d > 1 || math.IsNaN(d) {
			t.Fatalf("SampleEffort = %g outside [0,1] for %+v, %+v", d, a, b)
		}
	}
}

func TestSampleEffortZeroIffIdentical(t *testing.T) {
	p := DefaultParams()
	a := NewSample(1000, 2000, 100, 500, 1)
	if d := p.SampleEffort(a, a, 1, 1); d != 0 {
		t.Errorf("effort of identical samples = %g, want 0", d)
	}
	b := a
	b.X += 1
	if d := p.SampleEffort(a, b, 1, 1); d <= 0 {
		t.Errorf("effort of different samples = %g, want > 0", d)
	}
}

func TestSampleEffortSaturates(t *testing.T) {
	p := DefaultParams()
	a := NewSample(0, 0, 100, 0, 1)
	b := NewSample(1e7, 1e7, 100, 1e6, 1) // absurdly far in space and time
	if d := p.SampleEffort(a, b, 1, 1); d != 1 {
		t.Errorf("saturated effort = %g, want 1", d)
	}
}

func TestSampleEffortPartsSum(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		a, b := randSample(rng), randSample(rng)
		s, tau := p.SampleEffortParts(a, b, 2, 3)
		if d := p.SampleEffort(a, b, 2, 3); math.Abs(s+tau-d) > 1e-12 {
			t.Fatalf("parts %g + %g != total %g", s, tau, d)
		}
	}
}

func TestSampleEffortEquivalenceCalibration(t *testing.T) {
	// The thresholds trade 20 km of space for 8 h of time, i.e. ~0.5 km
	// of spatial generalization weighs the same as ~12 min of temporal
	// generalization (the paper's footnote 3 quotes "~0.5 km and
	// ~15 min" for this equivalence).
	p := DefaultParams()
	a := NewSample(0, 0, 100, 0, 1)
	spatialOnly := Sample{X: 500, DX: 100, Y: 0, DY: 100, T: 0, DT: 1, Weight: 1} // 500 m offset
	temporalOnly := Sample{X: 0, DX: 100, Y: 0, DY: 100, T: 12, DT: 1, Weight: 1} // 12 min offset
	ds := p.SampleEffort(a, spatialOnly, 1, 1)
	dt := p.SampleEffort(a, temporalOnly, 1, 1)
	if math.Abs(ds-dt) > 1e-12 {
		t.Errorf("0.5 km spatial (%g) != 12 min temporal (%g)", ds, dt)
	}
}

func TestFingerprintEffortSymmetric(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		a := randFingerprint(rng, fmt.Sprintf("a%d", i), 1+rng.Intn(20))
		b := randFingerprint(rng, fmt.Sprintf("b%d", i), 1+rng.Intn(20))
		x, y := p.FingerprintEffort(a, b), p.FingerprintEffort(b, a)
		if x != y {
			t.Fatalf("FingerprintEffort asymmetric: %g vs %g", x, y)
		}
		if x < 0 || x > 1 || math.IsNaN(x) {
			t.Fatalf("FingerprintEffort = %g outside [0,1]", x)
		}
	}
}

func TestFingerprintEffortZeroForIdentical(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(23))
	a := randFingerprint(rng, "a", 10)
	b := a.Clone()
	b.ID = "b"
	if d := p.FingerprintEffort(a, b); d != 0 {
		t.Errorf("effort between identical fingerprints = %g, want 0", d)
	}
}

func TestFingerprintEffortLongerDominates(t *testing.T) {
	// Eq. 10 averages over the longer fingerprint: a long fingerprint with
	// one far-away extra sample pays for it even against a short one fully
	// covered.
	p := DefaultParams()
	near := NewSample(0, 0, 100, 100, 1)
	far := NewSample(0, 0, 100, 100+400, 1) // 400 min away in time
	short := NewFingerprint("s", []Sample{near})
	long := NewFingerprint("l", []Sample{near, far})
	d := p.FingerprintEffort(long, short)
	// Sample 1 matches at 0; sample 2 pays 400 min of temporal stretch
	// (each side stretches 400): φ*_τ = 400, loss = 400/480, δ = 0.5*400/480.
	want := (0 + 0.5*400.0/480) / 2
	if math.Abs(d-want) > 1e-12 {
		t.Errorf("effort = %g, want %g", d, want)
	}
}

func TestFingerprintEffortMatchesBruteForce(t *testing.T) {
	// The optimized inner loop must agree with a naive implementation of
	// Eq. 10 built from the public SampleEffort.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		a := randFingerprint(rng, "a", 1+rng.Intn(15))
		b := randFingerprint(rng, "b", 1+rng.Intn(15))
		a.Count = 1 + rng.Intn(4)
		b.Count = 1 + rng.Intn(4)
		a.Members = make([]string, a.Count)
		b.Members = make([]string, b.Count)

		directed := func(long, short *Fingerprint) float64 {
			var sum float64
			for _, s := range long.Samples {
				best := math.Inf(1)
				for _, o := range short.Samples {
					if d := p.SampleEffort(s, o, long.Count, short.Count); d < best {
						best = d
					}
				}
				sum += best
			}
			return sum / float64(long.Len())
		}
		var want float64
		switch {
		case a.Len() > b.Len():
			want = directed(a, b)
		case a.Len() < b.Len():
			want = directed(b, a)
		default:
			want = (directed(a, b) + directed(b, a)) / 2
		}
		if got := p.FingerprintEffort(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: optimized %g != brute force %g", trial, got, want)
		}
	}
}

func TestNearestSampleIndex(t *testing.T) {
	p := DefaultParams()
	s := NewSample(0, 0, 100, 100, 1)
	candidates := []Sample{
		NewSample(50000, 50000, 100, 100, 1), // far in space
		NewSample(0, 0, 100, 103, 1),         // 3 min away
		NewSample(0, 0, 100, 2000, 1),        // far in time
	}
	if got := p.NearestSampleIndex(s, 1, candidates, 1); got != 1 {
		t.Errorf("NearestSampleIndex = %d, want 1", got)
	}
}

// randFingerprint builds a random single-user fingerprint with n samples
// clustered around a random anchor, resembling a (very small) synthetic
// subscriber.
func randFingerprint(rng *rand.Rand, id string, n int) *Fingerprint {
	ax, ay := rng.Float64()*5e4, rng.Float64()*5e4
	samples := make([]Sample, n)
	for i := range samples {
		samples[i] = Sample{
			X:      ax + rng.NormFloat64()*2000,
			DX:     100,
			Y:      ay + rng.NormFloat64()*2000,
			DY:     100,
			T:      rng.Float64() * 14 * 24 * 60,
			DT:     1,
			Weight: 1,
		}
	}
	return NewFingerprint(id, samples)
}

func BenchmarkFingerprintEffort(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 50, 150} {
		fa := randFingerprint(rng, "a", n)
		fb := randFingerprint(rng, "b", n)
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.FingerprintEffort(fa, fb)
			}
		})
	}
}
