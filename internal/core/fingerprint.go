package core

import (
	"fmt"
	"sort"
)

// Fingerprint is the mobile fingerprint of one subscriber — or, after
// GLOVE merging, of a group of subscribers whose fingerprints have been
// made identical (Sec. 4.1). Samples are kept sorted by interval start
// time.
type Fingerprint struct {
	// ID is the pseudo-identifier of the subscriber, or a synthetic group
	// identifier after merging.
	ID string

	// Samples is the ordered sequence of spatiotemporal samples.
	Samples []Sample

	// Count is n_a of the paper: how many subscribers are hidden in this
	// fingerprint. Originals have Count 1.
	Count int

	// Members lists the pseudo-identifiers of all subscribers hidden in
	// this fingerprint, enabling k-anonymity validation and per-user
	// utility accounting. len(Members) == Count.
	Members []string
}

// NewFingerprint builds a single-subscriber fingerprint, sorting the
// samples by time.
func NewFingerprint(id string, samples []Sample) *Fingerprint {
	s := make([]Sample, len(samples))
	copy(s, samples)
	sortSamples(s)
	return &Fingerprint{ID: id, Samples: s, Count: 1, Members: []string{id}}
}

func sortSamples(s []Sample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].T != s[j].T {
			return s[i].T < s[j].T
		}
		if s[i].X != s[j].X {
			return s[i].X < s[j].X
		}
		return s[i].Y < s[j].Y
	})
}

// Len returns the number of samples (m_a of the paper).
func (f *Fingerprint) Len() int { return len(f.Samples) }

// Validate checks structural sanity of the fingerprint.
func (f *Fingerprint) Validate() error {
	if f.ID == "" {
		return fmt.Errorf("core: fingerprint with empty ID")
	}
	if f.Count < 1 {
		return fmt.Errorf("core: fingerprint %s has count %d < 1", f.ID, f.Count)
	}
	if len(f.Members) != f.Count {
		return fmt.Errorf("core: fingerprint %s: %d members but count %d", f.ID, len(f.Members), f.Count)
	}
	if len(f.Samples) == 0 {
		return fmt.Errorf("core: fingerprint %s has no samples", f.ID)
	}
	for i, s := range f.Samples {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("core: fingerprint %s sample %d: %w", f.ID, i, err)
		}
		if i > 0 && f.Samples[i-1].T > s.T {
			return fmt.Errorf("core: fingerprint %s samples not time-sorted at %d", f.ID, i)
		}
	}
	return nil
}

// Clone returns a deep copy of the fingerprint.
func (f *Fingerprint) Clone() *Fingerprint {
	s := make([]Sample, len(f.Samples))
	copy(s, f.Samples)
	m := make([]string, len(f.Members))
	copy(m, f.Members)
	return &Fingerprint{ID: f.ID, Samples: s, Count: f.Count, Members: m}
}

// TotalWeight returns the total number of original samples represented
// by this fingerprint's (possibly generalized) samples.
func (f *Fingerprint) TotalWeight() int {
	var w int
	for _, s := range f.Samples {
		w += s.Weight
	}
	return w
}

// Dataset is a movement micro-data database: a set of mobile
// fingerprints (Tab. 1 of the paper).
type Dataset struct {
	Fingerprints []*Fingerprint
}

// NewDataset wraps fingerprints into a Dataset without copying.
func NewDataset(fps []*Fingerprint) *Dataset {
	return &Dataset{Fingerprints: fps}
}

// Len returns the number of fingerprints (|M| of the paper).
func (d *Dataset) Len() int { return len(d.Fingerprints) }

// Users returns the total number of subscribers hidden in the dataset
// (the sum of fingerprint counts).
func (d *Dataset) Users() int {
	var n int
	for _, f := range d.Fingerprints {
		n += f.Count
	}
	return n
}

// TotalSamples returns the total number of published samples.
func (d *Dataset) TotalSamples() int {
	var n int
	for _, f := range d.Fingerprints {
		n += len(f.Samples)
	}
	return n
}

// Validate checks every fingerprint and ID uniqueness.
func (d *Dataset) Validate() error {
	seen := make(map[string]struct{}, len(d.Fingerprints))
	for _, f := range d.Fingerprints {
		if err := f.Validate(); err != nil {
			return err
		}
		if _, dup := seen[f.ID]; dup {
			return fmt.Errorf("core: duplicate fingerprint ID %q", f.ID)
		}
		seen[f.ID] = struct{}{}
	}
	return nil
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	fps := make([]*Fingerprint, len(d.Fingerprints))
	for i, f := range d.Fingerprints {
		fps[i] = f.Clone()
	}
	return &Dataset{Fingerprints: fps}
}

// MeanFingerprintLen returns the average number of samples per
// fingerprint (n-bar of the complexity analysis, Sec. 6.3).
func (d *Dataset) MeanFingerprintLen() float64 {
	if len(d.Fingerprints) == 0 {
		return 0
	}
	return float64(d.TotalSamples()) / float64(len(d.Fingerprints))
}
