package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
)

// SuppressionThresholds configures the optional suppression step of
// Sec. 7.1: published samples whose generalized extents exceed either
// threshold are discarded instead of published, trading a small loss of
// data for a large gain in accuracy (Fig. 9). A zero threshold disables
// that dimension.
type SuppressionThresholds struct {
	MaxSpatialMeters   float64 // drop samples with spatial span above this
	MaxTemporalMinutes float64 // drop samples with temporal span above this
}

// Enabled reports whether any suppression is configured.
func (s SuppressionThresholds) Enabled() bool {
	return s.MaxSpatialMeters > 0 || s.MaxTemporalMinutes > 0
}

// exceeds reports whether the sample violates the thresholds.
func (s SuppressionThresholds) exceeds(sm Sample) bool {
	if s.MaxSpatialMeters > 0 && sm.SpatialSpan() > s.MaxSpatialMeters {
		return true
	}
	if s.MaxTemporalMinutes > 0 && sm.TemporalSpan() > s.MaxTemporalMinutes {
		return true
	}
	return false
}

// GloveOptions configures a GLOVE run.
type GloveOptions struct {
	// K is the anonymity level: every published fingerprint hides at
	// least K subscribers. Must be >= 2.
	K int

	// Params calibrates the stretch effort; zero value means
	// DefaultParams.
	Params Params

	// Merge tunes the merging operation; the zero value is the paper's
	// configuration.
	Merge MergeOptions

	// Suppress optionally discards over-generalized samples after
	// anonymization (Sec. 7.1).
	Suppress SuppressionThresholds

	// Workers bounds the parallelism of the pair-effort computations;
	// <= 0 uses all CPUs.
	Workers int

	// Index selects the pair-selection index implementation (DESIGN.md
	// Sec. 4). The zero value (IndexAuto) uses the dense matrix below
	// DenseIndexMaxN fingerprints and the sparse spatial-grid candidate
	// index above. All implementations produce identical output.
	Index IndexKind

	// IndexNeighbors is the per-fingerprint candidate-list size m of the
	// sparse index; <= 0 uses DefaultIndexNeighbors. Larger values
	// refill candidate lists less often at the cost of O(n·m) memory.
	IndexNeighbors int

	// NaiveMinPair disables the per-row nearest-neighbour cache and
	// rescans the full effort matrix at every iteration. It exists only
	// for the ablation benchmark of the cache (DESIGN.md Sec. 5) and
	// must produce identical output. It implies the dense index and is
	// rejected in combination with IndexSparse.
	NaiveMinPair bool

	// Progress, if non-nil, is called from the goroutine running GLOVE
	// as the run advances: once after the pairwise effort index is
	// built, then after every merge, and a final time on completion.
	// done grows monotonically to total. The callback must be fast; it
	// is on the hot path of the merge loop.
	Progress func(done, total int)
}

func (o GloveOptions) withDefaults() GloveOptions {
	if o.Params == (Params{}) {
		o.Params = DefaultParams()
	}
	o.IndexNeighbors = clampIndexNeighbors(o.IndexNeighbors)
	return o
}

// GloveStats reports what a GLOVE run did to the data, matching the
// accounting of Table 2.
type GloveStats struct {
	InputFingerprints int
	InputUsers        int
	InputSamples      int // original samples in the input

	OutputFingerprints int // published (merged) fingerprints
	OutputSamples      int // published (generalized) samples
	Merges             int // number of pairwise merge operations

	// SuppressedSamples counts original samples whose generalization was
	// discarded by the suppression thresholds (the paper's "deleted
	// samples"). SuppressedPublished counts the published samples those
	// originals had been generalized into.
	SuppressedSamples   int
	SuppressedPublished int

	// DiscardedFingerprints and DiscardedUsers count fingerprints (and
	// the subscribers they hide) removed because suppression deleted all
	// of their samples. GLOVE itself never discards fingerprints, so
	// these are zero unless suppression is extremely aggressive.
	DiscardedFingerprints int
	DiscardedUsers        int

	// EffortKernelCalls counts pruned effort-kernel invocations (pair
	// evaluations requested by the run's pair-selection paths), and
	// EffortKernelPruned how many of them early-exited via their
	// caller's threshold instead of computing the exact Eq. 10 value
	// (DESIGN.md Sec. 8). Pruning never changes output — only cost.
	EffortKernelCalls  int
	EffortKernelPruned int

	// IndexBuildNanos and MergeNanos account the wall-clock time spent
	// building the pair-effort index (including view construction) and
	// running the merge loop. They are measured with two time.Now pairs
	// per run — no instrumentation inside the hot loop — and, being
	// wall-clock, are the only non-deterministic GloveStats fields;
	// comparisons of otherwise-identical runs must zero them first.
	IndexBuildNanos int64
	MergeNanos      int64
}

// Add accumulates every counter of o into s. Aggregators that combine
// per-partition runs (chunked blocks, service shards) sum with Add and
// then overwrite the Output* fields from the merged dataset.
func (s *GloveStats) Add(o *GloveStats) {
	s.InputFingerprints += o.InputFingerprints
	s.InputUsers += o.InputUsers
	s.InputSamples += o.InputSamples
	s.OutputFingerprints += o.OutputFingerprints
	s.OutputSamples += o.OutputSamples
	s.Merges += o.Merges
	s.SuppressedSamples += o.SuppressedSamples
	s.SuppressedPublished += o.SuppressedPublished
	s.DiscardedFingerprints += o.DiscardedFingerprints
	s.DiscardedUsers += o.DiscardedUsers
	s.EffortKernelCalls += o.EffortKernelCalls
	s.EffortKernelPruned += o.EffortKernelPruned
	s.IndexBuildNanos += o.IndexBuildNanos
	s.MergeNanos += o.MergeNanos
}

// Glove runs the GLOVE algorithm (Alg. 1) on the dataset and returns the
// k-anonymized dataset together with run statistics. The input dataset is
// not modified.
//
// The algorithm: compute the fingerprint stretch effort Δ (Eq. 10) among
// all pairs; repeatedly merge the not-yet-anonymized pair at minimum
// effort via specialized generalization (Eqs. 12-13); fingerprints whose
// accumulated subscriber count reaches K leave the working set. A single
// leftover fingerprint, if any, is merged into the nearest anonymized
// group so that no subscriber is ever discarded. Optional suppression
// then removes over-generalized samples.
func Glove(d *Dataset, opt GloveOptions) (*Dataset, *GloveStats, error) {
	return GloveContext(context.Background(), d, opt)
}

// GloveContext is Glove with cooperative cancellation: when ctx is done
// the run stops — between merge iterations, or mid-way through building
// the pairwise effort index — and ctx.Err() is returned. The input
// dataset is never modified, so an interrupted run leaves no partial
// state behind.
func GloveContext(ctx context.Context, d *Dataset, opt GloveOptions) (*Dataset, *GloveStats, error) {
	return gloveRun(ctx, d, opt, nil)
}

// gloveRun is GloveContext with an optional warm session: a non-nil sess
// donates (and receives back) recycled working-set, arena and index
// storage, which across the windows of a feed eliminates nearly all
// per-window allocation. The run itself is byte-identical either way —
// warm storage only changes where slices live, never what the merge
// loop observes (the "warm == cold" pin of TestSessionWarmEqualsCold).
func gloveRun(ctx context.Context, d *Dataset, opt GloveOptions, sess *WindowedSession) (*Dataset, *GloveStats, error) {
	opt = opt.withDefaults()
	if opt.K < 2 {
		return nil, nil, fmt.Errorf("core: glove k = %d, need k >= 2", opt.K)
	}
	if err := opt.Params.Validate(); err != nil {
		return nil, nil, err
	}
	if _, err := opt.resolveIndex(d.Len()); err != nil {
		return nil, nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	if d.Users() < opt.K {
		return nil, nil, fmt.Errorf("core: dataset hides %d users, cannot %d-anonymize", d.Users(), opt.K)
	}

	stats := &GloveStats{
		InputFingerprints: d.Len(),
		InputUsers:        d.Users(),
		InputSamples:      totalWeight(d),
	}

	buildStart := time.Now()
	st, err := newGloveState(ctx, d, opt, sess)
	if err != nil {
		return nil, nil, err
	}
	stats.IndexBuildNanos = time.Since(buildStart).Nanoseconds()
	return finishRun(ctx, st, stats)
}

// finishRun drives a staged state to completion: the merge loop, the
// leftover fold, suppression, and the output accounting. Shared by the
// one-shot paths (GloveContext, session Anonymize) and the staged
// Push/Commit path, whose state was built across several stage calls.
func finishRun(ctx context.Context, st *gloveState, stats *GloveStats) (*Dataset, *GloveStats, error) {
	opt := st.opt
	// Progress accounting: step 0 -> 1 is the index build, then one
	// step per merge (at most one merge per initially-active
	// fingerprint, counting the leftover fold).
	total := st.activeCount() + 1
	progress := func(done int) {
		if opt.Progress != nil {
			opt.Progress(done, total)
		}
	}
	progress(1)
	mergeStart := time.Now()
	merges := 0
	for st.activeCount() >= 2 {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		i, j := st.idx.MinPair()
		st.merge(i, j)
		merges++
		stats.Merges++
		progress(1 + merges)
	}
	if leftover, ok := st.lastActive(); ok {
		// One fingerprint remains below K: hide it inside the nearest
		// anonymized group (its members become part of that crowd).
		st.foldIntoDone(leftover)
		stats.Merges++
	}
	stats.MergeNanos = time.Since(mergeStart).Nanoseconds()
	stats.EffortKernelCalls = int(st.ws.kc.calls.Load())
	stats.EffortKernelPruned = int(st.ws.kc.pruned.Load())

	out := &Dataset{Fingerprints: st.done}
	applySuppression(out, opt.Suppress, stats)

	stats.OutputFingerprints = out.Len()
	stats.OutputSamples = out.TotalSamples()
	progress(total)
	return out, stats, nil
}

func totalWeight(d *Dataset) int {
	var w int
	for _, f := range d.Fingerprints {
		w += f.TotalWeight()
	}
	return w
}

// gloveState is the working set of Alg. 1: the active (not yet
// anonymized) fingerprints and the pluggable pair-selection index over
// them (dense effort matrix or sparse spatial-grid candidate lists).
type gloveState struct {
	opt GloveOptions
	ws  *workingSet
	idx EffortIndex

	// active is the live slot count, maintained by merge/foldIntoDone so
	// the merge loop's termination test is O(1) instead of rescanning
	// the alive slice every iteration. cursor is the lowest possibly-
	// alive slot: merging only ever reuses a slot that was alive moments
	// before, so the minimum alive index never decreases and lastActive
	// can resume from where it last stopped.
	active int
	cursor int

	done []*Fingerprint // anonymized fingerprints (count >= K)
}

func newGloveState(ctx context.Context, d *Dataset, opt GloveOptions, sess *WindowedSession) (*gloveState, error) {
	n := d.Len()
	var ws *workingSet
	if sess != nil && sess.ws != nil {
		ws = sess.ws
		ws.reset(opt.Params, opt.Workers, n)
	} else {
		ws = &workingSet{
			params:  opt.Params,
			workers: opt.Workers,
			fps:     make([]*Fingerprint, n),
			alive:   make([]bool, n),
			views:   make([]*fpView, n),
			n:       n,
		}
		if sess != nil {
			sess.ws = ws
		}
	}
	st := &gloveState{opt: opt, ws: ws}
	var offsets []int
	var arena []float64
	if sess != nil {
		offsets, arena = sess.offsets, sess.arena
	}
	offsets, arena = st.stage(d, 0, offsets, arena)
	if sess != nil {
		sess.offsets, sess.arena = offsets, arena
	}
	kind, err := opt.resolveIndex(n)
	if err != nil {
		return nil, err
	}
	opt.Index = kind
	st.idx = sessionEffortIndex(sess, ws, opt)
	if err := st.idx.Build(ctx); err != nil {
		return nil, err
	}
	return st, nil
}

// stage admits d's fingerprints into slots [base, base+d.Len()) of the
// state: already-anonymous inputs retire straight to done in input
// order, the rest become alive slots. SoA kernel views for the staged
// slots are built in bulk into one shared column arena: a single
// allocation sized by a prefix sum over sample counts, filled in
// parallel (each slot owns a disjoint segment). Each view is immutable
// until its slot is merged away, so the indexes built next can share
// them freely across goroutines; at 1M fingerprints this replaces 1M
// small allocations with one. The offsets/arena scratch is reused when
// capacity allows and returned for the caller to recycle; a staged
// push passes a nil arena because the previous pushes' views still own
// theirs.
func (st *gloveState) stage(d *Dataset, base int, offsets []int, arena []float64) ([]int, []float64) {
	ws := st.ws
	n := d.Len()
	for i, f := range d.Fingerprints {
		fc := f.Clone()
		if fc.Count >= st.opt.K {
			// Already anonymized on input (e.g. pre-merged groups).
			st.done = append(st.done, fc)
			continue
		}
		ws.fps[base+i] = fc
		ws.alive[base+i] = true
		st.active++
	}
	offsets = growKeep(offsets, n+1)
	offsets[0] = 0
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i]
		if ws.alive[base+i] {
			offsets[i+1] += 7 * len(ws.fps[base+i].Samples)
		}
	}
	arena = growKeep(arena, offsets[n])
	parallel.For(n, ws.workers, func(i int) {
		if ws.alive[base+i] {
			v := &fpView{}
			v.fill(ws.fps[base+i], arena[offsets[i]:offsets[i+1]:offsets[i+1]])
			ws.views[base+i] = v
		}
	})
	return offsets, arena
}

func (st *gloveState) activeCount() int { return st.active }

func (st *gloveState) lastActive() (int, bool) {
	for ; st.cursor < st.ws.n; st.cursor++ {
		if st.ws.alive[st.cursor] {
			return st.cursor, true
		}
	}
	return 0, false
}

// merge performs one iteration of Alg. 1 (lines 5-14): remove slots i
// and j, merge their fingerprints, and either retire the result (count
// >= K) or re-insert it into slot i with freshly computed efforts.
func (st *gloveState) merge(i, j int) {
	ws := st.ws
	a, b := ws.fps[i], ws.fps[j]
	m := MergeFingerprints(st.opt.Params, a, b, st.opt.Merge)

	ws.kill(i)
	ws.kill(j)
	st.active -= 2
	st.idx.Remove(i)
	st.idx.Remove(j)

	if m.Count < st.opt.K {
		ws.put(i, m)
		st.active++
		st.idx.Reinsert(i)
	} else {
		st.done = append(st.done, m)
	}
}

// foldIntoDone merges the last active fingerprint into the anonymized
// group at minimum effort, so no subscriber is discarded. Groups are
// evaluated in parallel against a shared running best that feeds the
// kernel threshold: a stale read only weakens the threshold (the best
// never increases), and a pruned group's true effort strictly exceeds
// the best at its evaluation time, so it can never be — or tie — the
// minimum. The selected group is therefore exactly the sequential
// exhaustive scan's first minimum.
func (st *gloveState) foldIntoDone(i int) {
	ws := st.ws
	f := ws.fps[i]
	// Detach rather than kill: the leftover's view feeds every candidate
	// evaluation below and must not be recycled mid-fold.
	fv := ws.detach(i)
	st.active--
	st.idx.Remove(i)

	p := st.opt.Params
	var bestBits atomic.Uint64
	bestBits.Store(math.Float64bits(math.Inf(1)))
	type cand struct {
		e  float64
		ok bool
	}
	res := parallel.Map(len(st.done), st.opt.Workers, func(c int) cand {
		thr := math.Float64frombits(bestBits.Load())
		// Per-group views come from the shared pool (bounds included in
		// the fill pass — no separate BoundsOf sweep per candidate).
		dv := ws.borrowView(st.done[c])
		e, below := p.effortBelowViews(fv, dv, thr)
		ws.returnView(dv)
		ws.kc.calls.Add(1)
		if !below {
			ws.kc.pruned.Add(1)
			return cand{}
		}
		for {
			cur := bestBits.Load()
			if math.Float64frombits(cur) <= e || bestBits.CompareAndSwap(cur, math.Float64bits(e)) {
				break
			}
		}
		return cand{e: e, ok: true}
	})
	best := math.Inf(1)
	bestIdx := 0
	for c, r := range res {
		if r.ok && r.e < best {
			best = r.e
			bestIdx = c
		}
	}
	st.done[bestIdx] = MergeFingerprints(p, st.done[bestIdx], f, st.opt.Merge)
	ws.returnView(fv)
}

// applySuppression removes over-generalized samples from the published
// dataset and updates the accounting. Fingerprints left without samples
// are discarded entirely (with their hidden users counted).
func applySuppression(d *Dataset, thr SuppressionThresholds, stats *GloveStats) {
	if !thr.Enabled() {
		return
	}
	kept := d.Fingerprints[:0]
	for _, f := range d.Fingerprints {
		out := f.Samples[:0]
		for _, s := range f.Samples {
			if thr.exceeds(s) {
				stats.SuppressedSamples += s.Weight
				stats.SuppressedPublished++
				continue
			}
			out = append(out, s)
		}
		f.Samples = out
		if len(f.Samples) == 0 {
			stats.DiscardedFingerprints++
			stats.DiscardedUsers += f.Count
			continue
		}
		kept = append(kept, f)
	}
	d.Fingerprints = kept
}
