package core

import (
	"context"
	"math/rand"
	"testing"
)

// ctxTestDataset builds a small random dataset of single-user
// fingerprints.
func ctxTestDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	fps := make([]*Fingerprint, n)
	for i := range fps {
		m := 3 + rng.Intn(4)
		samples := make([]Sample, m)
		for s := range samples {
			samples[s] = Sample{
				X: 100 * rng.Float64() * 1000, DX: 100,
				Y: 100 * rng.Float64() * 1000, DY: 100,
				T: float64(rng.Intn(1000)), DT: 1,
				Weight: 1,
			}
		}
		fps[i] = NewFingerprint(string(rune('a'+i/26))+string(rune('a'+i%26)), samples)
	}
	return NewDataset(fps)
}

func TestGloveContextMatchesGlove(t *testing.T) {
	d := ctxTestDataset(20, 7)
	want, wantStats, err := Glove(d, GloveOptions{K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := GloveContext(context.Background(), d, GloveOptions{K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || gotStats.Merges != wantStats.Merges {
		t.Errorf("GloveContext diverged: %d groups / %d merges, want %d / %d",
			got.Len(), gotStats.Merges, want.Len(), wantStats.Merges)
	}
}

func TestGloveProgress(t *testing.T) {
	d := ctxTestDataset(15, 3)
	var calls int
	last, lastTotal := -1, 0
	_, stats, err := Glove(d, GloveOptions{
		K:       2,
		Workers: 1,
		Progress: func(done, total int) {
			calls++
			if done < last {
				t.Errorf("progress went backwards: %d after %d", done, last)
			}
			if lastTotal != 0 && total != lastTotal {
				t.Errorf("total changed mid-run: %d -> %d", lastTotal, total)
			}
			if done > total {
				t.Errorf("done %d > total %d", done, total)
			}
			last, lastTotal = done, total
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls < stats.Merges {
		t.Errorf("progress called %d times for %d merges", calls, stats.Merges)
	}
	if last != lastTotal {
		t.Errorf("final progress %d/%d, want completion", last, lastTotal)
	}
}

func TestGloveContextCancelledBeforeStart(t *testing.T) {
	d := ctxTestDataset(10, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := GloveContext(ctx, d, GloveOptions{K: 2, Workers: 1})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGloveContextCancelledMidRun(t *testing.T) {
	d := ctxTestDataset(40, 5)
	ctx, cancel := context.WithCancel(context.Background())
	var merges int
	_, _, err := GloveContext(ctx, d, GloveOptions{
		K:       4,
		Workers: 1,
		Progress: func(done, total int) {
			merges++
			if merges == 5 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
