package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestGloveArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 6, 5)
	if _, _, err := Glove(d, GloveOptions{K: 1}); err == nil {
		t.Error("k=1 accepted")
	}
	if _, _, err := Glove(d, GloveOptions{K: 7}); err == nil {
		t.Error("k > users accepted")
	}
	bad := NewDataset([]*Fingerprint{{ID: "", Count: 1, Members: []string{""}}})
	if _, _, err := Glove(bad, GloveOptions{K: 2}); err == nil {
		t.Error("invalid dataset accepted")
	}
}

func TestGloveKAnonymity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []int{2, 3, 5} {
		d := randDataset(rng, 30, 10)
		out, stats, err := Glove(d, GloveOptions{K: k, Workers: 2})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if err := ValidateKAnonymity(out, k); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if stats.InputUsers != 30 {
			t.Errorf("k=%d: input users %d", k, stats.InputUsers)
		}
		if got := out.Users(); got != 30 {
			t.Errorf("k=%d: output hides %d users, want 30 (GLOVE discards nobody)", k, got)
		}
		if stats.DiscardedFingerprints != 0 || stats.DiscardedUsers != 0 {
			t.Errorf("k=%d: discarded %d fingerprints / %d users", k,
				stats.DiscardedFingerprints, stats.DiscardedUsers)
		}
	}
}

func TestGloveTruthfulness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := randDataset(rng, 25, 12)
	out, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckTruthfulness(d, out)
	if rep.MissingFP != 0 {
		t.Errorf("%d subscribers missing from output", rep.MissingFP)
	}
	if rep.Suppressed != 0 {
		t.Errorf("%d original samples uncovered without suppression", rep.Suppressed)
	}
	var want int
	for _, f := range d.Fingerprints {
		want += f.Len()
	}
	if rep.Covered != want {
		t.Errorf("covered %d, want %d", rep.Covered, want)
	}
}

func TestGloveGroupsShareFingerprint(t *testing.T) {
	// All members of a group are indistinguishable by construction: the
	// group has a single published sample sequence. Check group sizes
	// cover all users exactly once.
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 21, 8) // odd count forces a leftover fold at k=2
	out, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, f := range out.Fingerprints {
		for _, m := range f.Members {
			if seen[m] {
				t.Fatalf("subscriber %s in two groups", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 21 {
		t.Fatalf("output covers %d subscribers, want 21", len(seen))
	}
}

func TestGloveOddLeftoverFold(t *testing.T) {
	// With 3 users and k=2, two merge and the third folds into the done
	// group: one output fingerprint hiding all 3.
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 3, 6)
	out, stats, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Fingerprints[0].Count != 3 {
		t.Fatalf("got %d fingerprints, first count %d; want 1 hiding 3",
			out.Len(), out.Fingerprints[0].Count)
	}
	if stats.Merges != 2 {
		t.Errorf("merges = %d, want 2", stats.Merges)
	}
}

func TestGloveMergesClosePairsFirst(t *testing.T) {
	// Two identical pairs and two loners: the identical pairs must end up
	// merged together (their effort is 0).
	rng := rand.New(rand.NewSource(6))
	a := randFingerprint(rng, "a", 6)
	a2 := a.Clone()
	a2.ID = "a2"
	a2.Members = []string{"a2"}
	b := randFingerprint(rng, "b", 6)
	b2 := b.Clone()
	b2.ID = "b2"
	b2.Members = []string{"b2"}
	c := randFingerprint(rng, "c", 6)
	e := randFingerprint(rng, "e", 6)
	d := NewDataset([]*Fingerprint{a, c, b, a2, e, b2})
	out, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	find := func(id string) *Fingerprint {
		for _, f := range out.Fingerprints {
			if hasMember(f, id) {
				return f
			}
		}
		t.Fatalf("member %s not found", id)
		return nil
	}
	if fa := find("a"); !hasMember(fa, "a2") {
		t.Error("identical fingerprints a, a2 not grouped")
	}
	if fb := find("b"); !hasMember(fb, "b2") {
		t.Error("identical fingerprints b, b2 not grouped")
	}
}

func TestGloveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 18, 7)
	out1, _, err := Glove(d, GloveOptions{K: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Glove(d, GloveOptions{K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Len() != out2.Len() {
		t.Fatalf("runs differ: %d vs %d fingerprints", out1.Len(), out2.Len())
	}
	for i := range out1.Fingerprints {
		f1, f2 := out1.Fingerprints[i], out2.Fingerprints[i]
		if f1.Count != f2.Count || f1.Len() != f2.Len() {
			t.Fatalf("fingerprint %d differs across runs", i)
		}
		for j := range f1.Samples {
			if f1.Samples[j] != f2.Samples[j] {
				t.Fatalf("fingerprint %d sample %d differs across runs", i, j)
			}
		}
	}
}

func TestGloveInputUnmodified(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randDataset(rng, 10, 6)
	before := d.Clone()
	if _, _, err := Glove(d, GloveOptions{K: 2}); err != nil {
		t.Fatal(err)
	}
	for i, f := range d.Fingerprints {
		if f.Count != before.Fingerprints[i].Count || f.Len() != before.Fingerprints[i].Len() {
			t.Fatal("Glove modified its input")
		}
		for j := range f.Samples {
			if f.Samples[j] != before.Fingerprints[i].Samples[j] {
				t.Fatal("Glove modified input samples")
			}
		}
	}
}

func TestGloveSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Mostly clustered users plus one wild outlier whose merge will be
	// very coarse.
	fps := make([]*Fingerprint, 0, 11)
	for i := 0; i < 10; i++ {
		fps = append(fps, randFingerprint(rng, fmt.Sprintf("u%d", i), 8))
	}
	outlier := NewFingerprint("wild", []Sample{
		NewSample(9e5, 9e5, 100, 19000, 1),
		NewSample(-9e5, -9e5, 100, 1, 1),
	})
	fps = append(fps, outlier)
	d := NewDataset(fps)

	thr := SuppressionThresholds{MaxSpatialMeters: 15000, MaxTemporalMinutes: 360}
	out, stats, err := Glove(d, GloveOptions{K: 2, Suppress: thr})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SuppressedSamples == 0 {
		t.Error("no samples suppressed despite wild outlier")
	}
	for _, f := range out.Fingerprints {
		for _, s := range f.Samples {
			if s.SpatialSpan() > 15000 {
				t.Fatalf("published sample with span %g m survived suppression", s.SpatialSpan())
			}
			if s.TemporalSpan() > 360 {
				t.Fatalf("published sample with span %g min survived suppression", s.TemporalSpan())
			}
		}
	}
	// k-anonymity must hold on whatever remains.
	if err := ValidateKAnonymity(out, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGlovePreAnonymizedInput(t *testing.T) {
	// A fingerprint already hiding k users goes straight to the output.
	rng := rand.New(rand.NewSource(10))
	pre := randFingerprint(rng, "pre", 5)
	pre.Count = 3
	pre.Members = []string{"p1", "p2", "p3"}
	others := []*Fingerprint{
		randFingerprint(rng, "x", 5),
		randFingerprint(rng, "y", 5),
	}
	d := NewDataset(append(others, pre))
	out, _, err := Glove(d, GloveOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateKAnonymity(out, 3); err != nil {
		t.Fatal(err)
	}
	if out.Users() != 5 {
		t.Errorf("output hides %d users, want 5", out.Users())
	}
}

func TestSuppressionThresholds(t *testing.T) {
	var zero SuppressionThresholds
	if zero.Enabled() {
		t.Error("zero thresholds enabled")
	}
	thr := SuppressionThresholds{MaxSpatialMeters: 100}
	if !thr.Enabled() {
		t.Error("spatial-only thresholds disabled")
	}
	if thr.exceeds(Sample{DX: 50, DY: 50, Weight: 1}) {
		t.Error("small sample exceeds")
	}
	if !thr.exceeds(Sample{DX: 200, DY: 50, Weight: 1}) {
		t.Error("wide sample does not exceed")
	}
	tt := SuppressionThresholds{MaxTemporalMinutes: 60}
	if !tt.exceeds(Sample{DT: 120, Weight: 1}) {
		t.Error("long sample does not exceed")
	}
}

func TestGloveStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randDataset(rng, 12, 9)
	out, stats, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.InputFingerprints != 12 {
		t.Errorf("InputFingerprints = %d", stats.InputFingerprints)
	}
	var inSamples int
	for _, f := range d.Fingerprints {
		inSamples += f.Len()
	}
	if stats.InputSamples != inSamples {
		t.Errorf("InputSamples = %d, want %d", stats.InputSamples, inSamples)
	}
	if stats.OutputFingerprints != out.Len() {
		t.Errorf("OutputFingerprints = %d, want %d", stats.OutputFingerprints, out.Len())
	}
	if stats.OutputSamples != out.TotalSamples() {
		t.Errorf("OutputSamples = %d, want %d", stats.OutputSamples, out.TotalSamples())
	}
	// Without suppression, published weight equals input samples.
	var outWeight int
	for _, f := range out.Fingerprints {
		outWeight += f.TotalWeight()
	}
	if outWeight != inSamples {
		t.Errorf("published weight %d != input samples %d", outWeight, inSamples)
	}
}

func TestGloveLargerK(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := randDataset(rng, 40, 6)
	out, _, err := Glove(d, GloveOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateKAnonymity(out, 10); err != nil {
		t.Fatal(err)
	}
	if out.Users() != 40 {
		t.Errorf("users = %d", out.Users())
	}
}

func BenchmarkGlove(b *testing.B) {
	for _, n := range []int{50, 150} {
		rng := rand.New(rand.NewSource(1))
		d := randDataset(rng, n, 15)
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Glove(d, GloveOptions{K: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestGloveNaiveMinPairEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := randDataset(rng, 20, 8)
	cached, _, err := Glove(d, GloveOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, _, err := Glove(d, GloveOptions{K: 3, NaiveMinPair: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Len() != naive.Len() {
		t.Fatalf("cached %d vs naive %d fingerprints", cached.Len(), naive.Len())
	}
	for i := range cached.Fingerprints {
		a, b := cached.Fingerprints[i], naive.Fingerprints[i]
		if a.ID != b.ID || a.Count != b.Count || a.Len() != b.Len() {
			t.Fatalf("fingerprint %d differs between cached and naive min-pair", i)
		}
		for j := range a.Samples {
			if a.Samples[j] != b.Samples[j] {
				t.Fatalf("fingerprint %d sample %d differs", i, j)
			}
		}
	}
}
