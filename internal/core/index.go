package core

import (
	"context"
	"math"
	"sync"
)

// workingSet is the slot table an EffortIndex operates over: the active
// (not yet anonymized) fingerprints of a GLOVE run, addressed by stable
// slot numbers so index structures can reference fingerprints without
// chasing pointers. The merge loop mutates it (kills slots, reinserts
// merged fingerprints) and notifies the index through Remove/Reinsert.
//
// Alongside each fingerprint the set caches its SoA kernel view
// (fpView), so every pair-effort evaluation an index requests runs the
// pruned allocation-free kernel; views are dropped on kill and rebuilt
// on put, never mutated in place.
type workingSet struct {
	params  Params
	workers int

	fps   []*Fingerprint // slot -> fingerprint (nil when dead)
	alive []bool         // slot is active (fingerprint count < K)
	views []*fpView      // slot -> cached kernel view (nil when dead)
	n     int            // slot capacity (== initial dataset size)

	// viewPool recycles view structs and their backing arrays between
	// merges, keeping the fpView layer allocation-free in steady state:
	// every merge kills two slots and puts at most one, so the pool
	// never grows past the churn of the run. The pool is also shared by
	// the leftover fold's transient per-group views.
	viewPool sync.Pool

	kc kernelCounters // pruned-kernel accounting for GloveStats
}

// growKeep returns s with length n, reusing the backing array when its
// capacity allows and copying retained elements over on reallocation.
// The warm-state reset paths are built on it: slices grow, never
// shrink, so across the windows of a feed each structure allocates at
// most a handful of times. Callers clear whatever stale contents matter
// to them — the cap-reuse path exposes old values.
func growKeep[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	ns := make([]T, n)
	copy(ns, s)
	return ns
}

// reset re-arms a recycled working set for a fresh run over n slots.
// Slot storage keeps its capacity, kernel counters restart at zero, and
// the view pool is dropped: pooled backings may alias the previous
// run's column arena, which the next run overwrites in place — reusing
// one would let two live views share memory.
func (ws *workingSet) reset(params Params, workers, n int) {
	ws.params = params
	ws.workers = workers
	ws.n = n
	ws.fps = growKeep(ws.fps, n)
	clear(ws.fps)
	ws.alive = growKeep(ws.alive, n)
	clear(ws.alive)
	ws.views = growKeep(ws.views, n)
	clear(ws.views)
	ws.viewPool = sync.Pool{}
	ws.kc.calls.Store(0)
	ws.kc.pruned.Store(0)
}

// extend grows the slot table to n slots for a staged push, leaving the
// existing slots untouched.
func (ws *workingSet) extend(n int) {
	old := ws.n
	ws.fps = growKeep(ws.fps, n)
	clear(ws.fps[old:])
	ws.alive = growKeep(ws.alive, n)
	clear(ws.alive[old:])
	ws.views = growKeep(ws.views, n)
	clear(ws.views[old:])
	ws.n = n
}

// borrowView builds a kernel view for f from pooled storage. The caller
// owns the view until it recycles it (returnView) or hands it to a slot
// (put does both ends internally).
func (ws *workingSet) borrowView(f *Fingerprint) *fpView {
	v, _ := ws.viewPool.Get().(*fpView)
	if v == nil {
		v = &fpView{}
	}
	need := 7 * len(f.Samples)
	backing := v.backing
	if cap(backing) < need {
		backing = make([]float64, need)
	}
	v.fill(f, backing[:need])
	return v
}

// returnView recycles a view obtained from borrowView. The view must no
// longer be referenced: its backing is overwritten by the next borrow.
func (ws *workingSet) returnView(v *fpView) {
	if v != nil {
		ws.viewPool.Put(v)
	}
}

// put (re)activates slot i with fingerprint f, rebuilding its kernel
// view from pooled storage. The view is immutable from here on: merging
// removes both inputs and puts a fresh fingerprint, it never edits one
// in place.
func (ws *workingSet) put(i int, f *Fingerprint) {
	ws.fps[i] = f
	ws.alive[i] = true
	ws.views[i] = ws.borrowView(f)
}

// kill deactivates slot i, dropping its fingerprint and recycling its
// view. Callers that still need the view must detach first.
func (ws *workingSet) kill(i int) {
	ws.alive[i] = false
	ws.fps[i] = nil
	ws.returnView(ws.views[i])
	ws.views[i] = nil
}

// detach deactivates slot i like kill but hands the view back to the
// caller instead of recycling it — the leftover fold keeps reading the
// view after the slot dies.
func (ws *workingSet) detach(i int) *fpView {
	v := ws.views[i]
	ws.alive[i] = false
	ws.fps[i] = nil
	ws.views[i] = nil
	return v
}

// effortBelow runs the pruned kernel over the cached views of two live
// slots (see FingerprintEffortBelow for the contract).
func (ws *workingSet) effortBelow(i, j int, threshold float64) (float64, bool) {
	e, below := ws.params.effortBelowViews(ws.views[i], ws.views[j], threshold)
	ws.kc.calls.Add(1)
	if !below {
		ws.kc.pruned.Add(1)
	}
	return e, below
}

// effort is the exact pair effort over cached views, bit-identical to
// Params.FingerprintEffort.
func (ws *workingSet) effort(i, j int) float64 {
	e, _ := ws.effortBelow(i, j, math.Inf(1))
	return e
}

// EffortIndex is the pluggable pair-selection structure behind the GLOVE
// merge loop (Alg. 1 line 5: "find the pair at minimum stretch effort").
// Implementations trade memory for generality:
//
//   - denseIndex stores the full n×n effort matrix — exact O(1) effort
//     lookups, O(n²) float64 memory, the small-n default.
//   - sparseIndex keeps a bounded candidate list per fingerprint seeded
//     from a spatial grid — O(n·m) memory, the large-n path.
//
// Both are exact: MinPair returns the same pair as an exhaustive scan
// under the canonical ordering, so every index yields byte-identical
// anonymized output (the equivalence property test enforces this).
//
// Call protocol: the merge loop mutates the workingSet first (alive
// flags, fingerprint slots) and then informs the index, so Remove and
// Reinsert always observe the post-mutation state.
type EffortIndex interface {
	// Build computes the initial structures over the active slots. It
	// honours ctx so a cancelled run does not wait out the start-up cost.
	Build(ctx context.Context) error

	// MinPair returns the active pair (i, j), i < j, minimal under the
	// canonical ordering: lowest effort, ties broken towards the lowest
	// i and then the lowest j. Returns (-1, -1) when fewer than two
	// slots are active.
	MinPair() (int, int)

	// Remove tells the index slot i was deactivated (its fingerprint
	// merged away or retired to the anonymized set).
	Remove(i int)

	// Reinsert tells the index slot i was re-activated with the merged
	// fingerprint now held by the working set, and must recompute that
	// slot's efforts.
	Reinsert(i int)
}

// newEffortIndex constructs the index implementation selected by the
// (already resolved) options. opt.Index must be IndexDense or
// IndexSparse by the time a state is built; resolveIndex handles auto.
func newEffortIndex(ws *workingSet, opt GloveOptions) EffortIndex {
	if opt.Index == IndexSparse {
		return newSparseIndex(ws, opt.IndexNeighbors)
	}
	return newDenseIndex(ws, opt.NaiveMinPair)
}
