package core

import (
	"context"
	"math"

	"repro/internal/parallel"
)

// denseIndex is the dense EffortIndex: a full symmetric n×n effort
// matrix over the working-set slots plus a per-slot nearest-neighbour
// cache that keeps min-pair selection near O(n) per iteration. Exact
// and fastest for small datasets, but its memory is quadratic (8·n²
// bytes), which is why the planner switches to sparseIndex above
// DenseIndexMaxN fingerprints.
//
// The matrix is filled by the pruned effort kernel: a row scan carries
// its running minimum as the kernel threshold, so most entries abort
// after a few samples and store only a lower bound, flagged in trunc.
// Exactness is preserved lazily (DESIGN.md Sec. 8): nearest[i] always
// points at an entry whose exact effort is stored, and rescanNearest
// refines truncated winners on demand — a truncated entry's true effort
// exceeds its stored bound, so the canonical row minimum after
// refinement is exactly the one a fully-exact matrix would yield.
type denseIndex struct {
	ws *workingSet

	// naive disables the nearest cache and rescans the full matrix at
	// every MinPair, for the cache ablation (DESIGN.md Sec. 5). Output
	// must be identical; the full-matrix scan needs every entry exact,
	// so naive mode also disables threshold truncation.
	naive bool

	matrix  []float64 // n*n efforts among active slots
	trunc   []bool    // entry holds a lower bound, not the exact effort
	nearest []int     // slot -> active slot at canonical min effort (-1 if none)

	// Reinsert scratch rows, allocated once at Build so the per-merge
	// offer fan-out allocates nothing (the merge loop is serial, so one
	// set suffices).
	reE     []float64
	reTrunc []bool
}

func newDenseIndex(ws *workingSet, naive bool) *denseIndex {
	return &denseIndex{ws: ws, naive: naive}
}

// Build computes the pairwise effort matrix. The O(n²) build dominates
// start-up cost; it runs under ctx so a cancelled job does not have to
// wait it out. Rows are scanned independently in parallel, each pruning
// against its own running minimum; a pair is therefore visited once per
// side, but both visits usually abort within a few samples, which is
// far cheaper than one exhaustive evaluation.
func (x *denseIndex) Build(ctx context.Context) error {
	ws := x.ws
	n := ws.n
	x.prepare(n)
	if x.naive {
		// The ablation's full-matrix rescans read every entry, so build
		// the exact matrix, one evaluation per unordered pair.
		err := parallel.ForPairsContext(ctx, n, ws.workers, func(i, j int) {
			if !ws.alive[i] || !ws.alive[j] {
				return
			}
			e := ws.effort(i, j)
			x.matrix[i*n+j] = e
			x.matrix[j*n+i] = e
		})
		if err != nil {
			return err
		}
	} else {
		err := parallel.ForContext(ctx, n, ws.workers, func(i int) {
			if ws.alive[i] {
				x.buildRow(i)
			}
		})
		if err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if ws.alive[i] {
			x.rescanNearest(i)
		}
	}
	return nil
}

// prepare sizes the matrix and caches for n slots, reusing recycled
// capacity (a WindowedSession keeps the quadratic matrix across the
// windows of a feed). Stale matrix entries at dead or self positions
// are never read — every consumer skips !alive slots first — but the
// trunc flags are cleared wholesale: buildRow only ever sets them, and
// a stale "truncated" flag on an exact entry would cost a pointless
// refinement on first read.
func (x *denseIndex) prepare(n int) {
	x.matrix = growKeep(x.matrix, n*n)
	x.trunc = growKeep(x.trunc, n*n)
	clear(x.trunc)
	x.nearest = growKeep(x.nearest, n)
	x.reE = growKeep(x.reE, n)
	x.reTrunc = growKeep(x.reTrunc, n)
}

// Extend brings freshly staged slots into a built index. At dense scale
// (the planner caps this index at DenseIndexMaxN fingerprints) there is
// no structure worth preserving incrementally — the matrix is quadratic
// either way — so extension is a full warm rebuild over the recycled
// storage, exact by construction. The sparse index is the one with a
// true incremental path; staged sessions resolve IndexAuto to it.
func (x *denseIndex) Extend(ctx context.Context, _ int) error {
	return x.Build(ctx)
}

// buildRow fills row i, passing the running row minimum to the kernel
// as the abort threshold. Truncated entries store the kernel's lower
// bound; since every such bound exceeds the row minimum at the time it
// was skipped — and the minimum only decreases during the scan — the
// final row minimum is always stored exactly, so the first
// rescanNearest of a fresh row never refines.
func (x *denseIndex) buildRow(i int) {
	ws := x.ws
	n := ws.n
	row := x.matrix[i*n : (i+1)*n]
	tr := x.trunc[i*n : (i+1)*n]
	thr := math.Inf(1)
	for j := 0; j < n; j++ {
		if j == i || !ws.alive[j] {
			continue
		}
		e, below := ws.effortBelow(i, j, thr)
		row[j] = e
		if below {
			if e < thr {
				thr = e
			}
		} else {
			tr[j] = true
		}
	}
}

// exactEntry returns the exact effort of the live pair (i, j), refining
// the matrix in place when only a lower bound is stored. Refinement is
// symmetric: the exact value serves both rows.
func (x *denseIndex) exactEntry(i, j int) float64 {
	n := x.ws.n
	if x.trunc[i*n+j] {
		e := x.ws.effort(i, j)
		x.matrix[i*n+j] = e
		x.matrix[j*n+i] = e
		x.trunc[i*n+j] = false
		x.trunc[j*n+i] = false
	}
	return x.matrix[i*n+j]
}

// rescanNearest recomputes the nearest active neighbour of slot i from
// the matrix row: the canonical minimum, i.e. the lowest slot index
// among effort ties. Truncated winners are refined to their exact
// effort and the scan repeats — the refined value can only grow, so the
// loop settles on exactly the canonical minimum of the fully-exact row.
func (x *denseIndex) rescanNearest(i int) {
	ws := x.ws
	n := ws.n
	row := x.matrix[i*n : (i+1)*n]
	for {
		best := math.Inf(1)
		bestIdx := -1
		for j := 0; j < n; j++ {
			if j == i || !ws.alive[j] {
				continue
			}
			if row[j] < best {
				best = row[j]
				bestIdx = j
			}
		}
		if bestIdx < 0 || !x.trunc[i*n+bestIdx] {
			x.nearest[i] = bestIdx
			return
		}
		x.exactEntry(i, bestIdx)
	}
}

// MinPair returns the active pair at global minimum effort using the
// nearest caches; ties break towards the lowest slot indexes, keeping
// runs deterministic and index implementations interchangeable. Every
// nearest entry stores its exact effort (rescanNearest refines before
// caching), so the selection matches an exhaustive exact scan.
func (x *denseIndex) MinPair() (int, int) {
	if x.naive {
		return x.minPairNaive()
	}
	ws := x.ws
	best := math.Inf(1)
	bi, bj := -1, -1
	for i := 0; i < ws.n; i++ {
		if !ws.alive[i] || x.nearest[i] < 0 {
			continue
		}
		e := x.matrix[i*ws.n+x.nearest[i]]
		if e < best {
			best = e
			bi, bj = i, x.nearest[i]
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

// minPairNaive is the cache-free O(n²) scan used by the ablation
// benchmark. Tie-breaking matches the cached path: both return the
// first minimal pair in row-major order. Naive mode never truncates, so
// every entry read here is exact.
func (x *denseIndex) minPairNaive() (int, int) {
	ws := x.ws
	best := math.Inf(1)
	bi, bj := -1, -1
	for i := 0; i < ws.n; i++ {
		if !ws.alive[i] {
			continue
		}
		row := x.matrix[i*ws.n : (i+1)*ws.n]
		for j := 0; j < ws.n; j++ {
			if j == i || !ws.alive[j] {
				continue
			}
			if row[j] < best {
				best = row[j]
				bi, bj = i, j
			}
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

// Remove repairs the nearest caches of slots that pointed at the now
// dead slot i.
func (x *denseIndex) Remove(i int) {
	ws := x.ws
	for c := 0; c < ws.n; c++ {
		if ws.alive[c] && x.nearest[c] == i {
			x.rescanNearest(c)
		}
	}
}

// Reinsert recomputes row i against all active slots in parallel and
// offers the new row to the other slots' caches. Each evaluation
// carries the target slot's current nearest effort as the kernel
// threshold: a truncated result proves the merged fingerprint cannot
// improve that slot's cache, and row i's own minimum is settled by
// rescanNearest's refinement.
func (x *denseIndex) Reinsert(i int) {
	ws := x.ws
	n := ws.n
	parallel.For(n, ws.workers, func(c int) {
		if c == i || !ws.alive[c] {
			x.reE[c] = math.NaN() // dead marker
			return
		}
		thr := math.Inf(1)
		if !x.naive {
			if cur := x.nearest[c]; cur >= 0 {
				thr = x.matrix[c*n+cur]
			}
		}
		e, below := ws.effortBelow(i, c, thr)
		x.reE[c] = e
		x.reTrunc[c] = !below
	})
	for c, e := range x.reE {
		if math.IsNaN(e) {
			continue
		}
		x.matrix[i*n+c] = e
		x.matrix[c*n+i] = e
		x.trunc[i*n+c] = x.reTrunc[c]
		x.trunc[c*n+i] = x.reTrunc[c]
	}
	x.rescanNearest(i)
	// Other caches may only improve via the reinserted slot. On an exact
	// effort tie the lower slot index wins, matching the canonical
	// ordering of rescanNearest (ties at saturated effort 1.0 are common
	// between far-apart fingerprints, so this matters for determinism
	// across index implementations). A truncated offer was evaluated
	// against exactly this cached effort, so its true value is strictly
	// worse and the cache keeps its current neighbour.
	for c := 0; c < n; c++ {
		if !ws.alive[c] || c == i || x.trunc[c*n+i] {
			continue
		}
		e := x.matrix[c*n+i]
		cur := x.nearest[c]
		if cur < 0 || e < x.matrix[c*n+cur] || (e == x.matrix[c*n+cur] && i < cur) {
			x.nearest[c] = i
		}
	}
}
