package core

import (
	"context"
	"math"

	"repro/internal/parallel"
)

// denseIndex is the dense EffortIndex: a full symmetric n×n effort
// matrix over the working-set slots plus a per-slot nearest-neighbour
// cache that keeps min-pair selection near O(n) per iteration. Exact
// and fastest for small datasets, but its memory is quadratic (8·n²
// bytes), which is why the planner switches to sparseIndex above
// DenseIndexMaxN fingerprints.
type denseIndex struct {
	ws *workingSet

	// naive disables the nearest cache and rescans the full matrix at
	// every MinPair, for the cache ablation (DESIGN.md Sec. 5). Output
	// must be identical.
	naive bool

	matrix  []float64 // n*n efforts among active slots
	nearest []int     // slot -> active slot at canonical min effort (-1 if none)
}

func newDenseIndex(ws *workingSet, naive bool) *denseIndex {
	return &denseIndex{ws: ws, naive: naive}
}

// Build computes the pairwise effort matrix. The O(n²) build dominates
// start-up cost; it runs under ctx so a cancelled job does not have to
// wait it out.
func (x *denseIndex) Build(ctx context.Context) error {
	ws := x.ws
	n := ws.n
	x.matrix = make([]float64, n*n)
	x.nearest = make([]int, n)
	p := ws.params
	err := parallel.ForPairsContext(ctx, n, ws.workers, func(i, j int) {
		if !ws.alive[i] || !ws.alive[j] {
			return
		}
		e := p.FingerprintEffort(ws.fps[i], ws.fps[j])
		x.matrix[i*n+j] = e
		x.matrix[j*n+i] = e
	})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if ws.alive[i] {
			x.rescanNearest(i)
		}
	}
	return nil
}

// rescanNearest recomputes the nearest active neighbour of slot i from
// the matrix row: the canonical minimum, i.e. the lowest slot index
// among effort ties.
func (x *denseIndex) rescanNearest(i int) {
	ws := x.ws
	best := math.Inf(1)
	bestIdx := -1
	row := x.matrix[i*ws.n : (i+1)*ws.n]
	for j := 0; j < ws.n; j++ {
		if j == i || !ws.alive[j] {
			continue
		}
		if row[j] < best {
			best = row[j]
			bestIdx = j
		}
	}
	x.nearest[i] = bestIdx
}

// MinPair returns the active pair at global minimum effort using the
// nearest caches; ties break towards the lowest slot indexes, keeping
// runs deterministic and index implementations interchangeable.
func (x *denseIndex) MinPair() (int, int) {
	if x.naive {
		return x.minPairNaive()
	}
	ws := x.ws
	best := math.Inf(1)
	bi, bj := -1, -1
	for i := 0; i < ws.n; i++ {
		if !ws.alive[i] || x.nearest[i] < 0 {
			continue
		}
		e := x.matrix[i*ws.n+x.nearest[i]]
		if e < best {
			best = e
			bi, bj = i, x.nearest[i]
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

// minPairNaive is the cache-free O(n²) scan used by the ablation
// benchmark. Tie-breaking matches the cached path: both return the
// first minimal pair in row-major order.
func (x *denseIndex) minPairNaive() (int, int) {
	ws := x.ws
	best := math.Inf(1)
	bi, bj := -1, -1
	for i := 0; i < ws.n; i++ {
		if !ws.alive[i] {
			continue
		}
		row := x.matrix[i*ws.n : (i+1)*ws.n]
		for j := 0; j < ws.n; j++ {
			if j == i || !ws.alive[j] {
				continue
			}
			if row[j] < best {
				best = row[j]
				bi, bj = i, j
			}
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

// Remove repairs the nearest caches of slots that pointed at the now
// dead slot i.
func (x *denseIndex) Remove(i int) {
	ws := x.ws
	for c := 0; c < ws.n; c++ {
		if ws.alive[c] && x.nearest[c] == i {
			x.rescanNearest(c)
		}
	}
}

// Reinsert recomputes row i against all active slots in parallel and
// offers the new row to the other slots' caches.
func (x *denseIndex) Reinsert(i int) {
	ws := x.ws
	p := ws.params
	n := ws.n
	m := ws.fps[i]
	parallel.For(n, ws.workers, func(c int) {
		if c == i || !ws.alive[c] {
			return
		}
		e := p.FingerprintEffort(m, ws.fps[c])
		x.matrix[i*n+c] = e
		x.matrix[c*n+i] = e
	})
	x.rescanNearest(i)
	// Other caches may only improve via the reinserted slot. On an exact
	// effort tie the lower slot index wins, matching the canonical
	// ordering of rescanNearest (ties at saturated effort 1.0 are common
	// between far-apart fingerprints, so this matters for determinism
	// across index implementations).
	for c := 0; c < n; c++ {
		if !ws.alive[c] || c == i {
			continue
		}
		e := x.matrix[c*n+i]
		cur := x.nearest[c]
		if cur < 0 || e < x.matrix[c*n+cur] || (e == x.matrix[c*n+cur] && i < cur) {
			x.nearest[c] = i
		}
	}
}
