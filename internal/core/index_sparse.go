package core

import (
	"context"
	"math"

	"repro/internal/parallel"
)

// sparseIndex is the bounded-memory EffortIndex for large datasets:
// instead of the n×n effort matrix it keeps, per active fingerprint, a
// candidate list of the m lexicographically smallest (effort, slot)
// neighbours plus a cutoff pair bounding everything excluded from the
// list. Candidate discovery walks a spatial grid over fingerprint
// centroids in expanding rings, using the bounding-volume effort lower
// bound (EffortLowerBound) to skip exact Eq. 10 evaluations for
// fingerprints that provably cannot enter the list — the paper's
// locality observation (Sec. 7.3: fingerprints hide among spatial
// neighbours) is what makes those rescans cheap in practice.
//
// The index is exact, not approximate: the invariant maintained for
// every slot i is
//
//	entries(i) are lexicographically < cutoff(i) <= every excluded
//	alive candidate of i,
//
// under the ordering (effort, slot). Pair efforts never change while
// both endpoints are alive (fingerprints are immutable between merges),
// so the first still-valid entry of a list is the true canonical
// nearest neighbour; a list whose entries have all died is rebuilt by a
// fresh grid scan. MinPair therefore returns exactly the pair the
// dense index returns, and the published output is identical (enforced
// by TestQuickIndexEquivalence).
//
// Memory: O(n·m) candidate entries plus O(n) per-slot geometry and the
// grid — no n×n allocation anywhere on this path.
type sparseIndex struct {
	ws *workingSet
	m  int     // candidate list budget per slot
	cw float64 // grid cell width, meters

	gen    []uint32            // slot generation; bumped on Remove to invalidate entries
	bounds []FingerprintBounds // per-slot bounding volume (valid while alive)
	cellOf [][2]int32          // per-slot grid cell of the bounding-box center
	reach  []float64           // per-slot max axis distance from center to box edge
	lists  [][]candidate       // per-slot sorted candidates, len <= m
	cutE   []float64           // per-slot cutoff pair: effort ...
	cutS   []int32             // ... and slot (math.MaxInt32 = unbounded side)

	grid             map[[2]int32][]int32
	gridMin, gridMax [2]int32 // monotone cell-coordinate envelope
	maxReach         float64  // monotone max of reach over all inserts
}

// candidate is one entry of a per-slot list: the effort to a neighbour
// slot, tagged with the neighbour's generation so entries referring to
// a slot that has since been merged away (and possibly reused) are
// recognizably stale.
type candidate struct {
	e    float64
	slot int32
	gen  uint32
}

// lexLess orders (effort, slot) pairs: lower effort first, ties towards
// the lower slot. This is the canonical ordering shared with the dense
// index; effort ties are common (saturated efforts of far-apart
// fingerprints are exactly 1.0), so the slot component is load-bearing
// for cross-index determinism.
func lexLess(e1 float64, s1 int32, e2 float64, s2 int32) bool {
	return e1 < e2 || (e1 == e2 && s1 < s2)
}

func newSparseIndex(ws *workingSet, neighbors int) *sparseIndex {
	// Cell width: half the spatial saturation distance. Fingerprints
	// whose boxes are further apart than MaxSpatial contribute a
	// saturated spatial term, so finer cells than this buy nothing.
	return &sparseIndex{
		ws: ws,
		m:  clampIndexNeighbors(neighbors),
		cw: ws.params.MaxSpatial / 2,
	}
}

func (x *sparseIndex) Build(ctx context.Context) error {
	ws := x.ws
	n := ws.n
	x.gen = make([]uint32, n)
	x.bounds = make([]FingerprintBounds, n)
	x.cellOf = make([][2]int32, n)
	x.reach = make([]float64, n)
	x.lists = make([][]candidate, n)
	x.cutE = make([]float64, n)
	x.cutS = make([]int32, n)
	x.grid = make(map[[2]int32][]int32)
	first := true
	for i := 0; i < n; i++ {
		if !ws.alive[i] {
			continue
		}
		x.place(i)
		if first {
			x.gridMin, x.gridMax = x.cellOf[i], x.cellOf[i]
			first = false
		} else {
			x.expandEnvelope(x.cellOf[i])
		}
		x.lists[i] = make([]candidate, 0, x.m+1)
	}
	// Per-slot rebuilds are independent: each writes only its own list
	// and cutoff, and reads the (frozen during Build) grid and geometry.
	return parallel.ForContext(ctx, n, ws.workers, func(i int) {
		if ws.alive[i] {
			x.rebuild(i)
		}
	})
}

// place computes slot i's geometry and registers it in the grid. The
// caller ensures ws.fps[i] (and so its cached kernel view) is set.
func (x *sparseIndex) place(i int) {
	b := x.ws.views[i].bounds
	x.bounds[i] = b
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	cell := [2]int32{int32(math.Floor(cx / x.cw)), int32(math.Floor(cy / x.cw))}
	x.cellOf[i] = cell
	r := math.Max(b.MaxX-b.MinX, b.MaxY-b.MinY) / 2
	x.reach[i] = r
	if r > x.maxReach {
		x.maxReach = r
	}
	x.grid[cell] = append(x.grid[cell], int32(i))
}

func (x *sparseIndex) expandEnvelope(cell [2]int32) {
	for a := 0; a < 2; a++ {
		if cell[a] < x.gridMin[a] {
			x.gridMin[a] = cell[a]
		}
		if cell[a] > x.gridMax[a] {
			x.gridMax[a] = cell[a]
		}
	}
}

// valid reports whether a candidate entry still refers to a live
// fingerprint (same slot occupant, not merged away).
func (x *sparseIndex) valid(c candidate) bool {
	return x.ws.alive[c.slot] && x.gen[c.slot] == c.gen
}

// spatialLB converts a spatial-only separation (meters) into an effort
// lower bound, mirroring the spatial term of EffortLowerBound.
func (x *sparseIndex) spatialLB(d float64) float64 {
	if d <= 0 {
		return 0
	}
	p := x.ws.params
	if d > p.MaxSpatial {
		d = p.MaxSpatial
	}
	return p.WSpatial * d / p.MaxSpatial
}

// rebuild recomputes slot i's candidate list and cutoff by walking grid
// rings outward from i's cell. Exact effort evaluations are skipped —
// lazily — for candidates whose bounding-volume lower bound already
// exceeds the current worst list entry, and whole remaining rings are
// skipped once even their closest conceivable fingerprint (accounting
// for the largest bounding box seen, maxReach) cannot beat it. Skipped
// candidates are covered by the cutoff, so the list stays exact.
func (x *sparseIndex) rebuild(i int) {
	ws := x.ws
	p := ws.params
	list := x.lists[i][:0]
	// Cutoff accumulator: the lex-min over everything excluded.
	cutE, cutS := math.Inf(1), int32(math.MaxInt32)
	skipped := false // any candidate excluded without exact evaluation

	c0 := x.cellOf[i]
	// Rings beyond the grid envelope hold no fingerprints.
	maxRing := int32(0)
	for a := 0; a < 2; a++ {
		if d := c0[a] - x.gridMin[a]; d > maxRing {
			maxRing = d
		}
		if d := x.gridMax[a] - c0[a]; d > maxRing {
			maxRing = d
		}
	}
	for r := int32(0); r <= maxRing; r++ {
		if len(list) == x.m && r > 1 {
			// Cells at Chebyshev distance r are at least (r-1) cell
			// widths from any point of i's cell; bounding boxes shrink
			// that by at most reach[i] + maxReach.
			d := float64(r-1)*x.cw - x.reach[i] - x.maxReach
			if x.spatialLB(d) > list[len(list)-1].e {
				skipped = true
				break
			}
		}
		for _, cell := range ringCells(c0, r) {
			for _, j32 := range x.grid[cell] {
				j := int(j32)
				if j == i || !ws.alive[j] {
					continue
				}
				lb := p.EffortLowerBound(x.bounds[i], x.bounds[j])
				if len(list) == x.m && lb > list[len(list)-1].e {
					// Cannot enter the list; the exact Eq. 10
					// evaluation is skipped and the exclusion is
					// covered by the cutoff below.
					skipped = true
					continue
				}
				// Pruned kernel, thresholded at the worst list entry: a
				// full list only admits strictly better efforts, so a
				// not-below result is excluded exactly like the
				// bounding-volume skip above (its true effort strictly
				// exceeds the worst entry).
				thr := math.Inf(1)
				if len(list) == x.m {
					thr = list[len(list)-1].e
				}
				e, below := ws.effortBelow(i, j, thr)
				if !below {
					skipped = true
					continue
				}
				list = insertCandidate(list, candidate{e: e, slot: j32, gen: x.gen[j]})
				if len(list) > x.m {
					drop := list[len(list)-1]
					list = list[:len(list)-1]
					if lexLess(drop.e, drop.slot, cutE, cutS) {
						cutE, cutS = drop.e, drop.slot
					}
				}
			}
		}
	}
	if skipped && len(list) > 0 {
		// Every skipped candidate's effort strictly exceeds the worst
		// list entry at the moment it was skipped, and the worst entry
		// only improves afterwards — so (worst effort, +inf slot) lower
		// bounds all of them.
		worst := list[len(list)-1].e
		if lexLess(worst, math.MaxInt32, cutE, cutS) {
			cutE, cutS = worst, math.MaxInt32
		}
	}
	x.lists[i] = list
	x.cutE[i], x.cutS[i] = cutE, cutS
}

// ringCells lists the cells at Chebyshev distance r from c0 (the cell
// itself for r = 0).
func ringCells(c0 [2]int32, r int32) [][2]int32 {
	if r == 0 {
		return [][2]int32{c0}
	}
	cells := make([][2]int32, 0, 8*r)
	for dx := -r; dx <= r; dx++ {
		cells = append(cells, [2]int32{c0[0] + dx, c0[1] - r})
		cells = append(cells, [2]int32{c0[0] + dx, c0[1] + r})
	}
	for dy := -r + 1; dy <= r-1; dy++ {
		cells = append(cells, [2]int32{c0[0] - r, c0[1] + dy})
		cells = append(cells, [2]int32{c0[0] + r, c0[1] + dy})
	}
	return cells
}

// insertCandidate inserts c into the (effort, slot)-sorted list,
// keeping the order.
func insertCandidate(list []candidate, c candidate) []candidate {
	pos := len(list)
	for pos > 0 && lexLess(c.e, c.slot, list[pos-1].e, list[pos-1].slot) {
		pos--
	}
	list = append(list, candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// head returns slot i's canonical nearest alive neighbour, rebuilding
// the candidate list if every entry has died. ok is false when i has no
// alive neighbour at all.
func (x *sparseIndex) head(i int) (candidate, bool) {
	list := x.lists[i]
	for len(list) > 0 && !x.valid(list[0]) {
		list = list[1:]
	}
	x.lists[i] = list
	if len(list) == 0 {
		x.rebuild(i)
		list = x.lists[i]
		if len(list) == 0 {
			return candidate{}, false
		}
	}
	return list[0], true
}

func (x *sparseIndex) MinPair() (int, int) {
	ws := x.ws
	best := math.Inf(1)
	bi, bj := -1, -1
	for i := 0; i < ws.n; i++ {
		if !ws.alive[i] {
			continue
		}
		h, ok := x.head(i)
		if !ok {
			continue
		}
		if h.e < best {
			best = h.e
			bi, bj = i, int(h.slot)
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

func (x *sparseIndex) Remove(i int) {
	x.gen[i]++
	// Drop i from its grid cell so future ring scans never see it;
	// entries referring to i die lazily via the generation bump.
	cell := x.cellOf[i]
	slots := x.grid[cell]
	for k, s := range slots {
		if int(s) == i {
			x.grid[cell] = append(slots[:k], slots[k+1:]...)
			break
		}
	}
}

func (x *sparseIndex) Reinsert(i int) {
	ws := x.ws
	p := ws.params
	x.place(i)
	x.expandEnvelope(x.cellOf[i])
	// The merged fingerprint's own list comes from a fresh (pruned)
	// grid scan.
	x.rebuild(i)

	// Offer the new slot to every other candidate list. The exact
	// effort is computed in parallel, and only where the bounding-volume
	// lower bound does not already prove the offer falls at or beyond
	// the slot's cutoff (in which case skipping it preserves the list
	// invariant: the excluded candidate is >= the cutoff by
	// construction).
	i32 := int32(i)
	row := parallel.Map(ws.n, ws.workers, func(c int) float64 {
		if c == i || !ws.alive[c] {
			return math.NaN()
		}
		lb := p.EffortLowerBound(x.bounds[i], x.bounds[c])
		if !lexLess(lb, i32, x.cutE[c], x.cutS[c]) {
			return math.NaN()
		}
		// Pruned kernel, thresholded at the slot's cutoff effort: a
		// not-below result proves the offer lies strictly beyond the
		// cutoff, so skipping it preserves the list invariant.
		e, below := ws.effortBelow(i, c, x.cutE[c])
		if !below {
			return math.NaN()
		}
		return e
	})
	for c, e := range row {
		if math.IsNaN(e) || !lexLess(e, i32, x.cutE[c], x.cutS[c]) {
			continue
		}
		// Purge stale entries first so dead candidates never crowd out
		// the offer.
		list := x.lists[c][:0]
		for _, cand := range x.lists[c] {
			if x.valid(cand) {
				list = append(list, cand)
			}
		}
		list = insertCandidate(list, candidate{e: e, slot: i32, gen: x.gen[i]})
		if len(list) > x.m {
			drop := list[len(list)-1]
			list = list[:len(list)-1]
			// The dropped entry was below the old cutoff, so it becomes
			// the new (tighter) cutoff.
			x.cutE[c], x.cutS[c] = drop.e, drop.slot
		}
		x.lists[c] = list
	}
}
