package core

import (
	"context"
	"math"

	"repro/internal/parallel"
)

// sparseIndex is the bounded-memory EffortIndex for large datasets:
// instead of the n×n effort matrix it keeps, per active fingerprint, a
// candidate list of the m lexicographically smallest (effort, slot)
// neighbours plus a cutoff pair bounding everything excluded from the
// list. Candidate discovery walks a spatial grid over fingerprint
// centroids in expanding rings, using the bounding-volume effort lower
// bound (EffortLowerBound) to skip exact Eq. 10 evaluations for
// fingerprints that provably cannot enter the list — the paper's
// locality observation (Sec. 7.3: fingerprints hide among spatial
// neighbours) is what makes those rescans cheap in practice.
//
// The index is exact, not approximate: the invariant maintained for
// every slot i is
//
//	entries(i) are lexicographically < cutoff(i) <= every excluded
//	alive candidate of i,
//
// under the ordering (effort, slot). Pair efforts never change while
// both endpoints are alive (fingerprints are immutable between merges),
// so the first still-valid entry of a list is the true canonical
// nearest neighbour; a list whose entries have all died is rebuilt by a
// fresh grid scan. MinPair therefore returns exactly the pair the
// dense index returns, and the published output is identical (enforced
// by TestQuickIndexEquivalence).
//
// Memory: O(n·m) candidate entries plus O(n) per-slot geometry and the
// grid — no n×n allocation anywhere on this path.
type sparseIndex struct {
	ws *workingSet
	m  int     // candidate list budget per slot
	cw float64 // grid cell width, meters

	gen    []uint32            // slot generation; bumped on Remove to invalidate entries
	bounds []FingerprintBounds // per-slot bounding volume (valid while alive)
	cellOf [][2]int32          // per-slot grid cell of the bounding-box center
	reach  []float64           // per-slot max axis distance from center to box edge
	lists  [][]candidate       // per-slot sorted candidates, len <= m
	cutE   []float64           // per-slot cutoff pair: effort ...
	cutS   []int32             // ... and slot (math.MaxInt32 = unbounded side)

	grid             map[[2]int32][]int32
	gridMin, gridMax [2]int32 // monotone cell-coordinate envelope
	maxReach         float64  // monotone max of reach over all inserts

	// offers is the Reinsert scratch row, allocated once at Build so the
	// per-merge offer fan-out allocates nothing (the merge loop is
	// serial, so one row suffices).
	offers []float64
}

// candidate is one entry of a per-slot list: the effort to a neighbour
// slot, tagged with the neighbour's generation so entries referring to
// a slot that has since been merged away (and possibly reused) are
// recognizably stale.
type candidate struct {
	e    float64
	slot int32
	gen  uint32
}

// lexLess orders (effort, slot) pairs: lower effort first, ties towards
// the lower slot. This is the canonical ordering shared with the dense
// index; effort ties are common (saturated efforts of far-apart
// fingerprints are exactly 1.0), so the slot component is load-bearing
// for cross-index determinism.
func lexLess(e1 float64, s1 int32, e2 float64, s2 int32) bool {
	return e1 < e2 || (e1 == e2 && s1 < s2)
}

func newSparseIndex(ws *workingSet, neighbors int) *sparseIndex {
	// Cell width: half the spatial saturation distance. Fingerprints
	// whose boxes are further apart than MaxSpatial contribute a
	// saturated spatial term, so finer cells than this buy nothing.
	return &sparseIndex{
		ws: ws,
		m:  clampIndexNeighbors(neighbors),
		cw: ws.params.MaxSpatial / 2,
	}
}

// prepare sizes the per-slot structures for n slots. On a fresh index
// everything is allocated; on one recycled through a WindowedSession
// every slice — including each per-slot candidate list and each grid
// cell — keeps its capacity, which is the bulk of the warm-build win.
// Cross-run state that influences pruning (grid membership, envelope,
// maxReach) is cleared; slot generations deliberately survive, because
// entry validity only compares a stored generation against the current
// one, so any consistent starting point is as good as zero. Everything
// else stale (bounds, cutoffs, dead slots' lists) is either overwritten
// for alive slots during Build or never read for dead ones.
func (x *sparseIndex) prepare(n int) {
	x.gen = growKeep(x.gen, n)
	x.bounds = growKeep(x.bounds, n)
	x.cellOf = growKeep(x.cellOf, n)
	x.reach = growKeep(x.reach, n)
	x.lists = growKeep(x.lists, n)
	x.cutE = growKeep(x.cutE, n)
	x.cutS = growKeep(x.cutS, n)
	x.offers = growKeep(x.offers, n)
	if x.grid == nil {
		x.grid = make(map[[2]int32][]int32)
	} else {
		// Keep the keys (and so each cell's slice capacity); a truncated
		// cell behaves exactly like a missing one for ring scans. The map
		// retains the union of cells ever seen, which for a feed over one
		// region is bounded and exactly the set about to be refilled.
		for cell, slots := range x.grid {
			x.grid[cell] = slots[:0]
		}
	}
	x.gridMin, x.gridMax = [2]int32{}, [2]int32{}
	x.maxReach = 0
}

func (x *sparseIndex) Build(ctx context.Context) error {
	ws := x.ws
	n := ws.n
	x.prepare(n)

	// Grid construction runs over contiguous slot stripes in parallel:
	// each stripe builds a private sub-grid (plus its envelope and reach
	// maximum) over its own slots, writing per-slot geometry directly
	// (disjoint indices). Concatenating the per-cell lists in stripe
	// order then reproduces exactly the serial loop's ascending slot
	// order inside every cell — the order ring scans observe — so the
	// parallel build is bit-identical to the old serial one.
	workers := ws.workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	stripes := workers
	if stripes > n {
		stripes = 1
	}
	type stripeGrid struct {
		grid     map[[2]int32][]int32
		min, max [2]int32
		any      bool
		maxReach float64
	}
	sgs := make([]stripeGrid, stripes)
	if err := parallel.ForContext(ctx, stripes, workers, func(s int) {
		sg := &sgs[s]
		sg.grid = make(map[[2]int32][]int32)
		for i := n * s / stripes; i < n*(s+1)/stripes; i++ {
			if !ws.alive[i] {
				continue
			}
			cell := x.placeGeom(i)
			sg.grid[cell] = append(sg.grid[cell], int32(i))
			if !sg.any {
				sg.min, sg.max = cell, cell
				sg.any = true
			} else {
				for a := 0; a < 2; a++ {
					if cell[a] < sg.min[a] {
						sg.min[a] = cell[a]
					}
					if cell[a] > sg.max[a] {
						sg.max[a] = cell[a]
					}
				}
			}
			if x.reach[i] > sg.maxReach {
				sg.maxReach = x.reach[i]
			}
			x.lists[i] = emptyList(x.lists[i], x.m)
		}
	}); err != nil {
		return err
	}
	first := true
	for s := range sgs {
		sg := &sgs[s]
		if !sg.any {
			continue
		}
		for cell, slots := range sg.grid {
			x.grid[cell] = append(x.grid[cell], slots...)
		}
		if first {
			x.gridMin, x.gridMax = sg.min, sg.max
			first = false
		} else {
			x.expandEnvelope(sg.min)
			x.expandEnvelope(sg.max)
		}
		if sg.maxReach > x.maxReach {
			x.maxReach = sg.maxReach
		}
	}

	// Per-slot rebuilds are independent: each writes only its own list
	// and cutoff, and reads the (frozen during Build) grid and geometry.
	return parallel.ForContext(ctx, n, ws.workers, func(i int) {
		if ws.alive[i] {
			x.rebuild(i)
		}
	})
}

// placeGeom computes and stores slot i's geometry (bounds, cell, reach)
// and returns its grid cell. The caller ensures ws.fps[i] (and so its
// cached kernel view) is set.
func (x *sparseIndex) placeGeom(i int) [2]int32 {
	b := x.ws.views[i].bounds
	x.bounds[i] = b
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	cell := [2]int32{int32(math.Floor(cx / x.cw)), int32(math.Floor(cy / x.cw))}
	x.cellOf[i] = cell
	x.reach[i] = math.Max(b.MaxX-b.MinX, b.MaxY-b.MinY) / 2
	return cell
}

// place computes slot i's geometry and registers it in the main grid
// (the Reinsert path; Build goes through stripe-local grids instead).
func (x *sparseIndex) place(i int) {
	cell := x.placeGeom(i)
	if x.reach[i] > x.maxReach {
		x.maxReach = x.reach[i]
	}
	x.grid[cell] = append(x.grid[cell], int32(i))
}

func (x *sparseIndex) expandEnvelope(cell [2]int32) {
	for a := 0; a < 2; a++ {
		if cell[a] < x.gridMin[a] {
			x.gridMin[a] = cell[a]
		}
		if cell[a] > x.gridMax[a] {
			x.gridMax[a] = cell[a]
		}
	}
}

// valid reports whether a candidate entry still refers to a live
// fingerprint (same slot occupant, not merged away).
func (x *sparseIndex) valid(c candidate) bool {
	return x.ws.alive[c.slot] && x.gen[c.slot] == c.gen
}

// spatialLB converts a spatial-only separation (meters) into an effort
// lower bound, mirroring the spatial term of EffortLowerBound.
func (x *sparseIndex) spatialLB(d float64) float64 {
	if d <= 0 {
		return 0
	}
	p := x.ws.params
	if d > p.MaxSpatial {
		d = p.MaxSpatial
	}
	return p.WSpatial * d / p.MaxSpatial
}

// rebuild recomputes slot i's candidate list and cutoff by walking grid
// rings outward from i's cell. Exact effort evaluations are skipped —
// lazily — for candidates whose bounding-volume lower bound already
// exceeds the current worst list entry, and whole remaining rings are
// skipped once even their closest conceivable fingerprint (accounting
// for the largest bounding box seen, maxReach) cannot beat it. Skipped
// candidates are covered by the cutoff, so the list stays exact.
func (x *sparseIndex) rebuild(i int) {
	ws := x.ws
	p := ws.params
	list := x.lists[i][:0]
	// Cutoff accumulator: the lex-min over everything excluded.
	cutE, cutS := math.Inf(1), int32(math.MaxInt32)
	skipped := false // any candidate excluded without exact evaluation

	c0 := x.cellOf[i]
	// Rings beyond the grid envelope hold no fingerprints.
	maxRing := int32(0)
	for a := 0; a < 2; a++ {
		if d := c0[a] - x.gridMin[a]; d > maxRing {
			maxRing = d
		}
		if d := x.gridMax[a] - c0[a]; d > maxRing {
			maxRing = d
		}
	}
	for r := int32(0); r <= maxRing; r++ {
		if len(list) == x.m && r > 1 {
			// Cells at Chebyshev distance r are at least (r-1) cell
			// widths from any point of i's cell; bounding boxes shrink
			// that by at most reach[i] + maxReach.
			d := float64(r-1)*x.cw - x.reach[i] - x.maxReach
			if x.spatialLB(d) > list[len(list)-1].e {
				skipped = true
				break
			}
		}
		for _, cell := range ringCells(c0, r) {
			for _, j32 := range x.grid[cell] {
				j := int(j32)
				if j == i || !ws.alive[j] {
					continue
				}
				lb := p.EffortLowerBound(x.bounds[i], x.bounds[j])
				if len(list) == x.m && lb > list[len(list)-1].e {
					// Cannot enter the list; the exact Eq. 10
					// evaluation is skipped and the exclusion is
					// covered by the cutoff below.
					skipped = true
					continue
				}
				// Pruned kernel, thresholded at the worst list entry: a
				// full list only admits strictly better efforts, so a
				// not-below result is excluded exactly like the
				// bounding-volume skip above (its true effort strictly
				// exceeds the worst entry).
				thr := math.Inf(1)
				if len(list) == x.m {
					thr = list[len(list)-1].e
				}
				e, below := ws.effortBelow(i, j, thr)
				if !below {
					skipped = true
					continue
				}
				list = insertCandidate(list, candidate{e: e, slot: j32, gen: x.gen[j]})
				if len(list) > x.m {
					drop := list[len(list)-1]
					list = list[:len(list)-1]
					if lexLess(drop.e, drop.slot, cutE, cutS) {
						cutE, cutS = drop.e, drop.slot
					}
				}
			}
		}
	}
	if skipped && len(list) > 0 {
		// Every skipped candidate's effort strictly exceeds the worst
		// list entry at the moment it was skipped, and the worst entry
		// only improves afterwards — so (worst effort, +inf slot) lower
		// bounds all of them.
		worst := list[len(list)-1].e
		if lexLess(worst, math.MaxInt32, cutE, cutS) {
			cutE, cutS = worst, math.MaxInt32
		}
	}
	x.lists[i] = list
	x.cutE[i], x.cutS[i] = cutE, cutS
}

// ringCells lists the cells at Chebyshev distance r from c0 (the cell
// itself for r = 0).
func ringCells(c0 [2]int32, r int32) [][2]int32 {
	if r == 0 {
		return [][2]int32{c0}
	}
	cells := make([][2]int32, 0, 8*r)
	for dx := -r; dx <= r; dx++ {
		cells = append(cells, [2]int32{c0[0] + dx, c0[1] - r})
		cells = append(cells, [2]int32{c0[0] + dx, c0[1] + r})
	}
	for dy := -r + 1; dy <= r-1; dy++ {
		cells = append(cells, [2]int32{c0[0] - r, c0[1] + dy})
		cells = append(cells, [2]int32{c0[0] + r, c0[1] + dy})
	}
	return cells
}

// insertCandidate inserts c into the (effort, slot)-sorted list,
// keeping the order.
func insertCandidate(list []candidate, c candidate) []candidate {
	pos := len(list)
	for pos > 0 && lexLess(c.e, c.slot, list[pos-1].e, list[pos-1].slot) {
		pos--
	}
	list = append(list, candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// head returns slot i's canonical nearest alive neighbour, rebuilding
// the candidate list if every entry has died. ok is false when i has no
// alive neighbour at all.
func (x *sparseIndex) head(i int) (candidate, bool) {
	list := x.lists[i]
	for len(list) > 0 && !x.valid(list[0]) {
		list = list[1:]
	}
	x.lists[i] = list
	if len(list) == 0 {
		x.rebuild(i)
		list = x.lists[i]
		if len(list) == 0 {
			return candidate{}, false
		}
	}
	return list[0], true
}

// minPairParallelCut is the slot count above which MinPair fans its
// head scan out across workers; below it the serial scan wins (the
// fan-out costs more than the scan itself). A variable so the
// equivalence tests can force the parallel path on small datasets.
var minPairParallelCut = 4096

// headBest is one stripe's minimum over head entries.
type headBest struct {
	e    float64
	i, j int
}

// scanHeads returns the canonical first minimum over the heads of slots
// [lo, hi): strictly lower effort replaces, so the lowest slot index
// wins effort ties — the serial MinPair selection rule.
func (x *sparseIndex) scanHeads(lo, hi int) headBest {
	ws := x.ws
	b := headBest{e: math.Inf(1), i: -1, j: -1}
	for i := lo; i < hi; i++ {
		if !ws.alive[i] {
			continue
		}
		h, ok := x.head(i)
		if !ok {
			continue
		}
		if h.e < b.e {
			b = headBest{e: h.e, i: i, j: int(h.slot)}
		}
	}
	return b
}

// MinPair scans the per-slot heads for the canonical global minimum.
// Above minPairParallelCut the scan runs over contiguous slot stripes
// in parallel and the stripe minima reduce in stripe order with a
// strict comparison — exactly the serial scan's first-minimum rule, so
// the selected pair (and hence the whole run) is bit-identical to the
// serial path. Stripe scans are safe to run concurrently: head only
// mutates per-slot state (lazy purge and rebuild of slot i's own list
// and cutoff) and reads shared structures that are frozen between
// merges (grid, geometry, alive flags, views); kernel counters are
// atomic.
func (x *sparseIndex) MinPair() (int, int) {
	ws := x.ws
	workers := ws.workers
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	var b headBest
	if ws.n < minPairParallelCut || workers <= 1 {
		b = x.scanHeads(0, ws.n)
	} else {
		stripes := workers
		res := make([]headBest, stripes)
		parallel.For(stripes, workers, func(s int) {
			res[s] = x.scanHeads(ws.n*s/stripes, ws.n*(s+1)/stripes)
		})
		b = headBest{e: math.Inf(1), i: -1, j: -1}
		for _, r := range res {
			if r.i >= 0 && r.e < b.e {
				b = r
			}
		}
	}
	bi, bj := b.i, b.j
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj
}

func (x *sparseIndex) Remove(i int) {
	x.gen[i]++
	// Drop i from its grid cell so future ring scans never see it;
	// entries referring to i die lazily via the generation bump.
	cell := x.cellOf[i]
	slots := x.grid[cell]
	for k, s := range slots {
		if int(s) == i {
			x.grid[cell] = append(slots[:k], slots[k+1:]...)
			break
		}
	}
}

func (x *sparseIndex) Reinsert(i int) {
	x.place(i)
	x.expandEnvelope(x.cellOf[i])
	// The merged fingerprint's own list comes from a fresh (pruned)
	// grid scan.
	x.rebuild(i)
	x.offer(i, x.ws.n)
}

// Extend incorporates freshly staged slots [from, ws.n) into a built
// index — the incremental-append path of a staged window. New slots are
// registered in the grid serially in ascending order (so per-cell slot
// order matches a cold build's stripe concatenation over the same slot
// sequence), their candidate lists then come from fresh ring scans run
// in parallel — the grid already holds every new slot, so new-new pairs
// are discovered there — and finally each new slot is offered to the
// pre-existing slots' lists, exactly Reinsert's cutoff-bounded offer
// pass. Every per-slot list invariant ("entries < cutoff <= every
// excluded alive candidate") therefore holds over the extended slot
// set, and MinPair stays exact: a subsequent Commit merges in exactly
// the sequence a cold build over the concatenated input produces (the
// "staged == cold" pin of TestSessionStagedEqualsCold).
func (x *sparseIndex) Extend(ctx context.Context, from int) error {
	ws := x.ws
	n := ws.n
	x.gen = growKeep(x.gen, n)
	x.bounds = growKeep(x.bounds, n)
	x.cellOf = growKeep(x.cellOf, n)
	x.reach = growKeep(x.reach, n)
	x.lists = growKeep(x.lists, n)
	x.cutE = growKeep(x.cutE, n)
	x.cutS = growKeep(x.cutS, n)
	x.offers = growKeep(x.offers, n)
	for i := from; i < n; i++ {
		if ws.alive[i] {
			x.place(i)
			x.expandEnvelope(x.cellOf[i])
			x.lists[i] = emptyList(x.lists[i], x.m)
		}
	}
	if err := parallel.ForContext(ctx, n-from, ws.workers, func(k int) {
		if i := from + k; ws.alive[i] {
			x.rebuild(i)
		}
	}); err != nil {
		return err
	}
	// Offers go only to slots below `from`: the new slots already hold
	// each other through their ring scans above, and an ascending offer
	// order keeps multiple insertions into one list deterministic.
	for i := from; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if ws.alive[i] {
			x.offer(i, from)
		}
	}
	return nil
}

// emptyList resets a per-slot candidate list to empty, keeping its
// backing when recycled and pre-sizing fresh ones to the m+1 overflow
// capacity so insertCandidate never grows them.
func emptyList(list []candidate, m int) []candidate {
	if list == nil {
		return make([]candidate, 0, m+1)
	}
	return list[:0]
}

// offer proposes slot i to the candidate lists of the alive slots in
// [0, limit) — Reinsert's fan-out (limit == ws.n), reused by Extend with
// the staged boundary as the limit. The exact effort is computed in
// parallel, and only where the bounding-volume lower bound does not
// already prove the offer falls at or beyond the target's cutoff (in
// which case skipping it preserves the list invariant: the excluded
// candidate is >= the cutoff by construction).
func (x *sparseIndex) offer(i, limit int) {
	ws := x.ws
	p := ws.params
	i32 := int32(i)
	row := x.offers
	parallel.For(limit, ws.workers, func(c int) {
		if c == i || !ws.alive[c] {
			row[c] = math.NaN()
			return
		}
		lb := p.EffortLowerBound(x.bounds[i], x.bounds[c])
		if !lexLess(lb, i32, x.cutE[c], x.cutS[c]) {
			row[c] = math.NaN()
			return
		}
		// Pruned kernel, thresholded at the slot's cutoff effort: a
		// not-below result proves the offer lies strictly beyond the
		// cutoff, so skipping it preserves the list invariant.
		e, below := ws.effortBelow(i, c, x.cutE[c])
		if !below {
			row[c] = math.NaN()
			return
		}
		row[c] = e
	})
	for c, e := range row[:limit] {
		if math.IsNaN(e) || !lexLess(e, i32, x.cutE[c], x.cutS[c]) {
			continue
		}
		// Purge stale entries first so dead candidates never crowd out
		// the offer.
		list := x.lists[c][:0]
		for _, cand := range x.lists[c] {
			if x.valid(cand) {
				list = append(list, cand)
			}
		}
		list = insertCandidate(list, candidate{e: e, slot: i32, gen: x.gen[i]})
		if len(list) > x.m {
			drop := list[len(list)-1]
			list = list[:len(list)-1]
			// The dropped entry was below the old cutoff, so it becomes
			// the new (tighter) cutoff.
			x.cutE[c], x.cutS[c] = drop.e, drop.slot
		}
		x.lists[c] = list
	}
}
