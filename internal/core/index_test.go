package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// datasetsEqual compares published datasets structurally: same
// fingerprints, same order, same samples, same members.
func datasetsEqual(t *testing.T, label string, a, b *Dataset) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: %d vs %d fingerprints", label, a.Len(), b.Len())
	}
	for i := range a.Fingerprints {
		fa, fb := a.Fingerprints[i], b.Fingerprints[i]
		if fa.ID != fb.ID || fa.Count != fb.Count || fa.Len() != fb.Len() {
			t.Fatalf("%s: fingerprint %d differs (%s/%d/%d vs %s/%d/%d)",
				label, i, fa.ID, fa.Count, fa.Len(), fb.ID, fb.Count, fb.Len())
		}
		for j := range fa.Samples {
			if fa.Samples[j] != fb.Samples[j] {
				t.Fatalf("%s: fingerprint %d sample %d differs", label, i, j)
			}
		}
		for j := range fa.Members {
			if fa.Members[j] != fb.Members[j] {
				t.Fatalf("%s: fingerprint %d member %d differs", label, i, j)
			}
		}
	}
}

// The sparse index must produce output identical to the dense matrix:
// same merges, same order, same published dataset. Seeded synthetic
// workloads across sizes, k values and (deliberately tiny) candidate
// budgets exercise list drain/refill, cutoff tightening and the
// reinsertion offers; effort ties at the saturation value 1.0 occur
// naturally between far-apart fingerprints, so the canonical
// tie-breaking is covered too.
func TestIndexEquivalenceProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + seed))
			n := 8 + rng.Intn(40)
			k := 2 + rng.Intn(3)
			samples := 1 + rng.Intn(10)
			d := randDataset(rng, n, samples)

			dense, dstats, err := Glove(d, GloveOptions{K: k, Index: IndexDense})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []int{2, 3, 8} {
				sparse, sstats, err := Glove(d, GloveOptions{
					K: k, Index: IndexSparse, IndexNeighbors: m, Workers: 2,
				})
				if err != nil {
					t.Fatalf("m=%d: %v", m, err)
				}
				datasetsEqual(t, fmt.Sprintf("n=%d k=%d m=%d", n, k, m), dense, sparse)
				if dstats.Merges != sstats.Merges {
					t.Fatalf("m=%d: merges %d vs %d", m, dstats.Merges, sstats.Merges)
				}
			}
		})
	}
}

// Clustered geometry: many users packed into a few far-apart towns so
// the grid has occupied cells separated by empty rings and the
// ring-level pruning actually fires; equivalence must survive it.
func TestIndexEquivalenceClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var fps []*Fingerprint
	centers := [][2]float64{{0, 0}, {150000, 0}, {0, 150000}, {220000, 220000}}
	id := 0
	for _, c := range centers {
		for u := 0; u < 9; u++ {
			f := randFingerprint(rng, fmt.Sprintf("u%d", id), 1+rng.Intn(6))
			for s := range f.Samples {
				f.Samples[s].X += c[0]
				f.Samples[s].Y += c[1]
			}
			fps = append(fps, f)
			id++
		}
	}
	d := NewDataset(fps)
	dense, _, err := Glove(d, GloveOptions{K: 3, Index: IndexDense})
	if err != nil {
		t.Fatal(err)
	}
	sparse, _, err := Glove(d, GloveOptions{K: 3, Index: IndexSparse, IndexNeighbors: 4})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "clustered", dense, sparse)
}

// The naive min-pair ablation, the cached dense path and the sparse
// index agree pairwise (transitively pinning all three to the canonical
// ordering).
func TestIndexEquivalenceNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := randDataset(rng, 24, 6)
	naive, _, err := Glove(d, GloveOptions{K: 2, NaiveMinPair: true})
	if err != nil {
		t.Fatal(err)
	}
	sparse, _, err := Glove(d, GloveOptions{K: 2, Index: IndexSparse, IndexNeighbors: 2})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "naive-vs-sparse", naive, sparse)
}

// The sparse index must never hold more than m candidates per slot and
// must never allocate an n×n structure. The bounded-memory property is
// checked structurally on a live state mid-run.
func TestSparseIndexBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, m = 40, 3
	d := randDataset(rng, n, 5)
	opt := GloveOptions{K: 2, Index: IndexSparse, IndexNeighbors: m}.withDefaults()
	st, err := newGloveState(t.Context(), d, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	sx, ok := st.idx.(*sparseIndex)
	if !ok {
		t.Fatalf("state built %T, want *sparseIndex", st.idx)
	}
	checkBudget := func(stage string) {
		for i, l := range sx.lists {
			if len(l) > m {
				t.Fatalf("%s: slot %d holds %d candidates, budget %d", stage, i, len(l), m)
			}
			if cap(l) > m+1 {
				t.Fatalf("%s: slot %d list capacity %d grew past budget", stage, i, cap(l))
			}
		}
	}
	checkBudget("after build")
	for iter := 0; st.activeCount() >= 2; iter++ {
		i, j := st.idx.MinPair()
		st.merge(i, j)
		checkBudget(fmt.Sprintf("after merge %d", iter))
	}
}

// Auto resolution: small datasets get the dense matrix, and an
// explicitly sparse run on a small dataset really is sparse.
func TestIndexAutoResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 10, 4)
	opt := GloveOptions{K: 2}.withDefaults()
	st, err := newGloveState(t.Context(), d, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.idx.(*denseIndex); !ok {
		t.Fatalf("auto on n=10 built %T, want *denseIndex", st.idx)
	}
	kind, err := GloveOptions{K: 2}.resolveIndex(DenseIndexMaxN + 1)
	if err != nil {
		t.Fatal(err)
	}
	if kind != IndexSparse {
		t.Fatalf("auto above DenseIndexMaxN resolved %q, want sparse", kind)
	}
	if _, _, err := Glove(d, GloveOptions{K: 2, Index: IndexSparse, NaiveMinPair: true}); err == nil {
		t.Fatal("NaiveMinPair + sparse index accepted")
	}
	if _, _, err := Glove(d, GloveOptions{K: 2, Index: IndexKind("bogus")}); err == nil {
		t.Fatal("bogus index kind accepted")
	}
}
