package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// KGapResult holds the anonymizability measure of one fingerprint: its
// k-gap (Eq. 11) and the identities of its k-1 nearest fingerprints (the
// set N^{k-1}_a), which Sec. 5.3 disaggregates further.
type KGapResult struct {
	Index   int       // index of the fingerprint in the dataset
	KGap    float64   // Δ^k_a
	Nearest []int     // indices of the k-1 fingerprints at lowest Δ_ab
	Efforts []float64 // Δ_ab for each entry of Nearest
}

// KGapAll computes the k-gap of every fingerprint in the dataset using
// the given worker count (<= 0 for all CPUs). It evaluates Eq. 10 for all
// |M|^2 ordered pairs — the computation the paper offloads to a GPU —
// pruned (exactly) with bounding-volume lower bounds.
//
// k must be at least 2 and at most the number of fingerprints.
func KGapAll(p Params, d *Dataset, k, workers int) ([]KGapResult, error) {
	return kGapAll(p, d, k, workers, true)
}

// KGapAllNoPruning is KGapAll with the bounding-volume pruning disabled;
// it exists for the pruning ablation and must return identical results.
func KGapAllNoPruning(p Params, d *Dataset, k, workers int) ([]KGapResult, error) {
	return kGapAll(p, d, k, workers, false)
}

func kGapAll(p Params, d *Dataset, k, workers int, prune bool) ([]KGapResult, error) {
	n := d.Len()
	if k < 2 {
		return nil, fmt.Errorf("core: k = %d, need k >= 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("core: k = %d exceeds dataset size %d", k, n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	// The pruned path shares the SoA kernel views across all n scans
	// (O(total samples) memory); their cached bounds double as the pair
	// lower bounds.
	var views []*fpView
	if prune {
		views = parallel.Map(n, workers, func(i int) *fpView {
			return newFPView(d.Fingerprints[i])
		})
	}
	results := parallel.Map(n, workers, func(i int) KGapResult {
		return kGapOne(p, d, i, k, views)
	})
	return results, nil
}

// kGapOne computes Δ^k_a for fingerprint i by scanning all other
// fingerprints and keeping the k-1 lowest efforts. If views is non-nil,
// pairs whose bounding-volume effort lower bound already exceeds the
// current k-1-th best are skipped outright, and the remaining pairs run
// the pruned kernel thresholded at that best, early-exiting provably
// worse pairs mid-evaluation; the result is unchanged because only
// pairs that cannot enter the top k-1 are pruned.
func kGapOne(p Params, d *Dataset, i, k int, views []*fpView) KGapResult {
	a := d.Fingerprints[i]
	type pair struct {
		idx    int
		effort float64
	}
	best := make([]pair, 0, k) // kept sorted ascending by effort, max k-1 entries
	worst := func() float64 {
		if len(best) < k-1 {
			return 2 // efforts are <= 1, so 2 means "accept anything"
		}
		return best[len(best)-1].effort
	}
	for j, b := range d.Fingerprints {
		if j == i {
			continue
		}
		w := worst()
		var e float64
		if views != nil {
			thr := math.Inf(1)
			if len(best) == k-1 {
				if p.EffortLowerBound(views[i].bounds, views[j].bounds) >= w {
					continue
				}
				// Only a full list bounds the kernel: while it is still
				// filling, every effort must be admitted exactly (the
				// w = 2 sentinel is no true bound for non-normalized
				// weights, where efforts may exceed it).
				thr = w
			}
			var below bool
			e, below = p.effortBelowViews(views[i], views[j], thr)
			if !below {
				// True effort strictly above the k-1-th best: it cannot
				// enter the list.
				continue
			}
		} else {
			e = p.FingerprintEffort(a, b)
		}
		if e >= w && len(best) == k-1 {
			continue
		}
		pos := sort.Search(len(best), func(m int) bool { return best[m].effort > e })
		best = append(best, pair{})
		copy(best[pos+1:], best[pos:])
		best[pos] = pair{idx: j, effort: e}
		if len(best) > k-1 {
			best = best[:k-1]
		}
	}

	res := KGapResult{Index: i, Nearest: make([]int, len(best)), Efforts: make([]float64, len(best))}
	var sum float64
	for m, b := range best {
		res.Nearest[m] = b.idx
		res.Efforts[m] = b.effort
		sum += b.effort
	}
	if len(best) > 0 {
		res.KGap = sum / float64(len(best))
	}
	return res
}

// KGaps extracts just the k-gap values from a result slice, in dataset
// order, ready for CDF construction.
func KGaps(rs []KGapResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.KGap
	}
	return out
}

// EffortMatrix computes the full symmetric |M|x|M| matrix of fingerprint
// stretch efforts Δ_ab (Eq. 10), in parallel. Entry (i, j) is stored at
// both [i*n+j] and [j*n+i]; the diagonal is zero. This is the
// initialization phase of GLOVE (Alg. 1 lines 1-3) and is also reused by
// analysis code.
func EffortMatrix(p Params, d *Dataset, workers int) []float64 {
	n := d.Len()
	m := make([]float64, n*n)
	parallel.ForPairs(n, workers, func(i, j int) {
		e := p.FingerprintEffort(d.Fingerprints[i], d.Fingerprints[j])
		m[i*n+j] = e
		m[j*n+i] = e
	})
	return m
}
