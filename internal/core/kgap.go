package core

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
)

// KGapResult holds the anonymizability measure of one fingerprint: its
// k-gap (Eq. 11) and the identities of its k-1 nearest fingerprints (the
// set N^{k-1}_a), which Sec. 5.3 disaggregates further.
type KGapResult struct {
	Index   int       // index of the fingerprint in the dataset
	KGap    float64   // Δ^k_a
	Nearest []int     // indices of the k-1 fingerprints at lowest Δ_ab
	Efforts []float64 // Δ_ab for each entry of Nearest
}

// KGapAll computes the k-gap of every fingerprint in the dataset using
// the given worker count (<= 0 for all CPUs). It evaluates Eq. 10 for all
// |M|^2 ordered pairs — the computation the paper offloads to a GPU —
// pruned (exactly) with bounding-volume lower bounds.
//
// k must be at least 2 and at most the number of fingerprints.
func KGapAll(p Params, d *Dataset, k, workers int) ([]KGapResult, error) {
	return kGapAll(p, d, k, workers, true)
}

// KGapAllNoPruning is KGapAll with the bounding-volume pruning disabled;
// it exists for the pruning ablation and must return identical results.
func KGapAllNoPruning(p Params, d *Dataset, k, workers int) ([]KGapResult, error) {
	return kGapAll(p, d, k, workers, false)
}

func kGapAll(p Params, d *Dataset, k, workers int, prune bool) ([]KGapResult, error) {
	n := d.Len()
	if k < 2 {
		return nil, fmt.Errorf("core: k = %d, need k >= 2", k)
	}
	if k > n {
		return nil, fmt.Errorf("core: k = %d exceeds dataset size %d", k, n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	var bounds []FingerprintBounds
	if prune {
		bounds = parallel.Map(n, workers, func(i int) FingerprintBounds {
			return BoundsOf(d.Fingerprints[i])
		})
	}
	results := parallel.Map(n, workers, func(i int) KGapResult {
		return kGapOne(p, d, i, k, bounds)
	})
	return results, nil
}

// kGapOne computes Δ^k_a for fingerprint i by scanning all other
// fingerprints and keeping the k-1 lowest efforts. If bounds is non-nil,
// pairs whose effort lower bound already exceeds the current k-1-th best
// are skipped; the result is unchanged because only provably worse pairs
// are pruned.
func kGapOne(p Params, d *Dataset, i, k int, bounds []FingerprintBounds) KGapResult {
	a := d.Fingerprints[i]
	type pair struct {
		idx    int
		effort float64
	}
	best := make([]pair, 0, k) // kept sorted ascending by effort, max k-1 entries
	worst := func() float64 {
		if len(best) < k-1 {
			return 2 // efforts are <= 1, so 2 means "accept anything"
		}
		return best[len(best)-1].effort
	}
	for j, b := range d.Fingerprints {
		if j == i {
			continue
		}
		w := worst()
		if bounds != nil && len(best) == k-1 && p.EffortLowerBound(bounds[i], bounds[j]) >= w {
			continue
		}
		e := p.FingerprintEffort(a, b)
		if e >= w && len(best) == k-1 {
			continue
		}
		pos := sort.Search(len(best), func(m int) bool { return best[m].effort > e })
		best = append(best, pair{})
		copy(best[pos+1:], best[pos:])
		best[pos] = pair{idx: j, effort: e}
		if len(best) > k-1 {
			best = best[:k-1]
		}
	}

	res := KGapResult{Index: i, Nearest: make([]int, len(best)), Efforts: make([]float64, len(best))}
	var sum float64
	for m, b := range best {
		res.Nearest[m] = b.idx
		res.Efforts[m] = b.effort
		sum += b.effort
	}
	if len(best) > 0 {
		res.KGap = sum / float64(len(best))
	}
	return res
}

// KGaps extracts just the k-gap values from a result slice, in dataset
// order, ready for CDF construction.
func KGaps(rs []KGapResult) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.KGap
	}
	return out
}

// EffortMatrix computes the full symmetric |M|x|M| matrix of fingerprint
// stretch efforts Δ_ab (Eq. 10), in parallel. Entry (i, j) is stored at
// both [i*n+j] and [j*n+i]; the diagonal is zero. This is the
// initialization phase of GLOVE (Alg. 1 lines 1-3) and is also reused by
// analysis code.
func EffortMatrix(p Params, d *Dataset, workers int) []float64 {
	n := d.Len()
	m := make([]float64, n*n)
	parallel.ForPairs(n, workers, func(i, j int) {
		e := p.FingerprintEffort(d.Fingerprints[i], d.Fingerprints[j])
		m[i*n+j] = e
		m[j*n+i] = e
	})
	return m
}
