package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randDataset builds a dataset of n random single-user fingerprints with
// up to maxLen samples each.
func randDataset(rng *rand.Rand, n, maxLen int) *Dataset {
	fps := make([]*Fingerprint, n)
	for i := range fps {
		fps[i] = randFingerprint(rng, fmt.Sprintf("u%04d", i), 1+rng.Intn(maxLen))
	}
	return NewDataset(fps)
}

func TestKGapAllArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDataset(rng, 5, 5)
	if _, err := KGapAll(DefaultParams(), d, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := KGapAll(DefaultParams(), d, 6, 1); err == nil {
		t.Error("k > |M| accepted")
	}
	if _, err := KGapAll(Params{}, d, 2, 1); err == nil {
		t.Error("zero params accepted")
	}
}

func TestKGapRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := randDataset(rng, 40, 10)
	rs, err := KGapAll(DefaultParams(), d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, r := range rs {
		if r.KGap < 0 || r.KGap > 1 || math.IsNaN(r.KGap) {
			t.Fatalf("k-gap %g outside [0,1]", r.KGap)
		}
		if len(r.Nearest) != 1 || len(r.Efforts) != 1 {
			t.Fatalf("k=2 result has %d neighbours", len(r.Nearest))
		}
		if r.Nearest[0] == r.Index {
			t.Fatal("fingerprint is its own neighbour")
		}
	}
}

func TestKGapZeroForDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randFingerprint(rng, "a", 8)
	b := a.Clone()
	b.ID = "b"
	b.Members = []string{"b"}
	c := randFingerprint(rng, "c", 8)
	d := NewDataset([]*Fingerprint{a, b, c})
	rs, err := KGapAll(DefaultParams(), d, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].KGap != 0 || rs[1].KGap != 0 {
		t.Errorf("duplicate fingerprints have k-gap %g, %g; want 0", rs[0].KGap, rs[1].KGap)
	}
	if rs[0].Nearest[0] != 1 || rs[1].Nearest[0] != 0 {
		t.Errorf("duplicates are not each other's nearest: %v, %v", rs[0].Nearest, rs[1].Nearest)
	}
}

func TestKGapMonotoneInK(t *testing.T) {
	// Δ^k is an average over the k-1 *lowest* efforts, so it cannot
	// decrease when k grows.
	rng := rand.New(rand.NewSource(4))
	d := randDataset(rng, 30, 8)
	p := DefaultParams()
	prev := make([]float64, d.Len())
	for k := 2; k <= 10; k++ {
		rs, err := KGapAll(p, d, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rs {
			if r.KGap+1e-12 < prev[i] {
				t.Fatalf("k=%d: k-gap of %d decreased: %g < %g", k, i, r.KGap, prev[i])
			}
			prev[i] = r.KGap
		}
	}
}

func TestKGapNearestSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 25, 6)
	rs, err := KGapAll(DefaultParams(), d, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		for m := 1; m < len(r.Efforts); m++ {
			if r.Efforts[m] < r.Efforts[m-1] {
				t.Fatalf("efforts not ascending: %v", r.Efforts)
			}
		}
	}
}

func TestKGapPruningExact(t *testing.T) {
	// Pruned and unpruned analyses must agree exactly. Use two spatially
	// distant clusters so pruning actually fires.
	rng := rand.New(rand.NewSource(6))
	fps := make([]*Fingerprint, 0, 40)
	for i := 0; i < 40; i++ {
		f := randFingerprint(rng, fmt.Sprintf("u%d", i), 1+rng.Intn(8))
		if i >= 20 {
			for j := range f.Samples {
				f.Samples[j].X += 3e5 // 300 km away
			}
		}
		fps = append(fps, f)
	}
	d := NewDataset(fps)
	p := DefaultParams()
	pruned, err := KGapAll(p, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := KGapAllNoPruning(p, d, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pruned {
		if math.Abs(pruned[i].KGap-plain[i].KGap) > 1e-15 {
			t.Fatalf("fingerprint %d: pruned %g != plain %g", i, pruned[i].KGap, plain[i].KGap)
		}
	}
}

// Non-normalized weights push efforts above the "accept anything"
// sentinel of the top-(k-1) scan; the pruned kernel must not treat the
// sentinel as a bound while the list is still filling (regression: a
// threshold of 2 would abort saturated pairs whose effort is w_σ + w_τ
// > 2 and drop them from a list that must admit everything).
func TestKGapPruningEquivalenceNonNormalizedWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fps := make([]*Fingerprint, 0, 12)
	for i := 0; i < 12; i++ {
		f := randFingerprint(rng, fmt.Sprintf("u%d", i), 1+rng.Intn(6))
		for j := range f.Samples {
			f.Samples[j].X += float64(i) * 1e5 // far-apart: efforts saturate at w_σ + w_τ
		}
		fps = append(fps, f)
	}
	d := NewDataset(fps)
	p := Params{MaxSpatial: 20000, MaxTemporal: 480, WSpatial: 3, WTemporal: 1}
	pruned, err := KGapAll(p, d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := KGapAllNoPruning(p, d, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pruned {
		if pruned[i].KGap != plain[i].KGap {
			t.Fatalf("fingerprint %d: pruned kgap %g != plain %g", i, pruned[i].KGap, plain[i].KGap)
		}
		if len(pruned[i].Nearest) != len(plain[i].Nearest) {
			t.Fatalf("fingerprint %d: pruned kept %d nearest, plain %d",
				i, len(pruned[i].Nearest), len(plain[i].Nearest))
		}
		for m := range pruned[i].Nearest {
			if pruned[i].Nearest[m] != plain[i].Nearest[m] || pruned[i].Efforts[m] != plain[i].Efforts[m] {
				t.Fatalf("fingerprint %d entry %d: pruned (%d, %g) != plain (%d, %g)", i, m,
					pruned[i].Nearest[m], pruned[i].Efforts[m], plain[i].Nearest[m], plain[i].Efforts[m])
			}
		}
	}
}

func TestKGapsExtract(t *testing.T) {
	rs := []KGapResult{{KGap: 0.1}, {KGap: 0.3}}
	got := KGaps(rs)
	if len(got) != 2 || got[0] != 0.1 || got[1] != 0.3 {
		t.Errorf("KGaps = %v", got)
	}
}

func TestEffortMatrixSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 15, 6)
	p := DefaultParams()
	m := EffortMatrix(p, d, 0)
	n := d.Len()
	for i := 0; i < n; i++ {
		if m[i*n+i] != 0 {
			t.Fatalf("diagonal (%d) = %g", i, m[i*n+i])
		}
		for j := 0; j < n; j++ {
			if m[i*n+j] != m[j*n+i] {
				t.Fatalf("matrix asymmetric at (%d, %d)", i, j)
			}
		}
	}
	// Spot-check against direct computation.
	for trial := 0; trial < 20; trial++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		want := p.FingerprintEffort(d.Fingerprints[i], d.Fingerprints[j])
		if m[i*n+j] != want {
			t.Fatalf("matrix (%d, %d) = %g, want %g", i, j, m[i*n+j], want)
		}
	}
}

func TestBoundsOf(t *testing.T) {
	f := NewFingerprint("a", []Sample{
		NewSample(100, 200, 100, 10, 1),
		NewSample(-500, 900, 100, 300, 1),
	})
	b := BoundsOf(f)
	if b.MinX != -500 || b.MaxX != 200 || b.MinY != 200 || b.MaxY != 1000 {
		t.Errorf("spatial bounds = %+v", b)
	}
	if b.MinT != 10 || b.MaxT != 301 {
		t.Errorf("temporal bounds = %+v", b)
	}
}

func TestEffortLowerBoundIsLowerBound(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		a := randFingerprint(rng, "a", 1+rng.Intn(10))
		b := randFingerprint(rng, "b", 1+rng.Intn(10))
		if trial%2 == 0 {
			for j := range b.Samples {
				b.Samples[j].X += rng.Float64() * 1e5
				b.Samples[j].T += rng.Float64() * 5000
			}
		}
		lb := p.EffortLowerBound(BoundsOf(a), BoundsOf(b))
		exact := p.FingerprintEffort(a, b)
		if lb > exact+1e-12 {
			t.Fatalf("trial %d: lower bound %g exceeds exact %g", trial, lb, exact)
		}
	}
}

func TestEffortLowerBoundOverlappingIsZero(t *testing.T) {
	p := DefaultParams()
	b := FingerprintBounds{MinX: 0, MaxX: 100, MinY: 0, MaxY: 100, MinT: 0, MaxT: 100}
	if lb := p.EffortLowerBound(b, b); lb != 0 {
		t.Errorf("overlapping bounds LB = %g, want 0", lb)
	}
}
