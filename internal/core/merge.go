package core

import (
	"fmt"
	"math"
)

// MergeOptions tunes the fingerprint merging operation of Sec. 6.2. The
// zero value is the paper's configuration: two-stage matching with
// reshaping. The Disable* fields exist for the ablation studies.
type MergeOptions struct {
	// DisableTwoStage skips the paper's second matching stage, where
	// samples of the shorter fingerprint left unmatched after stage one
	// are folded into the nearest stage-one result; unmatched samples are
	// instead published as-is. Measured in BenchmarkAblationMergeStages.
	DisableTwoStage bool

	// DisableReshape skips the reshaping pass resolving temporal
	// overlaps (Fig. 6b). Measured in BenchmarkAblationReshape.
	DisableReshape bool
}

// MergeFingerprints generalizes two fingerprints into a single one whose
// samples cover both inputs (Sec. 6.2, Fig. 6a):
//
// Stage 1: each sample of the longer fingerprint is matched to the sample
// of the shorter fingerprint at minimum sample stretch effort; all
// samples of the longer fingerprint pointing at the same short sample are
// generalized together with it (Eqs. 12-13).
//
// Stage 2: samples of the shorter fingerprint that attracted no match are
// generalized into the nearest stage-1 result.
//
// The result's Count is the sum of the inputs' Counts, and its Members
// are the union of the inputs' Members. The returned fingerprint is
// always freshly allocated; the inputs are not modified.
func MergeFingerprints(p Params, a, b *Fingerprint, opt MergeOptions) *Fingerprint {
	long, short := a, b
	if long.Len() < short.Len() {
		long, short = short, long
	}
	nl, ns := long.Count, short.Count

	// Stage 1: group the long fingerprint's samples by their nearest
	// short sample.
	groups := make([][]int, short.Len()) // short index -> long indices
	for i := range long.Samples {
		j := p.NearestSampleIndex(long.Samples[i], nl, short.Samples, ns)
		groups[j] = append(groups[j], i)
	}

	var merged []Sample
	var unmatched []int // short indices with empty groups
	for j, g := range groups {
		if len(g) == 0 {
			unmatched = append(unmatched, j)
			continue
		}
		m := short.Samples[j]
		for _, i := range g {
			m = MergeSamples(m, long.Samples[i])
		}
		merged = append(merged, m)
	}

	// Stage 2: fold unmatched short samples into the nearest merged
	// sample. At least one group is non-empty because the long
	// fingerprint has >= 1 sample, so `merged` is never empty here.
	if !opt.DisableTwoStage {
		for _, j := range unmatched {
			s := short.Samples[j]
			best, bestIdx := math.Inf(1), 0
			for m := range merged {
				d := p.SampleEffort(s, merged[m], ns, nl+ns)
				if d < best {
					best, bestIdx = d, m
				}
			}
			merged[bestIdx] = MergeSamples(merged[bestIdx], s)
		}
	} else {
		// Ablation: each unmatched short sample becomes its own
		// published sample (no folding). This keeps more samples but
		// breaks the identical-fingerprint construction unless the
		// caller reconciles; used only for measurement.
		for _, j := range unmatched {
			merged = append(merged, short.Samples[j])
		}
	}

	out := &Fingerprint{
		ID:      groupID(long.ID, short.ID),
		Samples: merged,
		Count:   nl + ns,
		Members: append(append(make([]string, 0, nl+ns), long.Members...), short.Members...),
	}
	sortSamples(out.Samples)
	if !opt.DisableReshape {
		out.Samples = Reshape(out.Samples)
	}
	return out
}

// groupID derives a stable identifier for a merged fingerprint. IDs can
// get long under deep merging; keep them bounded while staying unique
// within one GLOVE run by hashing long tails.
func groupID(a, b string) string {
	id := a + "+" + b
	if len(id) <= 64 {
		return id
	}
	return fmt.Sprintf("g-%08x-%08x", fnv32(id), len(id))
}

func fnv32(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
