package core

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestMergeFingerprintsBasics(t *testing.T) {
	p := DefaultParams()
	a := NewFingerprint("a", []Sample{
		NewSample(0, 0, 100, 100, 1),
		NewSample(1000, 0, 100, 500, 1),
	})
	b := NewFingerprint("b", []Sample{
		NewSample(200, 0, 100, 110, 1),
	})
	m := MergeFingerprints(p, a, b, MergeOptions{})
	if m.Count != 2 {
		t.Errorf("Count = %d, want 2", m.Count)
	}
	if len(m.Members) != 2 || !hasMember(m, "a") || !hasMember(m, "b") {
		t.Errorf("Members = %v", m.Members)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("merged fingerprint invalid: %v", err)
	}
}

func hasMember(f *Fingerprint, id string) bool {
	for _, m := range f.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Every original sample of both inputs must be covered by some sample of
// the merged fingerprint: the truthfulness invariant of the merge.
func TestMergeFingerprintsCoversInputs(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		a := randFingerprint(rng, "a", 1+rng.Intn(25))
		b := randFingerprint(rng, "b", 1+rng.Intn(25))
		m := MergeFingerprints(p, a, b, MergeOptions{})
		for _, in := range [...]*Fingerprint{a, b} {
			for i, s := range in.Samples {
				if !coveredBy(s, m.Samples) {
					t.Fatalf("trial %d: input %s sample %d not covered", trial, in.ID, i)
				}
			}
		}
	}
}

func TestMergeFingerprintsWeightConserved(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		a := randFingerprint(rng, "a", 1+rng.Intn(20))
		b := randFingerprint(rng, "b", 1+rng.Intn(20))
		m := MergeFingerprints(p, a, b, MergeOptions{})
		if m.TotalWeight() != a.TotalWeight()+b.TotalWeight() {
			t.Fatalf("trial %d: weight %d != %d + %d", trial,
				m.TotalWeight(), a.TotalWeight(), b.TotalWeight())
		}
	}
}

func TestMergeFingerprintsAtMostShorterLen(t *testing.T) {
	// With two-stage matching, the number of published samples cannot
	// exceed the shorter fingerprint's length: stage one groups by short
	// samples and stage two folds the unmatched ones in.
	p := DefaultParams()
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		a := randFingerprint(rng, "a", 1+rng.Intn(30))
		b := randFingerprint(rng, "b", 1+rng.Intn(30))
		m := MergeFingerprints(p, a, b, MergeOptions{DisableReshape: true})
		shorter := a.Len()
		if b.Len() < shorter {
			shorter = b.Len()
		}
		if m.Len() > shorter {
			t.Fatalf("trial %d: merged %d samples > shorter input %d", trial, m.Len(), shorter)
		}
	}
}

func TestMergeFingerprintsIdenticalInputs(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(37))
	a := randFingerprint(rng, "a", 12)
	b := a.Clone()
	b.ID = "b"
	b.Members = []string{"b"}
	m := MergeFingerprints(p, a, b, MergeOptions{DisableReshape: true})
	if m.Len() != a.Len() {
		t.Fatalf("merging identical fingerprints changed sample count: %d != %d", m.Len(), a.Len())
	}
	for i := range m.Samples {
		ms, as := m.Samples[i], a.Samples[i]
		if ms.X != as.X || ms.DX != as.DX || ms.Y != as.Y || ms.DY != as.DY ||
			ms.T != as.T || ms.DT != as.DT {
			t.Fatalf("sample %d geometry changed: %+v vs %+v", i, ms, as)
		}
		if ms.Weight != 2*as.Weight {
			t.Fatalf("sample %d weight = %d, want %d", i, ms.Weight, 2*as.Weight)
		}
	}
}

func TestMergeFingerprintsSingleStageKeepsUnmatched(t *testing.T) {
	p := DefaultParams()
	// Long fingerprint with 3 samples near t=0; short with one near t=0
	// and one far: the far short sample attracts no match.
	long := NewFingerprint("l", []Sample{
		NewSample(0, 0, 100, 10, 1),
		NewSample(100, 0, 100, 20, 1),
		NewSample(200, 0, 100, 30, 1),
	})
	short := NewFingerprint("s", []Sample{
		NewSample(0, 0, 100, 15, 1),
		NewSample(0, 0, 100, 10000, 1),
	})
	twoStage := MergeFingerprints(p, long, short, MergeOptions{DisableReshape: true})
	oneStage := MergeFingerprints(p, long, short, MergeOptions{DisableTwoStage: true, DisableReshape: true})
	if twoStage.Len() != 1 {
		t.Errorf("two-stage merged to %d samples, want 1 (far sample folded)", twoStage.Len())
	}
	if oneStage.Len() != 2 {
		t.Errorf("single-stage merged to %d samples, want 2 (far sample kept)", oneStage.Len())
	}
}

func TestMergeFingerprintsDeterministic(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(41))
	a := randFingerprint(rng, "a", 15)
	b := randFingerprint(rng, "b", 9)
	m1 := MergeFingerprints(p, a, b, MergeOptions{})
	m2 := MergeFingerprints(p, a, b, MergeOptions{})
	if m1.Len() != m2.Len() {
		t.Fatal("merge not deterministic")
	}
	for i := range m1.Samples {
		if m1.Samples[i] != m2.Samples[i] {
			t.Fatal("merge not deterministic in sample geometry")
		}
	}
}

func TestMergeDoesNotModifyInputs(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(43))
	a := randFingerprint(rng, "a", 10)
	b := randFingerprint(rng, "b", 6)
	aCopy := a.Clone()
	bCopy := b.Clone()
	MergeFingerprints(p, a, b, MergeOptions{})
	for i := range a.Samples {
		if a.Samples[i] != aCopy.Samples[i] {
			t.Fatal("merge modified input a")
		}
	}
	for i := range b.Samples {
		if b.Samples[i] != bCopy.Samples[i] {
			t.Fatal("merge modified input b")
		}
	}
}

func TestGroupIDBounded(t *testing.T) {
	id := "x"
	for i := 0; i < 20; i++ {
		id = groupID(id, id)
		if len(id) > 64 {
			t.Fatalf("groupID grew to %d bytes", len(id))
		}
	}
}

func TestGroupIDDistinct(t *testing.T) {
	long1 := make([]byte, 100)
	long2 := make([]byte, 100)
	for i := range long1 {
		long1[i] = 'a'
		long2[i] = 'a'
	}
	long2[50] = 'b'
	if groupID(string(long1), "x") == groupID(string(long2), "x") {
		t.Error("groupID collision on different inputs")
	}
}

func TestReshapeNoOverlapsAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(30)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = randSample(rng)
		}
		sortSamples(samples)
		out := Reshape(samples)
		if CountTemporalOverlaps(out) != 0 {
			t.Fatalf("trial %d: reshape left overlaps", trial)
		}
		for i, s := range samples {
			if !coveredBy(s, out) {
				t.Fatalf("trial %d: input sample %d not covered after reshape", trial, i)
			}
		}
		var wIn, wOut int
		for _, s := range samples {
			wIn += s.Weight
		}
		for _, s := range out {
			wOut += s.Weight
		}
		if wIn != wOut {
			t.Fatalf("trial %d: reshape weight %d != %d", trial, wOut, wIn)
		}
	}
}

func TestReshapeDisjointInputUnchanged(t *testing.T) {
	samples := []Sample{
		NewSample(0, 0, 100, 0, 1),
		NewSample(500, 0, 100, 10, 1),
		NewSample(900, 100, 100, 30, 1),
	}
	out := Reshape(samples)
	if len(out) != len(samples) {
		t.Fatalf("reshape of disjoint samples changed count: %d", len(out))
	}
	for i := range out {
		if out[i] != samples[i] {
			t.Errorf("sample %d changed: %+v", i, out[i])
		}
	}
}

func TestReshapeChainOfOverlaps(t *testing.T) {
	// Three samples overlapping pairwise in a chain collapse to one.
	samples := []Sample{
		{X: 0, DX: 100, Y: 0, DY: 100, T: 0, DT: 10, Weight: 1},
		{X: 1000, DX: 100, Y: 0, DY: 100, T: 5, DT: 10, Weight: 1},
		{X: 2000, DX: 100, Y: 0, DY: 100, T: 12, DT: 10, Weight: 1},
	}
	out := Reshape(samples)
	if len(out) != 1 {
		t.Fatalf("chain reshape produced %d samples, want 1", len(out))
	}
	if out[0].DX != 2100 || out[0].DT != 22 {
		t.Errorf("reshaped sample = %+v", out[0])
	}
	if out[0].Weight != 3 {
		t.Errorf("reshaped weight = %d, want 3", out[0].Weight)
	}
}

func TestReshapeEmptyAndSingle(t *testing.T) {
	if out := Reshape(nil); len(out) != 0 {
		t.Error("Reshape(nil) not empty")
	}
	one := []Sample{NewSample(0, 0, 100, 5, 1)}
	out := Reshape(one)
	if len(out) != 1 || out[0] != one[0] {
		t.Error("Reshape of single sample changed it")
	}
}

func TestCountTemporalOverlaps(t *testing.T) {
	samples := []Sample{
		{T: 0, DT: 10, Weight: 1},
		{T: 5, DT: 10, Weight: 1},
		{T: 30, DT: 5, Weight: 1},
	}
	if got := CountTemporalOverlaps(samples); got != 1 {
		t.Errorf("overlaps = %d, want 1", got)
	}
	// Long first interval spanning both others: two overlapping pairs
	// (0,1) and (0,2); (1,2) are disjoint.
	samples2 := []Sample{
		{T: 0, DT: 100, Weight: 1},
		{T: 5, DT: 10, Weight: 1},
		{T: 30, DT: 5, Weight: 1},
	}
	if got := CountTemporalOverlaps(samples2); got != 2 {
		t.Errorf("overlaps = %d, want 2", got)
	}
}

func BenchmarkMergeFingerprints(b *testing.B) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{20, 100} {
		fa := randFingerprint(rng, "a", n)
		fb := randFingerprint(rng, "b", n)
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MergeFingerprints(p, fa, fb, MergeOptions{})
			}
		})
	}
}
