package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// The parallel fast paths of this PR — stripe-parallel sparse grid
// build, parallel MinPair head-scan reduction, scratch-row Reinsert
// fan-out, pooled views — must be invisible in the output: a run with
// one worker and a run with many workers produce bit-identical
// datasets. These tests force the parallel MinPair path on small
// datasets by lowering its activation cut.

func gloveOut(t *testing.T, d *Dataset, opt GloveOptions) (*Dataset, *GloveStats) {
	t.Helper()
	out, stats, err := Glove(d, opt)
	if err != nil {
		t.Fatalf("Glove(%+v): %v", opt, err)
	}
	// Wall-clock fields are the only non-deterministic stats; zero them
	// so the comparison pins everything else.
	stats.IndexBuildNanos = 0
	stats.MergeNanos = 0
	return out, stats
}

// TestSerialParallelEquivalence pins serial == parallel bit-identity
// for both index implementations across several random datasets.
func TestSerialParallelEquivalence(t *testing.T) {
	oldCut := minPairParallelCut
	minPairParallelCut = 8
	defer func() { minPairParallelCut = oldCut }()

	for _, kind := range []IndexKind{IndexDense, IndexSparse} {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(900 + seed))
			n := 20 + rng.Intn(40)
			d := randDataset(rng, n, 1+rng.Intn(8))
			k := 2 + rng.Intn(3)

			serialOut, serialStats := gloveOut(t, d, GloveOptions{K: k, Index: kind, Workers: 1})
			parOut, parStats := gloveOut(t, d, GloveOptions{K: k, Index: kind, Workers: 8})

			if !reflect.DeepEqual(serialOut, parOut) {
				t.Fatalf("%s seed %d: parallel output differs from serial", kind, seed)
			}
			// Kernel call counts may differ (pruning thresholds race
			// benignly across workers); the merge trace may not.
			if serialStats.Merges != parStats.Merges {
				t.Fatalf("%s seed %d: merges %d (serial) != %d (parallel)",
					kind, seed, serialStats.Merges, parStats.Merges)
			}
		}
	}
}

// TestProbeMatchesGlovePrefix pins that the scaling probe drives the
// very same machinery: with an unbounded merge cap and no leftover, the
// probe's merge count matches a full run's.
func TestProbeMatchesGlovePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	d := randDataset(rng, 40, 6)
	opt := GloveOptions{K: 2, Index: IndexSparse}

	_, stats, err := Glove(d, opt)
	if err != nil {
		t.Fatalf("Glove: %v", err)
	}
	ps, err := IndexMergeProbe(t.Context(), d, opt, 1<<30)
	if err != nil {
		t.Fatalf("IndexMergeProbe: %v", err)
	}
	if ps.Fingerprints != d.Len() {
		t.Fatalf("probe active = %d, want %d", ps.Fingerprints, d.Len())
	}
	// The full run may add one leftover fold on top of the loop merges.
	if ps.Merges != stats.Merges && ps.Merges != stats.Merges-1 {
		t.Fatalf("probe merges = %d, full run = %d", ps.Merges, stats.Merges)
	}

	// A bounded burst stops exactly at the cap.
	ps, err = IndexMergeProbe(t.Context(), d, opt, 5)
	if err != nil {
		t.Fatalf("IndexMergeProbe bounded: %v", err)
	}
	if ps.Merges != 5 {
		t.Fatalf("bounded probe merges = %d, want 5", ps.Merges)
	}
}
