package core

import (
	"context"
	"fmt"
)

// Strategy selects how a dataset is partitioned for anonymization.
type Strategy string

const (
	// StrategyAuto lets the planner pick: a single global run up to
	// SingleRunMaxN fingerprints, chunked above.
	StrategyAuto Strategy = "auto"
	// StrategySingle runs GLOVE once over the whole dataset — the
	// paper's algorithm, quadratic in the dataset size.
	StrategySingle Strategy = "single"
	// StrategyChunked partitions the dataset into spatially coherent
	// blocks anonymized independently (GloveChunked), turning the cost
	// into a sum of much smaller quadratics that run in parallel.
	StrategyChunked Strategy = "chunked"
)

// IndexKind selects the pair-selection index inside one GLOVE run.
type IndexKind string

const (
	// IndexAuto picks dense up to DenseIndexMaxN fingerprints, sparse
	// above. The empty string behaves identically, so the GloveOptions
	// zero value auto-selects.
	IndexAuto IndexKind = "auto"
	// IndexDense is the full n×n effort matrix with a nearest-neighbour
	// cache: fastest lookups, O(n²) memory.
	IndexDense IndexKind = "dense"
	// IndexSparse is the spatial-grid candidate-list index: O(n·m)
	// memory, lazy effort evaluation, identical output.
	IndexSparse IndexKind = "sparse"
)

// Planner thresholds. The auto rules are deliberately simple and
// documented (README, DESIGN.md Sec. 4) so operators can predict them.
const (
	// DenseIndexMaxN is the largest run the auto rule gives the dense
	// index: at the cutover the matrix is 8·n² = 128 MiB; at n = 100k it
	// would be ~80 GB, which is the memory wall the sparse index removes.
	DenseIndexMaxN = 4096

	// SingleRunMaxN is the largest dataset the auto rule anonymizes in
	// one global run before switching to spatial chunking.
	SingleRunMaxN = 20000

	// DefaultChunkSize is the target block size of auto-selected
	// chunking.
	DefaultChunkSize = 4000

	// DefaultIndexNeighbors is the sparse index's per-fingerprint
	// candidate-list size m when unset.
	DefaultIndexNeighbors = 8
)

// ParseStrategy maps the wire/flag spelling to a Strategy ("" = auto).
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyAuto:
		return StrategyAuto, nil
	case StrategySingle:
		return StrategySingle, nil
	case StrategyChunked:
		return StrategyChunked, nil
	}
	return "", fmt.Errorf("core: unknown strategy %q (want auto, single or chunked)", s)
}

// ParseIndexKind maps the wire/flag spelling to an IndexKind ("" = auto).
func ParseIndexKind(s string) (IndexKind, error) {
	switch IndexKind(s) {
	case "", IndexAuto:
		return IndexAuto, nil
	case IndexDense:
		return IndexDense, nil
	case IndexSparse:
		return IndexSparse, nil
	}
	return "", fmt.Errorf("core: unknown index kind %q (want auto, dense or sparse)", s)
}

// resolveIndex turns the option into a concrete index kind for a run
// over n fingerprints, validating the combination.
func (o GloveOptions) resolveIndex(n int) (IndexKind, error) {
	switch o.Index {
	case "", IndexAuto:
		if o.NaiveMinPair {
			// The cache ablation is defined against the matrix.
			return IndexDense, nil
		}
		if n > DenseIndexMaxN {
			return IndexSparse, nil
		}
		return IndexDense, nil
	case IndexDense:
		return IndexDense, nil
	case IndexSparse:
		if o.NaiveMinPair {
			return "", fmt.Errorf("core: NaiveMinPair is a dense-matrix ablation, incompatible with the sparse index")
		}
		return IndexSparse, nil
	}
	return "", fmt.Errorf("core: unknown index kind %q (want auto, dense or sparse)", o.Index)
}

// AnonymizeOptions configures the planned entry point. Index selection
// rides on Glove.Index / Glove.IndexNeighbors.
type AnonymizeOptions struct {
	// Glove carries the per-run options (K, Params, Merge, Suppress,
	// Workers, Index).
	Glove GloveOptions

	// Strategy selects single-run vs chunked execution; zero value is
	// StrategyAuto.
	Strategy Strategy

	// ChunkSize is the target fingerprints per block for chunked runs;
	// <= 0 uses DefaultChunkSize. Must be >= 2·K when set.
	ChunkSize int
}

// Plan is the resolved execution shape of an Anonymize call — what the
// auto rules decided for a concrete dataset size. It is JSON-tagged so
// the service can surface it verbatim in job statuses and /v1/metrics.
type Plan struct {
	// N is the dataset size the plan was made for.
	N int `json:"n"`
	// Strategy is the resolved strategy: single or chunked, never auto.
	Strategy Strategy `json:"strategy"`
	// ChunkSize is the target block size; 0 for single runs.
	ChunkSize int `json:"chunk_size,omitempty"`
	// Index is the index resolution at the planned run size (the block
	// size for chunked runs; IndexAuto re-resolves per block, which only
	// differs for the oversized tail block).
	Index IndexKind `json:"index"`
	// IndexNeighbors is the sparse candidate-list size m; 0 when dense.
	IndexNeighbors int `json:"index_neighbors,omitempty"`
}

// PlanFor validates the options and resolves the auto rules for a
// dataset of n fingerprints. It is pure: calling Anonymize afterwards
// executes exactly the returned plan.
func PlanFor(n int, opt AnonymizeOptions) (Plan, error) {
	if opt.Glove.K < 2 {
		return Plan{}, fmt.Errorf("core: plan k = %d, need k >= 2", opt.Glove.K)
	}
	strategy, err := ParseStrategy(string(opt.Strategy))
	if err != nil {
		return Plan{}, err
	}
	if _, err := ParseIndexKind(string(opt.Glove.Index)); err != nil {
		return Plan{}, err
	}
	chunk := opt.ChunkSize
	if chunk < 0 {
		return Plan{}, fmt.Errorf("core: negative chunk size %d", chunk)
	}
	if chunk > 0 && chunk < 2*opt.Glove.K {
		return Plan{}, fmt.Errorf("core: chunk size %d < 2k = %d", chunk, 2*opt.Glove.K)
	}
	if chunk > 0 && strategy == StrategySingle {
		return Plan{}, fmt.Errorf("core: chunk size %d set but strategy is single", chunk)
	}

	if strategy == StrategyAuto {
		if n > SingleRunMaxN {
			strategy = StrategyChunked
		} else {
			strategy = StrategySingle
		}
	}
	if strategy == StrategyChunked {
		if chunk == 0 {
			chunk = DefaultChunkSize
		}
		if n <= chunk {
			// GloveChunked would fall back to a single run anyway;
			// resolve it here so the plan reports what actually executes.
			strategy = StrategySingle
			chunk = 0
		}
	} else {
		chunk = 0
	}

	runN := n
	if strategy == StrategyChunked {
		runN = chunk
	}
	kind, err := opt.Glove.resolveIndex(runN)
	if err != nil {
		return Plan{}, err
	}
	plan := Plan{N: n, Strategy: strategy, ChunkSize: chunk, Index: kind}
	if kind == IndexSparse {
		plan.IndexNeighbors = clampIndexNeighbors(opt.Glove.IndexNeighbors)
	}
	return plan, nil
}

// clampIndexNeighbors resolves the sparse candidate budget: unset means
// the default, and anything below 2 is raised to 2 (a 1-entry list
// cannot hold a pair's two endpoints' views of each other). Plan
// reporting and the index itself share this rule so the published plan
// never disagrees with the executed one.
func clampIndexNeighbors(m int) int {
	if m <= 0 {
		return DefaultIndexNeighbors
	}
	if m < 2 {
		return 2
	}
	return m
}

// Anonymize is the planned entry point unifying Glove, GloveChunked and
// the index choice: it resolves the auto rules for the dataset size and
// runs the resolved plan. All plans produce a k-anonymized dataset; they
// differ in memory footprint, parallelism and (for chunked) whether
// merges may cross block boundaries.
func Anonymize(d *Dataset, opt AnonymizeOptions) (*Dataset, *GloveStats, error) {
	return AnonymizeContext(context.Background(), d, opt)
}

// AnonymizeContext is Anonymize with cooperative cancellation.
func AnonymizeContext(ctx context.Context, d *Dataset, opt AnonymizeOptions) (*Dataset, *GloveStats, error) {
	plan, err := PlanFor(d.Len(), opt)
	if err != nil {
		return nil, nil, err
	}
	return RunPlan(ctx, d, opt, plan)
}

// RunPlan executes a plan previously resolved by PlanFor over the same
// dataset and options, so a caller that surfaced the plan (CLI stderr,
// job status) runs exactly what it displayed. AnonymizeContext is
// PlanFor followed by RunPlan.
func RunPlan(ctx context.Context, d *Dataset, opt AnonymizeOptions, plan Plan) (*Dataset, *GloveStats, error) {
	if plan.Strategy == StrategyChunked {
		return GloveChunkedContext(ctx, d, ChunkedGloveOptions{
			Glove:     opt.Glove,
			ChunkSize: plan.ChunkSize,
		})
	}
	return GloveContext(ctx, d, opt.Glove)
}
