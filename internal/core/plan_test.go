package core

import (
	"context"
	"math/rand"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	for in, want := range map[string]Strategy{
		"": StrategyAuto, "auto": StrategyAuto,
		"single": StrategySingle, "chunked": StrategyChunked,
	} {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("gpu"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestParseIndexKind(t *testing.T) {
	for in, want := range map[string]IndexKind{
		"": IndexAuto, "auto": IndexAuto,
		"dense": IndexDense, "sparse": IndexSparse,
	} {
		got, err := ParseIndexKind(in)
		if err != nil || got != want {
			t.Errorf("ParseIndexKind(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseIndexKind("matrix"); err == nil {
		t.Error("bogus index kind accepted")
	}
}

func TestPlanForAutoRules(t *testing.T) {
	opt := AnonymizeOptions{Glove: GloveOptions{K: 2}}

	small, err := PlanFor(100, opt)
	if err != nil {
		t.Fatal(err)
	}
	if small.Strategy != StrategySingle || small.Index != IndexDense || small.ChunkSize != 0 {
		t.Errorf("small plan = %+v, want single/dense", small)
	}

	mid, err := PlanFor(DenseIndexMaxN+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Strategy != StrategySingle || mid.Index != IndexSparse {
		t.Errorf("mid plan = %+v, want single/sparse", mid)
	}
	if mid.IndexNeighbors != DefaultIndexNeighbors {
		t.Errorf("mid plan neighbors = %d, want default %d", mid.IndexNeighbors, DefaultIndexNeighbors)
	}

	big, err := PlanFor(SingleRunMaxN+1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if big.Strategy != StrategyChunked || big.ChunkSize != DefaultChunkSize {
		t.Errorf("big plan = %+v, want chunked at default chunk", big)
	}
	// Default chunk 4000 <= DenseIndexMaxN: blocks run dense.
	if big.Index != IndexDense {
		t.Errorf("big plan index = %q, want dense blocks", big.Index)
	}

	// Chunked with blocks above the dense cutover resolves sparse.
	wide, err := PlanFor(50000, AnonymizeOptions{
		Glove: GloveOptions{K: 2}, Strategy: StrategyChunked, ChunkSize: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Index != IndexSparse {
		t.Errorf("wide plan index = %q, want sparse blocks", wide.Index)
	}

	// Explicit chunked on a dataset no bigger than one chunk degenerates
	// to single, and the plan says so.
	degen, err := PlanFor(50, AnonymizeOptions{
		Glove: GloveOptions{K: 2}, Strategy: StrategyChunked, ChunkSize: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if degen.Strategy != StrategySingle || degen.ChunkSize != 0 {
		t.Errorf("degenerate plan = %+v, want single", degen)
	}
}

func TestPlanForValidation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opt  AnonymizeOptions
	}{
		{"k too small", 100, AnonymizeOptions{Glove: GloveOptions{K: 1}}},
		{"bad strategy", 100, AnonymizeOptions{Glove: GloveOptions{K: 2}, Strategy: "warp"}},
		{"bad index", 100, AnonymizeOptions{Glove: GloveOptions{K: 2, Index: "btree"}}},
		{"negative chunk", 100, AnonymizeOptions{Glove: GloveOptions{K: 2}, ChunkSize: -1}},
		{"chunk below 2k", 100, AnonymizeOptions{Glove: GloveOptions{K: 5}, ChunkSize: 9}},
		{"chunk with single", 100, AnonymizeOptions{Glove: GloveOptions{K: 2}, Strategy: StrategySingle, ChunkSize: 50}},
		{"naive sparse", 100, AnonymizeOptions{Glove: GloveOptions{K: 2, Index: IndexSparse, NaiveMinPair: true}}},
	}
	for _, c := range cases {
		if _, err := PlanFor(c.n, c.opt); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// Anonymize executes whatever PlanFor resolved: chunked output matches
// a direct GloveChunked call, single matches Glove, both k-anonymous.
func TestAnonymizeMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := randDataset(rng, 60, 5)

	single, _, err := Anonymize(d, AnonymizeOptions{Glove: GloveOptions{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "single-vs-glove", single, direct)

	chunked, cstats, err := Anonymize(d, AnonymizeOptions{
		Glove: GloveOptions{K: 2}, Strategy: StrategyChunked, ChunkSize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	directChunked, _, err := GloveChunked(d, ChunkedGloveOptions{
		Glove: GloveOptions{K: 2}, ChunkSize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "chunked-vs-glovechunked", chunked, directChunked)
	if err := ValidateKAnonymity(chunked, 2); err != nil {
		t.Fatal(err)
	}
	if cstats.InputUsers != 60 || chunked.Users() != 60 {
		t.Errorf("chunked accounting: %d in, %d out", cstats.InputUsers, chunked.Users())
	}
}

// A chunked run aggregates per-block progress into one monotone
// (done, total) series ending at completion, instead of leaking each
// block's own scale to the caller (which made progress hit 100% as
// soon as the first block finished). The callback is serialized by the
// implementation; the unguarded writes here let -race prove it.
func TestGloveChunkedProgressAggregated(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	d := randDataset(rng, 60, 5)
	var calls, last, lastTotal int
	mono := true
	_, _, err := GloveChunked(d, ChunkedGloveOptions{
		Glove: GloveOptions{K: 2, Workers: 4, Progress: func(done, total int) {
			calls++
			if done < last {
				mono = false
			}
			last, lastTotal = done, total
		}},
		ChunkSize: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never reported")
	}
	if !mono {
		t.Error("progress went backwards")
	}
	if last != lastTotal {
		t.Errorf("final progress %d/%d, want completion", last, lastTotal)
	}
}

// The sparse candidate budget reported by the plan matches what the
// index actually uses: below-minimum values clamp to 2 everywhere.
func TestPlanIndexNeighborsClamped(t *testing.T) {
	plan, err := PlanFor(100, AnonymizeOptions{
		Glove: GloveOptions{K: 2, Index: IndexSparse, IndexNeighbors: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexNeighbors != 2 {
		t.Errorf("plan neighbors = %d, want clamp to 2", plan.IndexNeighbors)
	}
	opt := GloveOptions{K: 2, Index: IndexSparse, IndexNeighbors: 1}.withDefaults()
	if opt.IndexNeighbors != 2 {
		t.Errorf("options neighbors = %d, want clamp to 2", opt.IndexNeighbors)
	}
}

// Chunked execution honours cancellation through the planner.
func TestAnonymizeContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := randDataset(rng, 40, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := AnonymizeContext(ctx, d, AnonymizeOptions{
		Glove: GloveOptions{K: 2}, Strategy: StrategyChunked, ChunkSize: 10,
	}); err == nil {
		t.Fatal("cancelled chunked run returned no error")
	}
	if _, _, err := AnonymizeContext(ctx, d, AnonymizeOptions{Glove: GloveOptions{K: 2}}); err == nil {
		t.Fatal("cancelled single run returned no error")
	}
}

// GloveStats.Add sums every field.
func TestGloveStatsAdd(t *testing.T) {
	a := &GloveStats{
		InputFingerprints: 1, InputUsers: 2, InputSamples: 3,
		OutputFingerprints: 4, OutputSamples: 5, Merges: 6,
		SuppressedSamples: 7, SuppressedPublished: 8,
		DiscardedFingerprints: 9, DiscardedUsers: 10,
	}
	b := &GloveStats{
		InputFingerprints: 10, InputUsers: 20, InputSamples: 30,
		OutputFingerprints: 40, OutputSamples: 50, Merges: 60,
		SuppressedSamples: 70, SuppressedPublished: 80,
		DiscardedFingerprints: 90, DiscardedUsers: 100,
	}
	a.Add(b)
	want := GloveStats{
		InputFingerprints: 11, InputUsers: 22, InputSamples: 33,
		OutputFingerprints: 44, OutputSamples: 55, Merges: 66,
		SuppressedSamples: 77, SuppressedPublished: 88,
		DiscardedFingerprints: 99, DiscardedUsers: 110,
	}
	if *a != want {
		t.Errorf("Add = %+v, want %+v", *a, want)
	}
}
