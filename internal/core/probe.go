package core

import (
	"context"
	"fmt"
	"time"
)

// ProbeStats reports what an IndexMergeProbe run did and cost.
type ProbeStats struct {
	Fingerprints    int   // active fingerprints after state construction
	Merges          int   // merge iterations executed (<= the requested cap)
	IndexBuildNanos int64 // wall clock of state + index construction
	MergeNanos      int64 // wall clock of the bounded merge loop
	KernelCalls     int64 // pruned-kernel invocations
	KernelPruned    int64 // invocations that early-exited
}

// IndexMergeProbe builds the pair-selection index over d and runs at
// most maxMerges iterations of the GLOVE merge loop, returning the cost
// accounting. It is the scaling benchmark's unit of work: at 1M
// fingerprints a full run to K-anonymity is out of reach by design
// (the loop is O(n) per merge and merges O(n) times), so the trajectory
// is pinned on the two phases the memory-bounded tier optimizes — index
// build and a bounded merge burst. The probe discards its output; it is
// not part of the anonymization API.
func IndexMergeProbe(ctx context.Context, d *Dataset, opt GloveOptions, maxMerges int) (ProbeStats, error) {
	opt = opt.withDefaults()
	if opt.K < 2 {
		return ProbeStats{}, fmt.Errorf("core: probe k = %d, need k >= 2", opt.K)
	}
	if err := opt.Params.Validate(); err != nil {
		return ProbeStats{}, err
	}
	if _, err := opt.resolveIndex(d.Len()); err != nil {
		return ProbeStats{}, err
	}

	var ps ProbeStats
	buildStart := time.Now()
	st, err := newGloveState(ctx, d, opt, nil)
	if err != nil {
		return ProbeStats{}, err
	}
	ps.IndexBuildNanos = time.Since(buildStart).Nanoseconds()
	ps.Fingerprints = st.activeCount()

	mergeStart := time.Now()
	for st.activeCount() >= 2 && ps.Merges < maxMerges {
		if err := ctx.Err(); err != nil {
			return ProbeStats{}, err
		}
		i, j := st.idx.MinPair()
		st.merge(i, j)
		ps.Merges++
	}
	ps.MergeNanos = time.Since(mergeStart).Nanoseconds()
	ps.KernelCalls = st.ws.kc.calls.Load()
	ps.KernelPruned = st.ws.kc.pruned.Load()
	return ps, nil
}
