package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) over the core invariants listed
// in DESIGN.md Sec. 6. Each property derives its randomness from a
// seeded generator so failures are reproducible.

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(seed))}
}

// δ is symmetric when the subscriber counts are equal.
func TestQuickSampleEffortSymmetric(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSample(rng), randSample(rng)
		n := 1 + rng.Intn(5)
		return p.SampleEffort(a, b, n, n) == p.SampleEffort(b, a, n, n)
	}
	if err := quick.Check(f, quickCfg(1)); err != nil {
		t.Error(err)
	}
}

// δ grows (weakly) when a sample moves farther away along any axis.
func TestQuickSampleEffortMonotoneInSeparation(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randSample(rng), randSample(rng)
		near := p.SampleEffort(a, b, 1, 1)
		far := b
		far.X += 1000 + rng.Float64()*5000
		farther := p.SampleEffort(a, far, 1, 1)
		if b.X >= a.X { // moving b east increases separation only if b starts east-ish
			return farther+1e-12 >= near
		}
		return true
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

// Merging a fingerprint with itself (as a distinct user) has zero
// effort, and effort to a shifted copy grows with the shift.
func TestQuickFingerprintEffortShift(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFingerprint(rng, "a", 1+rng.Intn(12))
		b := a.Clone()
		b.ID = "b"
		if p.FingerprintEffort(a, b) != 0 {
			return false
		}
		shift := 500 + rng.Float64()*5000
		for i := range b.Samples {
			b.Samples[i].X += shift
		}
		small := p.FingerprintEffort(a, b)
		for i := range b.Samples {
			b.Samples[i].X += shift
		}
		big := p.FingerprintEffort(a, b)
		return small > 0 && big+1e-12 >= small
	}
	if err := quick.Check(f, quickCfg(3)); err != nil {
		t.Error(err)
	}
}

// The effort lower bound never exceeds the true effort, under random
// translations that make pruning fire.
func TestQuickEffortLowerBound(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFingerprint(rng, "a", 1+rng.Intn(10))
		b := randFingerprint(rng, "b", 1+rng.Intn(10))
		dx := rng.Float64() * 2e5
		dt := rng.Float64() * 1e4
		for i := range b.Samples {
			b.Samples[i].X += dx
			b.Samples[i].T += dt
		}
		lb := p.EffortLowerBound(BoundsOf(a), BoundsOf(b))
		return lb <= p.FingerprintEffort(a, b)+1e-12
	}
	if err := quick.Check(f, quickCfg(4)); err != nil {
		t.Error(err)
	}
}

// GLOVE output invariants on random datasets: k-anonymity, user
// conservation, truthfulness, and k-gap zero within groups.
func TestQuickGloveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		k := 2 + rng.Intn(3)
		if k > n {
			k = n
		}
		d := randDataset(rng, n, 1+rng.Intn(8))
		out, _, err := Glove(d, GloveOptions{K: k})
		if err != nil {
			return false
		}
		if ValidateKAnonymity(out, k) != nil {
			return false
		}
		if out.Users() != n {
			return false
		}
		rep := CheckTruthfulness(d, out)
		return rep.MissingFP == 0 && rep.Suppressed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// Published weight equals input samples minus suppressed weight, for
// random suppression thresholds.
func TestQuickSuppressionAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := randDataset(rng, 8+rng.Intn(10), 2+rng.Intn(6))
		thr := SuppressionThresholds{
			MaxSpatialMeters:   1000 + rng.Float64()*20000,
			MaxTemporalMinutes: 30 + rng.Float64()*600,
		}
		out, st, err := Glove(d, GloveOptions{K: 2, Suppress: thr})
		if err != nil {
			return false
		}
		var published int
		for _, fp := range out.Fingerprints {
			published += fp.TotalWeight()
		}
		return published+st.SuppressedSamples == st.InputSamples
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Error(err)
	}
}

// Reshape is idempotent.
func TestQuickReshapeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		samples := make([]Sample, n)
		for i := range samples {
			samples[i] = randSample(rng)
		}
		sortSamples(samples)
		once := Reshape(samples)
		twice := Reshape(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(7)); err != nil {
		t.Error(err)
	}
}

// Fingerprint effort respects the [0, 1] envelope for arbitrary counts
// and unbalanced weights.
func TestQuickFingerprintEffortEnvelope(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFingerprint(rng, "a", 1+rng.Intn(15))
		b := randFingerprint(rng, "b", 1+rng.Intn(15))
		a.Count = 1 + rng.Intn(50)
		b.Count = 1 + rng.Intn(50)
		a.Members = make([]string, a.Count)
		b.Members = make([]string, b.Count)
		e := p.FingerprintEffort(a, b)
		return e >= 0 && e <= 1 && !math.IsNaN(e)
	}
	if err := quick.Check(f, quickCfg(8)); err != nil {
		t.Error(err)
	}
}

// Custom (non-default) weights: effort still within [0, w_σ + w_τ].
func TestQuickCustomWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			MaxSpatial:  1000 + rng.Float64()*50000,
			MaxTemporal: 10 + rng.Float64()*1000,
			WSpatial:    rng.Float64(),
			WTemporal:   rng.Float64(),
		}
		if p.Validate() != nil {
			return true // skip degenerate weight draws
		}
		a, b := randSample(rng), randSample(rng)
		e := p.SampleEffort(a, b, 1, 1)
		return e >= 0 && e <= p.WSpatial+p.WTemporal+1e-12
	}
	if err := quick.Check(f, quickCfg(9)); err != nil {
		t.Error(err)
	}
}

// MergeFingerprints conserves members for random pairs.
func TestQuickMergeMembersConserved(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randFingerprint(rng, "a", 1+rng.Intn(10))
		b := randFingerprint(rng, "b", 1+rng.Intn(10))
		m := MergeFingerprints(p, a, b, MergeOptions{})
		if m.Count != 2 || len(m.Members) != 2 {
			return false
		}
		seen := map[string]bool{}
		for _, id := range m.Members {
			seen[id] = true
		}
		return seen["a"] && seen["b"]
	}
	if err := quick.Check(f, quickCfg(10)); err != nil {
		t.Error(err)
	}
}
