package core

// Reshape resolves temporal overlaps among a fingerprint's samples
// (Sec. 6.2, Fig. 6b). Merging driven by spatial proximity can produce
// samples whose time intervals overlap while referring to different
// areas — formally correct but hard to analyze. Reshape replaces every
// maximal run of temporally overlapping samples with a single sample
// covering their union in time, whose spatial box is the union of the
// overlapping samples' boxes (Eqs. 12-13 applied across the run).
//
// The input must be sorted by interval start time (as Fingerprint
// maintains); the output is sorted, has pairwise non-overlapping time
// intervals, covers every input sample, and preserves total weight.
// Reshape trades spatial granularity for temporal legibility, exactly as
// the paper describes.
func Reshape(samples []Sample) []Sample {
	if len(samples) <= 1 {
		out := make([]Sample, len(samples))
		copy(out, samples)
		return out
	}
	out := make([]Sample, 0, len(samples))
	cur := samples[0]
	for _, s := range samples[1:] {
		if s.OverlapsTime(cur) {
			cur = MergeSamples(cur, s)
			continue
		}
		out = append(out, cur)
		cur = s
	}
	out = append(out, cur)
	return out
}

// CountTemporalOverlaps returns the number of sample pairs whose time
// intervals overlap, a diagnostic used by the reshape ablation.
func CountTemporalOverlaps(samples []Sample) int {
	var n int
	for i := range samples {
		for j := i + 1; j < len(samples); j++ {
			if samples[i].OverlapsTime(samples[j]) {
				n++
			}
		}
	}
	return n
}
