// Package core implements the paper's contribution: the mobile
// fingerprint model (Sec. 2.1), the anonymizability measure — sample
// stretch effort, fingerprint stretch effort and k-gap (Sec. 4, Eqs.
// 1-11) — and the GLOVE k-anonymization algorithm with specialized
// generalization, reshaping and suppression (Sec. 6, Alg. 1, Eqs. 12-13).
//
// Conventions: spatial coordinates are meters on the projected plane
// (see internal/geo), temporal coordinates are minutes since the dataset
// epoch. A sample is the spatiotemporal rectangle
// σ = (x, dx, y, dy), τ = (t, dt): the subscriber was somewhere within
// the spatial box at some instant within [t, t+dt].
package core

import (
	"fmt"
	"math"
)

// Sample is one spatiotemporal sample of a mobile fingerprint. Original
// (maximum-granularity) samples have DX = DY = 100 m and DT = 1 min; the
// GLOVE generalization only ever grows these extents.
type Sample struct {
	X  float64 // west boundary, meters
	DX float64 // east-west extent, meters (>= 0)
	Y  float64 // south boundary, meters
	DY float64 // north-south extent, meters (>= 0)
	T  float64 // interval start, minutes since dataset epoch
	DT float64 // interval extent, minutes (>= 0)

	// Weight is the number of original (ungeneralized) samples this
	// sample stands for. Originals have Weight 1; merging sums weights.
	// It drives the suppression accounting of Table 2.
	Weight int
}

// NewSample returns an original sample of one grid cell and one time
// unit, with Weight 1.
func NewSample(x, y float64, cellSize float64, t float64, timeUnit float64) Sample {
	return Sample{X: x, DX: cellSize, Y: y, DY: cellSize, T: t, DT: timeUnit, Weight: 1}
}

// Validate checks structural sanity: finite fields, non-negative extents,
// positive weight.
func (s Sample) Validate() error {
	for _, v := range [...]float64{s.X, s.DX, s.Y, s.DY, s.T, s.DT} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: non-finite sample field in %+v", s)
		}
	}
	if s.DX < 0 || s.DY < 0 || s.DT < 0 {
		return fmt.Errorf("core: negative extent in sample %+v", s)
	}
	if s.Weight < 1 {
		return fmt.Errorf("core: sample weight %d < 1", s.Weight)
	}
	return nil
}

// coverEps absorbs floating-point rounding in coverage checks: storing
// boxes as (origin, extent) makes min + (max-min) land one ulp short of
// max occasionally. One micrometre / microminute is far below any
// physical significance at the 100 m / 1 min data granularity.
const coverEps = 1e-6

// Covers reports whether s spatially and temporally contains o (within
// floating-point tolerance): the record-level truthfulness relation
// (PPDP principle P2) — a generalized sample must cover every original
// sample it stands for.
func (s Sample) Covers(o Sample) bool {
	return s.X <= o.X+coverEps && s.X+s.DX >= o.X+o.DX-coverEps &&
		s.Y <= o.Y+coverEps && s.Y+s.DY >= o.Y+o.DY-coverEps &&
		s.T <= o.T+coverEps && s.T+s.DT >= o.T+o.DT-coverEps
}

// SpatialSpan returns the larger spatial extent of the sample, the
// "position accuracy" the paper plots in Figs. 7-11.
func (s Sample) SpatialSpan() float64 { return math.Max(s.DX, s.DY) }

// TemporalSpan returns the temporal extent, the "time accuracy".
func (s Sample) TemporalSpan() float64 { return s.DT }

// OverlapsTime reports whether the time intervals of the two samples
// intersect in more than a single point.
func (s Sample) OverlapsTime(o Sample) bool {
	return s.T < o.T+o.DT && o.T < s.T+s.DT
}

// MergeSamples generalizes two samples into the minimal sample covering
// both (Eqs. 12-13): each boundary is stretched outward just enough. The
// weight of the result is the sum of the input weights. Merging more than
// two samples is done iteratively; the operation is associative and
// commutative on the geometry.
func MergeSamples(a, b Sample) Sample {
	x := math.Min(a.X, b.X)
	y := math.Min(a.Y, b.Y)
	t := math.Min(a.T, b.T)
	return Sample{
		X:      x,
		DX:     math.Max(a.X+a.DX, b.X+b.DX) - x,
		Y:      y,
		DY:     math.Max(a.Y+a.DY, b.Y+b.DY) - y,
		T:      t,
		DT:     math.Max(a.T+a.DT, b.T+b.DT) - t,
		Weight: a.Weight + b.Weight,
	}
}

func (s Sample) String() string {
	return fmt.Sprintf("σ=[%.0f+%.0f, %.0f+%.0f]m τ=[%.1f+%.1f]min w=%d",
		s.X, s.DX, s.Y, s.DY, s.T, s.DT, s.Weight)
}
