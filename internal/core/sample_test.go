package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSample produces a bounded random sample for property tests:
// positions within a ~100 km square, times within two weeks.
func randSample(rng *rand.Rand) Sample {
	return Sample{
		X:      rng.Float64() * 1e5,
		DX:     rng.Float64() * 5e3,
		Y:      rng.Float64() * 1e5,
		DY:     rng.Float64() * 5e3,
		T:      rng.Float64() * 14 * 24 * 60,
		DT:     rng.Float64() * 600,
		Weight: 1 + rng.Intn(5),
	}
}

func TestNewSample(t *testing.T) {
	s := NewSample(1000, 2000, 100, 720, 1)
	if s.X != 1000 || s.Y != 2000 || s.DX != 100 || s.DY != 100 || s.T != 720 || s.DT != 1 {
		t.Errorf("NewSample = %+v", s)
	}
	if s.Weight != 1 {
		t.Errorf("Weight = %d, want 1", s.Weight)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSampleValidate(t *testing.T) {
	good := NewSample(0, 0, 100, 0, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid sample rejected: %v", err)
	}
	bad := []Sample{
		{X: math.NaN(), Weight: 1},
		{DX: -1, Weight: 1},
		{DY: -0.5, Weight: 1},
		{DT: -1, Weight: 1},
		{T: math.Inf(1), Weight: 1},
		{Weight: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sample %d accepted: %+v", i, s)
		}
	}
}

func TestSampleCovers(t *testing.T) {
	outer := Sample{X: 0, DX: 1000, Y: 0, DY: 1000, T: 0, DT: 60, Weight: 1}
	cases := []struct {
		in   Sample
		want bool
	}{
		{Sample{X: 100, DX: 100, Y: 100, DY: 100, T: 10, DT: 5, Weight: 1}, true},
		{outer, true}, // covers itself
		{Sample{X: -1, DX: 100, Y: 0, DY: 100, T: 0, DT: 1, Weight: 1}, false},  // west overflow
		{Sample{X: 950, DX: 100, Y: 0, DY: 100, T: 0, DT: 1, Weight: 1}, false}, // east overflow
		{Sample{X: 0, DX: 100, Y: 0, DY: 100, T: 59, DT: 2, Weight: 1}, false},  // time overflow
	}
	for i, c := range cases {
		if got := outer.Covers(c.in); got != c.want {
			t.Errorf("case %d: Covers = %v, want %v", i, got, c.want)
		}
	}
}

func TestMergeSamplesCoversBoth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		a, b := randSample(rng), randSample(rng)
		m := MergeSamples(a, b)
		return m.Covers(a) && m.Covers(b) && m.Weight == a.Weight+b.Weight
	}
	for i := 0; i < 2000; i++ {
		if !f() {
			t.Fatal("merged sample does not cover inputs")
		}
	}
}

func TestMergeSamplesMinimal(t *testing.T) {
	// Shrinking any boundary of the merged sample must uncover an input:
	// the generalization is the minimal one (specialized generalization).
	rng := rand.New(rand.NewSource(7))
	const eps = 1e-3 // above the coverage tolerance, below data granularity
	for i := 0; i < 500; i++ {
		a, b := randSample(rng), randSample(rng)
		m := MergeSamples(a, b)
		shrunk := []Sample{
			{X: m.X + eps, DX: m.DX - eps, Y: m.Y, DY: m.DY, T: m.T, DT: m.DT, Weight: m.Weight},
			{X: m.X, DX: m.DX - eps, Y: m.Y, DY: m.DY, T: m.T, DT: m.DT, Weight: m.Weight},
			{X: m.X, DX: m.DX, Y: m.Y + eps, DY: m.DY - eps, T: m.T, DT: m.DT, Weight: m.Weight},
			{X: m.X, DX: m.DX, Y: m.Y, DY: m.DY - eps, T: m.T, DT: m.DT, Weight: m.Weight},
			{X: m.X, DX: m.DX, Y: m.Y, DY: m.DY, T: m.T + eps, DT: m.DT - eps, Weight: m.Weight},
			{X: m.X, DX: m.DX, Y: m.Y, DY: m.DY, T: m.T, DT: m.DT - eps, Weight: m.Weight},
		}
		for j, s := range shrunk {
			if s.Covers(a) && s.Covers(b) {
				t.Fatalf("iteration %d: shrunk variant %d still covers both inputs", i, j)
			}
		}
	}
}

func TestMergeSamplesCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		a, b := randSample(rng), randSample(rng)
		if MergeSamples(a, b) != MergeSamples(b, a) {
			t.Fatal("MergeSamples is not commutative")
		}
	}
}

func TestMergeSamplesAssociativeGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a, b, c := randSample(rng), randSample(rng), randSample(rng)
		ab := MergeSamples(MergeSamples(a, b), c)
		bc := MergeSamples(a, MergeSamples(b, c))
		if math.Abs(ab.X-bc.X) > 1e-9 || math.Abs(ab.DX-bc.DX) > 1e-9 ||
			math.Abs(ab.Y-bc.Y) > 1e-9 || math.Abs(ab.DY-bc.DY) > 1e-9 ||
			math.Abs(ab.T-bc.T) > 1e-9 || math.Abs(ab.DT-bc.DT) > 1e-9 {
			t.Fatal("MergeSamples geometry is not associative")
		}
		if ab.Weight != bc.Weight {
			t.Fatal("MergeSamples weight is not associative")
		}
	}
}

func TestMergeSamplesIdempotentGeometry(t *testing.T) {
	a := Sample{X: 10, DX: 100, Y: 20, DY: 200, T: 30, DT: 40, Weight: 3}
	m := MergeSamples(a, a)
	if m.X != a.X || m.DX != a.DX || m.Y != a.Y || m.DY != a.DY || m.T != a.T || m.DT != a.DT {
		t.Errorf("MergeSamples(a, a) changed geometry: %+v", m)
	}
	if m.Weight != 6 {
		t.Errorf("MergeSamples(a, a).Weight = %d, want 6", m.Weight)
	}
}

func TestSpansAndOverlap(t *testing.T) {
	s := Sample{DX: 300, DY: 100, T: 10, DT: 20, Weight: 1}
	if s.SpatialSpan() != 300 {
		t.Errorf("SpatialSpan = %g", s.SpatialSpan())
	}
	if s.TemporalSpan() != 20 {
		t.Errorf("TemporalSpan = %g", s.TemporalSpan())
	}
	o := Sample{T: 29, DT: 5, Weight: 1}
	if !s.OverlapsTime(o) {
		t.Error("overlapping intervals reported disjoint")
	}
	o2 := Sample{T: 30, DT: 5, Weight: 1}
	if s.OverlapsTime(o2) {
		t.Error("touching intervals reported overlapping")
	}
}

func TestSampleStringStable(t *testing.T) {
	s := NewSample(100, 200, 100, 65, 1)
	if got := s.String(); got == "" {
		t.Error("empty String()")
	}
}

func TestQuickCoversTransitive(t *testing.T) {
	// If a covers b and b covers c then a covers c.
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randSample(rng)
		b := MergeSamples(c, randSample(rng))
		a := MergeSamples(b, randSample(rng))
		return a.Covers(b) && b.Covers(c) && a.Covers(c)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
