package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// WindowedSession carries warm engine state across the windows of a
// continuous-release run. A cold GLOVE run allocates its working set,
// its fpView column arena, and its pair-selection index from scratch;
// consecutive windows of a feed tear all of that down and rebuild it
// even though the structures are shaped almost identically. A session
// recycles them — slices grow and are never shrunk, the sparse grid
// keeps its cells and candidate-list capacities, the dense matrix keeps
// its quadratic backing — so in steady state a window commit allocates
// little beyond its own output.
//
// Warm state never changes output: every recycled structure is reset to
// the observational equivalent of a cold build before use (pinned by
// TestSessionWarmEqualsCold, byte-identical datasets). Sessions are not
// safe for concurrent use; a pipeline running shards in parallel gives
// each worker its own session via a SessionPool.
//
// Two modes:
//
//   - Anonymize runs one window at a time, like AnonymizeContext but
//     against the recycled storage.
//   - Push/Commit stage one window incrementally: each Push appends a
//     batch of fingerprints to the open window and extends the index
//     under the append (the sparse index inserts the new fingerprints
//     into existing candidate lists instead of rebuilding); Commit runs
//     the merge loop over everything staged. The committed output is
//     byte-identical to a cold run over the concatenated batches
//     (TestSessionStagedEqualsCold), because the per-slot list
//     invariant the sparse index maintains is preserved by extension
//     and MinPair is exact under it for any fixed slot order.
type WindowedSession struct {
	ws     *workingSet
	sparse *sparseIndex
	dense  *denseIndex

	// offsets/arena are the bulk view-construction scratch recycled
	// across windows; during a staged run each Push past the first gets
	// a fresh arena instead (the earlier pushes' views still own theirs).
	offsets []int
	arena   []float64

	// Staged-run state; nil when no window is open.
	open      *gloveState
	openStats *GloveStats
}

// NewWindowedSession returns an empty session; storage is grown lazily
// by the first run.
func NewWindowedSession() *WindowedSession { return &WindowedSession{} }

// Anonymize runs one window against the session's warm storage,
// byte-identical to AnonymizeContext over the same input. A nil session
// degrades to the cold path, as does a chunked plan (chunked blocks own
// their partitioning; warm reuse is a single-run optimization).
func (s *WindowedSession) Anonymize(ctx context.Context, d *Dataset, opt AnonymizeOptions) (*Dataset, *GloveStats, error) {
	if s != nil && s.open != nil {
		return nil, nil, fmt.Errorf("core: session has an open staged window; Commit or Abort it first")
	}
	plan, err := PlanFor(d.Len(), opt)
	if err != nil {
		return nil, nil, err
	}
	if s == nil || plan.Strategy == StrategyChunked {
		return RunPlan(ctx, d, opt, plan)
	}
	return gloveRun(ctx, d, opt.Glove, s)
}

// Push stages a batch of fingerprints into the session's open window,
// opening one if necessary. The first Push of a window fixes its
// options; later pushes append their fingerprints as new slots and
// extend the pair-selection index under the append. Options resolving
// to IndexAuto use the sparse index — the one with an incremental
// extension path (the dense matrix extends by warm rebuild, acceptable
// only at its bounded scale, and must be requested explicitly).
//
// The slot order of the staged run is the push order; Commit's output
// is byte-identical to a cold run over the batches concatenated in that
// order. Batches are treated as disjoint fingerprint sets — a
// subscriber split across batches is two fingerprints, exactly as it
// would be in the concatenated dataset.
func (s *WindowedSession) Push(ctx context.Context, d *Dataset, opt GloveOptions) error {
	if s == nil {
		return fmt.Errorf("core: Push on a nil session")
	}
	if err := d.Validate(); err != nil {
		return err
	}
	if s.open == nil {
		return s.openStaged(ctx, d, opt)
	}
	st := s.open
	base := st.ws.n
	start := time.Now()
	st.ws.extend(base + d.Len())
	s.offsets, _ = st.stage(d, base, s.offsets, nil)
	if err := st.idx.(extendableIndex).Extend(ctx, base); err != nil {
		s.Abort()
		return err
	}
	s.openStats.InputFingerprints += d.Len()
	s.openStats.InputUsers += d.Users()
	s.openStats.InputSamples += totalWeight(d)
	s.openStats.IndexBuildNanos += time.Since(start).Nanoseconds()
	return nil
}

// openStaged begins a staged window with the first batch.
func (s *WindowedSession) openStaged(ctx context.Context, d *Dataset, opt GloveOptions) error {
	opt = opt.withDefaults()
	if opt.K < 2 {
		return fmt.Errorf("core: glove k = %d, need k >= 2", opt.K)
	}
	if err := opt.Params.Validate(); err != nil {
		return err
	}
	if opt.Index == "" || opt.Index == IndexAuto {
		opt.Index = IndexSparse
	}
	if _, err := opt.resolveIndex(d.Len()); err != nil {
		return err
	}
	stats := &GloveStats{
		InputFingerprints: d.Len(),
		InputUsers:        d.Users(),
		InputSamples:      totalWeight(d),
	}
	start := time.Now()
	st, err := newGloveState(ctx, d, opt, s)
	if err != nil {
		return err
	}
	stats.IndexBuildNanos = time.Since(start).Nanoseconds()
	s.open, s.openStats = st, stats
	return nil
}

// Commit closes the open staged window: it runs the merge loop over
// everything pushed and returns the anonymized window. The cumulative
// user count must reach K — the same precondition the one-shot path
// checks up front, deferred here because it is only known at close.
// The session is ready for the next window afterwards, warm.
func (s *WindowedSession) Commit(ctx context.Context) (*Dataset, *GloveStats, error) {
	if s == nil || s.open == nil {
		return nil, nil, fmt.Errorf("core: Commit without an open staged window")
	}
	st, stats := s.open, s.openStats
	s.open, s.openStats = nil, nil
	if stats.InputUsers < st.opt.K {
		return nil, nil, fmt.Errorf("core: dataset hides %d users, cannot %d-anonymize", stats.InputUsers, st.opt.K)
	}
	return finishRun(ctx, st, stats)
}

// Abort discards the open staged window, if any, leaving the session
// reusable (the next run's reset clears whatever the aborted window
// staged).
func (s *WindowedSession) Abort() {
	if s != nil {
		s.open, s.openStats = nil, nil
	}
}

// extendableIndex is the incremental-append seam of EffortIndex: Extend
// incorporates freshly staged slots [from, ws.n) into a built index.
// Both implementations provide it.
type extendableIndex interface {
	Extend(ctx context.Context, from int) error
}

// sessionEffortIndex returns the index for a (possibly warm) run:
// without a session it builds a fresh one; with a session it recycles
// the matching implementation's storage, re-arming its tunables from
// the current options.
func sessionEffortIndex(sess *WindowedSession, ws *workingSet, opt GloveOptions) EffortIndex {
	if sess == nil {
		return newEffortIndex(ws, opt)
	}
	if opt.Index == IndexSparse {
		if sess.sparse == nil {
			sess.sparse = newSparseIndex(ws, opt.IndexNeighbors)
		}
		sess.sparse.ws = ws
		sess.sparse.m = clampIndexNeighbors(opt.IndexNeighbors)
		sess.sparse.cw = ws.params.MaxSpatial / 2
		return sess.sparse
	}
	if sess.dense == nil {
		sess.dense = newDenseIndex(ws, opt.NaiveMinPair)
	}
	sess.dense.ws = ws
	sess.dense.naive = opt.NaiveMinPair
	return sess.dense
}

// SessionPool recycles WindowedSessions across the shard runs of a
// streaming pipeline: each shard worker of window w+1 picks up the warm
// state a worker of window w left behind. A nil pool (and the nil
// sessions it then vends) degrades every call to the cold path, so
// callers thread one pointer through unconditionally.
type SessionPool struct {
	mu   sync.Mutex
	free []*WindowedSession
}

// NewSessionPool returns an empty pool.
func NewSessionPool() *SessionPool { return &SessionPool{} }

// Get takes a warm session from the pool, creating a fresh one when the
// pool is empty. Returns nil on a nil pool.
func (p *SessionPool) Get() *WindowedSession {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return s
	}
	return NewWindowedSession()
}

// Put returns a session for reuse. Sessions with an open staged window
// are aborted first — a cancelled mid-window run must not poison the
// next borrower.
func (p *SessionPool) Put(s *WindowedSession) {
	if p == nil || s == nil {
		return
	}
	s.Abort()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = append(p.free, s)
}
