package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// zeroTimings clears the wall-clock fields so otherwise-deterministic
// stats compare exactly.
func zeroTimings(s *GloveStats) *GloveStats {
	s.IndexBuildNanos = 0
	s.MergeNanos = 0
	return s
}

// zeroCost additionally clears the kernel cost counters: an incremental
// index build evaluates a different set of pairs than a cold build, so
// staged-vs-cold comparisons pin every output-determining field but not
// the pruning accounting.
func zeroCost(s *GloveStats) *GloveStats {
	zeroTimings(s)
	s.EffortKernelCalls = 0
	s.EffortKernelPruned = 0
	return s
}

// A warm session run over every window of a feed must be byte-identical
// to independent cold runs — recycled storage changes where slices
// live, never what the merge loop observes. Windows vary in size (grow
// and shrink) to exercise both the cap-reuse and the realloc paths of
// growKeep, for both index implementations.
func TestSessionWarmEqualsCold(t *testing.T) {
	for _, kind := range []IndexKind{IndexDense, IndexSparse} {
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(500))
			sizes := []int{30, 12, 45, 45, 8, 27}
			windows := make([]*Dataset, len(sizes))
			for i, n := range sizes {
				windows[i] = randDataset(rng, n, 6)
			}
			opt := AnonymizeOptions{Glove: GloveOptions{
				K: 3, Index: kind, IndexNeighbors: 3, Workers: 2,
			}}

			sess := NewWindowedSession()
			for w, d := range windows {
				cold, coldStats, err := AnonymizeContext(t.Context(), d, opt)
				if err != nil {
					t.Fatalf("window %d cold: %v", w, err)
				}
				warm, warmStats, err := sess.Anonymize(t.Context(), d, opt)
				if err != nil {
					t.Fatalf("window %d warm: %v", w, err)
				}
				datasetsEqual(t, fmt.Sprintf("window %d", w), cold, warm)
				if *zeroTimings(coldStats) != *zeroTimings(warmStats) {
					t.Fatalf("window %d stats differ:\ncold %+v\nwarm %+v", w, coldStats, warmStats)
				}
			}
		})
	}
}

// A nil session must behave exactly like the cold entry point — service
// code threads one session pointer through unconditionally.
func TestSessionNilDegradesToCold(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	d := randDataset(rng, 20, 5)
	opt := AnonymizeOptions{Glove: GloveOptions{K: 2}}
	cold, _, err := AnonymizeContext(t.Context(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	var sess *WindowedSession
	warm, _, err := sess.Anonymize(t.Context(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "nil session", cold, warm)
}

// A chunked plan through a session falls back to the cold chunked
// executor rather than trying to keep warm state across blocks.
func TestSessionChunkedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	d := randDataset(rng, 40, 4)
	opt := AnonymizeOptions{
		Strategy:  StrategyChunked,
		ChunkSize: 10,
		Glove:     GloveOptions{K: 2},
	}
	cold, _, err := AnonymizeContext(t.Context(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewWindowedSession()
	warm, _, err := sess.Anonymize(t.Context(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "chunked", cold, warm)
}

// Staged Push/Commit must be byte-identical to a cold run over the
// batches concatenated in push order — the sparse index's extension
// path (and the dense warm rebuild) may not change the merge sequence.
// Batch layouts cover single-batch, even splits, ragged splits, and a
// degenerate 1-fingerprint tail.
func TestSessionStagedEqualsCold(t *testing.T) {
	for _, kind := range []IndexKind{IndexSparse, IndexDense} {
		t.Run(string(kind), func(t *testing.T) {
			rng := rand.New(rand.NewSource(600))
			d := randDataset(rng, 48, 6)
			opt := GloveOptions{K: 3, Index: kind, IndexNeighbors: 3, Workers: 2}
			cold, coldStats, err := Glove(d, opt)
			if err != nil {
				t.Fatal(err)
			}

			for _, cuts := range [][]int{
				{48},
				{24, 24},
				{16, 16, 16},
				{5, 30, 12, 1},
				{47, 1},
			} {
				sess := NewWindowedSession()
				// Two rounds through the same session: round 1 runs on
				// fresh storage, round 2 on recycled storage left warm by
				// round 1 — both must match the cold run.
				for round := 0; round < 2; round++ {
					at := 0
					for _, c := range cuts {
						batch := &Dataset{Fingerprints: d.Fingerprints[at : at+c]}
						if err := sess.Push(t.Context(), batch, opt); err != nil {
							t.Fatalf("cuts %v round %d push at %d: %v", cuts, round, at, err)
						}
						at += c
					}
					staged, stagedStats, err := sess.Commit(t.Context())
					if err != nil {
						t.Fatalf("cuts %v round %d commit: %v", cuts, round, err)
					}
					datasetsEqual(t, fmt.Sprintf("cuts %v round %d", cuts, round), cold, staged)
					if *zeroCost(coldStats) != *zeroCost(stagedStats) {
						t.Fatalf("cuts %v round %d stats differ:\ncold   %+v\nstaged %+v",
							cuts, round, coldStats, stagedStats)
					}
				}
			}
		})
	}
}

// IndexAuto staged runs resolve to the sparse index (the incremental
// one) regardless of size, and still match cold output.
func TestSessionStagedAutoUsesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	d := randDataset(rng, 20, 4)
	opt := GloveOptions{K: 2}
	cold, _, err := Glove(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewWindowedSession()
	if err := sess.Push(t.Context(), &Dataset{Fingerprints: d.Fingerprints[:10]}, opt); err != nil {
		t.Fatal(err)
	}
	if sess.open.opt.Index != IndexSparse {
		t.Fatalf("staged auto resolved to %q, want sparse", sess.open.opt.Index)
	}
	if err := sess.Push(t.Context(), &Dataset{Fingerprints: d.Fingerprints[10:]}, opt); err != nil {
		t.Fatal(err)
	}
	staged, _, err := sess.Commit(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "auto staged", cold, staged)
}

func TestSessionStagedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	d := randDataset(rng, 6, 4)
	opt := GloveOptions{K: 4}

	t.Run("commit without open window", func(t *testing.T) {
		if _, _, err := NewWindowedSession().Commit(t.Context()); err == nil {
			t.Fatal("no error")
		}
	})
	t.Run("commit below k", func(t *testing.T) {
		sess := NewWindowedSession()
		if err := sess.Push(t.Context(), &Dataset{Fingerprints: d.Fingerprints[:2]}, opt); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Commit(t.Context()); err == nil {
			t.Fatal("committed 2 users under k=4")
		}
	})
	t.Run("anonymize with open window", func(t *testing.T) {
		sess := NewWindowedSession()
		if err := sess.Push(t.Context(), d, opt); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sess.Anonymize(t.Context(), d, AnonymizeOptions{Glove: opt}); err == nil {
			t.Fatal("no error")
		}
		sess.Abort()
		if _, _, err := sess.Anonymize(t.Context(), d, AnonymizeOptions{Glove: opt}); err != nil {
			t.Fatalf("after abort: %v", err)
		}
	})
	t.Run("staged sparse rejects naive", func(t *testing.T) {
		sess := NewWindowedSession()
		err := sess.Push(t.Context(), d, GloveOptions{K: 2, Index: IndexSparse, NaiveMinPair: true})
		if err == nil {
			t.Fatal("no error")
		}
	})
	t.Run("push on nil session", func(t *testing.T) {
		var sess *WindowedSession
		if err := sess.Push(t.Context(), d, opt); err == nil {
			t.Fatal("no error")
		}
	})
}

// An abort mid-window leaves the session reusable, and a pool Put
// aborts any open window so a cancelled shard cannot poison the next
// borrower.
func TestSessionPoolRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	d := randDataset(rng, 18, 4)
	opt := AnonymizeOptions{Glove: GloveOptions{K: 2}}
	cold, _, err := AnonymizeContext(t.Context(), d, opt)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewSessionPool()
	s1 := pool.Get()
	if s1 == nil {
		t.Fatal("nil session from non-nil pool")
	}
	if err := s1.Push(t.Context(), d, opt.Glove); err != nil {
		t.Fatal(err)
	}
	pool.Put(s1) // open window: Put must abort it
	s2 := pool.Get()
	if s2 != s1 {
		t.Fatal("pool did not recycle the session")
	}
	out, _, err := s2.Anonymize(t.Context(), d, opt)
	if err != nil {
		t.Fatalf("recycled session: %v", err)
	}
	datasetsEqual(t, "recycled", cold, out)

	var nilPool *SessionPool
	if s := nilPool.Get(); s != nil {
		t.Fatal("nil pool vended a session")
	}
	nilPool.Put(nil) // must not panic
}
