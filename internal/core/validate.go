package core

import "fmt"

// ValidateKAnonymity verifies that every fingerprint in the published
// dataset hides at least k subscribers, that member lists are consistent,
// and that no subscriber appears in two groups. This is the privacy
// criterion of Sec. 2.4: each subscriber is indistinguishable from at
// least k-1 others because the whole group shares one published
// fingerprint.
func ValidateKAnonymity(d *Dataset, k int) error {
	seen := make(map[string]string) // member -> group ID
	for _, f := range d.Fingerprints {
		if f.Count < k {
			return fmt.Errorf("core: fingerprint %s hides %d < %d users", f.ID, f.Count, k)
		}
		if len(f.Members) != f.Count {
			return fmt.Errorf("core: fingerprint %s: count %d but %d members", f.ID, f.Count, len(f.Members))
		}
		for _, m := range f.Members {
			if g, dup := seen[m]; dup {
				return fmt.Errorf("core: subscriber %s in groups %s and %s", m, g, f.ID)
			}
			seen[m] = f.ID
		}
	}
	return nil
}

// TruthfulnessReport quantifies the record-level truthfulness principle
// (PPDP P2): every published sample must generalize locations actually
// visited — equivalently, every original sample must be covered by a
// published sample of its subscriber's group, unless it was suppressed.
type TruthfulnessReport struct {
	Covered    int // original samples covered by their group's published samples
	Suppressed int // original samples with no covering published sample (suppressed)
	MissingFP  int // original subscribers absent from the published dataset
}

// CheckTruthfulness compares an original dataset with its published
// anonymization. Subscribers are matched through the Members lists.
func CheckTruthfulness(original, published *Dataset) TruthfulnessReport {
	group := make(map[string]*Fingerprint)
	for _, f := range published.Fingerprints {
		for _, m := range f.Members {
			group[m] = f
		}
	}
	var rep TruthfulnessReport
	for _, of := range original.Fingerprints {
		// Original fingerprints carry one member each; pre-merged inputs
		// share samples, so each member's view is counted separately.
		for _, m := range of.Members {
			g, ok := group[m]
			if !ok {
				rep.MissingFP++
				continue
			}
			for _, s := range of.Samples {
				if coveredBy(s, g.Samples) {
					rep.Covered++
				} else {
					rep.Suppressed++
				}
			}
		}
	}
	return rep
}

func coveredBy(s Sample, published []Sample) bool {
	for _, p := range published {
		if p.Covers(s) {
			return true
		}
	}
	return false
}

// MatchingFingerprints implements the record linkage attack of Sec. 2.3
// under the strongest adversary: one who knows the target's complete
// original trajectory. It returns the fingerprints of the published
// dataset consistent with that knowledge, i.e. those whose samples cover
// every known sample. On raw data the match is typically unique (the
// uniqueness problem); on GLOVE output at least one group hiding >= k
// subscribers matches, defeating the attack.
func MatchingFingerprints(published *Dataset, known []Sample) []*Fingerprint {
	var out []*Fingerprint
	for _, f := range published.Fingerprints {
		all := true
		for _, s := range known {
			if !coveredBy(s, f.Samples) {
				all = false
				break
			}
		}
		if all {
			out = append(out, f)
		}
	}
	return out
}

// MinMatchCrowd returns the smallest number of subscribers hidden across
// the fingerprints matching the known trajectory; 0 means no match (the
// trajectory was suppressed beyond recognition). A value >= k certifies
// that the attack cannot narrow the target below a crowd of k.
func MinMatchCrowd(published *Dataset, known []Sample) int {
	matches := MatchingFingerprints(published, known)
	if len(matches) == 0 {
		return 0
	}
	var total int
	for _, f := range matches {
		total += f.Count
	}
	return total
}
