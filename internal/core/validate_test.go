package core

import (
	"math/rand"
	"testing"
)

func TestValidateKAnonymity(t *testing.T) {
	good := NewDataset([]*Fingerprint{
		{ID: "g1", Samples: []Sample{NewSample(0, 0, 100, 0, 1)}, Count: 2, Members: []string{"a", "b"}},
		{ID: "g2", Samples: []Sample{NewSample(0, 0, 100, 0, 1)}, Count: 3, Members: []string{"c", "d", "e"}},
	})
	if err := ValidateKAnonymity(good, 2); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	if err := ValidateKAnonymity(good, 3); err == nil {
		t.Error("count-2 group passed k=3 validation")
	}

	inconsistent := NewDataset([]*Fingerprint{
		{ID: "g", Count: 2, Members: []string{"a"}},
	})
	if err := ValidateKAnonymity(inconsistent, 2); err == nil {
		t.Error("inconsistent member list accepted")
	}

	dup := NewDataset([]*Fingerprint{
		{ID: "g1", Count: 2, Members: []string{"a", "b"}},
		{ID: "g2", Count: 2, Members: []string{"b", "c"}},
	})
	if err := ValidateKAnonymity(dup, 2); err == nil {
		t.Error("duplicated subscriber accepted")
	}
}

func TestCheckTruthfulnessDetectsFabrication(t *testing.T) {
	orig := NewDataset([]*Fingerprint{
		NewFingerprint("a", []Sample{NewSample(0, 0, 100, 10, 1)}),
	})
	// Published fingerprint that does NOT cover the original sample.
	published := NewDataset([]*Fingerprint{
		{
			ID:      "g",
			Samples: []Sample{NewSample(5000, 5000, 100, 10, 1)},
			Count:   1,
			Members: []string{"a"},
		},
	})
	rep := CheckTruthfulness(orig, published)
	if rep.Covered != 0 || rep.Suppressed != 1 {
		t.Errorf("report = %+v, want 0 covered / 1 suppressed", rep)
	}
}

func TestCheckTruthfulnessMissing(t *testing.T) {
	orig := NewDataset([]*Fingerprint{
		NewFingerprint("a", []Sample{NewSample(0, 0, 100, 10, 1)}),
	})
	published := NewDataset(nil)
	rep := CheckTruthfulness(orig, published)
	if rep.MissingFP != 1 {
		t.Errorf("MissingFP = %d, want 1", rep.MissingFP)
	}
}

func TestMatchingFingerprintsAttack(t *testing.T) {
	// Raw data: the adversary pins the target uniquely.
	rng := rand.New(rand.NewSource(50))
	d := randDataset(rng, 20, 8)
	target := d.Fingerprints[7]
	matches := MatchingFingerprints(d, target.Samples)
	if len(matches) != 1 || matches[0].ID != target.ID {
		t.Fatalf("raw-data attack matched %d fingerprints", len(matches))
	}
	if crowd := MinMatchCrowd(d, target.Samples); crowd != 1 {
		t.Fatalf("raw-data crowd = %d, want 1 (unique)", crowd)
	}

	// After GLOVE, the same knowledge matches a crowd of >= k.
	out, _, err := Glove(d, GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	crowd := MinMatchCrowd(out, target.Samples)
	if crowd < 2 {
		t.Fatalf("GLOVE'd crowd = %d, want >= 2", crowd)
	}
}

func TestMinMatchCrowdNoMatch(t *testing.T) {
	d := NewDataset([]*Fingerprint{
		NewFingerprint("a", []Sample{NewSample(0, 0, 100, 10, 1)}),
	})
	known := []Sample{NewSample(90000, 0, 100, 10, 1)}
	if crowd := MinMatchCrowd(d, known); crowd != 0 {
		t.Errorf("crowd = %d, want 0", crowd)
	}
}

func TestFingerprintValidate(t *testing.T) {
	good := NewFingerprint("a", []Sample{NewSample(0, 0, 100, 5, 1), NewSample(0, 0, 100, 1, 1)})
	if err := good.Validate(); err != nil {
		t.Errorf("valid fingerprint rejected: %v", err)
	}
	if good.Samples[0].T > good.Samples[1].T {
		t.Error("NewFingerprint did not sort samples")
	}

	bad := []*Fingerprint{
		{ID: "", Count: 1, Members: []string{""}, Samples: []Sample{NewSample(0, 0, 100, 0, 1)}},
		{ID: "x", Count: 0, Members: nil, Samples: []Sample{NewSample(0, 0, 100, 0, 1)}},
		{ID: "x", Count: 2, Members: []string{"x"}, Samples: []Sample{NewSample(0, 0, 100, 0, 1)}},
		{ID: "x", Count: 1, Members: []string{"x"}, Samples: nil},
		{ID: "x", Count: 1, Members: []string{"x"}, Samples: []Sample{{DX: -1, Weight: 1}}},
		{ID: "x", Count: 1, Members: []string{"x"}, Samples: []Sample{
			NewSample(0, 0, 100, 10, 1), NewSample(0, 0, 100, 5, 1)}},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad fingerprint %d accepted", i)
		}
	}
}

func TestDatasetValidateAndHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	d := randDataset(rng, 5, 4)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 5 || d.Users() != 5 {
		t.Errorf("Len = %d, Users = %d", d.Len(), d.Users())
	}
	if d.TotalSamples() <= 0 {
		t.Error("TotalSamples <= 0")
	}
	if d.MeanFingerprintLen() <= 0 {
		t.Error("MeanFingerprintLen <= 0")
	}
	if (&Dataset{}).MeanFingerprintLen() != 0 {
		t.Error("empty dataset mean len != 0")
	}

	dup := NewDataset([]*Fingerprint{d.Fingerprints[0], d.Fingerprints[0]})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	d := randDataset(rng, 3, 4)
	c := d.Clone()
	c.Fingerprints[0].Samples[0].X += 999
	c.Fingerprints[0].Members[0] = "mutated"
	if d.Fingerprints[0].Samples[0].X == c.Fingerprints[0].Samples[0].X {
		t.Error("clone shares sample storage")
	}
	if d.Fingerprints[0].Members[0] == "mutated" {
		t.Error("clone shares member storage")
	}
}
