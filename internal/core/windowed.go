package core

import (
	"context"
	"fmt"
)

// Continuous publication anonymizes a record feed as a sequence of
// time-windowed releases instead of one static snapshot. Each window is
// a complete GLOVE run — every release is independently k-anonymous —
// and the windows run through the same planner (PlanFor/RunPlan) as a
// batch job, so a dataset whose span fits a single window produces a
// byte-identical release to a single-shot Anonymize call.

// WindowRelease is the published outcome of one window of a windowed
// run.
type WindowRelease struct {
	// Index is the caller's window position (the cdr.Window index for
	// time-partitioned feeds).
	Index int
	// Plan is the execution plan the auto rules resolved for this
	// window's size.
	Plan Plan
	// Output is the k-anonymized dataset of the window.
	Output *Dataset
	// Stats accounts for this window's run.
	Stats *GloveStats
}

// WindowProgress reports windowed-run progress: window w (0-based
// position in the slice, not the caller's index) has completed done of
// total units. It is invoked from the goroutine running the window.
type WindowProgress func(w, done, total int)

// AnonymizeWindows runs the planned anonymization pipeline independently
// over each window and returns one release per window, in order.
func AnonymizeWindows(windows []*Dataset, opt AnonymizeOptions) ([]WindowRelease, error) {
	return AnonymizeWindowsContext(context.Background(), windows, opt, nil)
}

// AnonymizeWindowsContext is AnonymizeWindows with cooperative
// cancellation and an optional per-window progress hook. Windows run
// sequentially (each window parallelizes internally through its plan);
// when ctx is cancelled, the in-flight window stops and no release is
// returned for it or any later window, so an interrupted run never
// yields a partial release. A window that cannot k-anonymize on its own
// (fewer than opt.Glove.K subscribers) fails the whole run: shipping a
// subset of the promised releases would silently drop a time slice of
// the feed.
func AnonymizeWindowsContext(ctx context.Context, windows []*Dataset, opt AnonymizeOptions, progress WindowProgress) ([]WindowRelease, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("core: windowed run without windows")
	}
	releases := make([]WindowRelease, 0, len(windows))
	for w, d := range windows {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if d.Users() < opt.Glove.K {
			return nil, fmt.Errorf("core: window %d hides %d users, cannot %d-anonymize",
				w, d.Users(), opt.Glove.K)
		}
		plan, err := PlanFor(d.Len(), opt)
		if err != nil {
			return nil, fmt.Errorf("core: window %d: %w", w, err)
		}
		wopt := opt
		if progress != nil {
			wi := w
			wopt.Glove.Progress = func(done, total int) { progress(wi, done, total) }
		}
		out, stats, err := RunPlan(ctx, d, wopt, plan)
		if err != nil {
			return nil, fmt.Errorf("core: window %d: %w", w, err)
		}
		releases = append(releases, WindowRelease{Index: w, Plan: plan, Output: out, Stats: stats})
	}
	return releases, nil
}
