package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// A single-window run must be indistinguishable from a single-shot
// Anonymize over the same dataset: same groups, same samples, same
// stats — the invariant that lets an operator switch a batch pipeline
// to the windowed driver without changing any published byte.
func TestAnonymizeWindowsSingleWindowIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := randDataset(rng, 40, 6)
	opt := AnonymizeOptions{Glove: GloveOptions{K: 2}}

	plain, plainStats, err := Anonymize(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	releases, err := AnonymizeWindows([]*Dataset{d}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(releases) != 1 {
		t.Fatalf("got %d releases, want 1", len(releases))
	}
	if !reflect.DeepEqual(releases[0].Output.Fingerprints, plain.Fingerprints) {
		t.Error("single-window release differs from single-shot run")
	}
	// Wall-clock timing fields are the only non-deterministic stats;
	// zero them so the comparison pins the data-dependent accounting.
	wStats, sStats := *releases[0].Stats, *plainStats
	wStats.IndexBuildNanos, wStats.MergeNanos = 0, 0
	sStats.IndexBuildNanos, sStats.MergeNanos = 0, 0
	if !reflect.DeepEqual(wStats, sStats) {
		t.Errorf("single-window stats differ: %+v vs %+v", wStats, sStats)
	}
}

func TestAnonymizeWindowsEachReleaseAnonymous(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	windows := []*Dataset{
		randDataset(rng, 30, 5),
		randDataset(rng, 20, 4),
		randDataset(rng, 25, 6),
	}
	const k = 3
	var calls []int
	releases, err := AnonymizeWindowsContext(context.Background(), windows,
		AnonymizeOptions{Glove: GloveOptions{K: k}},
		func(w, done, total int) { calls = append(calls, w) })
	if err != nil {
		t.Fatal(err)
	}
	if len(releases) != 3 {
		t.Fatalf("got %d releases, want 3", len(releases))
	}
	for i, rel := range releases {
		if rel.Index != i {
			t.Errorf("release %d has index %d", i, rel.Index)
		}
		if err := ValidateKAnonymity(rel.Output, k); err != nil {
			t.Errorf("release %d: %v", i, err)
		}
		if rel.Output.Users() != windows[i].Users() {
			t.Errorf("release %d hides %d users, want %d",
				i, rel.Output.Users(), windows[i].Users())
		}
		if rel.Plan.Strategy == StrategyAuto {
			t.Errorf("release %d plan not resolved", i)
		}
	}
	// Every window reported progress, in window order.
	seen := map[int]bool{}
	last := -1
	for _, w := range calls {
		if w < last {
			t.Fatalf("progress for window %d after window %d", w, last)
		}
		last = w
		seen[w] = true
	}
	if len(seen) != 3 {
		t.Errorf("progress covered %d windows, want 3", len(seen))
	}
}

func TestAnonymizeWindowsUndersizedWindowFails(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	windows := []*Dataset{randDataset(rng, 20, 4), randDataset(rng, 2, 3)}
	_, err := AnonymizeWindows(windows, AnonymizeOptions{Glove: GloveOptions{K: 3}})
	if err == nil {
		t.Fatal("undersized window accepted")
	}
}

func TestAnonymizeWindowsCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	windows := []*Dataset{randDataset(rng, 30, 5), randDataset(rng, 30, 5)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	releases, err := AnonymizeWindowsContext(ctx, windows,
		AnonymizeOptions{Glove: GloveOptions{K: 2}}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if releases != nil {
		t.Fatal("cancelled run returned releases")
	}
}

// Pin the chunked progress weighting against pre-anonymized inputs: a
// block containing fingerprints that arrive with Count >= K contributes
// only its active fingerprints (plus the build step) to the total, so
// the aggregated fraction ends at exactly 1 and never overshoots.
func TestGloveChunkedProgressWithPreAnonymizedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n, chunk, k = 30, 10, 2
	var fps []*Fingerprint
	active := 0
	for i := 0; i < n; i++ {
		f := randFingerprint(rng, fmt.Sprintf("f%02d", i), 4)
		if i%3 == 0 {
			// Pre-merged group: already anonymized on input.
			f.Count = k
			f.Members = []string{f.ID + "-a", f.ID + "-b"}
		} else {
			active++
		}
		fps = append(fps, f)
	}
	d := NewDataset(fps)
	wantTotal := active + len(spatialBlocks(d, chunk))

	var mu sync.Mutex
	var lastDone, total int
	_, _, err := GloveChunked(d, ChunkedGloveOptions{
		Glove: GloveOptions{
			K: k,
			Progress: func(done, tot int) {
				mu.Lock()
				defer mu.Unlock()
				if done < lastDone {
					t.Errorf("progress went backwards: %d after %d", done, lastDone)
				}
				if done > tot {
					t.Errorf("progress overshoots: %d/%d", done, tot)
				}
				lastDone, total = done, tot
			},
		},
		ChunkSize: chunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Errorf("reported total %d, want %d (active %d + %d blocks)",
			total, wantTotal, active, wantTotal-active)
	}
	if lastDone != total {
		t.Errorf("final progress %d/%d, want completion", lastDone, total)
	}
}
