package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// runGlove anonymizes a profile dataset and returns the published
// dataset, its stats, and the accuracy measurement.
func runGlove(w *Workloads, d *core.Dataset, k int, thr core.SuppressionThresholds) (*core.Dataset, *core.GloveStats, *metrics.Accuracy, error) {
	out, st, err := core.Glove(d, core.GloveOptions{K: k, Suppress: thr, Workers: w.cfg.Workers})
	if err != nil {
		return nil, nil, nil, err
	}
	return out, st, metrics.Measure(out), nil
}

// Fig7Result holds the accuracy of GLOVE 2-anonymized data on both
// nationwide profiles (paper Fig. 7): a large share of samples keeps
// fine granularity, and 70-80% stay within ~2 km / ~2 h.
type Fig7Result struct {
	Profiles    []string
	PositionCDF map[string]*stats.ECDF
	TimeCDF     map[string]*stats.ECDF
}

// Fig7 2-anonymizes both profiles with GLOVE (no suppression) and
// measures the published accuracy.
func Fig7(w *Workloads) (*Fig7Result, error) {
	res := &Fig7Result{
		Profiles:    NationwideProfiles(),
		PositionCDF: make(map[string]*stats.ECDF),
		TimeCDF:     make(map[string]*stats.ECDF),
	}
	for _, profile := range res.Profiles {
		d, err := w.Dataset(profile)
		if err != nil {
			return nil, err
		}
		_, _, acc, err := runGlove(w, d, 2, core.SuppressionThresholds{})
		if err != nil {
			return nil, err
		}
		if res.PositionCDF[profile], err = acc.PositionCDF(); err != nil {
			return nil, err
		}
		if res.TimeCDF[profile], err = acc.TimeCDF(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// paper x-axis ticks for accuracy CDFs.
var (
	positionTicksM  = []float64{200, 1000, 2000, 5000, 20000}
	timeTicksMin    = []float64{1, 30, 120, 480, 1440}
	positionTickLbl = []string{"200m", "1km", "2km", "5km", "20km"}
	timeTickLbl     = []string{"1m", "30m", "2h", "8h", "1d"}
)

// Render prints CDF values at the paper's axis ticks.
func (r *Fig7Result) Render(out io.Writer) {
	fmt.Fprintln(out, "Fig. 7 — spatiotemporal accuracy, GLOVE 2-anonymization")
	for _, profile := range r.Profiles {
		fmt.Fprintf(out, "%s position: ", profile)
		for i, x := range positionTicksM {
			fmt.Fprintf(out, "F(%s)=%.2f ", positionTickLbl[i], r.PositionCDF[profile].At(x))
		}
		fmt.Fprintf(out, "\n%s time:     ", profile)
		for i, x := range timeTicksMin {
			fmt.Fprintf(out, "F(%s)=%.2f ", timeTickLbl[i], r.TimeCDF[profile].At(x))
		}
		fmt.Fprintln(out)
	}
}

// Fig8Result holds the accuracy degradation with growing k on the civ
// profile (paper Fig. 8).
type Fig8Result struct {
	Profile     string
	Ks          []int
	PositionCDF []*stats.ECDF
	TimeCDF     []*stats.ECDF
}

// Fig8 runs GLOVE at k = 2, 3, 5 on civ.
func Fig8(w *Workloads) (*Fig8Result, error) {
	d, err := w.Dataset(ProfileCIV)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Profile: ProfileCIV, Ks: []int{2, 3, 5}}
	for _, k := range res.Ks {
		_, _, acc, err := runGlove(w, d, k, core.SuppressionThresholds{})
		if err != nil {
			return nil, err
		}
		pc, err := acc.PositionCDF()
		if err != nil {
			return nil, err
		}
		tc, err := acc.TimeCDF()
		if err != nil {
			return nil, err
		}
		res.PositionCDF = append(res.PositionCDF, pc)
		res.TimeCDF = append(res.TimeCDF, tc)
	}
	return res, nil
}

// Render prints CDF values at the paper's ticks for each k.
func (r *Fig8Result) Render(out io.Writer) {
	fmt.Fprintf(out, "Fig. 8 — accuracy vs k (%s)\n", r.Profile)
	for i, k := range r.Ks {
		fmt.Fprintf(out, "k=%d position: ", k)
		for j, x := range positionTicksM {
			fmt.Fprintf(out, "F(%s)=%.2f ", positionTickLbl[j], r.PositionCDF[i].At(x))
		}
		fmt.Fprintf(out, "\nk=%d time:     ", k)
		for j, x := range timeTicksMin {
			fmt.Fprintf(out, "F(%s)=%.2f ", timeTickLbl[j], r.TimeCDF[i].At(x))
		}
		fmt.Fprintln(out)
	}
}

// Fig9Point is one suppression setting of Fig. 9.
type Fig9Point struct {
	Thresholds   core.SuppressionThresholds
	Label        string
	DiscardedPct float64 // % of original samples suppressed
	Summary      metrics.Summary
}

// Fig9Result holds the suppression trade-off sweep (paper Fig. 9):
// discarding a few percent of hard-to-anonymize samples buys a large
// accuracy gain.
type Fig9Result struct {
	Profile string
	// Spatial sweep (varying spatial threshold at fixed 6 h temporal)
	// and temporal sweep (varying temporal threshold only).
	Spatial  []Fig9Point
	Temporal []Fig9Point
	Original metrics.Summary // no suppression baseline
}

// Fig9 sweeps suppression thresholds on the 2-anonymized civ profile.
func Fig9(w *Workloads) (*Fig9Result, error) {
	d, err := w.Dataset(ProfileCIV)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Profile: ProfileCIV}

	measure := func(thr core.SuppressionThresholds) (Fig9Point, error) {
		_, st, acc, err := runGlove(w, d, 2, thr)
		if err != nil {
			return Fig9Point{}, err
		}
		sum, err := acc.Summarize()
		if err != nil {
			return Fig9Point{}, err
		}
		pct := 0.0
		if st.InputSamples > 0 {
			pct = 100 * float64(st.SuppressedSamples) / float64(st.InputSamples)
		}
		return Fig9Point{Thresholds: thr, DiscardedPct: pct, Summary: sum}, nil
	}

	base, err := measure(core.SuppressionThresholds{})
	if err != nil {
		return nil, err
	}
	res.Original = base.Summary

	// Paper's spatial sweep: 6h-4Km ... 6h-80Km.
	for _, km := range []float64{4, 8, 10, 15, 20, 40, 80} {
		pt, err := measure(core.SuppressionThresholds{
			MaxSpatialMeters:   km * 1000,
			MaxTemporalMinutes: 360,
		})
		if err != nil {
			return nil, err
		}
		pt.Label = fmt.Sprintf("6h-%gKm", km)
		res.Spatial = append(res.Spatial, pt)
	}
	// Paper's temporal sweep: 90m ... 8h.
	for _, min := range []float64{90, 120, 180, 240, 360, 480} {
		pt, err := measure(core.SuppressionThresholds{MaxTemporalMinutes: min})
		if err != nil {
			return nil, err
		}
		pt.Label = fmt.Sprintf("%gm", min)
		res.Temporal = append(res.Temporal, pt)
	}
	return res, nil
}

// Render prints both panels of Fig. 9.
func (r *Fig9Result) Render(out io.Writer) {
	fmt.Fprintf(out, "Fig. 9 — suppression trade-off (%s, k=2)\n", r.Profile)
	fmt.Fprintf(out, "original (no suppression): mean pos %.0f m, mean time %.0f min\n",
		r.Original.MeanPositionM, r.Original.MeanTimeMin)
	fmt.Fprintln(out, "spatial thresholding (with 6 h temporal):")
	for _, pt := range r.Spatial {
		fmt.Fprintf(out, "  %-9s discarded %5.1f%%  mean pos %7.0f m  median pos %7.0f m\n",
			pt.Label, pt.DiscardedPct, pt.Summary.MeanPositionM, pt.Summary.MedianPositionM)
	}
	fmt.Fprintln(out, "temporal thresholding:")
	for _, pt := range r.Temporal {
		fmt.Fprintf(out, "  %-9s discarded %5.1f%%  mean time %6.0f min  median time %6.0f min\n",
			pt.Label, pt.DiscardedPct, pt.Summary.MeanTimeMin, pt.Summary.MedianTimeMin)
	}
}

// SweepPoint is one x-axis position of Figs. 10 and 11.
type SweepPoint struct {
	X       float64 // days (Fig. 10) or user fraction (Fig. 11)
	Summary metrics.Summary
}

// SweepResult holds an accuracy sweep per profile.
type SweepResult struct {
	Name   string
	Series map[string][]SweepPoint
}

// Fig10 measures GLOVE 2-anonymization accuracy on timespan subsets
// (1, 2, 5, 7, 14 days) of both profiles (paper Fig. 10): shorter
// datasets anonymize with less accuracy loss, sub-linearly.
func Fig10(w *Workloads) (*SweepResult, error) {
	res := &SweepResult{Name: "Fig. 10 — accuracy vs dataset timespan", Series: make(map[string][]SweepPoint)}
	for _, profile := range NationwideProfiles() {
		table, err := w.Table(profile)
		if err != nil {
			return nil, err
		}
		for _, days := range []int{1, 2, 5, 7, 14} {
			if days > w.cfg.Days {
				continue
			}
			sub := table.SubsetDays(days)
			d, err := sub.BuildDataset()
			if err != nil {
				return nil, err
			}
			if d.Len() < 4 {
				continue
			}
			_, _, acc, err := runGlove(w, d, 2, core.SuppressionThresholds{})
			if err != nil {
				return nil, err
			}
			sum, err := acc.Summarize()
			if err != nil {
				return nil, err
			}
			res.Series[profile] = append(res.Series[profile], SweepPoint{X: float64(days), Summary: sum})
		}
	}
	return res, nil
}

// Fig11 measures GLOVE 2-anonymization accuracy on population subsets
// (5%..100%) of both profiles (paper Fig. 11): only small populations
// hurt anonymizability.
func Fig11(w *Workloads) (*SweepResult, error) {
	res := &SweepResult{Name: "Fig. 11 — accuracy vs dataset size", Series: make(map[string][]SweepPoint)}
	for _, profile := range NationwideProfiles() {
		table, err := w.Table(profile)
		if err != nil {
			return nil, err
		}
		for _, fracPct := range []float64{5, 10, 25, 50, 75, 100} {
			sub := table.SubsetUserFraction(fracPct/100, 7)
			d, err := sub.BuildDataset()
			if err != nil {
				return nil, err
			}
			if d.Len() < 4 {
				continue
			}
			_, _, acc, err := runGlove(w, d, 2, core.SuppressionThresholds{})
			if err != nil {
				return nil, err
			}
			sum, err := acc.Summarize()
			if err != nil {
				return nil, err
			}
			res.Series[profile] = append(res.Series[profile], SweepPoint{X: fracPct, Summary: sum})
		}
	}
	return res, nil
}

// Render prints the sweep series.
func (r *SweepResult) Render(out io.Writer) {
	fmt.Fprintln(out, r.Name)
	for _, profile := range NationwideProfiles() {
		pts := r.Series[profile]
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(out, "%s:\n", profile)
		for _, pt := range pts {
			fmt.Fprintf(out, "  x=%-5g mean pos %7.0f m  median pos %7.0f m  mean time %6.0f min  median time %6.0f min\n",
				pt.X, pt.Summary.MeanPositionM, pt.Summary.MedianPositionM,
				pt.Summary.MeanTimeMin, pt.Summary.MedianTimeMin)
		}
	}
}
