package experiments

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/generalize"
	"repro/internal/stats"
)

// Fig3aResult is the k-gap CDF of both nationwide datasets at k = 2
// (paper Fig. 3a). The paper finds: no subscriber is 2-anonymous
// (CDF(0) = 0), yet the probability mass sits below ~0.2 — anonymity
// looks close to reach.
type Fig3aResult struct {
	CDFs     map[string]*stats.ECDF
	Medians  map[string]float64
	AnonFrac map[string]float64 // fraction with zero 2-gap
}

// Fig3a computes the 2-gap CDFs of the civ and sen profiles.
func Fig3a(w *Workloads) (*Fig3aResult, error) {
	res := &Fig3aResult{
		CDFs:     make(map[string]*stats.ECDF),
		Medians:  make(map[string]float64),
		AnonFrac: make(map[string]float64),
	}
	p := core.DefaultParams()
	for _, profile := range NationwideProfiles() {
		d, err := w.Dataset(profile)
		if err != nil {
			return nil, err
		}
		cdf, rs, err := analysis.KGapCDF(p, d, 2, w.cfg.Workers)
		if err != nil {
			return nil, err
		}
		res.CDFs[profile] = cdf
		res.Medians[profile] = cdf.Quantile(0.5)
		res.AnonFrac[profile] = analysis.AnonymousFraction(rs)
	}
	return res, nil
}

// Render prints the figure series.
func (r *Fig3aResult) Render(out io.Writer) {
	fmt.Fprintln(out, "Fig. 3a — CDF of 2-gap (k = 2)")
	for _, profile := range NationwideProfiles() {
		cdf := r.CDFs[profile]
		fmt.Fprintf(out, "%s: median Δ² = %.3f, already-2-anonymous = %.1f%%\n",
			profile, r.Medians[profile], 100*r.AnonFrac[profile])
		fmt.Fprint(out, analysis.FormatCDF(cdf, 11, "Δ²=%.4f"))
	}
}

// Fig3bResult is the k-gap CDF under growing k (paper Fig. 3b): the
// distributions shift right sub-linearly in k.
type Fig3bResult struct {
	Profile string
	Ks      []int
	Medians []float64
	CDFs    []*stats.ECDF
}

// Fig3b sweeps k on the sen profile (the paper's choice; civ behaves
// identically). k values above the dataset size are skipped.
func Fig3b(w *Workloads) (*Fig3bResult, error) {
	d, err := w.Dataset(ProfileSEN)
	if err != nil {
		return nil, err
	}
	res := &Fig3bResult{Profile: ProfileSEN}
	p := core.DefaultParams()
	for _, k := range []int{2, 5, 10, 25, 50, 100} {
		if k > d.Len() {
			continue
		}
		cdf, _, err := analysis.KGapCDF(p, d, k, w.cfg.Workers)
		if err != nil {
			return nil, err
		}
		res.Ks = append(res.Ks, k)
		res.Medians = append(res.Medians, cdf.Quantile(0.5))
		res.CDFs = append(res.CDFs, cdf)
	}
	return res, nil
}

// SubLinear reports whether the median k-gap grows sub-linearly in k:
// median(k_max)/median(k_min) < k_max/k_min, the paper's observation.
func (r *Fig3bResult) SubLinear() bool {
	n := len(r.Ks)
	if n < 2 || r.Medians[0] <= 0 {
		return false
	}
	growth := r.Medians[n-1] / r.Medians[0]
	return growth < float64(r.Ks[n-1])/float64(r.Ks[0])
}

// Render prints the figure series.
func (r *Fig3bResult) Render(out io.Writer) {
	fmt.Fprintf(out, "Fig. 3b — CDF of k-gap for growing k (%s)\n", r.Profile)
	for i, k := range r.Ks {
		fmt.Fprintf(out, "k=%-3d median Δᵏ = %.3f\n", k, r.Medians[i])
	}
	fmt.Fprintf(out, "sub-linear growth in k: %v\n", r.SubLinear())
}

// Fig4Result is the effect of uniform spatiotemporal generalization on
// the 2-gap (paper Fig. 4): even at 20 km / 8 h granularity only a
// minority of users become 2-anonymous.
type Fig4Result struct {
	Profiles []string
	Levels   []generalize.Level
	// AnonFrac[profile][level] = fraction of users with zero 2-gap.
	AnonFrac map[string][]float64
	// MedianGap[profile][level] = median 2-gap after generalization.
	MedianGap map[string][]float64
}

// Fig4 sweeps the paper's six generalization levels on both profiles.
func Fig4(w *Workloads) (*Fig4Result, error) {
	res := &Fig4Result{
		Profiles:  NationwideProfiles(),
		Levels:    generalize.PaperLevels(),
		AnonFrac:  make(map[string][]float64),
		MedianGap: make(map[string][]float64),
	}
	p := core.DefaultParams()
	for _, profile := range res.Profiles {
		d, err := w.Dataset(profile)
		if err != nil {
			return nil, err
		}
		for _, level := range res.Levels {
			g, err := generalize.Dataset(d, level)
			if err != nil {
				return nil, err
			}
			cdf, rs, err := analysis.KGapCDF(p, g, 2, w.cfg.Workers)
			if err != nil {
				return nil, err
			}
			res.AnonFrac[profile] = append(res.AnonFrac[profile], analysis.AnonymousFraction(rs))
			res.MedianGap[profile] = append(res.MedianGap[profile], cdf.Quantile(0.5))
		}
	}
	return res, nil
}

// Render prints the figure series.
func (r *Fig4Result) Render(out io.Writer) {
	fmt.Fprintln(out, "Fig. 4 — 2-gap under uniform generalization (km-min levels)")
	for _, profile := range r.Profiles {
		fmt.Fprintf(out, "%s:\n", profile)
		for i, level := range r.Levels {
			fmt.Fprintf(out, "  %-8s 2-anonymous = %5.1f%%  median Δ² = %.4f\n",
				level, 100*r.AnonFrac[profile][i], r.MedianGap[profile][i])
		}
	}
}

// Fig5Result carries the effort decomposition analysis (paper Fig. 5):
// the TWI CDFs of the total/spatial/temporal sample stretch efforts
// (5a) and the temporal-to-spatial ratio CDF (5b).
type Fig5Result struct {
	Profile string

	TWI *analysis.TWIResult
	// Heavy-tail fractions (TWI >= 1.5).
	HeavyTotal    float64
	HeavySpatial  float64
	HeavyTemporal float64

	// Ratio analysis (per profile, Fig. 5b).
	RatioProfiles      []string
	TemporalDominant   map[string]float64 // fraction with temporal > spatial
	TemporalShare80Pct map[string]float64 // fraction with temporal share >= 0.8
	ShareCDF           map[string]*stats.ECDF
}

// Fig5 runs the Sec. 5.3 analysis: decomposition on civ for the TWI plot
// and ratio statistics on both profiles.
func Fig5(w *Workloads) (*Fig5Result, error) {
	p := core.DefaultParams()
	res := &Fig5Result{
		Profile:            ProfileCIV,
		RatioProfiles:      NationwideProfiles(),
		TemporalDominant:   make(map[string]float64),
		TemporalShare80Pct: make(map[string]float64),
		ShareCDF:           make(map[string]*stats.ECDF),
	}
	for _, profile := range res.RatioProfiles {
		d, err := w.Dataset(profile)
		if err != nil {
			return nil, err
		}
		rs, err := core.KGapAll(p, d, 2, w.cfg.Workers)
		if err != nil {
			return nil, err
		}
		decs := analysis.Decompose(p, d, rs, w.cfg.Workers)

		if profile == res.Profile {
			res.TWI = analysis.TWIs(decs)
			res.HeavyTotal = analysis.HeavyTailFraction(res.TWI.Total)
			res.HeavySpatial = analysis.HeavyTailFraction(res.TWI.Spatial)
			res.HeavyTemporal = analysis.HeavyTailFraction(res.TWI.Temporal)
		}

		var dominant, share80 int
		shares := make([]float64, 0, len(decs))
		for i := range decs {
			s := decs[i].TemporalShare()
			shares = append(shares, s)
			if s > 0.5 {
				dominant++
			}
			if s >= 0.8 {
				share80++
			}
		}
		res.TemporalDominant[profile] = float64(dominant) / float64(len(decs))
		res.TemporalShare80Pct[profile] = float64(share80) / float64(len(decs))
		cdf, err := stats.NewECDF(shares)
		if err != nil {
			return nil, err
		}
		res.ShareCDF[profile] = cdf
	}
	return res, nil
}

// Render prints both panels.
func (r *Fig5Result) Render(out io.Writer) {
	fmt.Fprintf(out, "Fig. 5a — Tail Weight Index of sample stretch efforts (%s, k=2)\n", r.Profile)
	fmt.Fprintf(out, "  heavy-tailed (TWI >= 1.5): total %.0f%%, spatial %.0f%%, temporal %.0f%%\n",
		100*r.HeavyTotal, 100*r.HeavySpatial, 100*r.HeavyTemporal)
	if r.TWI.Skipped > 0 {
		fmt.Fprintf(out, "  (%d fingerprints with degenerate distributions skipped)\n", r.TWI.Skipped)
	}
	fmt.Fprintln(out, "Fig. 5b — temporal share of the total stretch effort")
	for _, profile := range r.RatioProfiles {
		fmt.Fprintf(out, "  %s: temporal > spatial in %.0f%% of fingerprints; temporal >= 80%% of effort in %.0f%%\n",
			profile, 100*r.TemporalDominant[profile], 100*r.TemporalShare80Pct[profile])
	}
}
