package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// Tests run at a reduced scale; the qualitative shapes asserted here are
// the paper's findings and must hold at any scale.
var (
	testWorkloadsOnce sync.Once
	testWorkloads     *Workloads
)

func testW(t *testing.T) *Workloads {
	t.Helper()
	testWorkloadsOnce.Do(func() {
		w, err := NewWorkloads(Config{Users: 100, Days: 5})
		if err != nil {
			panic(err)
		}
		testWorkloads = w
	})
	return testWorkloads
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Config{Users: 5, Days: 1}).Validate(); err == nil {
		t.Error("tiny user count accepted")
	}
	if err := (Config{Users: 100, Days: 0}).Validate(); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := NewWorkloads(Config{}); err == nil {
		t.Error("NewWorkloads accepted zero config")
	}
}

func TestWorkloadsProfiles(t *testing.T) {
	w := testW(t)
	for _, profile := range AllProfiles() {
		d, err := w.Dataset(profile)
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if d.Len() < 5 {
			t.Errorf("%s: only %d fingerprints", profile, d.Len())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", profile, err)
		}
	}
	// City subsets are strictly smaller than their parents.
	civ, _ := w.Dataset(ProfileCIV)
	abj, _ := w.Dataset(ProfileAbidjan)
	if abj.Len() >= civ.Len() {
		t.Errorf("abidjan (%d) not smaller than civ (%d)", abj.Len(), civ.Len())
	}
	if _, err := w.Dataset("nope"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestWorkloadsCaching(t *testing.T) {
	w := testW(t)
	d1, err := w.Dataset(ProfileCIV)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := w.Dataset(ProfileCIV)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Error("dataset not cached")
	}
}

func TestFig3a(t *testing.T) {
	r, err := Fig3a(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range NationwideProfiles() {
		// Paper: no subscriber is 2-anonymous in the raw data.
		if f := r.AnonFrac[profile]; f > 0.02 {
			t.Errorf("%s: %.1f%% of users 2-anonymous in raw data, want ~0", profile, 100*f)
		}
		// Paper: the probability mass is near the origin (most below 0.2).
		if m := r.Medians[profile]; m <= 0 || m > 0.35 {
			t.Errorf("%s: median 2-gap = %.3f, want (0, 0.35]", profile, m)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 3a") {
		t.Error("render missing title")
	}
}

func TestFig3b(t *testing.T) {
	r, err := Fig3b(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ks) < 3 {
		t.Fatalf("only %d k values at this scale", len(r.Ks))
	}
	for i := 1; i < len(r.Medians); i++ {
		if r.Medians[i]+1e-12 < r.Medians[i-1] {
			t.Errorf("median k-gap decreased from k=%d to k=%d", r.Ks[i-1], r.Ks[i])
		}
	}
	if !r.SubLinear() {
		t.Error("k-gap growth not sub-linear in k (paper Fig. 3b)")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "sub-linear") {
		t.Error("render missing sub-linearity line")
	}
}

func TestFig4(t *testing.T) {
	r, err := Fig4(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range r.Profiles {
		fracs := r.AnonFrac[profile]
		// Monotone non-decreasing anonymous fraction with coarser levels.
		for i := 1; i < len(fracs); i++ {
			if fracs[i]+1e-12 < fracs[i-1] {
				t.Errorf("%s: anonymous fraction decreased at level %v", profile, r.Levels[i])
			}
		}
		// Paper's headline: even 20km-8h generalization leaves the
		// majority of users non-anonymous.
		if last := fracs[len(fracs)-1]; last > 0.6 {
			t.Errorf("%s: coarsest generalization 2-anonymized %.0f%%, paper says at most ~35%%",
				profile, 100*last)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "20-480") {
		t.Error("render missing coarsest level")
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: temporal components are the heavy-tailed ones and dominate
	// the anonymization cost in the vast majority of fingerprints.
	if r.HeavyTemporal <= r.HeavySpatial {
		t.Errorf("temporal heavy-tail fraction (%.2f) not above spatial (%.2f)",
			r.HeavyTemporal, r.HeavySpatial)
	}
	for _, profile := range r.RatioProfiles {
		if d := r.TemporalDominant[profile]; d < 0.7 {
			t.Errorf("%s: temporal dominates in only %.0f%% of fingerprints, paper says ~95%%",
				profile, 100*d)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 5b") {
		t.Error("render missing 5b panel")
	}
}

func TestFig7(t *testing.T) {
	r, err := Fig7(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range r.Profiles {
		pc, tc := r.PositionCDF[profile], r.TimeCDF[profile]
		// A substantial share of samples keeps fine spatial granularity
		// (paper: 20-40% at original accuracy).
		if f := pc.At(200); f < 0.05 {
			t.Errorf("%s: only %.0f%% of samples within 200 m", profile, 100*f)
		}
		// CDFs must be sane and reach 1.
		if pc.At(1e9) != 1 || tc.At(1e9) != 1 {
			t.Errorf("%s: accuracy CDFs do not reach 1", profile)
		}
		// The majority of samples stay usable (within 20 km / 8 h).
		if f := pc.At(20000); f < 0.5 {
			t.Errorf("%s: only %.0f%% of samples within 20 km", profile, 100*f)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "F(2km)") {
		t.Error("render missing tick")
	}
}

func TestFig8(t *testing.T) {
	r, err := Fig8(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy degrades with k: CDF at every tick non-increasing in k.
	for ti, x := range positionTicksM {
		prev := 2.0
		for i, k := range r.Ks {
			f := r.PositionCDF[i].At(x)
			if f > prev+0.1 { // small tolerance: greedy merging is not strictly nested
				t.Errorf("position F(%s) increased at k=%d", positionTickLbl[ti], k)
			}
			prev = f
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "k=5") {
		t.Error("render missing k=5 series")
	}
}

func TestFig9(t *testing.T) {
	r, err := Fig9(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spatial) != 7 || len(r.Temporal) != 6 {
		t.Fatalf("sweep sizes %d/%d", len(r.Spatial), len(r.Temporal))
	}
	// Tighter spatial thresholds discard more and yield better mean
	// position accuracy than the unsuppressed baseline.
	first := r.Spatial[0] // 4 km, tightest
	if first.DiscardedPct <= 0 {
		t.Error("tightest spatial threshold discarded nothing")
	}
	if first.Summary.MeanPositionM > r.Original.MeanPositionM {
		t.Error("suppression did not improve mean position accuracy")
	}
	for i := 1; i < len(r.Spatial); i++ {
		if r.Spatial[i].DiscardedPct > r.Spatial[i-1].DiscardedPct+1e-9 {
			t.Error("looser spatial threshold discarded more")
		}
	}
	// Temporal sweep: tightest threshold improves mean time accuracy.
	if r.Temporal[0].Summary.MeanTimeMin > r.Original.MeanTimeMin {
		t.Error("temporal suppression did not improve time accuracy")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "6h-4Km") {
		t.Error("render missing spatial labels")
	}
}

func TestFig10(t *testing.T) {
	r, err := Fig10(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range NationwideProfiles() {
		pts := r.Series[profile]
		if len(pts) < 2 {
			t.Fatalf("%s: only %d timespan points", profile, len(pts))
		}
		// Paper: shorter datasets anonymize more accurately. Compare the
		// shortest and longest spans on median position accuracy.
		first, last := pts[0], pts[len(pts)-1]
		if first.Summary.MedianPositionM > last.Summary.MedianPositionM*1.5 {
			t.Errorf("%s: 1-day subset much worse than full span (%.0f vs %.0f m)",
				profile, first.Summary.MedianPositionM, last.Summary.MedianPositionM)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "Fig. 10") {
		t.Error("render missing title")
	}
}

func TestFig11(t *testing.T) {
	r, err := Fig11(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range NationwideProfiles() {
		pts := r.Series[profile]
		if len(pts) < 3 {
			t.Fatalf("%s: only %d size points", profile, len(pts))
		}
		// Paper: small datasets are harder to anonymize; the smallest
		// fraction should not be (much) more accurate than the full one.
		smallest, full := pts[0], pts[len(pts)-1]
		if smallest.Summary.MeanPositionM*1.2 < full.Summary.MeanPositionM {
			t.Errorf("%s: tiny dataset more accurate than full (%.0f vs %.0f m)",
				profile, smallest.Summary.MeanPositionM, full.Summary.MeanPositionM)
		}
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 { // 2 k x 4 profiles x 2 algorithms
		t.Fatalf("got %d rows, want 16", len(r.Rows))
	}
	for _, k := range []int{2, 5} {
		for _, profile := range AllProfiles() {
			g, ok := r.Row("GLOVE", profile, k)
			if !ok {
				t.Fatalf("missing GLOVE row %s k=%d", profile, k)
			}
			wm, ok := r.Row("W4M-LC", profile, k)
			if !ok {
				t.Fatalf("missing W4M row %s k=%d", profile, k)
			}
			// Paper's headline comparisons.
			if g.CreatedSamples != 0 {
				t.Errorf("GLOVE created samples on %s k=%d", profile, k)
			}
			// GLOVE itself never discards fingerprints; at this reduced
			// scale aggressive suppression may empty a few coarse groups,
			// which the paper-scale datasets do not exhibit.
			if g.DiscardedFingerprintsPct > 25 {
				t.Errorf("GLOVE discarded %.0f%% of fingerprints on %s k=%d",
					g.DiscardedFingerprintsPct, profile, k)
			}
			if k == 2 && g.DiscardedFingerprintsPct > 10 {
				t.Errorf("GLOVE discarded %.0f%% of fingerprints at k=2 on %s",
					g.DiscardedFingerprintsPct, profile)
			}
			if wm.CreatedSamples == 0 {
				t.Errorf("W4M created no samples on %s k=%d", profile, k)
			}
			if wm.MeanTimeErrorMin < g.MeanTimeErrorMin {
				t.Errorf("W4M time error (%.0f) below GLOVE (%.0f) on %s k=%d",
					wm.MeanTimeErrorMin, g.MeanTimeErrorMin, profile, k)
			}
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "W4M-LC") || !strings.Contains(buf.String(), "GLOVE") {
		t.Error("render missing algorithms")
	}
	if _, ok := r.Row("nope", "civ", 2); ok {
		t.Error("Row matched unknown algorithm")
	}
}

func TestUniquenessExtension(t *testing.T) {
	r, err := Uniqueness(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hs) != 4 || len(r.Raw) != 4 || len(r.Glove) != 4 {
		t.Fatalf("sweep shape %d/%d/%d", len(r.Hs), len(r.Raw), len(r.Glove))
	}
	// Paper Sec. 1: a handful of points uniquely identifies most users in
	// raw data; GLOVE defeats the attack entirely.
	if r.Raw[2].UniqueFraction < 0.9 { // h=4
		t.Errorf("raw uniqueness at h=4 = %.2f, want >= 0.9", r.Raw[2].UniqueFraction)
	}
	for i, g := range r.Glove {
		if g.UniqueFraction != 0 {
			t.Errorf("h=%d: %.2f unique against GLOVE output", r.Hs[i], g.UniqueFraction)
		}
		if g.MeanCrowd < 2 {
			t.Errorf("h=%d: mean crowd %.2f < 2", r.Hs[i], g.MeanCrowd)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "h=8") {
		t.Error("render missing h=8 row")
	}
}

func TestUtilityExtension(t *testing.T) {
	r, err := Utility(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range r.Profiles {
		if r.DensitySimilarity[profile] < 0.8 {
			t.Errorf("%s: density similarity %.3f < 0.8", profile, r.DensitySimilarity[profile])
		}
		if r.ProfileSimilarity[profile] < 0.95 {
			t.Errorf("%s: activity similarity %.3f < 0.95", profile, r.ProfileSimilarity[profile])
		}
		if r.ODSimilarity[profile] < 0.7 {
			t.Errorf("%s: OD similarity %.3f < 0.7", profile, r.ODSimilarity[profile])
		}
		if r.RogMedianRaw[profile] <= 0 {
			t.Errorf("%s: zero raw rog", profile)
		}
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "OD-flow") {
		t.Error("render missing OD similarity")
	}
}

func TestRiskExtension(t *testing.T) {
	r, err := Risk(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Ks) != 3 {
		t.Fatalf("ks = %v", r.Ks)
	}
	// Larger k coarsens groups: the localization bound must not tighten.
	for i := 1; i < len(r.Ks); i++ {
		if r.MedianLocM[i]+1 < r.MedianLocM[i-1]*0.8 {
			t.Errorf("localization bound tightened markedly from k=%d to k=%d: %.0f -> %.0f m",
				r.Ks[i-1], r.Ks[i], r.MedianLocM[i-1], r.MedianLocM[i])
		}
	}
	// Home leakage must not grow with k.
	if r.HomeLeak1kmPct[2] > r.HomeLeak1kmPct[0]+10 {
		t.Errorf("home leakage grew with k: %v", r.HomeLeak1kmPct)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "k=5") {
		t.Error("render missing k=5 row")
	}
}

func TestCalibrationExtension(t *testing.T) {
	r, err := Calibration(testW(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 3 {
		t.Fatalf("labels = %v", r.Labels)
	}
	paper, tightSpace, tightTime := r.Summary[0], r.Summary[1], r.Summary[2]
	// The paper's calibration must (weakly) dominate both tightened
	// variants on both medians: early cap saturation stops the measure
	// from ranking far candidates and the greedy matching degrades.
	if paper.MedianPositionM > tightSpace.MedianPositionM*1.2+200 {
		t.Errorf("paper calibration worse in space than tight-spatial: %.0f vs %.0f m",
			paper.MedianPositionM, tightSpace.MedianPositionM)
	}
	if paper.MedianTimeMin > tightTime.MedianTimeMin*1.2+20 {
		t.Errorf("paper calibration worse in time than tight-temporal: %.0f vs %.0f min",
			paper.MedianTimeMin, tightTime.MedianTimeMin)
	}
	if paper.Samples == 0 {
		t.Error("paper calibration measured nothing")
	}
	var buf bytes.Buffer
	r.Render(&buf)
	if !strings.Contains(buf.String(), "footnote 3") {
		t.Error("render missing provenance")
	}
}
