package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/mobility"
)

// UniquenessResult reproduces the motivation experiments of the paper's
// introduction (refs. [5] and [6]): how many random spatiotemporal
// points uniquely identify a subscriber in raw micro-data, and what
// remains of that linkability after GLOVE.
type UniquenessResult struct {
	Profile string
	Hs      []int
	Raw     []analysis.UniquenessResult // probing raw data
	Glove   []analysis.UniquenessResult // probing the 2-anonymized release
}

// Uniqueness sweeps the number of known points h on the civ profile.
func Uniqueness(w *Workloads) (*UniquenessResult, error) {
	d, err := w.Dataset(ProfileCIV)
	if err != nil {
		return nil, err
	}
	published, _, err := core.Glove(d, core.GloveOptions{K: 2, Workers: w.cfg.Workers})
	if err != nil {
		return nil, err
	}
	res := &UniquenessResult{Profile: ProfileCIV, Hs: []int{1, 2, 4, 8}}
	probes := d.Len()
	if probes > 150 {
		probes = 150
	}
	for _, h := range res.Hs {
		raw, err := analysis.PartialKnowledgeUniqueness(d, d, h, probes, rand.New(rand.NewSource(int64(h))), w.cfg.Workers)
		if err != nil {
			return nil, err
		}
		anon, err := analysis.PartialKnowledgeUniqueness(d, published, h, probes, rand.New(rand.NewSource(int64(h))), w.cfg.Workers)
		if err != nil {
			return nil, err
		}
		res.Raw = append(res.Raw, raw)
		res.Glove = append(res.Glove, anon)
	}
	return res, nil
}

// Render prints the sweep.
func (r *UniquenessResult) Render(out io.Writer) {
	fmt.Fprintf(out, "Uniqueness under partial adversary knowledge (%s; paper Sec. 1, refs. [5, 6])\n", r.Profile)
	for i, h := range r.Hs {
		fmt.Fprintf(out, "  h=%d known points: raw data %5.1f%% unique  |  GLOVE k=2 %5.1f%% unique (mean crowd %.1f)\n",
			h, 100*r.Raw[i].UniqueFraction, 100*r.Glove[i].UniqueFraction, r.Glove[i].MeanCrowd)
	}
}

// UtilityResult quantifies how well the aggregate analyses of Sec. 2.4
// survive anonymization: spatial density, diurnal activity profile and
// home-work OD flows compared between raw and GLOVE'd data.
type UtilityResult struct {
	Profiles          []string
	DensitySimilarity map[string]float64 // cosine, 5 km raster
	ProfileSimilarity map[string]float64 // cosine, hourly profile
	ODSimilarity      map[string]float64 // cosine, 25 km OD matrix
	RogMedianRaw      map[string]float64
	RogMedianAnon     map[string]float64
}

// Utility 2-anonymizes both nationwide profiles and scores the
// aggregate statistics.
func Utility(w *Workloads) (*UtilityResult, error) {
	res := &UtilityResult{
		Profiles:          NationwideProfiles(),
		DensitySimilarity: make(map[string]float64),
		ProfileSimilarity: make(map[string]float64),
		ODSimilarity:      make(map[string]float64),
		RogMedianRaw:      make(map[string]float64),
		RogMedianAnon:     make(map[string]float64),
	}
	for _, profile := range res.Profiles {
		d, err := w.Dataset(profile)
		if err != nil {
			return nil, err
		}
		published, _, err := core.Glove(d, core.GloveOptions{K: 2, Workers: w.cfg.Workers})
		if err != nil {
			return nil, err
		}
		res.DensitySimilarity[profile] = mobility.CosineSimilarity(
			mobility.SpatialDensity(d, 5000), mobility.SpatialDensity(published, 5000))
		res.ProfileSimilarity[profile] = mobility.ProfileSimilarity(
			mobility.ActivityProfile(d), mobility.ActivityProfile(published))
		res.ODSimilarity[profile] = mobility.CosineSimilarity(
			mobility.ODMatrix(d, 25000), mobility.ODMatrix(published, 25000))
		res.RogMedianRaw[profile], _ = mobility.RadiusOfGyrationStats(d)
		res.RogMedianAnon[profile], _ = mobility.RadiusOfGyrationStats(published)
	}
	return res, nil
}

// Render prints the utility scores.
func (r *UtilityResult) Render(out io.Writer) {
	fmt.Fprintln(out, "Utility preservation of aggregate analyses (GLOVE k=2; paper Sec. 2.4)")
	for _, profile := range r.Profiles {
		fmt.Fprintf(out, "  %s: density cos %.3f | activity-profile cos %.3f | OD-flow cos %.3f | median rog %.1f km -> %.1f km\n",
			profile,
			r.DensitySimilarity[profile], r.ProfileSimilarity[profile], r.ODSimilarity[profile],
			r.RogMedianRaw[profile]/1000, r.RogMedianAnon[profile]/1000)
	}
}
