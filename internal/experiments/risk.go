package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/privacy"
)

// RiskResult sweeps the residual-risk diagnostics of internal/privacy
// over anonymity levels: how the paper's acknowledged k-anonymity
// limitations (Sec. 2.4) evolve as k grows. Higher k coarsens groups,
// which *loosens* localization and home bounds — the flip side of the
// accuracy loss of Fig. 8.
type RiskResult struct {
	Profile        string
	Ks             []int
	MedianLocM     []float64 // median localization bound
	HomeLeak1kmPct []float64 // % of groups bounding night activity within 1 km
	CoLocationPct  []float64 // % of cross-group sample pairs overlapping
}

// Risk runs GLOVE at several k on the civ profile and measures the
// diagnostics on each release.
func Risk(w *Workloads) (*RiskResult, error) {
	d, err := w.Dataset(ProfileCIV)
	if err != nil {
		return nil, err
	}
	res := &RiskResult{Profile: ProfileCIV, Ks: []int{2, 3, 5}}
	for _, k := range res.Ks {
		published, _, err := core.Glove(d, core.GloveOptions{K: k, Workers: w.cfg.Workers})
		if err != nil {
			return nil, err
		}
		loc, err := privacy.Localization(published, 300, rand.New(rand.NewSource(int64(k))))
		if err != nil {
			return nil, err
		}
		home := privacy.HomeDisclosure(published)
		colo := privacy.CoLocation(published, 2000)

		res.MedianLocM = append(res.MedianLocM, loc.MedianSpan())
		res.HomeLeak1kmPct = append(res.HomeLeak1kmPct, 100*home.DisclosedFraction(1000))
		res.CoLocationPct = append(res.CoLocationPct, 100*colo.Rate())
	}
	return res, nil
}

// Render prints the sweep.
func (r *RiskResult) Render(out io.Writer) {
	fmt.Fprintf(out, "Residual-risk diagnostics vs k (%s; k-anonymity limitations, Sec. 2.4)\n", r.Profile)
	for i, k := range r.Ks {
		fmt.Fprintf(out, "  k=%d: median localization bound %7.0f m | home area < 1 km in %4.1f%% of groups | co-location rate %5.2f%%\n",
			k, r.MedianLocM[i], r.HomeLeak1kmPct[i], r.CoLocationPct[i])
	}
}

// CalibrationResult ablates the stretch-effort calibration of footnote
// 3. The caps φmax_σ and φmax_τ play a double role: they set the
// sensitivity slope of the loss below the cap *and* the saturation
// point beyond which all candidates look equally bad. Tightening a cap
// nominally "weights" that dimension more, but the early saturation
// destroys the measure's ability to rank far candidates, and GLOVE's
// greedy matching degrades in *both* dimensions — the paper's generous
// 20 km / 8 h calibration Pareto-dominates the tightened variants.
type CalibrationResult struct {
	Profile string
	Labels  []string
	Params  []core.Params
	Summary []metrics.Summary
}

// Calibration runs GLOVE k=2 on civ under three calibrations: the
// paper's, a space-favouring one and a time-favouring one.
func Calibration(w *Workloads) (*CalibrationResult, error) {
	d, err := w.Dataset(ProfileCIV)
	if err != nil {
		return nil, err
	}
	res := &CalibrationResult{Profile: ProfileCIV}
	cases := []struct {
		label string
		p     core.Params
	}{
		{"paper 20km-8h", core.DefaultParams()},
		{"tight spatial cap 5km-8h", core.Params{MaxSpatial: 5000, MaxTemporal: 480, WSpatial: 0.5, WTemporal: 0.5}},
		{"tight temporal cap 20km-2h", core.Params{MaxSpatial: 20000, MaxTemporal: 120, WSpatial: 0.5, WTemporal: 0.5}},
	}
	for _, c := range cases {
		out, _, err := core.Glove(d, core.GloveOptions{K: 2, Params: c.p, Workers: w.cfg.Workers})
		if err != nil {
			return nil, err
		}
		sum, err := metrics.Measure(out).Summarize()
		if err != nil {
			return nil, err
		}
		res.Labels = append(res.Labels, c.label)
		res.Params = append(res.Params, c.p)
		res.Summary = append(res.Summary, sum)
	}
	return res, nil
}

// Render prints the calibration comparison.
func (r *CalibrationResult) Render(out io.Writer) {
	fmt.Fprintf(out, "Stretch-effort calibration ablation (%s, k=2; paper footnote 3)\n", r.Profile)
	for i, label := range r.Labels {
		s := r.Summary[i]
		fmt.Fprintf(out, "  %-28s median pos %6.0f m  median time %5.0f min\n",
			label, s.MedianPositionM, s.MedianTimeMin)
	}
	fmt.Fprintln(out, "  (tight caps saturate early and stop ranking far candidates; the paper's calibration dominates)")
}
