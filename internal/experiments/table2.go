package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/w4m"
)

// Table2GloveThresholds are the suppression thresholds the paper uses
// for GLOVE in the comparative analysis: 6 hours and 15 km.
var Table2GloveThresholds = core.SuppressionThresholds{
	MaxSpatialMeters:   15000,
	MaxTemporalMinutes: 360,
}

// Table2Result holds the comparative analysis of W4M-LC and GLOVE
// (paper Table 2) over the four dataset profiles at k = 2 and k = 5.
type Table2Result struct {
	Rows []metrics.Table2Row
}

// Table2 runs both algorithms on every profile and k.
func Table2(w *Workloads) (*Table2Result, error) {
	res := &Table2Result{}
	for _, k := range []int{2, 5} {
		for _, profile := range AllProfiles() {
			d, err := w.Dataset(profile)
			if err != nil {
				return nil, err
			}
			if d.Len() < k+2 {
				return nil, fmt.Errorf("experiments: profile %s too small (%d fingerprints) for k=%d", profile, d.Len(), k)
			}

			wrow, err := w4mRow(profile, k, d)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, wrow)

			out, st, err := core.Glove(d, core.GloveOptions{
				K:        k,
				Suppress: Table2GloveThresholds,
				Workers:  w.cfg.Workers,
			})
			if err != nil {
				return nil, err
			}
			grow, err := metrics.GloveRow(profile, k, d, out, st)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, grow)
		}
	}
	return res, nil
}

// w4mRow runs W4M-LC and converts its accounting into a Table 2 row.
func w4mRow(profile string, k int, d *core.Dataset) (metrics.Table2Row, error) {
	_, st, err := w4m.Run(d, w4m.DefaultOptions(k))
	if err != nil {
		return metrics.Table2Row{}, err
	}
	pctOf := func(part, whole int) float64 {
		if whole == 0 {
			return 0
		}
		return 100 * float64(part) / float64(whole)
	}
	return metrics.Table2Row{
		Algorithm: "W4M-LC",
		Dataset:   profile,
		K:         k,

		DiscardedFingerprints:    st.DiscardedFingerprints,
		DiscardedFingerprintsPct: pctOf(st.DiscardedFingerprints, st.InputFingerprints),
		CreatedSamples:           st.CreatedSamples,
		CreatedSamplesPct:        pctOf(st.CreatedSamples, st.InputSamples),
		DeletedSamples:           st.DeletedSamples + st.DiscardedSamples,
		DeletedSamplesPct:        pctOf(st.DeletedSamples+st.DiscardedSamples, st.InputSamples),
		MeanPositionErrorM:       st.MeanPositionError(),
		MeanTimeErrorMin:         st.MeanTimeError(),
	}, nil
}

// Render prints the table.
func (r *Table2Result) Render(out io.Writer) {
	fmt.Fprintln(out, "Table 2 — W4M-LC vs GLOVE")
	for _, row := range r.Rows {
		fmt.Fprintln(out, row.String())
	}
}

// Row returns the row for (algorithm, dataset, k), or false.
func (r *Table2Result) Row(algorithm, dataset string, k int) (metrics.Table2Row, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == algorithm && row.Dataset == dataset && row.K == k {
			return row, true
		}
	}
	return metrics.Table2Row{}, false
}
