// Package experiments reproduces every figure and table of the paper's
// evaluation (Secs. 5 and 7) on the synthetic D4D-like workloads. Each
// driver returns a structured result and can render it as the text
// series/rows the paper plots; DESIGN.md maps drivers to paper figures
// and EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/synth"
)

// Config scales the experiment workloads. The paper runs on 82k-320k
// subscribers; the defaults here are laptop-sized, and every driver
// scales with the config.
type Config struct {
	Users   int // subscribers per nationwide dataset
	Days    int // recording period
	Workers int // parallelism (<= 0: all CPUs)
}

// DefaultConfig returns the default experiment scale.
func DefaultConfig() Config {
	return Config{Users: 300, Days: 14}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Users < 10 {
		return fmt.Errorf("experiments: Users = %d, need >= 10", c.Users)
	}
	if c.Days < 1 {
		return fmt.Errorf("experiments: Days = %d", c.Days)
	}
	return nil
}

// Profile names accepted by Workloads.
const (
	ProfileCIV     = "civ"     // nationwide Ivory Coast-like
	ProfileSEN     = "sen"     // nationwide Senegal-like
	ProfileAbidjan = "abidjan" // largest-city subset of civ
	ProfileDakar   = "dakar"   // largest-city subset of sen
)

// NationwideProfiles lists the two full datasets.
func NationwideProfiles() []string { return []string{ProfileCIV, ProfileSEN} }

// AllProfiles lists the four datasets of Table 2.
func AllProfiles() []string {
	return []string{ProfileCIV, ProfileSEN, ProfileAbidjan, ProfileDakar}
}

// Workloads generates and caches the synthetic datasets shared by the
// experiment drivers. It is safe for concurrent use.
type Workloads struct {
	cfg Config

	mu        sync.Mutex
	tables    map[string]*cdr.Table
	datasets  map[string]*core.Dataset
	countries map[string]*synth.Country
}

// NewWorkloads returns a workload cache at the given scale.
func NewWorkloads(cfg Config) (*Workloads, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workloads{
		cfg:       cfg,
		tables:    make(map[string]*cdr.Table),
		datasets:  make(map[string]*core.Dataset),
		countries: make(map[string]*synth.Country),
	}, nil
}

// Config returns the workload scale.
func (w *Workloads) Config() Config { return w.cfg }

// Table returns the CDR table of a profile, generating it on first use.
func (w *Workloads) Table(profile string) (*cdr.Table, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tableLocked(profile)
}

func (w *Workloads) tableLocked(profile string) (*cdr.Table, error) {
	if t, ok := w.tables[profile]; ok {
		return t, nil
	}
	switch profile {
	case ProfileCIV, ProfileSEN:
		cfg := synth.CIV(w.cfg.Users)
		if profile == ProfileSEN {
			cfg = synth.SEN(w.cfg.Users)
		}
		cfg.Days = w.cfg.Days
		table, country, _, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		// The paper's civ screening: at least one sample per day.
		table = table.FilterMinRate(1)
		w.tables[profile] = table
		w.countries[profile] = country
		return table, nil

	case ProfileAbidjan, ProfileDakar:
		parent := ProfileCIV
		if profile == ProfileDakar {
			parent = ProfileSEN
		}
		pt, err := w.tableLocked(parent)
		if err != nil {
			return nil, err
		}
		country := w.countries[parent]
		// Largest city = city 0 of the Zipf system.
		cityCenter, err := country.Proj.Inverse(country.Cities[0].Center)
		if err != nil {
			return nil, err
		}
		radius := country.Cities[0].RadiusM*2 + 10000
		sub, err := pt.SubsetRegion(cityCenter, radius)
		if err != nil {
			return nil, err
		}
		if sub.Users() < 10 {
			return nil, fmt.Errorf("experiments: %s subset too small (%d users)", profile, sub.Users())
		}
		w.tables[profile] = sub
		return sub, nil

	default:
		return nil, fmt.Errorf("experiments: unknown profile %q", profile)
	}
}

// Dataset returns the fingerprint dataset of a profile.
func (w *Workloads) Dataset(profile string) (*core.Dataset, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d, ok := w.datasets[profile]; ok {
		return d, nil
	}
	t, err := w.tableLocked(profile)
	if err != nil {
		return nil, err
	}
	d, err := t.BuildDataset()
	if err != nil {
		return nil, err
	}
	w.datasets[profile] = d
	return d, nil
}
