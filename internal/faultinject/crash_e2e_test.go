//go:build faultinject

package faultinject_test

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/pkg/client"
)

// The kill/restart matrix: a real gloved binary (built with the
// faultinject tag) is crashed at each named point via GLOVE_CRASH,
// restarted, and driven through pkg/client to prove the recovery
// invariants — no torn releases, no lost committed windows, no
// double-published windows, and a mutation is applied iff it was
// journaled, regardless of whether the client saw the ack.

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func glovedBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "gloved-faultinject-*")
		if buildErr != nil {
			return
		}
		bin := filepath.Join(buildDir, "gloved")
		cmd := exec.Command("go", "build", "-tags", "faultinject", "-o", bin, "./cmd/gloved")
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building gloved: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return filepath.Join(buildDir, "gloved")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if buildDir != "" {
		os.RemoveAll(buildDir)
	}
	os.Exit(code)
}

type daemon struct {
	cmd    *exec.Cmd
	addr   string
	exit   chan error
	mu     sync.Mutex
	stderr bytes.Buffer
}

// startDaemon launches gloved against dataDir on an ephemeral port and
// waits for its "listening on" line. env arms crash points
// (GLOVE_CRASH / GLOVE_CRASH_SKIP); both are explicitly cleared when
// absent so stray environment can never arm a scenario.
func startDaemon(t *testing.T, dataDir string, env map[string]string, extraArgs ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-access-log=false"}, extraArgs...)
	d := &daemon{cmd: exec.Command(glovedBinary(t), args...), exit: make(chan error, 1)}
	crash, skip := "", ""
	if env != nil {
		crash, skip = env["GLOVE_CRASH"], env["GLOVE_CRASH_SKIP"]
	}
	d.cmd.Env = append(os.Environ(), "GLOVE_CRASH="+crash, "GLOVE_CRASH_SKIP="+skip)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if i := strings.Index(line, " listening on "); i >= 0 && strings.HasPrefix(line, "gloved:") {
				select {
				case addrCh <- strings.TrimSpace(line[i+len(" listening on "):]):
				default:
				}
			}
		}
	}()
	go func() { d.exit <- d.cmd.Wait() }()
	t.Cleanup(func() { d.cmd.Process.Kill() })
	select {
	case d.addr = <-addrCh:
	case err := <-d.exit:
		t.Fatalf("daemon exited before listening: %v\n%s", err, d.stderrText())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}
	return d
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// waitKilled asserts the daemon died at an armed crash point (exit 137).
func (d *daemon) waitKilled(t *testing.T) {
	t.Helper()
	select {
	case err := <-d.exit:
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 137 {
			t.Fatalf("daemon exit = %v, want the crash-point kill (137)\n%s", err, d.stderrText())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not die at the armed crash point\n%s", d.stderrText())
	}
}

// stop shuts the daemon down gracefully (SIGTERM → drain → checkpoint).
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.exit:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v\n%s", err, d.stderrText())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon ignored SIGTERM\n%s", d.stderrText())
	}
}

func newClient(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.New("http://"+addr, client.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// windowCSV builds an ingest/append body whose records all land in the
// 1 h window w, one record per user at distinct minutes.
func windowCSV(w int, users ...string) string {
	var b strings.Builder
	b.WriteString("user,lat,lon,minute\n")
	for i, u := range users {
		fmt.Fprintf(&b, "%s,7.5,-5.5,%d\n", u, w*60+i)
	}
	return b.String()
}

func windowRelease(t *testing.T, ctx context.Context, c *client.Client, jobID string, w int) []byte {
	t.Helper()
	rc, err := c.WindowResult(ctx, jobID, w)
	if err != nil {
		t.Fatalf("window %d: %v", w, err)
	}
	defer rc.Close()
	raw, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCrashTornDatasetCreate crashes mid-WAL-write of the very first
// journal frame (the dataset creation): the torn frame must be
// truncated at the next boot and the dataset must not exist — the
// client never saw an ack, so nothing durable may claim it happened.
func TestCrashTornDatasetCreate(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir := t.TempDir()

	d := startDaemon(t, dataDir, map[string]string{"GLOVE_CRASH": "wal.append.partial"})
	c := newClient(t, d.addr)
	if _, err := c.CreateDataset(ctx, strings.NewReader(windowCSV(0, "a", "b", "c")),
		client.IngestOptions{Name: "torn", Lat: 7.54, Lon: -5.55, Days: 1}); err == nil {
		t.Fatal("ingest survived an armed crash point")
	}
	d.waitKilled(t)

	d2 := startDaemon(t, dataDir, nil)
	defer d2.stop(t)
	c2 := newClient(t, d2.addr)
	all, err := c2.AllDatasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 0 {
		t.Fatalf("torn, unacknowledged ingest resurrected: %+v", all)
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Durability == nil || !m.Durability.TornTailRecovered || m.Durability.LastShutdownClean {
		t.Errorf("durability after torn-tail recovery: %+v", m.Durability)
	}
	// The feed can simply be re-sent: recovery left a consistent journal.
	if _, err := c2.CreateDataset(ctx, strings.NewReader(windowCSV(0, "a", "b", "c")),
		client.IngestOptions{Name: "torn", Lat: 7.54, Lon: -5.55, Days: 1}); err != nil {
		t.Fatalf("re-ingest after recovery: %v", err)
	}
}

// TestCrashAppendCommittedNotAcked crashes after an append was
// journaled and fsynced but before the client saw the 200: the mutation
// is durable, so the restarted daemon must serve it — re-sending the
// append would double-apply.
func TestCrashAppendCommittedNotAcked(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir := t.TempDir()

	d := startDaemon(t, dataDir, map[string]string{"GLOVE_CRASH": "registry.append.committed"})
	c := newClient(t, d.addr)
	// The create path commits without the append crash point, so this
	// succeeds even in the armed daemon.
	ds, err := c.CreateDataset(ctx, strings.NewReader(windowCSV(0, "a", "b", "c")),
		client.IngestOptions{Name: "feed", Lat: 7.54, Lon: -5.55, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendRecords(ctx, ds.ID, strings.NewReader(windowCSV(1, "a", "b"))); err == nil {
		t.Fatal("append survived an armed crash point")
	}
	d.waitKilled(t)

	d2 := startDaemon(t, dataDir, nil)
	defer d2.stop(t)
	c2 := newClient(t, d2.addr)
	got, err := c2.GetDataset(ctx, ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records != 5 {
		t.Fatalf("recovered dataset has %d records, want 5 (the fsynced append must be applied)", got.Records)
	}
}

// TestCrashFollowWindowCommitted is the streaming acceptance scenario:
// the daemon is killed between journaling a follow window's release and
// publishing it. The restart must treat the journaled release as
// committed — resume past it, serve exactly its bytes, publish exactly
// one done event per window — and the final output must be
// byte-identical to an uninterrupted control run of the same feed.
func TestCrashFollowWindowCommitted(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	spec := func(dsID string) client.JobSpec {
		return client.JobSpec{DatasetID: dsID, K: 2, Workers: 1, Shards: 1,
			WindowHours: 1, Follow: true, FollowWindows: 2}
	}
	feed := func(t *testing.T, c *client.Client, crashing bool) (client.DatasetInfo, client.JobStatus) {
		ds, err := c.CreateDataset(ctx, strings.NewReader(windowCSV(0, "a", "b", "c", "d")),
			client.IngestOptions{Name: "feed", Lat: 7.54, Lon: -5.55, Days: 1})
		if err != nil {
			t.Fatal(err)
		}
		job, err := c.SubmitJob(ctx, spec(ds.ID))
		if err != nil {
			t.Fatal(err)
		}
		// Window-1 records close window 0; wait for its commit so the
		// first crash-point hit is consumed before window 1 can close.
		if _, err := c.AppendRecords(ctx, ds.ID, strings.NewReader(windowCSV(1, "a", "b"))); err != nil {
			t.Fatalf("append window 1: %v", err)
		}
		for {
			st, err := c.GetJob(ctx, job.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Windows) > 0 && st.Windows[0].State == api.WindowDone {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Window-2 records close window 1, whose commit meets the
		// 2-window budget — and, in the armed daemon, kills the process,
		// racing this request's response; only the control run may
		// demand an ack.
		if _, err := c.AppendRecords(ctx, ds.ID, strings.NewReader(windowCSV(2, "c", "d"))); err != nil && !crashing {
			t.Fatalf("append window 2: %v", err)
		}
		return ds, job
	}

	// Control: the same feed against an uninterrupted daemon.
	ctrl := startDaemon(t, t.TempDir(), nil)
	cc := newClient(t, ctrl.addr)
	_, ctrlJob := feed(t, cc, false)
	if st, err := cc.WaitJob(ctx, ctrlJob.ID); err != nil || st.State != api.JobDone {
		t.Fatalf("control job = %+v, %v", st, err)
	}
	want0 := windowRelease(t, ctx, cc, ctrlJob.ID, 0)
	want1 := windowRelease(t, ctx, cc, ctrlJob.ID, 1)
	ctrl.stop(t)

	// Crash run: skip the window-0 commit, die at the window-1 commit —
	// after its release hit the journal, before it was published.
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir, map[string]string{
		"GLOVE_CRASH": "follow.window.committed", "GLOVE_CRASH_SKIP": "1"})
	c := newClient(t, d.addr)
	_, job := feed(t, c, true)
	d.waitKilled(t)

	d2 := startDaemon(t, dataDir, nil)
	defer d2.stop(t)
	c2 := newClient(t, d2.addr)
	final, err := c2.WaitJob(ctx, job.ID)
	if err != nil || final.State != api.JobDone {
		t.Fatalf("resumed job = %+v, %v", final, err)
	}
	if got := windowRelease(t, ctx, c2, job.ID, 0); !bytes.Equal(got, want0) {
		t.Error("window-0 release differs from the uninterrupted control run")
	}
	if got := windowRelease(t, ctx, c2, job.ID, 1); !bytes.Equal(got, want1) {
		t.Error("window-1 release (journaled but unpublished at the crash) differs from the control run")
	}
	// Exactly one done event per window in the recovered log: the
	// journaled-but-unpublished window must not commit twice.
	stream, err := c2.JobEvents(ctx, job.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	done := map[int]int{}
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Window != nil && ev.Window.State == api.WindowDone {
			done[ev.Window.Index]++
		}
	}
	if done[0] != 1 || done[1] != 1 {
		t.Errorf("window done events after recovery: %v, want exactly one per window", done)
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Durability == nil || m.Durability.RecoveredJobs["resumed"] != 1 {
		t.Errorf("durability after resume: %+v", m.Durability)
	}
}

// TestDrainCleanShutdown pins the graceful path: SIGTERM drains, writes
// the checkpoint and clean-shutdown marker, and the next boot both
// reports the clean shutdown and serves the checkpointed state.
func TestDrainCleanShutdown(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dataDir := t.TempDir()

	d := startDaemon(t, dataDir, nil)
	c := newClient(t, d.addr)
	ds, err := c.CreateDataset(ctx, strings.NewReader(windowCSV(0, "a", "b", "c")),
		client.IngestOptions{Name: "kept", Lat: 7.54, Lon: -5.55, Days: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.stop(t)
	if !strings.Contains(d.stderrText(), "journal checkpointed, shutdown clean") {
		t.Fatalf("no checkpoint confirmation in shutdown log:\n%s", d.stderrText())
	}

	d2 := startDaemon(t, dataDir, nil)
	defer d2.stop(t)
	c2 := newClient(t, d2.addr)
	got, err := c2.GetDataset(ctx, ds.ID)
	if err != nil || got.Records != ds.Records {
		t.Fatalf("checkpointed dataset after restart: %+v, %v", got, err)
	}
	m, err := c2.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Durability == nil || !m.Durability.LastShutdownClean {
		t.Errorf("clean shutdown not reported: %+v", m.Durability)
	}
}
