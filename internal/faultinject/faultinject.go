//go:build faultinject

// Package faultinject provides named crash points for the kill/restart
// recovery test matrix. In default builds (no `faultinject` build tag)
// every function is a no-op compiled to nothing; under `-tags
// faultinject` a process started with GLOVE_CRASH=<point> exits with
// status 137 — the kill -9 exit code — at the matching crash point,
// after GLOVE_CRASH_SKIP earlier hits of that same point have been let
// through.
package faultinject

import (
	"os"
	"strconv"
	"sync/atomic"
)

// Enabled reports whether crash points are compiled into this binary.
const Enabled = true

var (
	point = os.Getenv("GLOVE_CRASH")
	skip  = envInt("GLOVE_CRASH_SKIP")
	count atomic.Int64
)

func envInt(key string) int64 {
	n, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		return 0
	}
	return int64(n)
}

// Armed reports whether this hit of the named crash point should crash
// the process: name matches GLOVE_CRASH and GLOVE_CRASH_SKIP earlier
// hits of this point have already been let through. Callers that need
// to do damage (e.g. a deliberate partial write) before dying check
// Armed, act, then call Kill; everyone else uses Crash.
func Armed(name string) bool {
	if point == "" || name != point {
		return false
	}
	return count.Add(1) == skip+1
}

// Kill terminates the process immediately with the kill -9 exit code.
func Kill() {
	os.Exit(137)
}

// Crash kills the process if the named point is armed for this hit.
func Crash(name string) {
	if Armed(name) {
		Kill()
	}
}
