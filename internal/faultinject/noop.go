//go:build !faultinject

package faultinject

// Enabled reports whether crash points are compiled into this binary.
// Without the `faultinject` build tag every crash point is a no-op the
// compiler can erase.
const Enabled = false

// Armed always reports false in default builds.
func Armed(string) bool { return false }

// Kill is a no-op in default builds (unreachable: Armed is never true).
func Kill() {}

// Crash is a no-op in default builds.
func Crash(string) {}
