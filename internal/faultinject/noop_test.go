//go:build !faultinject

package faultinject

import "testing"

// In default builds the crash points must be inert no matter what the
// environment says — a production gloved with GLOVE_CRASH set by
// accident must not die.
func TestNoopBuildIsInert(t *testing.T) {
	t.Setenv("GLOVE_CRASH", "wal.append.partial")
	if Enabled {
		t.Fatal("Enabled must be false without the faultinject build tag")
	}
	if Armed("wal.append.partial") {
		t.Fatal("Armed must be false without the faultinject build tag")
	}
	Crash("wal.append.partial") // must not exit
	Kill()                      // must not exit
}
