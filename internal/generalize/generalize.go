// Package generalize implements the legacy anonymization baseline the
// paper evaluates in Sec. 5.2 (Fig. 4): uniform spatiotemporal
// generalization, where every sample of every fingerprint is coarsened
// to the same spatial and temporal granularity. The paper shows this
// approach cannot k-anonymize mobile traffic datasets at any useful
// granularity — the motivation for GLOVE's specialized generalization.
package generalize

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Level is one uniform generalization setting, e.g. {2500, 60} for the
// paper's "2.5-60" (2.5 km, 60 min) curve.
type Level struct {
	SpatialMeters   float64
	TemporalMinutes float64
}

func (l Level) String() string {
	return fmt.Sprintf("%g-%g", l.SpatialMeters/1000, l.TemporalMinutes)
}

// Validate checks the level is usable.
func (l Level) Validate() error {
	if l.SpatialMeters <= 0 || l.TemporalMinutes <= 0 {
		return fmt.Errorf("generalize: non-positive level %+v", l)
	}
	return nil
}

// PaperLevels returns the six generalization levels of Fig. 4, labeled
// km-min: 0.1-1, 1-30, 2.5-60, 5-120, 10-240, 20-480.
func PaperLevels() []Level {
	return []Level{
		{100, 1},
		{1000, 30},
		{2500, 60},
		{5000, 120},
		{10000, 240},
		{20000, 480},
	}
}

// Dataset returns a copy of d with every sample generalized to the
// level's granularity: each sample is replaced by the aligned
// spatiotemporal cell(s) covering it, so truthfulness is preserved.
// Consecutive samples that become identical are coalesced (their weights
// summed), mirroring how a released coarse dataset would be encoded.
func Dataset(d *core.Dataset, l Level) (*core.Dataset, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	out := d.Clone()
	for _, f := range out.Fingerprints {
		for i := range f.Samples {
			f.Samples[i] = Sample(f.Samples[i], l)
		}
		f.Samples = coalesce(f.Samples)
	}
	return out, nil
}

// Sample generalizes one sample to the level's granularity. The result
// is the smallest grid-aligned box (spatial pitch l.SpatialMeters,
// temporal pitch l.TemporalMinutes) covering the input, so the output
// always covers the original sample.
func Sample(s core.Sample, l Level) core.Sample {
	x0 := math.Floor(s.X/l.SpatialMeters) * l.SpatialMeters
	x1 := math.Ceil((s.X+s.DX)/l.SpatialMeters) * l.SpatialMeters
	if x1 <= x0 { // degenerate zero-extent sample on a boundary
		x1 = x0 + l.SpatialMeters
	}
	y0 := math.Floor(s.Y/l.SpatialMeters) * l.SpatialMeters
	y1 := math.Ceil((s.Y+s.DY)/l.SpatialMeters) * l.SpatialMeters
	if y1 <= y0 {
		y1 = y0 + l.SpatialMeters
	}
	t0 := math.Floor(s.T/l.TemporalMinutes) * l.TemporalMinutes
	t1 := math.Ceil((s.T+s.DT)/l.TemporalMinutes) * l.TemporalMinutes
	if t1 <= t0 {
		t1 = t0 + l.TemporalMinutes
	}
	return core.Sample{
		X: x0, DX: x1 - x0,
		Y: y0, DY: y1 - y0,
		T: t0, DT: t1 - t0,
		Weight: s.Weight,
	}
}

// coalesce merges runs of identical adjacent samples (same cell, same
// interval), summing weights. Samples arrive time-sorted.
func coalesce(samples []core.Sample) []core.Sample {
	if len(samples) <= 1 {
		return samples
	}
	out := samples[:1]
	for _, s := range samples[1:] {
		last := &out[len(out)-1]
		if s.X == last.X && s.DX == last.DX && s.Y == last.Y && s.DY == last.DY &&
			s.T == last.T && s.DT == last.DT {
			last.Weight += s.Weight
			continue
		}
		out = append(out, s)
	}
	return out
}
