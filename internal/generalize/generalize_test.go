package generalize

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestLevelValidateAndString(t *testing.T) {
	if err := (Level{1000, 30}).Validate(); err != nil {
		t.Error(err)
	}
	for _, l := range []Level{{0, 30}, {1000, 0}, {-1, -1}} {
		if err := l.Validate(); err == nil {
			t.Errorf("bad level %+v accepted", l)
		}
	}
	if got := (Level{2500, 60}).String(); got != "2.5-60" {
		t.Errorf("String = %q", got)
	}
}

func TestPaperLevels(t *testing.T) {
	ls := PaperLevels()
	if len(ls) != 6 {
		t.Fatalf("got %d levels", len(ls))
	}
	if ls[0] != (Level{100, 1}) || ls[5] != (Level{20000, 480}) {
		t.Errorf("levels = %v", ls)
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].SpatialMeters <= ls[i-1].SpatialMeters {
			t.Error("levels not increasing")
		}
	}
}

func TestSampleCoversOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := Level{2500, 60}
	for i := 0; i < 2000; i++ {
		s := core.Sample{
			X: rng.Float64()*2e5 - 1e5, DX: rng.Float64() * 500,
			Y: rng.Float64()*2e5 - 1e5, DY: rng.Float64() * 500,
			T: rng.Float64() * 20000, DT: rng.Float64() * 100,
			Weight: 1,
		}
		g := Sample(s, l)
		if !g.Covers(s) {
			t.Fatalf("generalized sample does not cover original: %+v -> %+v", s, g)
		}
		if g.DX < l.SpatialMeters || g.DY < l.SpatialMeters || g.DT < l.TemporalMinutes {
			t.Fatalf("generalized sample finer than level: %+v", g)
		}
	}
}

func TestSampleAligned(t *testing.T) {
	l := Level{1000, 30}
	s := core.Sample{X: 1234, DX: 100, Y: -567, DY: 100, T: 100, DT: 1, Weight: 2}
	g := Sample(s, l)
	if g.X != 1000 || g.DX != 1000 {
		t.Errorf("x generalization = [%g, +%g]", g.X, g.DX)
	}
	if g.Y != -1000 || g.DY != 1000 {
		t.Errorf("y generalization = [%g, +%g]", g.Y, g.DY)
	}
	if g.T != 90 || g.DT != 30 {
		t.Errorf("t generalization = [%g, +%g]", g.T, g.DT)
	}
	if g.Weight != 2 {
		t.Errorf("weight = %d", g.Weight)
	}
}

func TestSampleCrossingBoundary(t *testing.T) {
	l := Level{1000, 30}
	s := core.Sample{X: 950, DX: 100, Y: 0, DY: 100, T: 29, DT: 2, Weight: 1}
	g := Sample(s, l)
	if g.X != 0 || g.DX != 2000 {
		t.Errorf("boundary-crossing x = [%g, +%g], want [0, +2000]", g.X, g.DX)
	}
	if g.T != 0 || g.DT != 60 {
		t.Errorf("boundary-crossing t = [%g, +%g], want [0, +60]", g.T, g.DT)
	}
}

func TestSampleDegenerateOnBoundary(t *testing.T) {
	l := Level{1000, 30}
	s := core.Sample{X: 1000, DX: 0, Y: 2000, DY: 0, T: 30, DT: 0, Weight: 1}
	g := Sample(s, l)
	if g.DX != 1000 || g.DY != 1000 || g.DT != 30 {
		t.Errorf("degenerate sample got zero-extent cell: %+v", g)
	}
	if !g.Covers(s) {
		t.Error("degenerate sample not covered")
	}
}

func TestDatasetGeneralization(t *testing.T) {
	fps := []*core.Fingerprint{
		core.NewFingerprint("a", []core.Sample{
			core.NewSample(100, 100, 100, 5, 1),
			core.NewSample(150, 120, 100, 8, 1), // same 1km/30min cell
			core.NewSample(5000, 100, 100, 200, 1),
		}),
	}
	d := core.NewDataset(fps)
	out, err := Dataset(d, Level{1000, 30})
	if err != nil {
		t.Fatal(err)
	}
	f := out.Fingerprints[0]
	if f.Len() != 2 {
		t.Fatalf("coalesced to %d samples, want 2", f.Len())
	}
	if f.Samples[0].Weight != 2 {
		t.Errorf("coalesced weight = %d, want 2", f.Samples[0].Weight)
	}
	// Input untouched.
	if d.Fingerprints[0].Len() != 3 {
		t.Error("generalization modified input")
	}
	if _, err := Dataset(d, Level{}); err == nil {
		t.Error("invalid level accepted")
	}
}

// Coarser generalization must never increase the k-gap: the dataset can
// only become easier to anonymize (the monotonicity behind Fig. 4).
func TestGeneralizationReducesKGap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fps := make([]*core.Fingerprint, 30)
	for i := range fps {
		n := 3 + rng.Intn(10)
		samples := make([]core.Sample, n)
		for j := range samples {
			samples[j] = core.Sample{
				X: rng.Float64() * 3e4, DX: 100,
				Y: rng.Float64() * 3e4, DY: 100,
				T: rng.Float64() * 5000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(string(rune('a'+i%26))+string(rune('0'+i/26)), samples)
	}
	d := core.NewDataset(fps)
	p := core.DefaultParams()

	base, err := core.KGapAll(p, d, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := mean(core.KGaps(base))
	for _, l := range []Level{{1000, 30}, {5000, 120}, {20000, 480}} {
		g, err := Dataset(d, l)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := core.KGapAll(p, g, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		cur := mean(core.KGaps(rs))
		if cur > prev+0.02 {
			t.Errorf("level %v increased mean k-gap: %.4f -> %.4f", l, prev, cur)
		}
		prev = cur
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
