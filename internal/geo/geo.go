// Package geo provides the geographic substrate used by the GLOVE
// reproduction: WGS84 coordinates, the Lambert azimuthal equal-area
// projection the paper uses to map antenna positions to a plane, and the
// 100 m regular grid on which positions are discretized (Sec. 3 of the
// paper).
//
// All planar coordinates are expressed in meters. The projection is the
// spherical form of the Lambert azimuthal equal-area projection (Snyder,
// "Map Projections: A Working Manual", USGS 1987, Eqs. 24-2..24-4), which
// is accurate to well below the 100 m grid pitch over country-scale
// extents.
package geo

import (
	"errors"
	"fmt"
	"math"
)

// EarthRadiusMeters is the authalic sphere radius used by the spherical
// Lambert azimuthal equal-area projection.
const EarthRadiusMeters = 6371007.1809

// GridPitchMeters is the spatial discretization pitch: the paper snaps
// antenna positions to a 100 m regular grid, its maximum spatial
// granularity.
const GridPitchMeters = 100.0

// LatLon is a WGS84 geographic coordinate in decimal degrees.
type LatLon struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

// Valid reports whether the coordinate lies in the legal WGS84 range.
func (ll LatLon) Valid() bool {
	return ll.Lat >= -90 && ll.Lat <= 90 && ll.Lon >= -180 && ll.Lon <= 180 &&
		!math.IsNaN(ll.Lat) && !math.IsNaN(ll.Lon)
}

func (ll LatLon) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", ll.Lat, ll.Lon)
}

// Point is a position on the projected plane, in meters.
type Point struct {
	X float64 // meters east of the projection center
	Y float64 // meters north of the projection center
}

// Dist returns the Euclidean distance in meters between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Projection is a Lambert azimuthal equal-area projection centered on a
// reference coordinate. The zero value is not usable; construct one with
// NewProjection.
type Projection struct {
	center  LatLon
	sinPhi1 float64
	cosPhi1 float64
	lambda0 float64 // radians
	radius  float64
}

// NewProjection returns a Lambert azimuthal equal-area projection centered
// at the given coordinate.
func NewProjection(center LatLon) (*Projection, error) {
	if !center.Valid() {
		return nil, fmt.Errorf("geo: invalid projection center %v", center)
	}
	phi1 := center.Lat * math.Pi / 180
	return &Projection{
		center:  center,
		sinPhi1: math.Sin(phi1),
		cosPhi1: math.Cos(phi1),
		lambda0: center.Lon * math.Pi / 180,
		radius:  EarthRadiusMeters,
	}, nil
}

// Center returns the projection center.
func (p *Projection) Center() LatLon { return p.center }

// ErrAntipodal is returned when projecting the point antipodal to the
// projection center, where the Lambert azimuthal equal-area projection is
// undefined.
var ErrAntipodal = errors.New("geo: point is antipodal to projection center")

// Forward projects a WGS84 coordinate onto the plane. It returns
// ErrAntipodal for the (single) point where the projection is undefined.
func (p *Projection) Forward(ll LatLon) (Point, error) {
	if !ll.Valid() {
		return Point{}, fmt.Errorf("geo: invalid coordinate %v", ll)
	}
	phi := ll.Lat * math.Pi / 180
	lambda := ll.Lon * math.Pi / 180
	sinPhi, cosPhi := math.Sin(phi), math.Cos(phi)
	cosDLambda := math.Cos(lambda - p.lambda0)

	// kPrime = sqrt(2 / (1 + sin φ1 sin φ + cos φ1 cos φ cos(λ-λ0)))
	denom := 1 + p.sinPhi1*sinPhi + p.cosPhi1*cosPhi*cosDLambda
	if denom <= 1e-12 {
		return Point{}, ErrAntipodal
	}
	kPrime := math.Sqrt(2 / denom)

	x := p.radius * kPrime * cosPhi * math.Sin(lambda-p.lambda0)
	y := p.radius * kPrime * (p.cosPhi1*sinPhi - p.sinPhi1*cosPhi*cosDLambda)
	return Point{X: x, Y: y}, nil
}

// Inverse maps a planar point back to a WGS84 coordinate.
func (p *Projection) Inverse(pt Point) (LatLon, error) {
	rho := math.Hypot(pt.X, pt.Y)
	if rho == 0 {
		return p.center, nil
	}
	if rho > 2*p.radius {
		return LatLon{}, fmt.Errorf("geo: point (%g, %g) outside projection disc", pt.X, pt.Y)
	}
	c := 2 * math.Asin(rho/(2*p.radius))
	sinC, cosC := math.Sin(c), math.Cos(c)

	phi := math.Asin(cosC*p.sinPhi1 + pt.Y*sinC*p.cosPhi1/rho)
	lambda := p.lambda0 + math.Atan2(pt.X*sinC, rho*p.cosPhi1*cosC-pt.Y*p.sinPhi1*sinC)

	return LatLon{Lat: phi * 180 / math.Pi, Lon: lambda * 180 / math.Pi}, nil
}

// Cell identifies one cell of the regular discretization grid by its
// integer column and row indices.
type Cell struct {
	Col int64
	Row int64
}

// Grid discretizes the projected plane on a regular grid. The zero value
// uses GridPitchMeters; a custom pitch can be set for tests.
type Grid struct {
	// Pitch is the cell edge length in meters; zero means GridPitchMeters.
	Pitch float64
}

func (g Grid) pitch() float64 {
	if g.Pitch > 0 {
		return g.Pitch
	}
	return GridPitchMeters
}

// CellOf returns the grid cell containing a point. Points on a cell
// boundary belong to the cell to their north-east, matching floor
// semantics.
func (g Grid) CellOf(pt Point) Cell {
	p := g.pitch()
	return Cell{
		Col: int64(math.Floor(pt.X / p)),
		Row: int64(math.Floor(pt.Y / p)),
	}
}

// Origin returns the south-west corner of a cell.
func (g Grid) Origin(c Cell) Point {
	p := g.pitch()
	return Point{X: float64(c.Col) * p, Y: float64(c.Row) * p}
}

// Snap returns the south-west corner of the cell containing pt: the
// canonical discretized representation of the point.
func (g Grid) Snap(pt Point) Point {
	return g.Origin(g.CellOf(pt))
}

// Center returns the center of a cell.
func (g Grid) Center(c Cell) Point {
	p := g.pitch()
	o := g.Origin(c)
	return Point{X: o.X + p/2, Y: o.Y + p/2}
}

// Box is an axis-aligned rectangle on the projected plane, described by
// its south-west corner and non-negative extents, mirroring the spatial
// tuple σ = (x, dx, y, dy) of the paper.
type Box struct {
	X, Y   float64 // south-west corner, meters
	DX, DY float64 // extents, meters (>= 0)
}

// BoxAround returns the grid-aligned box of one grid cell containing pt.
func (g Grid) BoxAround(pt Point) Box {
	o := g.Snap(pt)
	p := g.pitch()
	return Box{X: o.X, Y: o.Y, DX: p, DY: p}
}

// Contains reports whether the box contains the point (boundaries
// inclusive).
func (b Box) Contains(pt Point) bool {
	return pt.X >= b.X && pt.X <= b.X+b.DX && pt.Y >= b.Y && pt.Y <= b.Y+b.DY
}

// Covers reports whether b fully contains o.
func (b Box) Covers(o Box) bool {
	return o.X >= b.X && o.Y >= b.Y &&
		o.X+o.DX <= b.X+b.DX && o.Y+o.DY <= b.Y+b.DY
}

// Union returns the smallest box covering both b and o: the geometric
// realization of the paper's generalization operator (Eqs. 12-13) in
// space.
func (b Box) Union(o Box) Box {
	x := math.Min(b.X, o.X)
	y := math.Min(b.Y, o.Y)
	x2 := math.Max(b.X+b.DX, o.X+o.DX)
	y2 := math.Max(b.Y+b.DY, o.Y+o.DY)
	return Box{X: x, Y: y, DX: x2 - x, DY: y2 - y}
}

// Center returns the center point of the box.
func (b Box) Center() Point {
	return Point{X: b.X + b.DX/2, Y: b.Y + b.DY/2}
}

// Span returns the larger of the two extents, used as the position
// accuracy of a generalized sample.
func (b Box) Span() float64 {
	return math.Max(b.DX, b.DY)
}
