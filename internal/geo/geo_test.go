package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLatLonValid(t *testing.T) {
	cases := []struct {
		ll   LatLon
		want bool
	}{
		{LatLon{0, 0}, true},
		{LatLon{7.54, -5.55}, true},   // Ivory Coast
		{LatLon{14.49, -14.45}, true}, // Senegal
		{LatLon{90, 180}, true},
		{LatLon{-90, -180}, true},
		{LatLon{90.01, 0}, false},
		{LatLon{0, 180.5}, false},
		{LatLon{math.NaN(), 0}, false},
		{LatLon{0, math.NaN()}, false},
	}
	for _, c := range cases {
		if got := c.ll.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.ll, got, c.want)
		}
	}
}

func TestNewProjectionRejectsInvalidCenter(t *testing.T) {
	if _, err := NewProjection(LatLon{Lat: 91}); err == nil {
		t.Fatal("NewProjection accepted an invalid center")
	}
}

func TestForwardCenterIsOrigin(t *testing.T) {
	p, err := NewProjection(LatLon{Lat: 7.54, Lon: -5.55})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := p.Forward(p.Center())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt.X) > 1e-6 || math.Abs(pt.Y) > 1e-6 {
		t.Errorf("center projects to (%g, %g), want origin", pt.X, pt.Y)
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	p, err := NewProjection(LatLon{Lat: 14.49, Lon: -14.45})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ll := LatLon{
			Lat: p.Center().Lat + (rng.Float64()-0.5)*8,
			Lon: p.Center().Lon + (rng.Float64()-0.5)*8,
		}
		pt, err := p.Forward(ll)
		if err != nil {
			t.Fatalf("Forward(%v): %v", ll, err)
		}
		back, err := p.Inverse(pt)
		if err != nil {
			t.Fatalf("Inverse(%v): %v", pt, err)
		}
		if math.Abs(back.Lat-ll.Lat) > 1e-9 || math.Abs(back.Lon-ll.Lon) > 1e-9 {
			t.Fatalf("round trip %v -> %v -> %v", ll, pt, back)
		}
	}
}

func TestForwardDistancesAreMetric(t *testing.T) {
	// One degree of latitude is ~111.2 km on the authalic sphere; near the
	// projection center the planar distance must match closely.
	p, err := NewProjection(LatLon{Lat: 7.5, Lon: -5.5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Forward(LatLon{Lat: 7.5, Lon: -5.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Forward(LatLon{Lat: 8.5, Lon: -5.5})
	if err != nil {
		t.Fatal(err)
	}
	want := EarthRadiusMeters * math.Pi / 180
	if got := a.Dist(b); math.Abs(got-want) > 50 {
		t.Errorf("1 degree latitude = %.1f m, want ~%.1f m", got, want)
	}
}

func TestForwardEqualArea(t *testing.T) {
	// The projection must preserve areas: a small quadrangle far from the
	// center has (near) the same planar area as its spherical area.
	p, err := NewProjection(LatLon{Lat: 7.5, Lon: -5.5})
	if err != nil {
		t.Fatal(err)
	}
	const d = 0.01 // degrees
	for _, off := range []LatLon{{0, 0}, {3, 3}, {-4, 2}, {5, -5}} {
		lat := 7.5 + off.Lat
		lon := -5.5 + off.Lon
		corners := []LatLon{
			{lat, lon}, {lat, lon + d}, {lat + d, lon + d}, {lat + d, lon},
		}
		pts := make([]Point, 4)
		for i, c := range corners {
			pts[i], err = p.Forward(c)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Shoelace formula.
		var area float64
		for i := 0; i < 4; i++ {
			j := (i + 1) % 4
			area += pts[i].X*pts[j].Y - pts[j].X*pts[i].Y
		}
		area = math.Abs(area) / 2
		// Spherical area of the quadrangle.
		rad := math.Pi / 180
		sph := EarthRadiusMeters * EarthRadiusMeters * d * rad *
			(math.Sin((lat+d)*rad) - math.Sin(lat*rad))
		if rel := math.Abs(area-sph) / sph; rel > 1e-6 {
			t.Errorf("area at offset %v: planar %.1f vs spherical %.1f (rel %g)", off, area, sph, rel)
		}
	}
}

func TestForwardAntipodal(t *testing.T) {
	p, err := NewProjection(LatLon{Lat: 10, Lon: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward(LatLon{Lat: -10, Lon: -160}); err == nil {
		t.Error("Forward of antipodal point did not fail")
	}
}

func TestForwardRejectsInvalid(t *testing.T) {
	p, err := NewProjection(LatLon{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Forward(LatLon{Lat: 400}); err == nil {
		t.Error("Forward accepted invalid coordinate")
	}
}

func TestGridSnapIdempotent(t *testing.T) {
	g := Grid{}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		// Stay within a country-scale range to avoid float blowup.
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		s := g.Snap(Point{x, y})
		return g.Snap(s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridCellOfBoundaries(t *testing.T) {
	g := Grid{Pitch: 100}
	cases := []struct {
		pt   Point
		want Cell
	}{
		{Point{0, 0}, Cell{0, 0}},
		{Point{99.999, 99.999}, Cell{0, 0}},
		{Point{100, 100}, Cell{1, 1}},
		{Point{-0.001, 0}, Cell{-1, 0}},
		{Point{-100, -100}, Cell{-1, -1}},
		{Point{-100.001, 0}, Cell{-2, 0}},
	}
	for _, c := range cases {
		if got := g.CellOf(c.pt); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.pt, got, c.want)
		}
	}
}

func TestGridCenterInsideCell(t *testing.T) {
	g := Grid{Pitch: 250}
	c := Cell{Col: 3, Row: -2}
	ctr := g.Center(c)
	if g.CellOf(ctr) != c {
		t.Errorf("center %v of cell %v maps to cell %v", ctr, c, g.CellOf(ctr))
	}
}

func TestGridDefaultPitch(t *testing.T) {
	g := Grid{}
	b := g.BoxAround(Point{X: 12345, Y: -678})
	if b.DX != GridPitchMeters || b.DY != GridPitchMeters {
		t.Errorf("default pitch box = %+v, want %v m extents", b, GridPitchMeters)
	}
	if !b.Contains(Point{X: 12345, Y: -678}) {
		t.Error("BoxAround does not contain its seed point")
	}
}

func TestBoxUnionCovers(t *testing.T) {
	f := func(x1, y1, dx1, dy1, x2, y2, dx2, dy2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 1e5) }
		a := Box{X: math.Mod(x1, 1e5), Y: math.Mod(y1, 1e5), DX: norm(dx1), DY: norm(dy1)}
		b := Box{X: math.Mod(x2, 1e5), Y: math.Mod(y2, 1e5), DX: norm(dx2), DY: norm(dy2)}
		if math.IsNaN(a.X + a.Y + a.DX + a.DY + b.X + b.Y + b.DX + b.DY) {
			return true
		}
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBoxUnionMinimal(t *testing.T) {
	a := Box{X: 0, Y: 0, DX: 100, DY: 100}
	b := Box{X: 300, Y: 500, DX: 100, DY: 100}
	u := a.Union(b)
	want := Box{X: 0, Y: 0, DX: 400, DY: 600}
	if u != want {
		t.Errorf("Union = %+v, want %+v", u, want)
	}
}

func TestBoxUnionCommutativeIdempotent(t *testing.T) {
	a := Box{X: -50, Y: 20, DX: 10, DY: 40}
	b := Box{X: 5, Y: -5, DX: 300, DY: 1}
	if a.Union(b) != b.Union(a) {
		t.Error("Union is not commutative")
	}
	if a.Union(a) != a {
		t.Error("Union is not idempotent")
	}
}

func TestBoxSpanAndCenter(t *testing.T) {
	b := Box{X: 100, Y: 200, DX: 300, DY: 50}
	if b.Span() != 300 {
		t.Errorf("Span = %g, want 300", b.Span())
	}
	if c := b.Center(); c.X != 250 || c.Y != 225 {
		t.Errorf("Center = %+v, want (250, 225)", c)
	}
}

func TestInverseOutsideDisc(t *testing.T) {
	p, err := NewProjection(LatLon{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Inverse(Point{X: 3 * EarthRadiusMeters}); err == nil {
		t.Error("Inverse accepted point outside projection disc")
	}
}

func BenchmarkForward(b *testing.B) {
	p, err := NewProjection(LatLon{Lat: 7.5, Lon: -5.5})
	if err != nil {
		b.Fatal(err)
	}
	ll := LatLon{Lat: 8.1, Lon: -4.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Forward(ll); err != nil {
			b.Fatal(err)
		}
	}
}
