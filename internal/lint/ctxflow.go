package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxflow enforces context threading: a function that accepts
// a context.Context must pass that context (or one derived from it)
// down, never mint a fresh root with context.Background() or
// context.TODO() — a fresh root silently detaches the callee from the
// caller's cancellation, which is how a cancelled job keeps computing.
// Boot, replay, and shutdown roots whose work must deliberately
// outlive the inbound context are named on the configured allowlist
// (Config.CtxflowAllow) or annotated //lint:ignore ctxflow with the
// reason.
//
// Blind spots: a function without a ctx parameter may mint roots
// freely (the convenience wrappers core.Glove / parallel.For are
// exactly that shape), and passing the right ctx to the wrong callee
// is not detectable here.
var AnalyzerCtxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions that accept a context.Context must thread it, not mint context.Background()/TODO() (allowlist for boot/replay roots)",
	Run:  runCtxflow,
}

func runCtxflow(prog *Program, r *Reporter) {
	allow := make(map[string]bool, len(prog.Config.CtxflowAllow))
	for _, a := range prog.Config.CtxflowAllow {
		allow[a] = true
	}
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !acceptsContext(pkg.Info, fd.Type) {
					continue
				}
				if allow[qualifiedName(pkg, fd)] {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg.Info, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
						return true
					}
					if fn.Name() == "Background" || fn.Name() == "TODO" {
						r.Reportf(call.Pos(), "%s accepts a context.Context but mints context.%s(); thread the caller's ctx, or allowlist this boot/replay root (//lint:ignore ctxflow with a reason for one-off exceptions)",
							qualifiedName(pkg, fd), fn.Name())
					}
					return true
				})
			}
		}
	}
}

// acceptsContext reports whether the function type has a
// context.Context parameter.
func acceptsContext(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, p := range ft.Params.List {
		if tv, ok := info.Types[p.Type]; ok && isNamedType(tv.Type, "context", "Context") {
			return true
		}
	}
	return false
}

// qualifiedName renders "repro/cmd/gloved.run" or
// "repro/internal/service.(*Manager).Submit" — the allowlist key.
func qualifiedName(pkg *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := fd.Recv.List[0].Type
		if star, ok := recv.(*ast.StarExpr); ok {
			if id, ok := star.X.(*ast.Ident); ok {
				return pkg.Path + ".(*" + id.Name + ")." + name
			}
		}
		if id, ok := recv.(*ast.Ident); ok {
			return pkg.Path + ".(" + id.Name + ")." + name
		}
	}
	return pkg.Path + "." + name
}
