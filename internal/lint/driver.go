package lint

import (
	"fmt"
	"sort"
)

// Run loads the module described by cfg and applies the selected
// analyzers, returning the surviving findings sorted by position.
// Load problems (parse errors, type errors, import cycles) come back
// as [load] findings; they never abort the run, so one malformed
// package cannot hide findings in the rest of the tree.
func Run(cfg Config) ([]Finding, error) {
	prog, findings, err := LoadModule(cfg)
	if err != nil {
		return nil, err
	}
	selected, err := Select(cfg.Enable, cfg.Disable)
	if err != nil {
		return nil, err
	}
	for _, a := range selected {
		r := &Reporter{fset: prog.Fset, analyzer: a.Name, findings: &findings}
		a.Run(prog, r)
	}
	dirs := collectIgnores(prog, &findings)
	kept := findings[:0]
	for _, fi := range findings {
		if !suppressed(fi, dirs) {
			kept = append(kept, fi)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept, nil
}

// Select resolves enable/disable name lists against the registered
// suite. An unknown name is an error — a typo in -enable silently
// running zero analyzers would be a hollow gate.
func Select(enable, disable []string) ([]*Analyzer, error) {
	all := Analyzers()
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	check := func(names []string) error {
		for _, n := range names {
			if byName[n] == nil {
				return fmt.Errorf("lint: unknown analyzer %q", n)
			}
		}
		return nil
	}
	if err := check(enable); err != nil {
		return nil, err
	}
	if err := check(disable); err != nil {
		return nil, err
	}
	off := make(map[string]bool, len(disable))
	for _, n := range disable {
		off[n] = true
	}
	var selected []*Analyzer
	if len(enable) > 0 {
		for _, n := range enable {
			if !off[n] {
				selected = append(selected, byName[n])
			}
		}
		return selected, nil
	}
	for _, a := range all {
		if !off[a.Name] {
			selected = append(selected, a)
		}
	}
	return selected, nil
}
