package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBrokenPackageReported: a package that fails to parse must become
// a [load] finding, not a crash, and the rest of the module must still
// be analyzed.
func TestBrokenPackageReported(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n\nfunc broken( {\n")
	writeFile(t, filepath.Join(dir, "app", "app.go"), `package app

import "context"

func use(ctx context.Context) {}

func Bad(ctx context.Context) {
	use(context.Background())
}
`)
	findings, err := Run(Config{Root: dir, ModPath: "repro"})
	if err != nil {
		t.Fatalf("Run must not fail on a malformed package: %v", err)
	}
	var loads, ctxflows int
	for _, f := range findings {
		switch f.Analyzer {
		case "load":
			loads++
		case "ctxflow":
			ctxflows++
		}
	}
	if loads == 0 {
		t.Errorf("parse error not reported as a [load] finding: %v", findings)
	}
	if ctxflows != 1 {
		t.Errorf("healthy sibling package not analyzed past the broken one: %v", findings)
	}
}

// TestIgnoreDirectiveNeedsReason: an ignore directive without a reason
// (or without an analyzer list) is itself a finding and suppresses
// nothing.
func TestIgnoreDirectiveNeedsReason(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "badignore"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(Config{Root: dir, ModPath: "repro"})
	if err != nil {
		t.Fatal(err)
	}
	var missingReason, noAnalyzer, unsuppressed int
	for _, f := range findings {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "missing a reason"):
			missingReason++
		case f.Analyzer == "lint" && strings.Contains(f.Message, "without an analyzer"):
			noAnalyzer++
		case f.Analyzer == "ctxflow":
			unsuppressed++
		}
	}
	if missingReason != 1 {
		t.Errorf("want exactly one missing-reason finding, got %d (%v)", missingReason, findings)
	}
	if noAnalyzer != 1 {
		t.Errorf("want exactly one missing-analyzer finding, got %d (%v)", noAnalyzer, findings)
	}
	if unsuppressed != 2 {
		t.Errorf("malformed directives must not suppress: want 2 ctxflow findings, got %d (%v)", unsuppressed, findings)
	}
}

// TestFindingsJSONRoundTrip: the -json output is a faithful encoding —
// findings survive encoding/json both ways.
func TestFindingsJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{File: "a.go", Line: 3, Col: 7, Analyzer: "errcode", Message: `error code "x" does not resolve`},
		{File: "b.go", Line: 12, Col: 1, Analyzer: "lockedio", Message: "blocking channel send"},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mutated findings:\n in: %+v\nout: %+v", in, out)
	}
}

// TestSelectUnknownAnalyzer: a typoed -enable/-disable must be an
// error, never a silently hollow gate.
func TestSelectUnknownAnalyzer(t *testing.T) {
	if _, err := Select([]string{"errcode", "nope"}, nil); err == nil {
		t.Error("enable with unknown analyzer must error")
	}
	if _, err := Select(nil, []string{"nope"}); err == nil {
		t.Error("disable with unknown analyzer must error")
	}
	sel, err := Select(nil, []string{"lockedio"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range sel {
		if a.Name == "lockedio" {
			t.Error("disabled analyzer still selected")
		}
	}
	if len(sel) != len(Analyzers())-1 {
		t.Errorf("want %d analyzers after one disable, got %d", len(Analyzers())-1, len(sel))
	}
}
