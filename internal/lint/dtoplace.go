package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// AnalyzerDTOPlace enforces the DTO-placement and dependency-direction
// invariants of DESIGN.md Sec. 9 at the typechecked import graph
// (replacing the old grep-based `make depcheck`):
//
//  1. pkg/… must never depend on internal/service, directly or through
//     any chain of module-local imports — the SDK speaks the wire
//     contract (internal/api), not the server internals.
//  2. internal/… must never import pkg/… — the dependency arrow points
//     outward only, so the server cannot grow a cycle through its own
//     SDK.
//  3. Wire DTO struct types live only in internal/api:
//     internal/service may alias them (type X = api.X) but must not
//     declare its own exported JSON-tagged structs; persistence-format
//     schemas that are deliberately not wire DTOs carry a
//     //lint:ignore dtoplace annotation saying so.
//
// Blind spots: edges through interfaces or reflection are invisible,
// and rule 3 keys on `json:"…"` field tags — an untagged DTO relying
// on default field names slips through.
var AnalyzerDTOPlace = &Analyzer{
	Name: "dtoplace",
	Doc:  "pkg/ must not reach internal/service, internal/ must not import pkg/, and wire DTO structs are declared only in internal/api",
	Run:  runDTOPlace,
}

func runDTOPlace(prog *Program, r *Reporter) {
	mod := prog.Config.ModPath
	servicePath := mod + "/internal/service"

	for _, pkg := range prog.Packages {
		switch {
		case strings.HasPrefix(pkg.Path, mod+"/pkg/"):
			// Rule 1: no chain from pkg/… to internal/service.
			for imp, pos := range pkg.imports {
				if chain := findPath(prog, imp, servicePath, nil); chain != nil {
					r.Reportf(pos, "%s must not depend on internal/service (import chain: %s); share types through internal/api instead",
						strings.TrimPrefix(pkg.Path, mod+"/"), strings.Join(trimChain(mod, pkg.Path, chain), " -> "))
				}
			}
		case strings.HasPrefix(pkg.Path, mod+"/internal/"):
			// Rule 2: internal never imports pkg.
			for imp, pos := range pkg.imports {
				if strings.HasPrefix(imp, mod+"/pkg/") {
					r.Reportf(pos, "%s must not import %s: the dependency arrow points from pkg/ to internal/, never back",
						strings.TrimPrefix(pkg.Path, mod+"/"), strings.TrimPrefix(imp, mod+"/"))
				}
			}
		}
	}

	// Rule 3: exported JSON-tagged struct declarations in internal/service.
	svc := prog.Lookup("internal/service")
	if svc == nil || svc.Info == nil {
		return
	}
	for _, f := range svc.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Assign.IsValid() || !ts.Name.IsExported() {
				return true // aliases of api types are exactly the sanctioned form
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if fld.Tag != nil && strings.Contains(fld.Tag.Value, `json:"`) {
					r.Reportf(ts.Name.Pos(), "exported JSON-tagged struct %s declared in internal/service: wire DTOs live in internal/api (alias it, or //lint:ignore with the reason it is not a wire type)",
						ts.Name.Name)
					return true
				}
			}
			return true
		})
	}
}

// findPath DFSes the module-local import graph from `from`, returning
// the package chain reaching target (inclusive), or nil.
func findPath(prog *Program, from, target string, visited map[string]bool) []string {
	if from == target {
		return []string{from}
	}
	if visited == nil {
		visited = make(map[string]bool)
	}
	if visited[from] {
		return nil
	}
	visited[from] = true
	pkg := prog.byPath[from]
	if pkg == nil {
		return nil
	}
	for _, imp := range sortedImports(pkg) {
		if chain := findPath(prog, imp, target, visited); chain != nil {
			return append([]string{from}, chain...)
		}
	}
	return nil
}

func sortedImports(pkg *Package) []string {
	out := make([]string, 0, len(pkg.imports))
	for imp := range pkg.imports {
		out = append(out, imp)
	}
	sort.Strings(out)
	return out
}

func trimChain(mod, head string, chain []string) []string {
	out := []string{strings.TrimPrefix(head, mod+"/")}
	for _, c := range chain {
		out = append(out, strings.TrimPrefix(c, mod+"/"))
	}
	return out
}
