package lint

import (
	"go/constant"
)

// AnalyzerErrcode enforces the append-only wire vocabularies of
// DESIGN.md Secs. 9–10 and 13 at the type level: every value of
// api.Code, obs.SpanKind, or the service's journalKind that appears as
// a compile-time constant anywhere in the module must resolve to a
// constant declared in the registry's home package, and every declared
// registry constant must appear in its committed vocabulary file. The
// second check is what makes the registry append-only in practice:
// removing a shipped name from the vocabulary file (or renaming the
// source constant's value) fails the build, while appending a new name
// alongside a new constant does not.
//
// Blind spots: codes built at runtime (api.Code(variable)) are not
// constants and pass unchecked; so does a registry constant that is
// declared but never referenced by the server's response paths.
var AnalyzerErrcode = &Analyzer{
	Name: "errcode",
	Doc:  "api.Code / obs.SpanKind / journal-kind values must resolve to registry constants, and the registries must stay append-only against their committed vocabularies",
	Run:  runErrcode,
}

func runErrcode(prog *Program, r *Reporter) {
	for _, reg := range registries(prog) {
		decls := declaredConsts(prog, reg)
		if decls == nil {
			continue // registry package not in this module (miniature test trees)
		}
		declared := make(map[string]bool, len(decls))
		for _, d := range decls {
			declared[d.value] = true
		}

		// Registry ⊆ committed vocabulary: the append-only gate.
		if prog.Config.VocabDir != "" {
			vocab, err := ReadVocab(prog.Config.VocabDir, reg.vocabFile)
			if err != nil {
				r.Reportf(decls[0].pos, "cannot read vocabulary %s: %v", reg.vocabFile, err)
			} else {
				inVocab := make(map[string]bool, len(vocab))
				for _, v := range vocab {
					inVocab[v] = true
				}
				for _, d := range decls {
					if !inVocab[d.value] {
						r.Reportf(d.pos, "%s %q (%s) is not in the committed vocabulary %s; run `make lint-vocab` to append it",
							reg.kindLabel, d.value, d.name, reg.vocabFile)
					}
				}
			}
		}

		// Every constant of the registry type, anywhere in the module,
		// must carry a declared value: a stray api.Errorf("typo_code", …)
		// or journalEntry{Kind: "ds_creat"} fails the build here.
		typePath := prog.Config.ModPath + "/" + reg.relPath
		for _, pkg := range prog.Packages {
			if pkg.Info == nil {
				continue
			}
			type site struct {
				line  int
				value string
			}
			seen := make(map[site]bool)
			for expr, tv := range pkg.Info.Types {
				if tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				if !isNamedType(tv.Type, typePath, reg.typeName) {
					continue
				}
				v := constant.StringVal(tv.Value)
				if v == "" || declared[v] {
					continue // "" is the unset zero value, not a wire code
				}
				s := site{line: prog.Fset.Position(expr.Pos()).Line, value: v}
				if seen[s] {
					continue // conversion and its operand share a line; report once
				}
				seen[s] = true
				r.Reportf(expr.Pos(), "%s %q does not resolve to a constant declared in %s; codes are an append-only registry — declare it there first",
					reg.kindLabel, v, reg.relPath)
			}
		}
	}
}
