package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-file harness: every directory under testdata/src is a
// miniature module (module path "repro", mirroring the real layout so
// the analyzers' well-known paths resolve), and `// want "regex"`
// comments pin the expected findings line by line. A finding with no
// matching want, or a want with no matching finding, fails the test —
// the same executable-spec posture as the exposition parser.

var wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type wantComment struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// collectWants scans the raw source text (not the AST, so files with
// seeded parse errors can still carry expectations).
func collectWants(t *testing.T, dir string) []*wantComment {
	t.Helper()
	var wants []*wantComment
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				return fmt.Errorf("%s:%d: malformed want comment %q", path, i+1, line)
			}
			for _, a := range args {
				pat := a[1]
				if pat == "" {
					pat = a[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &wantComment{file: path, line: i + 1, pattern: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runGolden loads the miniature module at testdata/src/<name> and
// checks its findings against the want comments. mutate, if non-nil,
// adjusts the configuration (allowlists, analyzer selection).
func runGolden(t *testing.T, name string, mutate func(*Config)) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Root: dir, ModPath: "repro"}
	if st, err := os.Stat(filepath.Join(dir, "internal", "lint", "vocab")); err == nil && st.IsDir() {
		cfg.VocabDir = filepath.Join(dir, "internal", "lint", "vocab")
	}
	if mutate != nil {
		mutate(&cfg)
	}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := collectWants(t, dir)

	for _, f := range findings {
		text := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
		matched := false
		for _, w := range wants {
			if w.file == f.File && w.line == f.Line && w.pattern.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestGoldenErrcode(t *testing.T)     { runGolden(t, "errcode", nil) }
func TestGoldenMetricVocab(t *testing.T) { runGolden(t, "metricvocab", nil) }
func TestGoldenDTOPlace(t *testing.T)    { runGolden(t, "dtoplace", nil) }
func TestGoldenLockedIO(t *testing.T)    { runGolden(t, "lockedio", nil) }
func TestGoldenCtxflow(t *testing.T) {
	runGolden(t, "ctxflow", func(cfg *Config) {
		cfg.CtxflowAllow = append(cfg.CtxflowAllow, "repro/app.Allowed")
	})
}
func TestGoldenIgnore(t *testing.T) { runGolden(t, "ignore", nil) }
