package lint

import (
	"strings"
)

// ignoreDirective is one parsed `//lint:ignore <analyzers> <reason>`
// comment. It suppresses matching findings on its own line (trailing
// form) and on the immediately following line (standalone form).
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool // "all" matches every analyzer
	hasReason bool
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans every comment of the program for ignore
// directives. A directive without a reason — or without an analyzer
// list at all — is itself a finding: an unexplained suppression is
// exactly the kind of silent contract erosion the suite exists to
// stop.
func collectIgnores(prog *Program, findings *[]Finding) []ignoreDirective {
	var dirs []ignoreDirective
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					d := ignoreDirective{
						file:      pos.Filename,
						line:      pos.Line,
						analyzers: make(map[string]bool),
					}
					if len(fields) == 0 {
						*findings = append(*findings, Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "lint",
							Message:  "//lint:ignore directive without an analyzer name",
						})
						continue
					}
					for _, a := range strings.Split(fields[0], ",") {
						if a != "" {
							d.analyzers[a] = true
						}
					}
					d.hasReason = len(fields) > 1
					if !d.hasReason {
						*findings = append(*findings, Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "lint",
							Message:  "//lint:ignore directive missing a reason: say why the exception is sound",
						})
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs
}

// suppressed reports whether fi is covered by a well-formed directive.
func suppressed(fi Finding, dirs []ignoreDirective) bool {
	for _, d := range dirs {
		if d.file != fi.File || !d.hasReason {
			continue
		}
		if d.line != fi.Line && d.line != fi.Line-1 {
			continue
		}
		if d.analyzers["all"] || d.analyzers[fi.Analyzer] {
			return true
		}
	}
	return false
}
