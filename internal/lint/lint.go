// Package lint is glovelint's engine: a dependency-free static-analysis
// driver (stdlib go/ast + go/parser + go/types + go/importer only, no
// x/tools) that loads every package in the module from source,
// typechecks it, and runs a registered set of analyzers enforcing the
// invariants DESIGN.md states in prose — the append-only error-code,
// span-kind, journal-kind, and metric vocabularies, DTO placement and
// the pkg/internal dependency direction, lock-hygiene on the
// group-commit paths, and context threading.
//
// Findings are reported as `file:line:col: [analyzer] message`; a
// deliberate exception is annotated in the source with
//
//	//lint:ignore <analyzer[,analyzer]> <reason>
//
// on (or immediately above) the offending line. The reason is
// mandatory: a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// Finding is one analyzer report, addressable and machine-readable
// (the -json output is exactly a list of these).
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// String renders the canonical single-line form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named invariant check. Run inspects the whole loaded
// program (most analyzers loop over prog.Packages themselves — some,
// like dtoplace, are inherently whole-graph) and reports through r.
type Analyzer struct {
	Name string
	// Doc is the one-line invariant statement shown by glovelint -list.
	Doc string
	Run func(prog *Program, r *Reporter)
}

// Config parameterizes a driver run. The zero value plus Root/ModPath
// is a working configuration for the real repository.
type Config struct {
	// Root is the module root directory; ModPath the module path from
	// go.mod ("repro"). Well-known package paths (internal/api,
	// internal/obs, ...) are resolved relative to ModPath, which is what
	// lets the golden-file testdata ship miniature modules under the
	// same layout.
	Root    string
	ModPath string
	// VocabDir holds the committed vocabulary files (errcodes.txt,
	// metrics.txt, spankinds.txt, journalkinds.txt). Empty disables the
	// vocabulary-membership checks (grammar and registry-resolution
	// checks still run).
	VocabDir string
	// CtxflowAllow lists fully-qualified functions ("repro/cmd/gloved.run",
	// "repro/internal/service.(*Manager).Restore") permitted to mint
	// fresh contexts even though they accept one — boot/replay/shutdown
	// roots whose work must outlive the inbound context.
	CtxflowAllow []string
	// Enable/Disable select analyzers by name; empty Enable means all.
	Enable  []string
	Disable []string
}

// Package is one loaded, typechecked package of the module.
type Package struct {
	// Path is the full import path ("repro/internal/service").
	Path string
	// Dir is the directory the files were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Broken marks a package that failed to parse or typecheck; the
	// loader reported the errors as findings and analyzers skip it.
	Broken bool
	// imports are the module-local import paths this package names
	// directly, keyed to the file position of the import spec (the
	// anchor dtoplace reports banned edges at).
	imports map[string]token.Pos
}

// Program is the whole loaded module plus the run configuration.
type Program struct {
	Fset     *token.FileSet
	Config   Config
	Packages []*Package // sorted by import path
	byPath   map[string]*Package
}

// Lookup returns the loaded package with the given suffix-qualified
// path relative to the module ("internal/api"), or nil.
func (p *Program) Lookup(rel string) *Package {
	return p.byPath[p.Config.ModPath+"/"+rel]
}

// Reporter accumulates findings for one analyzer.
type Reporter struct {
	fset     *token.FileSet
	analyzer string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (r *Reporter) Reportf(pos token.Pos, format string, args ...any) {
	p := r.fset.Position(pos)
	*r.findings = append(*r.findings, Finding{
		File:     p.Filename,
		Line:     p.Line,
		Col:      p.Column,
		Analyzer: r.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultConfig is the configuration glovelint, `make lint`, and the
// self-lint test all share for this repository: vocabularies under
// internal/lint/vocab, and the boot root cmd/gloved.run — which must
// mint the shutdown context that outlives its own cancelled ctx — on
// the ctxflow allowlist.
func DefaultConfig(root, modPath string) Config {
	return Config{
		Root:     root,
		ModPath:  modPath,
		VocabDir: filepath.Join(root, "internal", "lint", "vocab"),
		CtxflowAllow: []string{
			modPath + "/cmd/gloved.run",
		},
	}
}

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerErrcode,
		AnalyzerMetricVocab,
		AnalyzerDTOPlace,
		AnalyzerLockedIO,
		AnalyzerCtxflow,
	}
}
