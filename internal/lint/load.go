package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/scanner"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// The standard library is typechecked from $GOROOT/src through the
// stdlib "source" importer. It is shared process-wide because a cold
// net/http import costs ~2s; the lock serializes access (the source
// importer is not documented as concurrency-safe). Its *types.Package
// values come from a private FileSet — we never print stdlib positions,
// only module ones, so the mismatch is harmless.
var (
	stdMu  sync.Mutex
	stdImp types.Importer
)

func importStd(path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	if stdImp == nil {
		stdImp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	}
	return stdImp.Import(path)
}

// moduleImporter resolves module-local import paths by typechecking
// the package from source under the module root (memoized, with cycle
// detection) and delegates everything else to the stdlib importer.
type moduleImporter struct {
	prog     *Program
	loading  map[string]bool
	findings *[]Finding
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	mod := m.prog.Config.ModPath
	if path == mod || strings.HasPrefix(path, mod+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("package %s is broken", path)
		}
		return pkg.Types, nil
	}
	return importStd(path)
}

// load parses and typechecks one module package (idempotent).
func (m *moduleImporter) load(path string) (*Package, error) {
	if pkg, ok := m.prog.byPath[path]; ok {
		return pkg, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	cfg := m.prog.Config
	dir := filepath.Join(cfg.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, cfg.ModPath), "/")))
	pkg := &Package{Path: path, Dir: dir, imports: make(map[string]token.Pos)}
	m.prog.byPath[path] = pkg

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			pkg.Broken = true
			return pkg, nil
		}
		m.reportLoadError(dir, err)
		pkg.Broken = true
		return pkg, nil
	}

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			m.reportLoadError(dir, err)
			pkg.Broken = true
			continue
		}
		files = append(files, f)
	}
	pkg.Files = files
	if pkg.Broken || len(files) == 0 {
		pkg.Broken = true
		return pkg, nil
	}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == cfg.ModPath || strings.HasPrefix(p, cfg.ModPath+"/") {
				if _, ok := pkg.imports[p]; !ok {
					pkg.imports[p] = imp.Pos()
				}
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	tcfg := types.Config{
		Importer: m,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := tcfg.Check(path, m.prog.Fset, files, info)
	if len(typeErrs) > 0 {
		for _, e := range typeErrs {
			m.reportLoadError(dir, e)
		}
		pkg.Broken = true
		return pkg, nil
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// reportLoadError converts parse/typecheck errors (which may be lists)
// into positioned [load] findings: a malformed package is reported, not
// a crash, and the rest of the module is still analyzed.
func (m *moduleImporter) reportLoadError(dir string, err error) {
	add := func(file string, line, col int, msg string) {
		*m.findings = append(*m.findings, Finding{
			File: file, Line: line, Col: col, Analyzer: "load", Message: msg,
		})
	}
	switch e := err.(type) {
	case scanner.ErrorList:
		for _, pe := range e {
			add(pe.Pos.Filename, pe.Pos.Line, pe.Pos.Column, pe.Msg)
		}
	case types.Error:
		p := e.Fset.Position(e.Pos)
		add(p.Filename, p.Line, p.Column, e.Msg)
	default:
		add(dir, 0, 0, err.Error())
	}
}

// LoadModule loads every package under cfg.Root as module cfg.ModPath:
// it enumerates package directories (skipping testdata, VCS, and
// hidden/underscore directories, like the go tool), typechecks each
// against the standard library, and returns the program plus the
// [load] findings for anything malformed. Only a filesystem-level
// failure is a hard error.
func LoadModule(cfg Config) (*Program, []Finding, error) {
	if cfg.ModPath == "" {
		return nil, nil, fmt.Errorf("lint: Config.ModPath is required")
	}
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, nil, err
	}
	cfg.Root = root
	prog := &Program{
		Fset:   token.NewFileSet(),
		Config: cfg,
		byPath: make(map[string]*Package),
	}
	var findings []Finding
	imp := &moduleImporter{prog: prog, loading: make(map[string]bool), findings: &findings}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, nil, err
		}
		path := cfg.ModPath
		if rel != "." {
			path = cfg.ModPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := imp.load(path); err != nil {
			findings = append(findings, Finding{File: dir, Analyzer: "load", Message: err.Error()})
		}
	}
	for _, pkg := range prog.byPath {
		if !pkg.Broken {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, findings, nil
}
