package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockedIOPackages are the module-relative packages whose lock hygiene
// the analyzer guards: the group-commit WAL and the service layer,
// where a blocking call under a held mutex stalls every writer behind
// the group commit or the drain path.
var lockedIOPackages = []string{"internal/service", "internal/wal"}

// AnalyzerLockedIO flags blocking operations — (*os.File).Sync,
// channel sends, time.Sleep, net/http request calls — reached while a
// sync.Mutex/RWMutex locked earlier in the same function is still
// held with no intervening Unlock and no deferred Unlock. The correct
// group-commit idiom (wal.Log.Commit) drops the lock around the fsync
// and re-acquires it after; this analyzer makes that shape a build
// requirement in internal/service and internal/wal.
//
// The walk is a linear over-approximation of control flow: statements
// are visited in source order, branch bodies sequentially, and a
// deferred Unlock is trusted (it marks the lock as managed, per the
// invariant's "without an intervening Unlock/defer"). Blind spots: a
// blocking call under a defer-released lock is not flagged, an Unlock
// inside one branch clears the held state for the code after the
// branch, function literals are analyzed as independent functions
// (locks held at the literal's creation site are not propagated), and
// blocking callees behind further call indirection are invisible —
// only the four direct operation classes are recognized.
var AnalyzerLockedIO = &Analyzer{
	Name: "lockedio",
	Doc:  "in internal/service and internal/wal, no blocking call (fsync, channel send, sleep, HTTP) while a mutex locked in the same function is still held",
	Run:  runLockedIO,
}

func runLockedIO(prog *Program, r *Reporter) {
	for _, rel := range lockedIOPackages {
		pkg := prog.Lookup(rel)
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &lockWalker{prog: prog, pkg: pkg, r: r, held: make(map[string]token.Pos)}
				w.block(fd.Body)
			}
		}
	}
}

type lockWalker struct {
	prog *Program
	pkg  *Package
	r    *Reporter
	held map[string]token.Pos // mutex expression -> Lock position
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *lockWalker) stmt(st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X, false)
	case *ast.SendStmt:
		w.expr(s.Chan, false)
		w.expr(s.Value, false)
		w.blocking(s.Arrow, "channel send")
	case *ast.DeferStmt:
		// A deferred Unlock marks the lock as managed for the rest of
		// the function; any other deferred call runs outside the hot
		// region and is not evaluated now.
		if op, mu := w.lockOp(s.Call); op == "Unlock" || op == "RUnlock" {
			delete(w.held, mu)
		}
	case *ast.GoStmt:
		// The body runs concurrently, under its own analysis; argument
		// expressions are evaluated here.
		for _, a := range s.Call.Args {
			w.expr(a, false)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond, false)
		w.block(s.Body)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond, false)
		}
		w.block(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X, false)
		w.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag, false)
		}
		for _, c := range s.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			// A select with a default clause cannot block on its sends;
			// without one, a send comm is as blocking as a bare send.
			hasDefault := false
			for _, d := range s.Body.List {
				if d.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
				w.blocking(send.Arrow, "channel send (select without default)")
			}
			for _, cs := range cc.Body {
				w.stmt(cs)
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, false)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, false)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, false)
					}
				}
			}
		}
	}
}

// expr scans an expression in evaluation order for lock transitions
// and blocking calls. Function literals are analyzed as independent
// functions with a fresh held set.
func (w *lockWalker) expr(e ast.Expr, inDefer bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			inner := &lockWalker{prog: w.prog, pkg: w.pkg, r: w.r, held: make(map[string]token.Pos)}
			inner.block(x.Body)
			return false
		case *ast.CallExpr:
			if op, mu := w.lockOp(x); op != "" {
				switch op {
				case "Lock", "RLock":
					w.held[mu] = x.Pos()
				case "Unlock", "RUnlock":
					delete(w.held, mu)
				}
				return true
			}
			if what := w.blockingCall(x); what != "" {
				w.blocking(x.Pos(), what)
			}
		}
		return true
	})
}

// blocking reports every lock still held at a blocking operation.
func (w *lockWalker) blocking(pos token.Pos, what string) {
	for mu, lockPos := range w.held {
		w.r.Reportf(pos, "blocking %s while %q is still locked (Lock at line %d); release the lock around blocking operations (group-commit idiom) or //lint:ignore with a reason",
			what, mu, w.prog.Fset.Position(lockPos).Line)
	}
}

// lockOp classifies a call as a sync.Mutex/RWMutex transition,
// returning the method name and the rendered mutex expression.
func (w *lockWalker) lockOp(call *ast.CallExpr) (op, mu string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), types.ExprString(sel.X)
	}
	return "", ""
}

// blockingCall classifies a call as one of the recognized blocking
// operation classes, returning a human label or "".
func (w *lockWalker) blockingCall(call *ast.CallExpr) string {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if fn.Name() == "Sync" && isFileRecv(fn) {
			return "(*os.File).Sync"
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Head", "Post", "PostForm", "Do", "RoundTrip":
			return "HTTP request (net/http." + fn.Name() + ")"
		}
	}
	return ""
}

func isFileRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	s := types.TypeString(sig.Recv().Type(), nil)
	return strings.HasSuffix(s, "os.File")
}
