package lint

import (
	"regexp"
)

// metricNameRE is the Prometheus metric-name grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) — the same one the strict exposition
// parser in internal/obs enforces at scrape time; glovelint enforces
// it at build time instead.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// AnalyzerMetricVocab pins the metric namespace of DESIGN.md Sec. 10:
// every name registered through an internal/obs Registry method must
// be a compile-time string constant (so the namespace is enumerable at
// build time), must match the Prometheus naming grammar, and must
// appear in the committed vocabulary internal/lint/vocab/metrics.txt —
// a rename or typo fails the build instead of silently forking a
// dashboard's series.
//
// Blind spots: label names and values are not grammar-checked here
// (the exposition tests cover rendering), and a registry reached
// through an interface rather than *obs.Registry is invisible.
var AnalyzerMetricVocab = &Analyzer{
	Name: "metricvocab",
	Doc:  "metric names registered through internal/obs must be string constants, match the Prometheus grammar, and be in the committed vocabulary",
	Run:  runMetricVocab,
}

func runMetricVocab(prog *Program, r *Reporter) {
	regs := metricRegistrations(prog)
	if len(regs) == 0 {
		return
	}
	var inVocab map[string]bool
	if prog.Config.VocabDir != "" {
		vocab, err := ReadVocab(prog.Config.VocabDir, VocabMetrics)
		if err != nil {
			r.Reportf(regs[0].pos, "cannot read vocabulary %s: %v", VocabMetrics, err)
		} else {
			inVocab = make(map[string]bool, len(vocab))
			for _, v := range vocab {
				inVocab[v] = true
			}
		}
	}
	for _, m := range regs {
		if !m.isConst {
			r.Reportf(m.pos, "metric name must be a compile-time string constant so the exposition namespace is enumerable at build time")
			continue
		}
		if !metricNameRE.MatchString(m.name) {
			r.Reportf(m.pos, "metric name %q does not match the Prometheus naming grammar [a-zA-Z_:][a-zA-Z0-9_:]*", m.name)
			continue
		}
		if inVocab != nil && !inVocab[m.name] {
			r.Reportf(m.pos, "metric name %q is not in the committed vocabulary %s; run `make lint-vocab` to append it (renames are forbidden: the vocabulary is append-only)",
				m.name, VocabMetrics)
		}
	}
}
