// Package app carries malformed ignore directives: a directive without
// a reason (or without an analyzer) is itself a finding and suppresses
// nothing.
package app

import "context"

func use(ctx context.Context) {}

func missingReason(ctx context.Context) {
	//lint:ignore ctxflow
	use(context.Background())
}

func noAnalyzer(ctx context.Context) {
	//lint:ignore
	use(context.Background())
}

var (
	_ = missingReason
	_ = noAnalyzer
)
