// Package app exercises context threading: a function holding a ctx
// must not mint a fresh root.
package app

import "context"

func use(ctx context.Context) {}

func Bad(ctx context.Context) {
	use(context.Background()) // want `accepts a context.Context but mints context.Background`
}

func BadTODO(ctx context.Context) {
	use(context.TODO()) // want `mints context.TODO`
}

func Good(ctx context.Context) {
	use(ctx)
}

// NoCtx has no context to thread; minting a root is its job.
func NoCtx() {
	use(context.Background())
}

// Allowed is on the harness allowlist (a boot/replay root).
func Allowed(ctx context.Context) {
	use(context.Background())
}

// BadNested: closures inherit the enclosing function's obligation.
func BadNested(ctx context.Context) {
	f := func() {
		use(context.Background()) // want `mints context.Background`
	}
	f()
}
