// Package api is the sanctioned DTO home in the dtoplace golden test.
package api

// Ping is a legitimate wire DTO: declared here, aliased elsewhere.
type Ping struct {
	At int `json:"at"`
}
