// Package helper is the middle hop of the banned transitive chain
// pkg/client -> helper -> internal/service.
package helper

import "repro/internal/service"

// Use drags internal/service into any importer's type graph.
func Use() { service.Handle() }
