// Package other violates the dependency direction: internal code must
// never import the public SDK.
package other

import "repro/pkg/client" // want `must not import pkg/client`

// Use makes the import non-blank.
func Use() { client.Do() }
