// Package service exercises DTO placement: aliases of api types are
// the sanctioned form, new exported JSON-tagged structs are not.
package service

import "repro/internal/api"

// Pong aliases the api DTO — the sanctioned spelling.
type Pong = api.Ping

// Resp should have been declared in internal/api.
type Resp struct { // want `exported JSON-tagged struct Resp`
	A int `json:"a"`
}

// internalOnly is unexported and therefore not a wire type.
type internalOnly struct {
	B int `json:"b"`
}

// Handle anchors the import chain for the pkg/client rule.
func Handle() {}

var _ = internalOnly{}
