// Package client must stay on the wire contract; reaching
// internal/service through any chain is banned.
package client

import "repro/internal/helper" // want `must not depend on internal/service`

// Do reaches internal/service transitively through helper.
func Do() { helper.Use() }
