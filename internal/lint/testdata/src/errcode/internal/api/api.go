// Package api is the miniature wire-contract registry for the errcode
// golden test.
package api

// Code mirrors the real registry's named string type.
type Code string

const (
	CodeOK      Code = "ok"
	CodeMissing Code = "missing_from_vocab" // want `not in the committed vocabulary`
)

// Error is the miniature envelope.
type Error struct {
	Code    Code
	Message string
}

// Errorf mirrors the real constructor.
func Errorf(code Code, msg string) *Error { return &Error{Code: code, Message: msg} }
