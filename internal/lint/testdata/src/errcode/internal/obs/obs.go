// Package obs is the miniature span-kind registry for the errcode
// golden test.
package obs

// SpanKind mirrors the real registry's named string type.
type SpanKind string

const (
	SpanJob  SpanKind = "job"
	SpanGone SpanKind = "removed_from_vocab" // want `not in the committed vocabulary`
)
