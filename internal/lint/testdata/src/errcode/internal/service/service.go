// Package service exercises every construction path the errcode
// analyzer must pin to the registries.
package service

import (
	"repro/internal/api"
	"repro/internal/obs"
)

type journalKind string

const (
	jeCreate journalKind = "create"
)

type entry struct {
	Kind journalKind
}

// Registered values resolve cleanly.
func good() (*api.Error, entry, obs.SpanKind) {
	return api.Errorf(api.CodeOK, "fine"), entry{Kind: jeCreate}, obs.SpanJob
}

func badCode() *api.Error {
	return api.Errorf("bogus_code", "typo") // want `error code "bogus_code" does not resolve`
}

func badConversion() api.Code {
	return api.Code("another_bogus") // want `error code "another_bogus" does not resolve`
}

func badKind() entry {
	return entry{Kind: "typo_kind"} // want `journal entry kind "typo_kind" does not resolve`
}

func badSpan() obs.SpanKind {
	return obs.SpanKind("nope") // want `span kind "nope" does not resolve`
}

var (
	_ = good
	_ = badCode
	_ = badConversion
	_ = badKind
	_ = badSpan
)
