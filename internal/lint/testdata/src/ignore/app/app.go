// Package app exercises the ignore directive: trailing and standalone
// forms suppress, a wrong analyzer name does not.
package app

import "context"

func use(ctx context.Context) {}

func suppressedTrailing(ctx context.Context) {
	use(context.Background()) //lint:ignore ctxflow detached cleanup is deliberate here
}

func suppressedStandalone(ctx context.Context) {
	//lint:ignore ctxflow detached cleanup is deliberate here
	use(context.Background())
}

func wrongAnalyzer(ctx context.Context) {
	//lint:ignore dtoplace the directive names the wrong analyzer, so this still fires
	use(context.Background()) // want `mints context.Background`
}

func unsuppressed(ctx context.Context) {
	use(context.Background()) // want `mints context.Background`
}

var (
	_ = suppressedTrailing
	_ = suppressedStandalone
	_ = wrongAnalyzer
	_ = unsuppressed
)
