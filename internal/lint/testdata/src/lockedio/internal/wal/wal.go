// Package wal exercises the lockedio rules: blocking operations under
// an explicitly held mutex are findings; the unlock-around-I/O dance
// and defer-managed locks are not.
package wal

import (
	"net/http"
	"os"
	"sync"
	"time"
)

// Log mirrors the real WAL's lock-plus-file shape.
type Log struct {
	mu sync.Mutex
	rw sync.RWMutex
	f  *os.File
	ch chan int
}

func (l *Log) badSync() {
	l.mu.Lock()
	l.f.Sync() // want `blocking .*os.File..Sync while .l.mu. is still locked`
	l.mu.Unlock()
}

// goodDefer: a deferred Unlock marks the lock as managed — the
// documented blind spot, not a finding.
func (l *Log) goodDefer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.f.Sync()
}

// goodDance is the group-commit idiom: drop the lock around the fsync.
func (l *Log) goodDance() {
	l.mu.Lock()
	l.mu.Unlock()
	l.f.Sync()
	l.mu.Lock()
	l.mu.Unlock()
}

func (l *Log) badSend() {
	l.mu.Lock()
	l.ch <- 1 // want `blocking channel send while .l.mu. is still locked`
	l.mu.Unlock()
}

func (l *Log) badSleep() {
	l.rw.RLock()
	time.Sleep(time.Millisecond) // want `blocking time.Sleep while .l.rw. is still locked`
	l.rw.RUnlock()
}

func (l *Log) badHTTP() {
	l.mu.Lock()
	http.Get("http://example.invalid") // want `blocking HTTP request`
	l.mu.Unlock()
}

// selectDefault cannot block: the default clause bails out.
func (l *Log) selectDefault() {
	l.mu.Lock()
	select {
	case l.ch <- 1:
	default:
	}
	l.mu.Unlock()
}

func (l *Log) selectBlocking() {
	l.mu.Lock()
	select {
	case l.ch <- 1: // want `blocking channel send .select without default.`
	}
	l.mu.Unlock()
}

// litIsolation: the goroutine body runs concurrently under its own
// (fresh) lock state; the outer held lock does not leak in.
func (l *Log) litIsolation() {
	l.mu.Lock()
	go func() {
		l.f.Sync()
	}()
	l.mu.Unlock()
}

var (
	_ = (*Log).badSync
	_ = (*Log).goodDefer
	_ = (*Log).goodDance
	_ = (*Log).badSend
	_ = (*Log).badSleep
	_ = (*Log).badHTTP
	_ = (*Log).selectDefault
	_ = (*Log).selectBlocking
	_ = (*Log).litIsolation
)
