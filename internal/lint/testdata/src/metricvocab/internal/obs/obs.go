// Package obs is the miniature metrics registry for the metricvocab
// golden test: the method set mirrors the real registrar surface.
package obs

// Registry mirrors the real atomic registry.
type Registry struct{}

// Counter / Gauge are opaque stand-ins.
type Counter struct{}
type Gauge struct{}

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
func (r *Registry) Gauge(name, help string) *Gauge     { return &Gauge{} }
func (r *Registry) GaugeVec(name, help string, labels ...string) *Gauge {
	return &Gauge{}
}
