// Package service exercises the metric-name rules: constant-ness, the
// Prometheus grammar, and committed-vocabulary membership.
package service

import "repro/internal/obs"

const namedConst = "glove_named_const_total" // constants resolve like literals

func register(r *obs.Registry, dyn string) {
	r.Counter("glove_good_total", "registered and committed")
	r.Counter(namedConst, "registered and committed via a named constant")
	r.Counter("glove bad name", "spaces break the grammar") // want `does not match the Prometheus naming grammar`
	r.Gauge("glove_unknown_total", "never committed")       // want `not in the committed vocabulary`
	r.GaugeVec(dyn, "dynamic names are unauditable")        // want `must be a compile-time string constant`
}

var _ = register
