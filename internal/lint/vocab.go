package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The committed vocabulary files: one shipped name per line, in the
// order it first shipped ('#' starts a comment). They are the golden
// lists the append-only registries are checked against — removing a
// line fails the build (the source constant no longer resolves into
// the vocabulary), appending does not.
const (
	VocabErrcodes     = "errcodes.txt"
	VocabMetrics      = "metrics.txt"
	VocabSpanKinds    = "spankinds.txt"
	VocabJournalKinds = "journalkinds.txt"
)

// VocabFiles lists every vocabulary in generation order.
func VocabFiles() []string {
	return []string{VocabErrcodes, VocabMetrics, VocabSpanKinds, VocabJournalKinds}
}

// ReadVocab loads one vocabulary file, preserving line order.
func ReadVocab(dir, file string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return entries, nil
}

// WriteVocab writes a vocabulary file with the standard header.
func WriteVocab(dir, file string, entries []string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — committed append-only vocabulary (glovelint).\n", file)
	b.WriteString("# Regenerate with `make lint-vocab`; regeneration may only append.\n")
	for _, e := range entries {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, file), []byte(b.String()), 0o644)
}

// MergeVocab folds the names currently in the tree into an existing
// vocabulary: committed entries keep their order (entries no longer in
// the tree are dropped — which the append-only regeneration test then
// flags, since the committed file stops being a prefix of the result),
// and new names are appended at the end. Regeneration over an
// unchanged tree is therefore byte-stable, and over a grown tree is a
// pure append.
func MergeVocab(existing, current []string) []string {
	cur := make(map[string]bool, len(current))
	for _, c := range current {
		cur[c] = true
	}
	var out []string
	seen := make(map[string]bool, len(current))
	for _, e := range existing {
		if cur[e] && !seen[e] {
			out = append(out, e)
			seen[e] = true
		}
	}
	for _, c := range current {
		if !seen[c] {
			out = append(out, c)
			seen[c] = true
		}
	}
	return out
}

// GenerateVocabs extracts the current vocabularies from the loaded
// tree: declared api.Code / obs.SpanKind / service.journalKind
// constants in registry-declaration order, and every metric name
// registered through internal/obs in registration-site order.
func GenerateVocabs(prog *Program) map[string][]string {
	out := make(map[string][]string)
	for _, reg := range registries(prog) {
		var names []string
		for _, c := range declaredConsts(prog, reg) {
			names = append(names, c.value)
		}
		out[reg.vocabFile] = dedup(names)
	}
	var metrics []string
	for _, m := range metricRegistrations(prog) {
		if m.isConst {
			metrics = append(metrics, m.name)
		}
	}
	out[VocabMetrics] = dedup(metrics)
	return out
}

func dedup(in []string) []string {
	seen := make(map[string]bool, len(in))
	var out []string
	for _, s := range in {
		if !seen[s] {
			out = append(out, s)
			seen[s] = true
		}
	}
	return out
}

// --- registry extraction -------------------------------------------------

// registry describes one append-only named-string-type vocabulary: the
// package that owns the type, the type name, and the vocabulary file
// its shipped values are pinned in.
type registry struct {
	relPath   string // package path relative to the module root
	typeName  string
	kindLabel string // human label used in messages ("error code", ...)
	vocabFile string
}

func registries(prog *Program) []registry {
	return []registry{
		{relPath: "internal/api", typeName: "Code", kindLabel: "error code", vocabFile: VocabErrcodes},
		{relPath: "internal/obs", typeName: "SpanKind", kindLabel: "span kind", vocabFile: VocabSpanKinds},
		{relPath: "internal/service", typeName: "journalKind", kindLabel: "journal entry kind", vocabFile: VocabJournalKinds},
	}
}

type constEntry struct {
	name  string
	value string
	pos   token.Pos
}

// declaredConsts returns the constants of the registry's named type
// declared in its home package, in declaration order. A missing home
// package (miniature test modules) yields nil and the registry's
// checks are skipped.
func declaredConsts(prog *Program, reg registry) []constEntry {
	pkg := prog.Lookup(reg.relPath)
	if pkg == nil || pkg.Types == nil {
		return nil
	}
	typePath := prog.Config.ModPath + "/" + reg.relPath
	var out []constEntry
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || !isNamedType(obj.Type(), typePath, reg.typeName) {
						continue
					}
					if obj.Val().Kind() != constant.String {
						continue
					}
					out = append(out, constEntry{
						name:  name.Name,
						value: constant.StringVal(obj.Val()),
						pos:   name.Pos(),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// --- metric extraction ---------------------------------------------------

// registrarMethods are the *obs.Registry methods whose first argument
// is a metric name entering the exposition namespace.
var registrarMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"GaugeFunc": true, "CounterFunc": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

type metricReg struct {
	name    string // constant value when isConst
	isConst bool
	pos     token.Pos
}

// metricRegistrations finds every registration call on the
// internal/obs Registry across the program, in source order.
func metricRegistrations(prog *Program) []metricReg {
	obsPath := prog.Config.ModPath + "/internal/obs"
	var out []metricReg
	for _, pkg := range prog.Packages {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil || obj.Pkg().Path() != obsPath ||
					!registrarMethods[obj.Name()] || !isRegistryRecv(obj) {
					return true
				}
				if len(call.Args) == 0 {
					return true
				}
				m := metricReg{pos: call.Args[0].Pos()}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					m.name = constant.StringVal(tv.Value)
					m.isConst = true
				}
				out = append(out, m)
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

func isRegistryRecv(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Name() == "Registry"
}

// --- shared type helpers -------------------------------------------------

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves a call expression to the called function or
// method object, or nil for indirect/builtin calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
