package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// repoRoot locates the real module root (two levels up from this
// package) and fails the test if it does not look like one.
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

func loadRepo(t *testing.T) (*Program, []Finding) {
	t.Helper()
	root := repoRoot(t)
	prog, loadFindings, err := LoadModule(DefaultConfig(root, "repro"))
	if err != nil {
		t.Fatal(err)
	}
	return prog, loadFindings
}

// TestVocabRegenerationOnlyAppends pins the append-only contract of
// the committed vocabularies: regenerating from the current tree must
// reproduce every committed file as a prefix of the result. A shipped
// error code, metric, span kind, or journal kind deleted (or renamed)
// in source makes its committed entry disappear from the regeneration
// — caught here — while new names only ever append.
func TestVocabRegenerationOnlyAppends(t *testing.T) {
	prog, loadFindings := loadRepo(t)
	if len(loadFindings) > 0 {
		t.Fatalf("repository does not load cleanly: %v", loadFindings)
	}
	current := GenerateVocabs(prog)
	vocabDir := prog.Config.VocabDir
	for _, file := range VocabFiles() {
		committed, err := ReadVocab(vocabDir, file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		if len(current[file]) == 0 {
			t.Fatalf("%s: regeneration found no entries in the tree — extraction is broken", file)
		}
		merged := MergeVocab(committed, current[file])
		if len(merged) < len(committed) || !reflect.DeepEqual(merged[:len(committed)], committed) {
			t.Errorf("%s: regeneration is not an append of the committed vocabulary\ncommitted: %v\nregenerated: %v",
				file, committed, merged)
		}
	}
}

// TestMergeVocab pins the merge semantics the regeneration rides on.
func TestMergeVocab(t *testing.T) {
	committed := []string{"a", "b", "c"}
	// Unchanged tree: byte-stable.
	if got := MergeVocab(committed, []string{"a", "b", "c"}); !reflect.DeepEqual(got, committed) {
		t.Errorf("stable merge mutated order: %v", got)
	}
	// Grown tree: pure append, committed order preserved.
	if got := MergeVocab(committed, []string{"c", "d", "a", "b"}); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Errorf("append merge wrong: %v", got)
	}
	// Shrunk tree: the dropped entry disappears (which the
	// append-only test then flags as a non-prefix).
	if got := MergeVocab(committed, []string{"a", "c"}); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("shrink merge wrong: %v", got)
	}
}

// TestRepoSelfLint runs the full suite over this repository: the gate
// ships green and strict — any finding here fails `make lint`, CI, and
// this test alike.
func TestRepoSelfLint(t *testing.T) {
	root := repoRoot(t)
	findings, err := Run(DefaultConfig(root, "repro"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("repository not lint-clean: %s", f)
	}
}

// TestRepoVocabSeededViolation proves the gate actually trips: with a
// committed entry removed from a copy of the vocabulary, the same tree
// stops being clean.
func TestRepoVocabSeededViolation(t *testing.T) {
	root := repoRoot(t)
	cfg := DefaultConfig(root, "repro")
	tmp := t.TempDir()
	for _, file := range VocabFiles() {
		entries, err := ReadVocab(cfg.VocabDir, file)
		if err != nil {
			t.Fatal(err)
		}
		if file == VocabErrcodes {
			entries = entries[1:] // drop the first committed code
		}
		if err := WriteVocab(tmp, file, entries); err != nil {
			t.Fatal(err)
		}
	}
	cfg.VocabDir = tmp
	cfg.Enable = []string{"errcode"}
	findings, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("dropping one committed error code must yield exactly one finding, got %v", findings)
	}
	if findings[0].Analyzer != "errcode" {
		t.Errorf("wrong analyzer: %v", findings[0])
	}
}
