// Package metrics quantifies the utility of anonymized movement
// micro-data, producing the measurements behind the paper's evaluation:
// the spatial and temporal accuracy CDFs of Figs. 7, 8, 10 and 11, and
// the error/accounting rows of Table 2.
//
// Accuracy of a published sample is its generalized extent: a sample
// spanning a 2 km box and a 90 min interval locates its subscriber with
// 2 km / 90 min precision. Per-sample statistics are weighted by the
// number of original samples each published sample stands for, so CDFs
// are over original samples, matching the paper's per-sample plots.
package metrics

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// Accuracy is the per-original-sample accuracy distribution of a
// published dataset.
type Accuracy struct {
	// PositionMeters and TimeMinutes hold one entry per original sample
	// (published samples are expanded by weight).
	PositionMeters []float64
	TimeMinutes    []float64
}

// Measure computes the accuracy distributions of a published dataset.
func Measure(d *core.Dataset) *Accuracy {
	acc := &Accuracy{}
	for _, f := range d.Fingerprints {
		for _, s := range f.Samples {
			for w := 0; w < s.Weight; w++ {
				acc.PositionMeters = append(acc.PositionMeters, s.SpatialSpan())
				acc.TimeMinutes = append(acc.TimeMinutes, s.TemporalSpan())
			}
		}
	}
	return acc
}

// PositionCDF returns the empirical CDF of position accuracy.
func (a *Accuracy) PositionCDF() (*stats.ECDF, error) {
	return stats.NewECDF(a.PositionMeters)
}

// TimeCDF returns the empirical CDF of time accuracy.
func (a *Accuracy) TimeCDF() (*stats.ECDF, error) {
	return stats.NewECDF(a.TimeMinutes)
}

// Summary condenses an accuracy measurement into the row format of
// Figs. 9-11 and Table 2.
type Summary struct {
	Samples         int
	MeanPositionM   float64
	MedianPositionM float64
	P25PositionM    float64
	P75PositionM    float64
	MeanTimeMin     float64
	MedianTimeMin   float64
	P25TimeMin      float64
	P75TimeMin      float64
}

// Summarize computes the summary of an accuracy measurement.
func (a *Accuracy) Summarize() (Summary, error) {
	ps, err := stats.Summarize(a.PositionMeters)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: position: %w", err)
	}
	ts, err := stats.Summarize(a.TimeMinutes)
	if err != nil {
		return Summary{}, fmt.Errorf("metrics: time: %w", err)
	}
	return Summary{
		Samples:         ps.N,
		MeanPositionM:   ps.Mean,
		MedianPositionM: ps.Median,
		P25PositionM:    ps.P25,
		P75PositionM:    ps.P75,
		MeanTimeMin:     ts.Mean,
		MedianTimeMin:   ts.Median,
		P25TimeMin:      ts.P25,
		P75TimeMin:      ts.P75,
	}, nil
}

// Table2Row is one algorithm/dataset/k cell group of the paper's
// Table 2.
type Table2Row struct {
	Algorithm string
	Dataset   string
	K         int

	DiscardedFingerprints    int
	DiscardedFingerprintsPct float64
	CreatedSamples           int
	CreatedSamplesPct        float64
	DeletedSamples           int
	DeletedSamplesPct        float64
	MeanPositionErrorM       float64
	MeanTimeErrorMin         float64
}

func (r Table2Row) String() string {
	return fmt.Sprintf(
		"%-8s %-8s k=%d  discardedFP=%d (%.1f%%)  created=%d (%.1f%%)  deleted=%d (%.1f%%)  posErr=%.1fm  timeErr=%.1fmin",
		r.Algorithm, r.Dataset, r.K,
		r.DiscardedFingerprints, r.DiscardedFingerprintsPct,
		r.CreatedSamples, r.CreatedSamplesPct,
		r.DeletedSamples, r.DeletedSamplesPct,
		r.MeanPositionErrorM, r.MeanTimeErrorMin)
}

// GloveRow assembles a Table2Row from a GLOVE run: GLOVE never creates
// samples and never discards fingerprints (unless suppression removed
// all of a group's samples); deleted samples are the suppressed ones;
// errors are the mean generalized extents of the published data.
func GloveRow(dataset string, k int, original *core.Dataset, published *core.Dataset, st *core.GloveStats) (Table2Row, error) {
	acc := Measure(published)
	sum, err := acc.Summarize()
	if err != nil {
		return Table2Row{}, err
	}
	inSamples := st.InputSamples
	inFPs := st.InputFingerprints
	row := Table2Row{
		Algorithm: "GLOVE",
		Dataset:   dataset,
		K:         k,

		DiscardedFingerprints:    st.DiscardedFingerprints,
		DiscardedFingerprintsPct: pct(st.DiscardedFingerprints, inFPs),
		CreatedSamples:           0,
		CreatedSamplesPct:        0,
		DeletedSamples:           st.SuppressedSamples,
		DeletedSamplesPct:        pct(st.SuppressedSamples, inSamples),
		MeanPositionErrorM:       sum.MeanPositionM,
		MeanTimeErrorMin:         sum.MeanTimeMin,
	}
	return row, nil
}

func pct(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// ValidatePublished checks the published dataset against the privacy and
// truthfulness requirements and returns a human-readable error when any
// is violated. It is the final gate of the release pipeline example.
func ValidatePublished(original, published *core.Dataset, k int) error {
	if err := published.Validate(); err != nil {
		return fmt.Errorf("metrics: structural: %w", err)
	}
	if err := core.ValidateKAnonymity(published, k); err != nil {
		return fmt.Errorf("metrics: privacy: %w", err)
	}
	rep := core.CheckTruthfulness(original, published)
	if rep.MissingFP > 0 {
		return fmt.Errorf("metrics: %d subscribers missing from publication", rep.MissingFP)
	}
	return nil
}
