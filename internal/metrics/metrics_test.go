package metrics

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func sampleWith(span, dt float64, w int) core.Sample {
	return core.Sample{DX: span, DY: span / 2, DT: dt, Weight: w}
}

func TestMeasureWeightsExpansion(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		{
			ID:      "g",
			Count:   2,
			Members: []string{"a", "b"},
			Samples: []core.Sample{
				sampleWith(100, 1, 3),
				sampleWith(2000, 90, 1),
			},
		},
	})
	acc := Measure(d)
	if len(acc.PositionMeters) != 4 || len(acc.TimeMinutes) != 4 {
		t.Fatalf("expanded to %d/%d entries, want 4", len(acc.PositionMeters), len(acc.TimeMinutes))
	}
	var small int
	for _, v := range acc.PositionMeters {
		if v == 100 {
			small++
		}
	}
	if small != 3 {
		t.Errorf("weight-3 sample appears %d times, want 3", small)
	}
}

func TestAccuracyCDFsAndSummary(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		{
			ID: "g", Count: 1, Members: []string{"a"},
			Samples: []core.Sample{
				sampleWith(100, 10, 1),
				sampleWith(300, 20, 1),
				sampleWith(500, 30, 1),
				sampleWith(700, 40, 1),
			},
		},
	})
	acc := Measure(d)
	pc, err := acc.PositionCDF()
	if err != nil {
		t.Fatal(err)
	}
	if pc.At(299) != 0.25 || pc.At(700) != 1 {
		t.Errorf("position CDF wrong: F(299)=%g F(700)=%g", pc.At(299), pc.At(700))
	}
	tc, err := acc.TimeCDF()
	if err != nil {
		t.Fatal(err)
	}
	if tc.At(25) != 0.5 {
		t.Errorf("time CDF wrong: F(25)=%g", tc.At(25))
	}
	sum, err := acc.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Samples != 4 || sum.MeanPositionM != 400 || sum.MeanTimeMin != 25 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.MedianPositionM != 400 || sum.MedianTimeMin != 25 {
		t.Errorf("medians = %g / %g", sum.MedianPositionM, sum.MedianTimeMin)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	acc := &Accuracy{}
	if _, err := acc.Summarize(); err == nil {
		t.Error("empty accuracy summarized")
	}
}

func randDataset(rng *rand.Rand, n int) *core.Dataset {
	fps := make([]*core.Fingerprint, n)
	for i := range fps {
		m := 3 + rng.Intn(8)
		samples := make([]core.Sample, m)
		for j := range samples {
			samples[j] = core.Sample{
				X: rng.Float64() * 3e4, DX: 100,
				Y: rng.Float64() * 3e4, DY: 100,
				T: rng.Float64() * 10000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(string(rune('a'+i%26))+string(rune('0'+i/26)), samples)
	}
	return core.NewDataset(fps)
}

func TestGloveRowAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randDataset(rng, 12)
	out, st, err := core.Glove(d, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	row, err := GloveRow("test", 2, d, out, st)
	if err != nil {
		t.Fatal(err)
	}
	if row.Algorithm != "GLOVE" || row.Dataset != "test" || row.K != 2 {
		t.Errorf("row identity = %+v", row)
	}
	if row.CreatedSamples != 0 || row.CreatedSamplesPct != 0 {
		t.Error("GLOVE reported created samples")
	}
	if row.DiscardedFingerprints != 0 {
		t.Error("GLOVE discarded fingerprints without suppression")
	}
	if row.MeanPositionErrorM <= 0 || row.MeanTimeErrorMin < 0 {
		t.Errorf("errors = %g / %g", row.MeanPositionErrorM, row.MeanTimeErrorMin)
	}
	if !strings.Contains(row.String(), "GLOVE") {
		t.Error("row String() missing algorithm")
	}
}

func TestGloveRowWithSuppression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := randDataset(rng, 12)
	// Tight thresholds to force some suppression.
	out, st, err := core.Glove(d, core.GloveOptions{
		K:        2,
		Suppress: core.SuppressionThresholds{MaxSpatialMeters: 2000, MaxTemporalMinutes: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.TotalSamples() == 0 {
		t.Skip("suppression removed everything; nothing to measure")
	}
	row, err := GloveRow("test", 2, d, out, st)
	if err != nil {
		t.Fatal(err)
	}
	if row.DeletedSamples != st.SuppressedSamples {
		t.Errorf("deleted = %d, want %d", row.DeletedSamples, st.SuppressedSamples)
	}
	if row.MeanPositionErrorM > 2000 {
		t.Errorf("mean position error %g exceeds suppression threshold", row.MeanPositionErrorM)
	}
}

func TestValidatePublished(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := randDataset(rng, 10)
	out, _, err := core.Glove(d, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePublished(d, out, 2); err != nil {
		t.Errorf("valid publication rejected: %v", err)
	}
	if err := ValidatePublished(d, out, 50); err == nil {
		t.Error("k=50 claim accepted for k=2 publication")
	}
	if err := ValidatePublished(d, d, 2); err == nil {
		t.Error("raw data accepted as 2-anonymous")
	}
}

func TestPct(t *testing.T) {
	if pct(1, 4) != 25 {
		t.Error("pct(1,4) != 25")
	}
	if pct(1, 0) != 0 {
		t.Error("pct with zero whole != 0")
	}
}
