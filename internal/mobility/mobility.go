// Package mobility implements the standard human-mobility analyses the
// paper argues k-anonymized data should still support (Sec. 2.4):
// routine-behavior metrics of individual subscribers (radius of
// gyration, visit frequency, home/work anchors, entropy) and aggregate
// population statistics (spatial density, origin-destination flows,
// diurnal activity profiles). It operates uniformly on raw and
// anonymized datasets — generalized samples contribute their box center
// with their weight — so the same analysis can be scored on both sides
// of an anonymization run (see the utility experiment and the
// commute-study example).
package mobility

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/geo"
)

// MinutesPerDay mirrors cdr.MinutesPerDay without importing it.
const minutesPerDay = 24 * 60

// visit is one weighted spatiotemporal observation derived from a
// sample: the box center at the interval midpoint.
type visit struct {
	pos    geo.Point
	minute float64
	weight float64
}

func visitsOf(f *core.Fingerprint) []visit {
	out := make([]visit, 0, len(f.Samples))
	for _, s := range f.Samples {
		out = append(out, visit{
			pos:    geo.Point{X: s.X + s.DX/2, Y: s.Y + s.DY/2},
			minute: s.T + s.DT/2,
			weight: float64(s.Weight),
		})
	}
	return out
}

// RadiusOfGyration returns the weighted radius of gyration of a
// fingerprint in meters: the RMS distance of its visits from their
// centroid — the canonical mobility-range statistic (the paper quotes
// median/mean rog of its datasets in Sec. 7.3).
func RadiusOfGyration(f *core.Fingerprint) float64 {
	vs := visitsOf(f)
	if len(vs) == 0 {
		return 0
	}
	var cx, cy, w float64
	for _, v := range vs {
		cx += v.pos.X * v.weight
		cy += v.pos.Y * v.weight
		w += v.weight
	}
	cx /= w
	cy /= w
	var sum float64
	for _, v := range vs {
		dx, dy := v.pos.X-cx, v.pos.Y-cy
		sum += v.weight * (dx*dx + dy*dy)
	}
	return math.Sqrt(sum / w)
}

// RadiusOfGyrationStats returns the median and mean radius of gyration
// across a dataset, the two numbers Sec. 7.3 reports (1.8 km / 12 km for
// civ, 2 km / 10 km for sen).
func RadiusOfGyrationStats(d *core.Dataset) (median, mean float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	rogs := make([]float64, 0, d.Len())
	var sum float64
	for _, f := range d.Fingerprints {
		r := RadiusOfGyration(f)
		rogs = append(rogs, r)
		sum += r
	}
	sort.Float64s(rogs)
	return rogs[len(rogs)/2], sum / float64(len(rogs))
}

// Anchors are a subscriber's inferred routine locations.
type Anchors struct {
	Home geo.Point
	Work geo.Point
	// HomeSupport and WorkSupport are the visit weights behind each
	// inference; zero support means the class was empty and the overall
	// centroid was used.
	HomeSupport float64
	WorkSupport float64
}

// InferAnchors estimates home (night visits, 22h-7h) and work (weekday
// working-hour visits, 9h-17h) locations as weighted centroids, falling
// back to the overall centroid for empty classes.
func InferAnchors(f *core.Fingerprint) Anchors {
	var hx, hy, hw, wx, wy, ww, ax, ay, aw float64
	for _, v := range visitsOf(f) {
		hour := int(v.minute/60) % 24
		day := int(v.minute / minutesPerDay)
		ax += v.pos.X * v.weight
		ay += v.pos.Y * v.weight
		aw += v.weight
		switch {
		case hour >= 22 || hour < 7:
			hx += v.pos.X * v.weight
			hy += v.pos.Y * v.weight
			hw += v.weight
		case day%7 < 5 && hour >= 9 && hour < 17:
			wx += v.pos.X * v.weight
			wy += v.pos.Y * v.weight
			ww += v.weight
		}
	}
	if aw == 0 {
		return Anchors{}
	}
	avg := geo.Point{X: ax / aw, Y: ay / aw}
	a := Anchors{Home: avg, Work: avg}
	if hw > 0 {
		a.Home = geo.Point{X: hx / hw, Y: hy / hw}
		a.HomeSupport = hw
	}
	if ww > 0 {
		a.Work = geo.Point{X: wx / ww, Y: wy / ww}
		a.WorkSupport = ww
	}
	return a
}

// VisitEntropy returns the Shannon entropy (bits) of a subscriber's
// visit distribution over grid cells of the given pitch: the
// predictability statistic of the mobility literature. Lower entropy =
// more routine.
func VisitEntropy(f *core.Fingerprint, cellMeters float64) float64 {
	if cellMeters <= 0 {
		cellMeters = 1000
	}
	grid := geo.Grid{Pitch: cellMeters}
	counts := make(map[geo.Cell]float64)
	var total float64
	for _, v := range visitsOf(f) {
		counts[grid.CellOf(v.pos)] += v.weight
		total += v.weight
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		p := c / total
		h -= p * math.Log2(p)
	}
	return h
}

// TopCells returns the n most-visited grid cells of a fingerprint with
// their visit shares, descending — the "top locations" adversary
// knowledge of Zang & Bolot (paper ref. [5]).
func TopCells(f *core.Fingerprint, cellMeters float64, n int) []CellShare {
	if cellMeters <= 0 {
		cellMeters = 1000
	}
	grid := geo.Grid{Pitch: cellMeters}
	counts := make(map[geo.Cell]float64)
	var total float64
	for _, v := range visitsOf(f) {
		counts[grid.CellOf(v.pos)] += v.weight
		total += v.weight
	}
	shares := make([]CellShare, 0, len(counts))
	for c, w := range counts {
		shares = append(shares, CellShare{Cell: c, Share: w / total})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Share != shares[j].Share {
			return shares[i].Share > shares[j].Share
		}
		if shares[i].Cell.Col != shares[j].Cell.Col {
			return shares[i].Cell.Col < shares[j].Cell.Col
		}
		return shares[i].Cell.Row < shares[j].Cell.Row
	})
	if n < len(shares) {
		shares = shares[:n]
	}
	return shares
}

// CellShare is a grid cell with its share of a subscriber's visits.
type CellShare struct {
	Cell  geo.Cell
	Share float64
}

// ActivityProfile returns the dataset's aggregate activity volume per
// hour of day (24 weighted bins): the diurnal load curve operators and
// urbanists read off CDR data. A sample's weight is spread uniformly
// over its time interval, which handles generalized (interval) samples
// correctly: a sample known only to lie within a 3-hour window
// contributes a third of its weight to each covered hour.
func ActivityProfile(d *core.Dataset) [24]float64 {
	var prof [24]float64
	for _, f := range d.Fingerprints {
		for _, s := range f.Samples {
			start, end := s.T, s.T+s.DT
			if end <= start {
				end = start + 1 // degenerate instant: one-minute mass
			}
			total := end - start
			// Walk hour-bin boundaries across the interval.
			for t := start; t < end; {
				next := math.Floor(t/60)*60 + 60
				if next > end {
					next = end
				}
				hour := int(math.Floor(t/60)) % 24
				if hour < 0 {
					hour += 24
				}
				prof[hour] += float64(s.Weight) * (next - t) / total
				t = next
			}
		}
	}
	return prof
}

// SpatialDensity returns the dataset's visit weight per grid cell at
// the given pitch: the population-distribution raster of Sec. 2.4's
// "land use / population distribution" analyses.
func SpatialDensity(d *core.Dataset, cellMeters float64) map[geo.Cell]float64 {
	if cellMeters <= 0 {
		cellMeters = 5000
	}
	grid := geo.Grid{Pitch: cellMeters}
	out := make(map[geo.Cell]float64)
	for _, f := range d.Fingerprints {
		for _, v := range visitsOf(f) {
			out[grid.CellOf(v.pos)] += v.weight
		}
	}
	return out
}

// ODMatrix computes the home-to-work origin-destination flow matrix on
// a coarse grid: cell pair -> number of subscribers commuting between
// them. Group fingerprints contribute their subscriber count.
func ODMatrix(d *core.Dataset, cellMeters float64) map[ODPair]float64 {
	if cellMeters <= 0 {
		cellMeters = 10000
	}
	grid := geo.Grid{Pitch: cellMeters}
	out := make(map[ODPair]float64)
	for _, f := range d.Fingerprints {
		a := InferAnchors(f)
		pair := ODPair{From: grid.CellOf(a.Home), To: grid.CellOf(a.Work)}
		out[pair] += float64(f.Count)
	}
	return out
}

// ODPair is one origin-destination cell pair.
type ODPair struct {
	From geo.Cell
	To   geo.Cell
}

func (p ODPair) String() string {
	return fmt.Sprintf("(%d,%d)->(%d,%d)", p.From.Col, p.From.Row, p.To.Col, p.To.Row)
}

// CosineSimilarity compares two nonnegative weighted maps (densities,
// OD matrices) as vectors; 1 means identical direction. It is the
// utility-preservation score used by the experiment comparing raw and
// anonymized aggregates.
func CosineSimilarity[K comparable](a, b map[K]float64) float64 {
	var dot, na, nb float64
	for k, va := range a {
		dot += va * b[k]
		na += va * va
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// ProfileSimilarity is CosineSimilarity for fixed-size hourly profiles.
func ProfileSimilarity(a, b [24]float64) float64 {
	var dot, na, nb float64
	for i := 0; i < 24; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
