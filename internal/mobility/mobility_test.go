package mobility

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
)

func fpAt(id string, pts ...[3]float64) *core.Fingerprint {
	samples := make([]core.Sample, len(pts))
	for i, p := range pts {
		samples[i] = core.Sample{
			X: p[0] - 50, DX: 100,
			Y: p[1] - 50, DY: 100,
			T: p[2], DT: 1,
			Weight: 1,
		}
	}
	return core.NewFingerprint(id, samples)
}

func TestRadiusOfGyration(t *testing.T) {
	// All visits in one place: rog 0.
	still := fpAt("still", [3]float64{0, 0, 0}, [3]float64{0, 0, 100})
	if r := RadiusOfGyration(still); r != 0 {
		t.Errorf("stationary rog = %g", r)
	}
	// Two visits 2 km apart: rog = 1 km.
	mover := fpAt("mover", [3]float64{0, 0, 0}, [3]float64{2000, 0, 100})
	if r := RadiusOfGyration(mover); math.Abs(r-1000) > 1e-9 {
		t.Errorf("rog = %g, want 1000", r)
	}
	// Weighted: a weight-3 sample pulls the centroid.
	weighted := fpAt("w", [3]float64{0, 0, 0}, [3]float64{4000, 0, 100})
	weighted.Samples[0].Weight = 3
	r := RadiusOfGyration(weighted)
	// Centroid at 1000; distances 1000 (w3) and 3000 (w1): rms = sqrt((3*1e6+9e6)/4).
	want := math.Sqrt((3*1e6 + 9e6) / 4)
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("weighted rog = %g, want %g", r, want)
	}
	if RadiusOfGyration(&core.Fingerprint{}) != 0 {
		t.Error("empty fingerprint rog != 0")
	}
}

func TestRadiusOfGyrationStats(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		fpAt("a", [3]float64{0, 0, 0}, [3]float64{2000, 0, 10}),
		fpAt("b", [3]float64{0, 0, 0}, [3]float64{6000, 0, 10}),
		fpAt("c", [3]float64{0, 0, 0}),
	})
	median, mean := RadiusOfGyrationStats(d)
	if median != 1000 {
		t.Errorf("median = %g, want 1000", median)
	}
	if math.Abs(mean-4000.0/3) > 1e-9 {
		t.Errorf("mean = %g", mean)
	}
	if m, n := RadiusOfGyrationStats(core.NewDataset(nil)); m != 0 || n != 0 {
		t.Error("empty dataset stats != 0")
	}
}

func TestInferAnchors(t *testing.T) {
	// Night visits at (0,0), weekday working-hour visits at (5000,0).
	f := fpAt("u",
		[3]float64{0, 0, 2 * 60},              // day 0, 02:00 -> home
		[3]float64{0, 0, 23 * 60},             // day 0, 23:00 -> home
		[3]float64{5000, 0, 24*60 + 10*60},    // day 1 (weekday), 10:00 -> work
		[3]float64{5000, 0, 2*24*60 + 14*60},  // day 2, 14:00 -> work
		[3]float64{2000, 2000, 24*60 + 19*60}, // evening, neither
	)
	a := InferAnchors(f)
	if a.Home.Dist(geo.Point{X: 0, Y: 0}) > 1 {
		t.Errorf("home = %+v", a.Home)
	}
	if a.Work.Dist(geo.Point{X: 5000, Y: 0}) > 1 {
		t.Errorf("work = %+v", a.Work)
	}
	if a.HomeSupport != 2 || a.WorkSupport != 2 {
		t.Errorf("supports = %g / %g", a.HomeSupport, a.WorkSupport)
	}
}

func TestInferAnchorsFallback(t *testing.T) {
	// Only evening visits: home and work fall back to the centroid.
	f := fpAt("u", [3]float64{1000, 1000, 19 * 60}, [3]float64{3000, 3000, 20 * 60})
	a := InferAnchors(f)
	want := geo.Point{X: 2000, Y: 2000}
	if a.Home.Dist(want) > 1 || a.Work.Dist(want) > 1 {
		t.Errorf("fallback anchors = %+v", a)
	}
	if a.HomeSupport != 0 || a.WorkSupport != 0 {
		t.Error("fallback reported support")
	}
	empty := InferAnchors(&core.Fingerprint{})
	if empty.Home != (geo.Point{}) {
		t.Error("empty fingerprint anchors not zero")
	}
}

func TestVisitEntropy(t *testing.T) {
	// Single cell: zero entropy.
	one := fpAt("one", [3]float64{0, 0, 0}, [3]float64{10, 10, 5})
	if h := VisitEntropy(one, 1000); h != 0 {
		t.Errorf("single-cell entropy = %g", h)
	}
	// Two cells, equal weight: 1 bit.
	two := fpAt("two", [3]float64{0, 0, 0}, [3]float64{5000, 0, 5})
	if h := VisitEntropy(two, 1000); math.Abs(h-1) > 1e-12 {
		t.Errorf("two-cell entropy = %g, want 1", h)
	}
	// Four cells, equal: 2 bits.
	four := fpAt("four",
		[3]float64{0, 0, 0}, [3]float64{5000, 0, 1},
		[3]float64{0, 5000, 2}, [3]float64{5000, 5000, 3})
	if h := VisitEntropy(four, 1000); math.Abs(h-2) > 1e-12 {
		t.Errorf("four-cell entropy = %g, want 2", h)
	}
	// Default pitch path.
	if VisitEntropy(two, 0) <= 0 {
		t.Error("default pitch entropy not positive")
	}
}

func TestTopCells(t *testing.T) {
	f := fpAt("u",
		[3]float64{0, 0, 0}, [3]float64{0, 0, 1}, [3]float64{0, 0, 2},
		[3]float64{5000, 0, 3},
	)
	top := TopCells(f, 1000, 2)
	if len(top) != 2 {
		t.Fatalf("got %d cells", len(top))
	}
	if math.Abs(top[0].Share-0.75) > 1e-12 || math.Abs(top[1].Share-0.25) > 1e-12 {
		t.Errorf("shares = %v", top)
	}
	// n larger than distinct cells.
	all := TopCells(f, 1000, 10)
	if len(all) != 2 {
		t.Errorf("got %d cells for n=10", len(all))
	}
	// Deterministic ordering under ties.
	tied := fpAt("t", [3]float64{0, 0, 0}, [3]float64{5000, 0, 1})
	a := TopCells(tied, 1000, 2)
	b := TopCells(tied, 1000, 2)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("tie ordering not deterministic")
	}
}

func TestActivityProfile(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		fpAt("a", [3]float64{0, 0, 8 * 60}, [3]float64{0, 0, 8*60 + 30}),
		fpAt("b", [3]float64{0, 0, 24*60 + 8*60}, [3]float64{0, 0, 20 * 60}),
	})
	prof := ActivityProfile(d)
	if prof[8] != 3 {
		t.Errorf("hour 8 = %g, want 3", prof[8])
	}
	if prof[20] != 1 {
		t.Errorf("hour 20 = %g, want 1", prof[20])
	}
	var total float64
	for _, v := range prof {
		total += v
	}
	if total != 4 {
		t.Errorf("total = %g, want 4", total)
	}
}

func TestSpatialDensity(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		fpAt("a", [3]float64{100, 100, 0}, [3]float64{200, 200, 1}),
		fpAt("b", [3]float64{9000, 9000, 0}),
	})
	dens := SpatialDensity(d, 5000)
	if len(dens) != 2 {
		t.Fatalf("got %d cells", len(dens))
	}
	g := geo.Grid{Pitch: 5000}
	if dens[g.CellOf(geo.Point{X: 100, Y: 100})] != 2 {
		t.Error("origin cell weight != 2")
	}
	if SpatialDensity(d, 0) == nil {
		t.Error("default pitch returned nil")
	}
}

func TestODMatrix(t *testing.T) {
	// One group of 3 users commuting cell (0,0) -> far cell; one single
	// user staying put.
	commuters := fpAt("g",
		[3]float64{0, 0, 2 * 60},            // night -> home
		[3]float64{50000, 0, 24*60 + 10*60}, // weekday work hours
	)
	commuters.Count = 3
	commuters.Members = []string{"a", "b", "c"}
	stay := fpAt("s", [3]float64{0, 0, 2 * 60}, [3]float64{0, 0, 24*60 + 10*60})
	d := core.NewDataset([]*core.Fingerprint{commuters, stay})
	od := ODMatrix(d, 10000)
	g := geo.Grid{Pitch: 10000}
	home := g.CellOf(geo.Point{})
	work := g.CellOf(geo.Point{X: 50000})
	if od[ODPair{From: home, To: work}] != 3 {
		t.Errorf("commuter flow = %g, want 3", od[ODPair{From: home, To: work}])
	}
	if od[ODPair{From: home, To: home}] != 1 {
		t.Errorf("stay flow = %g, want 1", od[ODPair{From: home, To: home}])
	}
	if (ODPair{From: home, To: work}).String() == "" {
		t.Error("empty ODPair string")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	if s := CosineSimilarity(a, a); math.Abs(s-1) > 1e-12 {
		t.Errorf("self similarity = %g", s)
	}
	orth := map[string]float64{"z": 5}
	if s := CosineSimilarity(a, orth); s != 0 {
		t.Errorf("orthogonal similarity = %g", s)
	}
	if CosineSimilarity(a, map[string]float64{}) != 0 {
		t.Error("empty similarity != 0")
	}
	scaled := map[string]float64{"x": 10, "y": 20}
	if s := CosineSimilarity(a, scaled); math.Abs(s-1) > 1e-12 {
		t.Errorf("scale-invariant similarity = %g", s)
	}
}

func TestProfileSimilarity(t *testing.T) {
	var a, b [24]float64
	for i := range a {
		a[i] = float64(i)
		b[i] = 2 * float64(i)
	}
	if s := ProfileSimilarity(a, b); math.Abs(s-1) > 1e-12 {
		t.Errorf("proportional profiles similarity = %g", s)
	}
	var zero [24]float64
	if ProfileSimilarity(a, zero) != 0 {
		t.Error("zero profile similarity != 0")
	}
}

func TestAnalysesWorkOnAnonymizedData(t *testing.T) {
	// The whole point of the package: the same analyses must run on
	// GLOVE output and produce comparable aggregates.
	rng := rand.New(rand.NewSource(1))
	fps := make([]*core.Fingerprint, 24)
	for i := range fps {
		n := 6 + rng.Intn(6)
		pts := make([][3]float64, n)
		hx, hy := rng.Float64()*20000, rng.Float64()*20000
		for j := range pts {
			pts[j] = [3]float64{hx + rng.NormFloat64()*1000, hy + rng.NormFloat64()*1000,
				rng.Float64() * 7 * minutesPerDay}
		}
		fps[i] = fpAt(string(rune('a'+i)), pts...)
	}
	d := core.NewDataset(fps)
	out, _, err := core.Glove(d, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rawDens := SpatialDensity(d, 10000)
	anonDens := SpatialDensity(out, 10000)
	if sim := CosineSimilarity(rawDens, anonDens); sim < 0.8 {
		t.Errorf("density similarity after GLOVE = %.3f, want >= 0.8", sim)
	}
	if sim := ProfileSimilarity(ActivityProfile(d), ActivityProfile(out)); sim < 0.9 {
		t.Errorf("activity profile similarity = %.3f, want >= 0.9", sim)
	}
	// Total visit weight is conserved by GLOVE (no suppression).
	var rawTotal, anonTotal float64
	for _, w := range rawDens {
		rawTotal += w
	}
	for _, w := range anonDens {
		anonTotal += w
	}
	if rawTotal != anonTotal {
		t.Errorf("visit weight changed: %g -> %g", rawTotal, anonTotal)
	}
}
