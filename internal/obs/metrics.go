// Package obs is the dependency-free observability layer: a metrics
// registry rendered in Prometheus text exposition format, a matching
// exposition parser (the lint side of the round-trip contract), and an
// in-process span recorder for per-job traces.
//
// The package deliberately depends only on the standard library so it
// can sit below every other internal package. Instruments are safe for
// concurrent use; hot paths touch a single atomic per update.
//
// Metric names and label sets are part of the wire contract: like the
// API error-code registry, names are append-only. Renaming or dropping
// a metric is a breaking change for scrapers (see DESIGN.md Sec. 10).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType is the TYPE of a metric family in the exposition format.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// DefBuckets are the default duration histogram bounds, in seconds.
// Anonymization jobs span milliseconds (tests) to minutes (full
// profiles), so the ladder is wide; +Inf is implicit.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300,
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically non-decreasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter. Negative deltas are a programming error
// and panic: monotonicity is the counter's contract.
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		panic(fmt.Sprintf("obs: counter add of invalid delta %v", v))
	}
	addFloatBits(&c.bits, v)
}

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the value by a (possibly negative) delta.
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram is a fixed-bucket distribution. Observations land in the
// first bucket whose upper bound is >= the value; counts are kept
// per-bucket (non-cumulative) internally and accumulated at render
// time, so exposed bucket series are cumulative by construction.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsInf(b, +1) {
			continue // +Inf is implicit
		}
		if math.IsNaN(b) {
			panic("obs: NaN histogram bound")
		}
		bounds = append(bounds, b)
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds not sorted")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("obs: duplicate histogram bound")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	addFloatBits(&h.sum, v)
}

// snapshot returns cumulative bucket counts (ending with the +Inf
// total), the sample sum, and the sample count. Buckets are read
// low-to-high after the sum, so a concurrent Observe can at worst be
// missed entirely — never produce a non-cumulative view.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	sum = math.Float64frombits(h.sum.Load())
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, sum, cum[len(cum)-1]
}

// series is one label-value combination inside a family.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with a fixed type and label schema.
type family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	fn     func() float64 // value-callback families (no labels)
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelValues: append([]string(nil), labelValues...)}
	switch f.typ {
	case TypeCounter:
		s.counter = &Counter{}
	case TypeGauge:
		s.gauge = &Gauge{}
	case TypeHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Families are registered once (double registration
// panics — instruments are process singletons wired at startup).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) register(name, help string, typ MetricType, buckets []float64, labels ...string) *family {
	if !metricNameRe.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labels {
		if !labelNameRe.MatchString(l) || l == "le" {
			panic("obs: invalid label name " + l)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, TypeCounter, nil).get(nil).counter
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, TypeGauge, nil).get(nil).gauge
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeGauge, nil).fn = fn
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, TypeCounter, nil).fn = fn
}

// Histogram registers an unlabeled histogram with the given upper
// bounds (nil means DefBuckets); +Inf is always appended at render.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, TypeHistogram, buckets).get(nil).hist
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating the
// series on first use.
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).counter }

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).gauge }

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).hist }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, nil, labels...)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, nil, labels...)}
}

// HistogramVec registers a labeled histogram family (nil buckets means
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, TypeHistogram, buckets, labels...)}
}

// WritePrometheus renders every family in text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// values, histogram buckets cumulative and terminated by +Inf.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make(map[string]*family, len(r.fams))
	for n, f := range r.fams {
		names = append(names, n)
		fams[n] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		fams[n].writeTo(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) writeTo(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]*series, len(keys))
	for i, k := range keys {
		snap[i] = f.series[k]
	}
	fn := f.fn
	f.mu.Unlock()

	if len(snap) == 0 && fn == nil {
		return // nothing observed yet and no callback: omit the family
	}
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatValue(fn()))
		return
	}
	for _, s := range snap {
		switch f.typ {
		case TypeCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, s.labelValues, "", ""), formatValue(s.counter.Value()))
		case TypeGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, s.labelValues, "", ""), formatValue(s.gauge.Value()))
		case TypeHistogram:
			cum, sum, count := s.hist.snapshot()
			for i, bound := range s.hist.bounds {
				le := renderLabels(f.labels, s.labelValues, "le", formatValue(bound))
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, le, cum[i])
			}
			inf := renderLabels(f.labels, s.labelValues, "le", "+Inf")
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, inf, cum[len(cum)-1])
			plain := renderLabels(f.labels, s.labelValues, "", "")
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, plain, formatValue(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, plain, count)
		}
	}
}

// renderLabels formats {a="x",b="y"} with values escaped; extraName
// non-empty appends one more pair (the histogram le label). Returns ""
// when there are no labels at all.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }
func escapeHelp(v string) string  { return helpEscaper.Replace(v) }

func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
