package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	return b.String()
}

func TestCounterAndGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Total ops.")
	g := r.Gauge("test_depth", "Current depth.")
	c.Inc()
	c.Add(2.5)
	g.Set(4)
	g.Dec()
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Total ops.\n",
		"# TYPE test_ops_total counter\n",
		"test_ops_total 3.5\n",
		"# TYPE test_depth gauge\n",
		"test_depth 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter add did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

// Label values with backslashes, quotes, and newlines must round-trip
// through the escaped exposition.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_esc_total", "Escapes.", "path")
	hairy := "a\\b\"c\nd"
	v.With(hairy).Add(7)
	out := scrape(t, r)
	want := `test_esc_total{path="a\\b\"c\nd"} 7` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("escaped line %q missing in:\n%s", want, out)
	}
	fams, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var got string
	for _, f := range fams {
		if f.Name == "test_esc_total" {
			got = f.Samples[0].Labels[0].Value
		}
	}
	if got != hairy {
		t.Fatalf("label round-trip = %q, want %q", got, hairy)
	}
}

// Histogram buckets must render cumulatively, end in +Inf, and agree
// with _count — the parser enforces all three.
func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := scrape(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatalf("self-scrape rejected: %v", err)
	}
	// Boundary semantics: le is inclusive.
	h2 := r.Histogram("test_edge_seconds", "Edge.", []float64{1})
	h2.Observe(1)
	cum, _, _ := h2.snapshot()
	if cum[0] != 1 {
		t.Errorf("observation at bound landed in bucket %v, want le=1", cum)
	}
}

// Counters must never appear to decrease across scrapes, even while
// other goroutines hammer them (run under -race).
func TestCounterMonotonicUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_mono_total", "Monotonic.")
	h := r.Histogram("test_mono_seconds", "Histogram monotonic.", []float64{0.5})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.25)
				}
			}
		}()
	}
	prevC, prevCount := -1.0, uint64(0)
	for i := 0; i < 200; i++ {
		out := scrape(t, r)
		fams, err := ParseText(strings.NewReader(out))
		if err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
		for _, f := range fams {
			switch f.Name {
			case "test_mono_total":
				if f.Samples[0].Value < prevC {
					t.Fatalf("counter went backwards: %v -> %v", prevC, f.Samples[0].Value)
				}
				prevC = f.Samples[0].Value
			case "test_mono_seconds":
				for _, s := range f.Samples {
					if s.Name == "test_mono_seconds_count" {
						if uint64(s.Value) < prevCount {
							t.Fatalf("histogram count went backwards: %v -> %v", prevCount, s.Value)
						}
						prevCount = uint64(s.Value)
					}
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup_total", "y")
}

func TestGaugeAndCounterFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_fn", "Fn.", func() float64 { return 42 })
	r.CounterFunc("test_fn_total", "Fn counter.", func() float64 { return 7 })
	out := scrape(t, r)
	if !strings.Contains(out, "test_fn 42\n") || !strings.Contains(out, "test_fn_total 7\n") {
		t.Fatalf("func metrics missing:\n%s", out)
	}
	if _, err := ParseText(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

func TestInfFormatting(t *testing.T) {
	if formatValue(math.Inf(1)) != "+Inf" || formatValue(math.Inf(-1)) != "-Inf" {
		t.Fatal("Inf formatting broken")
	}
}

// Vec series render sorted by label value so scrapes are stable.
func TestVecRenderDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_routes", "Routes.", "route", "method")
	v.With("/b", "GET").Set(1)
	v.With("/a", "GET").Set(2)
	v.With("/a", "POST").Set(3)
	out := scrape(t, r)
	ia := strings.Index(out, `{route="/a",method="GET"}`)
	ip := strings.Index(out, `{route="/a",method="POST"}`)
	ib := strings.Index(out, `{route="/b",method="GET"}`)
	if ia < 0 || ip < 0 || ib < 0 || !(ia < ip && ip < ib) {
		t.Fatalf("series not sorted: %d %d %d\n%s", ia, ip, ib, out)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%100) / 100)
			i++
		}
	})
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("example_total", "Example.").Add(3)
	var b strings.Builder
	r.WritePrometheus(&b)
	fmt.Print(b.String())
	// Output:
	// # HELP example_total Example.
	// # TYPE example_total counter
	// example_total 3
}
