package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its label pairs
// in source order, and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label is one name="value" pair with escapes resolved.
type Label struct{ Name, Value string }

// Family is one parsed metric family with its samples in source order.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// ParseText parses Prometheus text exposition (format version 0.0.4)
// and validates the structural invariants this repo pins in CI:
//
//   - every sample belongs to a family announced by a # TYPE line
//     (histogram samples may use the _bucket/_sum/_count suffixes);
//   - no family or sample is declared twice;
//   - histogram buckets are cumulative, have strictly increasing le
//     bounds, end in le="+Inf", and agree with the _count sample;
//   - counter and histogram values are finite and non-negative.
//
// Families are returned in source order.
func ParseText(r io.Reader) ([]*Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)

	var fams []*Family
	byName := make(map[string]*Family)
	seen := make(map[string]bool) // duplicate-sample detection
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fail := func(format string, args ...any) ([]*Family, error) {
			return nil, fmt.Errorf("exposition line %d: %s (%q)", lineNo, fmt.Sprintf(format, args...), line)
		}
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !metricNameRe.MatchString(name) {
				return fail("bad metric name in HELP")
			}
			if f := byName[name]; f != nil && f.Help != "" {
				return fail("duplicate HELP for %s", name)
			}
			f := familyFor(name, &fams, byName)
			f.Help = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fail("malformed TYPE line")
			}
			name, typ := fields[0], MetricType(fields[1])
			if !metricNameRe.MatchString(name) {
				return fail("bad metric name in TYPE")
			}
			switch typ {
			case TypeCounter, TypeGauge, TypeHistogram:
			default:
				return fail("unknown metric type %q", typ)
			}
			if f := byName[name]; f != nil {
				if f.Type != "" {
					return fail("duplicate TYPE for %s", name)
				}
				if len(f.Samples) > 0 {
					return fail("TYPE for %s after its samples", name)
				}
			}
			familyFor(name, &fams, byName).Type = typ
		case strings.HasPrefix(line, "#"):
			continue // free-form comment
		default:
			s, err := parseSample(line)
			if err != nil {
				return fail("%v", err)
			}
			fam := byName[baseName(s.Name, byName)]
			if fam == nil || fam.Type == "" {
				return fail("sample for %s without a TYPE line", s.Name)
			}
			if fam.Type != TypeHistogram && s.Name != fam.Name {
				return fail("suffix sample %s on %s family", s.Name, fam.Type)
			}
			key := sampleKey(s)
			if seen[key] {
				return fail("duplicate sample")
			}
			seen[key] = true
			if math.IsNaN(s.Value) {
				return fail("NaN sample value")
			}
			if (fam.Type == TypeCounter || fam.Type == TypeHistogram) && s.Value < 0 {
				return fail("negative %s value", fam.Type)
			}
			fam.Samples = append(fam.Samples, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("exposition: family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == TypeHistogram {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func familyFor(name string, fams *[]*Family, byName map[string]*Family) *Family {
	if f := byName[name]; f != nil {
		return f
	}
	f := &Family{Name: name}
	byName[name] = f
	*fams = append(*fams, f)
	return f
}

// baseName maps a sample name to its family name, resolving histogram
// suffixes against declared families (an actual metric literally named
// x_bucket would shadow a histogram x — the registry never emits such
// names, and the parser prefers the exact match).
func baseName(name string, byName map[string]*Family) string {
	if byName[name] != nil {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f := byName[base]; f != nil && f.Type == TypeHistogram {
				return base
			}
		}
	}
	return name
}

func sampleKey(s Sample) string {
	parts := make([]string, 0, len(s.Labels)+1)
	parts = append(parts, s.Name)
	for _, l := range s.Labels {
		parts = append(parts, l.Name+"\xfe"+l.Value)
	}
	return strings.Join(parts, "\xff")
}

// parseSample parses `name{l="v",...} value`. Timestamps (a third
// field) are rejected: the registry never writes them.
func parseSample(line string) (Sample, error) {
	var s Sample
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("missing value")
	}
	s.Name = line[:i]
	if !metricNameRe.MatchString(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return s, fmt.Errorf("missing value")
	}
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("trailing fields after value (timestamps unsupported)")
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, err
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes `{a="x",b="y"}` from the front of in, resolving
// escape sequences, and returns the remainder.
func parseLabels(in string) ([]Label, string, error) {
	var labels []Label
	rest := in[1:] // skip '{'
	names := make(map[string]bool)
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		name := strings.TrimSpace(rest[:eq])
		if !labelNameRe.MatchString(name) {
			return nil, "", fmt.Errorf("bad label name %q", name)
		}
		if names[name] {
			return nil, "", fmt.Errorf("repeated label %q", name)
		}
		names[name] = true
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s value not quoted", name)
		}
		value, tail, err := parseQuoted(rest)
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = tail
		switch {
		case strings.HasPrefix(rest, ","):
			rest = rest[1:]
		case strings.HasPrefix(rest, "}"):
			return labels, rest[1:], nil
		default:
			return nil, "", fmt.Errorf("bad separator after label %s", name)
		}
	}
}

// parseQuoted consumes a leading double-quoted string with \\, \" and
// \n escapes and returns the decoded value and the remainder.
func parseQuoted(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// validateHistogram checks the cumulative-bucket contract for every
// label combination of a histogram family.
func validateHistogram(f *Family) error {
	type hist struct {
		les     []float64
		buckets []float64
		sum     *float64
		count   *float64
	}
	group := make(map[string]*hist)
	order := []string{}
	for _, s := range f.Samples {
		var le *float64
		var key strings.Builder
		for _, l := range s.Labels {
			if l.Name == "le" && s.Name == f.Name+"_bucket" {
				v, err := parseValue(l.Value)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", f.Name, l.Value)
				}
				le = &v
				continue
			}
			key.WriteString(l.Name)
			key.WriteByte('\xfe')
			key.WriteString(l.Value)
			key.WriteByte('\xff')
		}
		h := group[key.String()]
		if h == nil {
			h = &hist{}
			group[key.String()] = h
			order = append(order, key.String())
		}
		v := s.Value
		switch s.Name {
		case f.Name + "_bucket":
			if le == nil {
				return fmt.Errorf("histogram %s: bucket sample without le label", f.Name)
			}
			h.les = append(h.les, *le)
			h.buckets = append(h.buckets, v)
		case f.Name + "_sum":
			h.sum = &v
		case f.Name + "_count":
			h.count = &v
		default:
			return fmt.Errorf("histogram %s: unexpected sample %s", f.Name, s.Name)
		}
	}
	for _, key := range order {
		h := group[key]
		if len(h.buckets) == 0 {
			return fmt.Errorf("histogram %s: series without buckets", f.Name)
		}
		if !math.IsInf(h.les[len(h.les)-1], +1) {
			return fmt.Errorf("histogram %s: buckets do not end in le=\"+Inf\"", f.Name)
		}
		if !sort.Float64sAreSorted(h.les) {
			return fmt.Errorf("histogram %s: le bounds not increasing", f.Name)
		}
		for i := 1; i < len(h.les); i++ {
			if h.les[i] == h.les[i-1] {
				return fmt.Errorf("histogram %s: duplicate le bound %v", f.Name, h.les[i])
			}
			if h.buckets[i] < h.buckets[i-1] {
				return fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", f.Name, h.les[i])
			}
		}
		if h.count == nil || h.sum == nil {
			return fmt.Errorf("histogram %s: missing _sum or _count", f.Name)
		}
		if *h.count != h.buckets[len(h.buckets)-1] {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", f.Name, *h.count, h.buckets[len(h.buckets)-1])
		}
	}
	return nil
}
