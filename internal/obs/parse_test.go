package obs

import (
	"strings"
	"testing"
)

// TestExpositionParserRejects pins the validation side of the
// round-trip contract: each malformed document must be refused.
func TestExpositionParserRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 3\n",
		"unknown type":        "# TYPE x widget\nx 1\n",
		"duplicate TYPE":      "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"duplicate sample":    "# TYPE x counter\nx 1\nx 2\n",
		"duplicate labeled sample": "# TYPE x counter\n" +
			`x{a="1"} 1` + "\n" + `x{a="1"} 2` + "\n",
		"negative counter":    "# TYPE x counter\nx -1\n",
		"NaN sample":          "# TYPE x gauge\nx NaN\n",
		"bad value":           "# TYPE x gauge\nx pancake\n",
		"timestamp field":     "# TYPE x gauge\nx 1 1712345678\n",
		"unterminated labels": "# TYPE x counter\n" + `x{a="1" 2` + "\n",
		"unquoted label":      "# TYPE x counter\nx{a=1} 2\n",
		"repeated label":      "# TYPE x counter\n" + `x{a="1",a="2"} 3` + "\n",
		"bad escape":          "# TYPE x counter\n" + `x{a="\t"} 1` + "\n",
		"gauge with suffix sample": "# TYPE x gauge\n" +
			"x_bucket 1\n",
		"histogram missing +Inf": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\nh_sum 1\nh_count 2\n",
		"histogram non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1\nh_count 3\n",
		"histogram count mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="+Inf"} 5` + "\n" +
			"h_sum 1\nh_count 4\n",
		"histogram unsorted le": "# TYPE h histogram\n" +
			`h_bucket{le="5"} 1` + "\n" + `h_bucket{le="1"} 1` + "\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
		"histogram missing sum": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
		"HELP without TYPE": "# HELP lonely doc\n",
	}
	for name, doc := range cases {
		if _, err := ParseText(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted\n%s", name, doc)
		}
	}
}

func TestExpositionParserAccepts(t *testing.T) {
	doc := strings.Join([]string{
		"# a free-form comment",
		"# HELP jobs_total Total jobs.",
		"# TYPE jobs_total counter",
		`jobs_total{state="done"} 4`,
		`jobs_total{state="failed"} 1`,
		"# TYPE depth gauge",
		"depth -3.5",
		"# TYPE lat histogram",
		`lat_bucket{le="0.1"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 1.5",
		"lat_count 2",
		"",
	}, "\n")
	fams, err := ParseText(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if fams[0].Name != "jobs_total" || fams[0].Help != "Total jobs." || len(fams[0].Samples) != 2 {
		t.Errorf("family 0 = %+v", fams[0])
	}
	if fams[1].Samples[0].Value != -3.5 {
		t.Errorf("gauge value = %v", fams[1].Samples[0].Value)
	}
	if fams[2].Type != TypeHistogram {
		t.Errorf("family 2 type = %v", fams[2].Type)
	}
}

// Round trip: everything the registry renders must parse cleanly, and
// every value must survive.
func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total", "Ops.").Add(12)
	r.GaugeVec("rt_depth", "Depth.", "pool", "kind").With("a b", `q"x`).Set(2.5)
	h := r.HistogramVec("rt_lat_seconds", "Latency.", []float64{0.01, 0.1}, "route")
	h.With("/v1/jobs/{id}").Observe(0.05)
	h.With("/v1/jobs/{id}").Observe(5)
	r.GaugeFunc("rt_uptime_seconds", "Uptime.", func() float64 { return 9 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip rejected:\n%s\n%v", b.String(), err)
	}
	byName := map[string]*Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["rt_ops_total"]; f == nil || f.Samples[0].Value != 12 {
		t.Errorf("rt_ops_total = %+v", f)
	}
	if f := byName["rt_depth"]; f == nil || f.Samples[0].Labels[1].Value != `q"x` {
		t.Errorf("rt_depth = %+v", f)
	}
	if f := byName["rt_lat_seconds"]; f == nil {
		t.Error("rt_lat_seconds missing")
	} else {
		var count float64
		for _, s := range f.Samples {
			if s.Name == "rt_lat_seconds_count" {
				count = s.Value
			}
		}
		if count != 2 {
			t.Errorf("histogram count = %v, want 2", count)
		}
	}
	if f := byName["rt_uptime_seconds"]; f == nil || f.Samples[0].Value != 9 {
		t.Errorf("rt_uptime_seconds = %+v", f)
	}
}
