package obs

import (
	"runtime"
	"time"
)

// RuntimeInfo is a point-in-time snapshot of process health, embedded
// in the JSON metrics report so restarts and leaks are visible without
// a Prometheus scraper or pprof.
type RuntimeInfo struct {
	Goroutines          int     `json:"goroutines"`
	HeapInuseBytes      uint64  `json:"heap_inuse_bytes"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	NumGC               uint32  `json:"num_gc"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
	BootID              string  `json:"boot_id"`
}

// ReadRuntime samples the process state. start is the process (or
// server) start time; bootID distinguishes restarts.
func ReadRuntime(bootID string, start time.Time) RuntimeInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeInfo{
		Goroutines:          runtime.NumGoroutine(),
		HeapInuseBytes:      ms.HeapInuse,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
		NumGC:               ms.NumGC,
		UptimeSeconds:       time.Since(start).Seconds(),
		BootID:              bootID,
	}
}

// RegisterRuntime registers the process-level gauges on r: goroutine
// count, heap in use, total GC pause, uptime, and a constant
// glove_boot_info{boot_id} 1 series identifying the incarnation.
func RegisterRuntime(r *Registry, bootID string, start time.Time) {
	r.GaugeFunc("glove_process_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("glove_process_heap_inuse_bytes",
		"Bytes of heap memory in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	r.CounterFunc("glove_process_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	r.GaugeFunc("glove_process_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(start).Seconds() })
	boot := r.GaugeVec("glove_boot_info",
		"Constant 1, labeled with the server boot id; a changed boot_id means a restart.",
		"boot_id")
	boot.With(bootID).Set(1)
}
