package obs

import (
	"sync"
	"time"
)

// SpanKind names a phase of job execution. Kinds are append-only wire
// vocabulary, like metric names and API error codes: clients switch on
// them, so removing or renaming one is a breaking change.
type SpanKind string

const (
	SpanJob        SpanKind = "job"
	SpanPlan       SpanKind = "plan"
	SpanWindow     SpanKind = "window"
	SpanShard      SpanKind = "shard"
	SpanIndexBuild SpanKind = "index_build"
	SpanMerge      SpanKind = "merge"
	SpanValidate   SpanKind = "validate"
)

// SpanKinds lists every registered kind; tests pin that emitted spans
// stay within this vocabulary.
func SpanKinds() []SpanKind {
	return []SpanKind{SpanJob, SpanPlan, SpanWindow, SpanShard, SpanIndexBuild, SpanMerge, SpanValidate}
}

// Span is an immutable snapshot of one recorded span, JSON-shaped for
// the /v1/jobs/{id}/trace endpoint.
type Span struct {
	Kind       SpanKind       `json:"kind"`
	Name       string         `json:"name,omitempty"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	Unfinished bool           `json:"unfinished,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*Span        `json:"children,omitempty"`
}

type node struct {
	kind     SpanKind
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    map[string]any
	children []*node
}

// Trace records a tree of spans for one job. All mutation goes through
// a single trace-level mutex: span starts and ends are rare (per
// phase, not per record), so contention is negligible next to the work
// they bracket, and shard goroutines can record concurrently.
type Trace struct {
	mu   sync.Mutex
	root *node
}

// NewTrace starts a trace whose root span opens now.
func NewTrace(kind SpanKind, name string) *Trace {
	return &Trace{root: &node{kind: kind, name: name, start: time.Now()}}
}

// ActiveSpan is a handle to one open span. The zero value is a valid
// no-op handle: every method on it is safe and does nothing, so
// instrumented code paths never need nil checks.
type ActiveSpan struct {
	t *Trace
	n *node
}

// Root returns the handle to the root span.
func (t *Trace) Root() ActiveSpan {
	if t == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{t: t, n: t.root}
}

// Child opens a sub-span starting now.
func (s ActiveSpan) Child(kind SpanKind, name string) ActiveSpan {
	if s.t == nil {
		return ActiveSpan{}
	}
	c := &node{kind: kind, name: name, start: time.Now()}
	s.t.mu.Lock()
	s.n.children = append(s.n.children, c)
	s.t.mu.Unlock()
	return ActiveSpan{t: s.t, n: c}
}

// SetAttr attaches a key/value attribute to the span.
func (s ActiveSpan) SetAttr(key string, value any) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	if s.n.attrs == nil {
		s.n.attrs = make(map[string]any)
	}
	s.n.attrs[key] = value
	s.t.mu.Unlock()
}

// AddCompleted records an already-finished sub-span — used to graft
// phases timed inside the engine (index build, merge loop) onto the
// trace without threading span handles through the hot path.
func (s ActiveSpan) AddCompleted(kind SpanKind, name string, start time.Time, d time.Duration, attrs map[string]any) {
	if s.t == nil {
		return
	}
	c := &node{kind: kind, name: name, start: start, end: start.Add(d), attrs: attrs}
	s.t.mu.Lock()
	s.n.children = append(s.n.children, c)
	s.t.mu.Unlock()
}

// End closes the span and returns its duration. Ending twice keeps the
// first end time.
func (s ActiveSpan) End() time.Duration {
	if s.t == nil {
		return 0
	}
	now := time.Now()
	s.t.mu.Lock()
	if s.n.end.IsZero() {
		s.n.end = now
	}
	d := s.n.end.Sub(s.n.start)
	s.t.mu.Unlock()
	return d
}

// Snapshot returns the current span tree. Open spans are marked
// Unfinished with their duration measured up to now, so traces of
// running jobs are meaningful.
func (t *Trace) Snapshot() *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root.snapshot(now)
}

func (n *node) snapshot(now time.Time) *Span {
	s := &Span{Kind: n.kind, Name: n.name, Start: n.start}
	end := n.end
	if end.IsZero() {
		end = now
		s.Unfinished = true
	}
	s.DurationMS = float64(end.Sub(n.start)) / float64(time.Millisecond)
	if len(n.attrs) > 0 {
		s.Attrs = make(map[string]any, len(n.attrs))
		for k, v := range n.attrs {
			s.Attrs[k] = v
		}
	}
	for _, c := range n.children {
		s.Children = append(s.Children, c.snapshot(now))
	}
	return s
}
