package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	tr := NewTrace(SpanJob, "job-1")
	root := tr.Root()
	plan := root.Child(SpanPlan, "")
	plan.SetAttr("strategy", "chunked")
	plan.End()
	w := root.Child(SpanWindow, "w0")
	sh := w.Child(SpanShard, "shard 0")
	sh.AddCompleted(SpanIndexBuild, "", time.Now(), 3*time.Millisecond, nil)
	sh.AddCompleted(SpanMerge, "", time.Now(), 5*time.Millisecond, map[string]any{"merges": 12})
	sh.End()
	w.End()
	root.End()

	s := tr.Snapshot()
	if s.Kind != SpanJob || s.Name != "job-1" || s.Unfinished {
		t.Fatalf("root = %+v", s)
	}
	if len(s.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(s.Children))
	}
	if s.Children[0].Kind != SpanPlan || s.Children[0].Attrs["strategy"] != "chunked" {
		t.Errorf("plan span = %+v", s.Children[0])
	}
	shard := s.Children[1].Children[0]
	if shard.Kind != SpanShard || len(shard.Children) != 2 {
		t.Fatalf("shard span = %+v", shard)
	}
	if shard.Children[1].Kind != SpanMerge || shard.Children[1].DurationMS < 4.9 {
		t.Errorf("merge child = %+v", shard.Children[1])
	}
	// The snapshot must be JSON-serializable (it is the wire payload).
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

// A snapshot taken while spans are open marks them unfinished instead
// of blocking or panicking.
func TestTraceSnapshotWhileOpen(t *testing.T) {
	tr := NewTrace(SpanJob, "j")
	tr.Root().Child(SpanPlan, "")
	s := tr.Snapshot()
	if !s.Unfinished || !s.Children[0].Unfinished {
		t.Fatalf("open spans not marked unfinished: %+v", s)
	}
}

// The zero ActiveSpan and nil Trace are inert: instrumented code never
// needs nil checks.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Snapshot() != nil {
		t.Fatal("nil trace snapshot not nil")
	}
	s := tr.Root()
	c := s.Child(SpanPlan, "x")
	c.SetAttr("k", 1)
	c.AddCompleted(SpanMerge, "", time.Now(), time.Second, nil)
	if d := c.End(); d != 0 {
		t.Fatalf("no-op End = %v", d)
	}
}

// Concurrent children (parallel shards) and snapshots must be safe
// under -race.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(SpanJob, "j")
	root := tr.Root()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child(SpanShard, "s")
			sp.SetAttr("i", i)
			sp.End()
		}(i)
	}
	for i := 0; i < 50; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	if got := len(tr.Snapshot().Children); got != 8 {
		t.Fatalf("children = %d, want 8", got)
	}
}

func TestSpanKindsRegistry(t *testing.T) {
	kinds := SpanKinds()
	seen := map[SpanKind]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Fatalf("duplicate kind %s", k)
		}
		seen[k] = true
	}
	for _, want := range []SpanKind{SpanJob, SpanPlan, SpanWindow, SpanShard, SpanIndexBuild, SpanMerge, SpanValidate} {
		if !seen[want] {
			t.Fatalf("kind %s missing from registry", want)
		}
	}
}
