package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForContext is For with cooperative cancellation: once ctx is done,
// workers stop grabbing new chunks and the call returns ctx.Err().
// Iterations already started run to completion (fn is never interrupted
// mid-call), so fn sees the usual exactly-once-per-index guarantee for
// every index that was dispatched. When ForContext returns nil, fn ran
// for every i in [0, n).
//
// Cancellation granularity is one chunk: a long fn that wants faster
// reaction should check ctx itself.
func ForContext(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		// Match the multi-worker path: cancellation during the last
		// iteration is still reported.
		return ctx.Err()
	}

	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	done := ctx.Done()
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				start := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForPairsContext is ForPairs with cooperative cancellation, mirroring
// ForContext.
func ForPairsContext(ctx context.Context, n, workers int, fn func(i, j int)) error {
	if n < 2 {
		return ctx.Err()
	}
	total := n * (n - 1) / 2
	return ForContext(ctx, total, workers, func(p int) {
		i, j := PairFromIndex(p)
		fn(i, j)
	})
}
