package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForContextCompletes(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var sum int64
		err := ForContext(context.Background(), 1000, workers, func(i int) {
			atomic.AddInt64(&sum, int64(i))
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := int64(1000 * 999 / 2); sum != want {
			t.Errorf("workers=%d: sum = %d, want %d", workers, sum, want)
		}
	}
}

func TestForContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int64
	// Cancel from inside an early iteration: later chunks must not be
	// dispatched.
	err := ForContext(ctx, 100000, 4, func(i int) {
		if atomic.AddInt64(&ran, 1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt64(&ran); n == 100000 {
		t.Error("cancellation did not stop dispatching")
	}
}

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := ForContext(ctx, 10, 1, func(i int) { atomic.AddInt64(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d iterations ran on a pre-cancelled context", ran)
	}
}

func TestForContextZeroN(t *testing.T) {
	if err := ForContext(context.Background(), 0, 4, func(int) { t.Error("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestForPairsContext(t *testing.T) {
	const n = 40
	seen := make([]int64, n*n)
	err := ForPairsContext(context.Background(), n, 3, func(i, j int) {
		atomic.AddInt64(&seen[i*n+j], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := int64(0)
			if i < j {
				want = 1
			}
			if seen[i*n+j] != want {
				t.Fatalf("pair (%d,%d) visited %d times, want %d", i, j, seen[i*n+j], want)
			}
		}
	}
}
