// Package parallel provides the small concurrency substrate used by the
// GLOVE reproduction. The paper offloads its embarrassingly parallel pair
// computations (Eq. 10 over all fingerprint pairs) to a CUDA GPU; here the
// same decomposition runs on goroutine worker pools across CPU cores.
package parallel

import (
	"context"
	"runtime"
)

// DefaultWorkers returns the worker count used when a caller passes a
// non-positive value: the number of usable CPUs.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) using the given number of workers
// (<= 0 means DefaultWorkers). Iterations are distributed dynamically in
// small chunks so uneven per-iteration cost (e.g. fingerprints of very
// different lengths) still balances. It blocks until all iterations
// complete.
func For(n, workers int, fn func(i int)) {
	// context.Background is never done, so the error is always nil and
	// the cancellation checks are no-ops; this keeps a single copy of
	// the chunked scheduler.
	ForContext(context.Background(), n, workers, fn)
}

// ForPairs runs fn(i, j) for every unordered pair 0 <= i < j < n,
// distributing pairs across workers. The pair (i, j) enumeration order
// within a worker is deterministic, but the interleaving across workers is
// not; fn must only write to pair-local state (e.g. a matrix cell).
func ForPairs(n, workers int, fn func(i, j int)) {
	if n < 2 {
		return
	}
	total := n * (n - 1) / 2
	For(total, workers, func(p int) {
		i, j := PairFromIndex(p)
		fn(i, j)
	})
}

// PairFromIndex maps a linear index p in [0, n(n-1)/2) to the p-th
// unordered pair (i, j), i < j, in the enumeration (0,1), (0,2), (1,2),
// (0,3), (1,3), (2,3), ... — i.e. pairs grouped by their larger element.
// This closed form avoids coordination between workers.
func PairFromIndex(p int) (i, j int) {
	// j is the largest integer with j(j-1)/2 <= p.
	j = int((1 + isqrt(8*uint64(p)+1)) / 2)
	for j*(j-1)/2 > p {
		j--
	}
	for (j+1)*j/2 <= p {
		j++
	}
	i = p - j*(j-1)/2
	return i, j
}

// isqrt returns floor(sqrt(x)) for a uint64 without float rounding
// hazards for the magnitudes used here.
func isqrt(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	r := uint64(1) << ((bits(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			return r
		}
		r = nr
	}
}

func bits(x uint64) uint {
	var n uint
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Map applies fn to every index in [0, n) and collects the results in
// order. It is a convenience wrapper over For for result-producing
// computations such as per-fingerprint k-gap evaluation.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}
