package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 3, 100, 1001} {
			seen := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForNegativeN(t *testing.T) {
	called := false
	For(-5, 4, func(int) { called = true })
	if called {
		t.Error("For called fn for negative n")
	}
}

func TestForPairsCoversAllPairs(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 10, 50} {
		var mu [64][64]int32
		ForPairs(n, 4, func(i, j int) {
			if i >= j {
				t.Errorf("got pair (%d, %d) with i >= j", i, j)
			}
			atomic.AddInt32(&mu[i][j], 1)
		})
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if mu[i][j] != 1 {
					t.Fatalf("n=%d: pair (%d, %d) visited %d times", n, i, j, mu[i][j])
				}
			}
		}
	}
}

func TestPairFromIndexEnumeration(t *testing.T) {
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3}, {0, 4}}
	for p, w := range want {
		i, j := PairFromIndex(p)
		if i != w[0] || j != w[1] {
			t.Errorf("PairFromIndex(%d) = (%d, %d), want (%d, %d)", p, i, j, w[0], w[1])
		}
	}
}

func TestPairFromIndexBijective(t *testing.T) {
	f := func(raw uint16) bool {
		p := int(raw)
		i, j := PairFromIndex(p)
		return i >= 0 && i < j && j*(j-1)/2+i == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestIsqrt(t *testing.T) {
	cases := []struct{ x, want uint64 }{
		{0, 0}, {1, 1}, {2, 1}, {3, 1}, {4, 2}, {8, 2}, {9, 3},
		{99, 9}, {100, 10}, {1 << 40, 1 << 20}, {(1 << 40) - 1, (1 << 20) - 1},
	}
	for _, c := range cases {
		if got := isqrt(c.x); got != c.want {
			t.Errorf("isqrt(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	out := Map(100, 8, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out := Map(0, 4, func(i int) string { return "x" })
	if len(out) != 0 {
		t.Errorf("Map(0) returned %d elements", len(out))
	}
}

func BenchmarkForOverhead(b *testing.B) {
	var sink int64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(1024, 0, func(j int) {
			atomic.AddInt64(&sink, 1)
		})
	}
}
