// Package privacy implements diagnostics for the residual risks that
// k-anonymity deliberately does not address. The paper is explicit that
// its privacy model counters record linkage only (Sec. 2.3) and that
// k-anonymity "is known to have limitations when confronted to attacks
// aiming at attribute linkage, at localizing users, or at disclosing
// their presence and meetings" (Sec. 2.4, refs. [11, 12]). These
// diagnostics let a data publisher *quantify* those residual risks on a
// concrete release before shipping it:
//
//   - Localization: how tightly published samples bound a subscriber's
//     position at a random instant — indistinguishability within a group
//     does not blur *where the whole group was*.
//   - Home disclosure (attribute homogeneity, the l-diversity concern):
//     if a group's night-time samples concentrate in a small area, the
//     home area of all k members leaks despite k-anonymity.
//   - Co-location: published samples of different groups overlapping in
//     space and time disclose potential meetings.
package privacy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/stats"
)

// LocalizationResult is the distribution of position bounds an adversary
// obtains by probing the published dataset at random (group, instant)
// pairs.
type LocalizationResult struct {
	// SpanMeters holds, per probe that hit a published sample, the
	// spatial span of the tightest sample covering the probed instant.
	SpanMeters []float64
	// Misses counts probes at instants not covered by any sample (the
	// adversary learns nothing there).
	Misses int
}

// Localization probes the published dataset: for each probe a random
// fingerprint and a random instant within its time range are drawn, and
// the tightest published sample containing the instant is measured. The
// result quantifies how precisely group members can be localized in
// time despite k-anonymity.
func Localization(published *core.Dataset, probes int, rng *rand.Rand) (*LocalizationResult, error) {
	if published.Len() == 0 {
		return nil, fmt.Errorf("privacy: empty dataset")
	}
	if probes < 1 {
		return nil, fmt.Errorf("privacy: probes = %d", probes)
	}
	res := &LocalizationResult{}
	for i := 0; i < probes; i++ {
		f := published.Fingerprints[rng.Intn(published.Len())]
		if f.Len() == 0 {
			res.Misses++
			continue
		}
		lo := f.Samples[0].T
		hi := f.Samples[f.Len()-1].T + f.Samples[f.Len()-1].DT
		t := lo + rng.Float64()*(hi-lo)

		best := math.Inf(1)
		for _, s := range f.Samples {
			if t >= s.T && t <= s.T+s.DT {
				if span := s.SpatialSpan(); span < best {
					best = span
				}
			}
		}
		if math.IsInf(best, 1) {
			res.Misses++
			continue
		}
		res.SpanMeters = append(res.SpanMeters, best)
	}
	return res, nil
}

// MedianSpan returns the median localization span, or +Inf if every
// probe missed.
func (r *LocalizationResult) MedianSpan() float64 {
	if len(r.SpanMeters) == 0 {
		return math.Inf(1)
	}
	q, err := stats.Quantile(r.SpanMeters, 0.5)
	if err != nil {
		return math.Inf(1)
	}
	return q
}

// HomeDisclosureResult reports, per published group, how tightly the
// group's night-time activity is bounded: a small night box means the
// (shared) home area of all members is effectively disclosed.
type HomeDisclosureResult struct {
	// NightSpanMeters holds one entry per group with night samples: the
	// spatial span of the union of its night-time samples.
	NightSpanMeters []float64
	// NoNightData counts groups with no night samples.
	NoNightData int
}

// DisclosedFraction returns the fraction of assessable groups whose
// night box is tighter than the threshold — groups whose members' home
// area leaks at that precision.
func (r *HomeDisclosureResult) DisclosedFraction(thresholdMeters float64) float64 {
	if len(r.NightSpanMeters) == 0 {
		return 0
	}
	var n int
	for _, s := range r.NightSpanMeters {
		if s <= thresholdMeters {
			n++
		}
	}
	return float64(n) / float64(len(r.NightSpanMeters))
}

// HomeDisclosure measures the night-time (22h-7h, by interval midpoint)
// spatial concentration of every published group.
func HomeDisclosure(published *core.Dataset) *HomeDisclosureResult {
	res := &HomeDisclosureResult{}
	for _, f := range published.Fingerprints {
		var minX, minY, maxX, maxY float64
		found := false
		for _, s := range f.Samples {
			mid := s.T + s.DT/2
			hour := int(mid/60) % 24
			if hour >= 7 && hour < 22 {
				continue
			}
			if !found {
				minX, minY = s.X, s.Y
				maxX, maxY = s.X+s.DX, s.Y+s.DY
				found = true
				continue
			}
			minX = math.Min(minX, s.X)
			minY = math.Min(minY, s.Y)
			maxX = math.Max(maxX, s.X+s.DX)
			maxY = math.Max(maxY, s.Y+s.DY)
		}
		if !found {
			res.NoNightData++
			continue
		}
		res.NightSpanMeters = append(res.NightSpanMeters, math.Max(maxX-minX, maxY-minY))
	}
	return res
}

// CoLocationResult counts cross-group sample pairs that overlap in both
// space and time: each is a potential meeting disclosure.
type CoLocationResult struct {
	OverlappingPairs int
	ComparedPairs    int
}

// Rate returns the fraction of compared pairs that overlap.
func (r *CoLocationResult) Rate() float64 {
	if r.ComparedPairs == 0 {
		return 0
	}
	return float64(r.OverlappingPairs) / float64(r.ComparedPairs)
}

// CoLocation scans sample pairs across distinct groups for
// spatiotemporal overlap. To bound cost on large releases, at most
// maxPairs group pairs are examined (deterministically: the first ones
// in order); maxPairs <= 0 means all.
func CoLocation(published *core.Dataset, maxPairs int) *CoLocationResult {
	res := &CoLocationResult{}
	n := published.Len()
	pairsDone := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if maxPairs > 0 && pairsDone >= maxPairs {
				return res
			}
			pairsDone++
			a, b := published.Fingerprints[i], published.Fingerprints[j]
			for _, sa := range a.Samples {
				for _, sb := range b.Samples {
					res.ComparedPairs++
					if samplesOverlap(sa, sb) {
						res.OverlappingPairs++
					}
				}
			}
		}
	}
	return res
}

func samplesOverlap(a, b core.Sample) bool {
	if !a.OverlapsTime(b) {
		return false
	}
	if a.X+a.DX < b.X || b.X+b.DX < a.X {
		return false
	}
	if a.Y+a.DY < b.Y || b.Y+b.DY < a.Y {
		return false
	}
	return true
}

// Report renders all three diagnostics for a release, in the format the
// release-pipeline example appends to its datasheet.
func Report(published *core.Dataset, rng *rand.Rand) (string, error) {
	loc, err := Localization(published, 200, rng)
	if err != nil {
		return "", err
	}
	home := HomeDisclosure(published)
	colo := CoLocation(published, 500)
	return fmt.Sprintf(
		"residual-risk diagnostics (k-anonymity limitations, paper Sec. 2.4):\n"+
			"  localization   median position bound %.0f m at a random covered instant (%d/%d probes uncovered)\n"+
			"  home area      %.0f%% of groups bound their members' night activity within 1 km\n"+
			"  co-location    %.2f%% of cross-group sample pairs overlap in space and time\n",
		loc.MedianSpan(), loc.Misses, loc.Misses+len(loc.SpanMeters),
		100*home.DisclosedFraction(1000),
		100*colo.Rate()), nil
}
