package privacy

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
)

func groupWith(id string, count int, samples ...core.Sample) *core.Fingerprint {
	members := make([]string, count)
	for i := range members {
		members[i] = id + string(rune('a'+i))
	}
	f := &core.Fingerprint{ID: id, Count: count, Members: members, Samples: samples}
	return f
}

func s(x, y, dx, t, dt float64) core.Sample {
	return core.Sample{X: x, Y: y, DX: dx, DY: dx, T: t, DT: dt, Weight: 1}
}

func TestLocalizationArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Localization(core.NewDataset(nil), 10, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	d := core.NewDataset([]*core.Fingerprint{groupWith("g", 2, s(0, 0, 100, 0, 10))})
	if _, err := Localization(d, 0, rng); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestLocalizationTightSamples(t *testing.T) {
	// A group whose samples cover its whole range with 500 m boxes: all
	// probes localize within 500 m.
	d := core.NewDataset([]*core.Fingerprint{
		groupWith("g", 2, s(0, 0, 500, 0, 100), s(1000, 0, 500, 100, 100)),
	})
	rng := rand.New(rand.NewSource(2))
	res, err := Localization(d, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("misses = %d on fully covered range", res.Misses)
	}
	if res.MedianSpan() != 500 {
		t.Errorf("median span = %g, want 500", res.MedianSpan())
	}
}

func TestLocalizationGaps(t *testing.T) {
	// Samples cover only 2 of 1000 minutes: most probes miss.
	d := core.NewDataset([]*core.Fingerprint{
		groupWith("g", 2, s(0, 0, 100, 0, 1), s(0, 0, 100, 999, 1)),
	})
	rng := rand.New(rand.NewSource(3))
	res, err := Localization(d, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses < 150 {
		t.Errorf("misses = %d, want mostly misses on sparse coverage", res.Misses)
	}
}

func TestLocalizationEmptyResult(t *testing.T) {
	r := &LocalizationResult{}
	if !math.IsInf(r.MedianSpan(), 1) {
		t.Error("empty result median not +Inf")
	}
}

func TestHomeDisclosure(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		// Tight night activity: two 100 m night samples 200 m apart.
		groupWith("tight", 2,
			s(0, 0, 100, 2*60, 10),     // 02:00
			s(200, 0, 100, 23*60, 10),  // 23:00
			s(9000, 0, 100, 12*60, 10), // noon — ignored
		),
		// Dispersed night activity.
		groupWith("wide", 2,
			s(0, 0, 100, 3*60, 10),
			s(20000, 0, 100, 26*60, 10), // 02:00 next day
		),
		// No night data at all.
		groupWith("daysonly", 2, s(0, 0, 100, 12*60, 10)),
	})
	res := HomeDisclosure(d)
	if res.NoNightData != 1 {
		t.Errorf("NoNightData = %d, want 1", res.NoNightData)
	}
	if len(res.NightSpanMeters) != 2 {
		t.Fatalf("assessed %d groups, want 2", len(res.NightSpanMeters))
	}
	if f := res.DisclosedFraction(1000); f != 0.5 {
		t.Errorf("disclosed fraction at 1 km = %g, want 0.5", f)
	}
	if f := res.DisclosedFraction(50000); f != 1 {
		t.Errorf("disclosed fraction at 50 km = %g, want 1", f)
	}
	empty := &HomeDisclosureResult{}
	if empty.DisclosedFraction(1000) != 0 {
		t.Error("empty disclosed fraction != 0")
	}
}

func TestCoLocation(t *testing.T) {
	d := core.NewDataset([]*core.Fingerprint{
		groupWith("a", 2, s(0, 0, 1000, 0, 60)),
		groupWith("b", 2, s(500, 0, 1000, 30, 60)),   // overlaps a
		groupWith("c", 2, s(90000, 0, 1000, 30, 60)), // far away
	})
	res := CoLocation(d, 0)
	if res.ComparedPairs != 3 {
		t.Errorf("compared %d sample pairs, want 3", res.ComparedPairs)
	}
	if res.OverlappingPairs != 1 {
		t.Errorf("overlapping = %d, want 1 (a-b)", res.OverlappingPairs)
	}
	if r := res.Rate(); math.Abs(r-1.0/3) > 1e-12 {
		t.Errorf("rate = %g", r)
	}
	// Pair budget.
	limited := CoLocation(d, 1)
	if limited.ComparedPairs != 1 {
		t.Errorf("budgeted comparison did %d pairs", limited.ComparedPairs)
	}
	if (&CoLocationResult{}).Rate() != 0 {
		t.Error("empty rate != 0")
	}
}

func TestSamplesOverlapGeometry(t *testing.T) {
	base := s(0, 0, 100, 0, 10)
	cases := []struct {
		other core.Sample
		want  bool
	}{
		{s(50, 50, 100, 5, 10), true},  // overlap all axes
		{s(200, 0, 100, 5, 10), false}, // x-disjoint
		{s(0, 200, 100, 5, 10), false}, // y-disjoint
		{s(0, 0, 100, 20, 10), false},  // time-disjoint
		{s(100, 0, 100, 5, 10), true},  // touching in x counts (shared boundary)
	}
	for i, c := range cases {
		if got := samplesOverlap(base, c.other); got != c.want {
			t.Errorf("case %d: overlap = %v, want %v", i, got, c.want)
		}
	}
}

func TestReportOnGloveOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fps := make([]*core.Fingerprint, 16)
	for i := range fps {
		samples := make([]core.Sample, 8)
		hx, hy := rng.Float64()*20000, rng.Float64()*20000
		for j := range samples {
			samples[j] = core.Sample{
				X: hx + rng.NormFloat64()*800, DX: 100,
				Y: hy + rng.NormFloat64()*800, DY: 100,
				T: rng.Float64() * 3000, DT: 1,
				Weight: 1,
			}
		}
		fps[i] = core.NewFingerprint(string(rune('a'+i)), samples)
	}
	d := core.NewDataset(fps)
	out, _, err := core.Glove(d, core.GloveOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Report(out, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"localization", "home area", "co-location"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if _, err := Report(core.NewDataset(nil), rng); err == nil {
		t.Error("report on empty dataset did not fail")
	}
}
