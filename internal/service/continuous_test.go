package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// --- Registry: append, versioning, and the record-cap boundary. ---

func csvBody(users ...string) string {
	var b strings.Builder
	b.WriteString("user,lat,lon,minute\n")
	for i, u := range users {
		fmt.Fprintf(&b, "%s,7.5,-5.5,%d\n", u, i)
	}
	return b.String()
}

// The cap must bind before any record is buffered past it: exactly
// MaxRecords is accepted, one more is rejected — on ingestion and on
// append alike — and a failed append leaves the dataset untouched.
func TestRegistryMaxRecordsBoundary(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}

	reg := NewRegistry()
	reg.MaxRecords = 3
	if _, err := reg.Ingest(strings.NewReader(csvBody("a", "b", "c")), "full", center, 1); err != nil {
		t.Fatalf("ingest at exactly the cap rejected: %v", err)
	}
	if _, err := reg.Ingest(strings.NewReader(csvBody("a", "b", "c", "d")), "over", center, 1); err == nil {
		t.Fatal("ingest one past the cap accepted")
	}

	info, err := reg.Ingest(strings.NewReader(csvBody("a", "b")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Append up to the cap succeeds and bumps the version.
	info2, err := reg.Append(info.ID, strings.NewReader(csvBody("c")))
	if err != nil {
		t.Fatalf("append to exactly the cap rejected: %v", err)
	}
	if info2.Records != 3 || info2.Version != 2 {
		t.Errorf("after append: records %d version %d, want 3 / 2", info2.Records, info2.Version)
	}
	// One past the cap fails and leaves records and version unchanged.
	if _, err := reg.Append(info.ID, strings.NewReader(csvBody("d"))); err == nil {
		t.Fatal("append past the cap accepted")
	}
	got, _ := reg.Get(info.ID)
	if got.Records != 3 || got.Version != 2 {
		t.Errorf("failed append mutated dataset: records %d version %d", got.Records, got.Version)
	}
}

func TestRegistryAppend(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	info, err := reg.Ingest(strings.NewReader(csvBody("a", "b")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Users != 2 {
		t.Fatalf("fresh dataset version %d users %d, want 1 / 2", info.Version, info.Users)
	}

	// Appends bump the monotone version and merge the user set.
	info, err = reg.Append(info.ID, strings.NewReader(csvBody("b", "c")))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.Records != 4 || info.Users != 3 {
		t.Errorf("after append: version %d records %d users %d, want 2 / 4 / 3", info.Version, info.Records, info.Users)
	}

	// Records past the nominal span extend it: minute 3000 is day 3.
	info, err = reg.Append(info.ID, strings.NewReader("user,lat,lon,minute\nd,7.5,-5.5,3000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if info.SpanDays != 3 {
		t.Errorf("span_days = %d after a day-3 append, want 3", info.SpanDays)
	}

	if _, err := reg.Append("ds-does-not-exist", strings.NewReader(csvBody("x"))); err == nil {
		t.Error("append to unknown dataset accepted")
	}
	if _, err := reg.Append(info.ID, strings.NewReader("user,lat,lon,minute\n")); err == nil {
		t.Error("empty append accepted")
	}
	if _, err := reg.Append(info.ID, strings.NewReader("garbage")); err == nil {
		t.Error("malformed append accepted")
	}
	got, _ := reg.Get(info.ID)
	if got.Version != 3 || got.Records != 5 {
		t.Errorf("failed appends mutated dataset: %+v", got)
	}
}

// --- Manager: snapshot isolation, retention, windowed execution. ---

// Appends racing a running job must not leak into it: the job
// anonymizes the snapshot version it started from, and the status
// reports that version.
func TestJobAnonymizesSnapshotVersion(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info := ingestSynth(t, reg, 300, 2)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the run has taken its snapshot, then grow the feed.
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.DatasetVersion != 0 || s.State.Terminal() })
	if _, err := reg.Append(info.ID, strings.NewReader(csvBody("late-1", "late-2"))); err != nil {
		t.Fatal(err)
	}
	upd, _ := reg.Get(info.ID)
	if upd.Version != 2 || upd.Users != info.Users+2 {
		t.Fatalf("append not applied: %+v", upd)
	}

	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	if final.DatasetVersion != 1 {
		t.Errorf("job anonymized version %d, want the snapshot version 1", final.DatasetVersion)
	}
	if final.Stats.InputUsers != info.Users {
		t.Errorf("job saw %d users, want the snapshot's %d", final.Stats.InputUsers, info.Users)
	}

	// A second job sees the appended feed.
	st2, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitForState(t, mgr, st2.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final2.State != JobDone {
		t.Fatalf("second job finished %s: %s", final2.State, final2.Error)
	}
	if final2.DatasetVersion != 2 || final2.Stats.InputUsers != info.Users+2 {
		t.Errorf("second job version %d users %d, want 2 / %d",
			final2.DatasetVersion, final2.Stats.InputUsers, info.Users+2)
	}
}

// The retention policy evicts the oldest-finished jobs beyond the cap,
// dropping the manager's reference to their results so a resident
// daemon does not grow without bound.
func TestManagerRetentionEvictsOldestFinished(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxFinishedJobs: 2})
	defer mgr.Close()

	info := ingestSynth(t, reg, 20, 1)
	var ids []string
	for i := 0; i < 3; i++ {
		st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
		if final.State != JobDone {
			t.Fatalf("job %d finished %s: %s", i, final.State, final.Error)
		}
		ids = append(ids, st.ID)
	}

	if _, ok := mgr.Get(ids[0]); ok {
		t.Errorf("oldest finished job %s survived a cap of 2", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := mgr.Get(id); !ok {
			t.Errorf("recent job %s evicted", id)
		}
	}
	if _, err := mgr.Result(ids[0]); err == nil {
		t.Error("evicted job still serves its result")
	}
	// Eviction frees the result: the manager holds no reference to the
	// evicted job (or its retained dataset) anywhere.
	mgr.mu.Lock()
	_, held := mgr.jobs[ids[0]]
	n := len(mgr.jobs)
	mgr.mu.Unlock()
	if held || n != 2 {
		t.Errorf("manager still holds evicted job (held=%v, %d jobs)", held, n)
	}
}

func TestManagerRetentionByAge(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxFinishedJobs: -1, MaxFinishedAge: 10 * time.Millisecond})
	defer mgr.Close()

	info := ingestSynth(t, reg, 20, 1)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	time.Sleep(20 * time.Millisecond)
	// Age-based retention is enforced lazily on List.
	if got := len(mgr.List()); got != 0 {
		t.Errorf("%d jobs retained after expiry, want 0", got)
	}
	if _, ok := mgr.Get(st.ID); ok {
		t.Error("expired job still served")
	}
}

// A windowed job over a dataset whose span fits one window must produce
// a byte-identical CSV to the plain batch job — the invariant that
// makes the windowed pipeline a strict generalization of the batch one.
func TestWindowedSingleWindowByteIdentical(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 2})
	defer mgr.Close()

	info := ingestSynth(t, reg, 50, 2) // spans 2 days
	batch, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 72 h covers the whole 2-day span in window 0.
	windowed, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Shards: 2, WindowHours: 72})
	if err != nil {
		t.Fatal(err)
	}
	bst := waitForState(t, mgr, batch.ID, func(s JobStatus) bool { return s.State.Terminal() })
	wst := waitForState(t, mgr, windowed.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if bst.State != JobDone || wst.State != JobDone {
		t.Fatalf("jobs finished %s / %s (%s %s)", bst.State, wst.State, bst.Error, wst.Error)
	}
	if len(wst.Windows) != 1 || wst.Windows[0].State != WindowDone {
		t.Fatalf("windowed job windows: %+v", wst.Windows)
	}

	csv := func(id string) []byte {
		ds, err := mgr.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cdr.WriteAnonymizedCSV(&buf, ds); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(csv(batch.ID), csv(windowed.ID)) {
		t.Error("single-window release differs from the batch release")
	}
	// The same bytes are served through the per-window download.
	wds, err := mgr.WindowResult(windowed.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wbuf bytes.Buffer
	if err := cdr.WriteAnonymizedCSV(&wbuf, wds); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wbuf.Bytes(), csv(batch.ID)) {
		t.Error("window 0 release differs from the batch release")
	}
}

// Cancelling a windowed job mid-window publishes no partial release:
// windows committed before the cancel stay downloadable (they are
// complete, validated releases), the interrupted window yields nothing.
func TestWindowedCancellationLeavesNoPartialRelease(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info := ingestSynth(t, reg, 500, 4) // 4 days -> two 48 h windows
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1, WindowHours: 48})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first window committed and a later one is running,
	// then cancel. If the job outruns the test, skip rather than flake.
	cur := waitForState(t, mgr, st.ID, func(s JobStatus) bool {
		if s.State.Terminal() {
			return true
		}
		return len(s.Windows) > 1 && s.Windows[0].State == WindowDone
	})
	if cur.State.Terminal() {
		t.Skipf("job reached %s before the cancel window", cur.State)
	}
	if _, err := mgr.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobCancelled {
		t.Fatalf("job finished %s, want cancelled", final.State)
	}

	// The committed window remains a complete release...
	ds, err := mgr.WindowResult(st.ID, final.Windows[0].Index)
	if err != nil {
		t.Fatalf("committed window lost after cancel: %v", err)
	}
	if err := core.ValidateKAnonymity(ds, 2); err != nil {
		t.Errorf("committed window release: %v", err)
	}
	// ...and no later window published anything; interrupted windows
	// land in "aborted", never a forever-"running" limbo.
	for _, w := range final.Windows[1:] {
		if w.State == WindowDone {
			continue // finished before the cancel landed; still a full release
		}
		if w.State != WindowAborted {
			t.Errorf("interrupted window %d is %q, want aborted", w.Index, w.State)
		}
		if _, err := mgr.WindowResult(st.ID, w.Index); err == nil {
			t.Errorf("uncommitted window %d served a release", w.Index)
		}
	}
	// The batch result endpoint serves nothing for a cancelled job.
	if _, err := mgr.Result(st.ID); err == nil {
		t.Error("cancelled job served a batch result")
	}
}

// --- HTTP: the full continuous-release scenario of the acceptance
// criteria: append over the wire, a 3-window job, three independently
// k-anonymous releases, and the linkage metric in /v1/metrics. ---

func TestServerContinuousRelease(t *testing.T) {
	srv, _ := newTestServer(t)
	const k = 2

	table := synthTable(t, 60, 3) // 3 days -> three 24 h windows
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/datasets?name=feed&lat=%g&lon=%g&days=%d",
		srv.URL, table.Center.Lat, table.Center.Lon, table.SpanDays)
	resp, err := http.Post(url, "text/csv", bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ds DatasetInfo
	json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || ds.Version != 1 {
		t.Fatalf("ingest: status %d version %d", resp.StatusCode, ds.Version)
	}

	// Stream an append over the wire; the version counter is monotone.
	resp, err = http.Post(srv.URL+"/v1/datasets/"+ds.ID+"/records", "text/csv",
		strings.NewReader(csvBody("fresh-a", "fresh-b")))
	if err != nil {
		t.Fatal(err)
	}
	var upd DatasetInfo
	json.NewDecoder(resp.Body).Decode(&upd)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || upd.Version != 2 || upd.Records != ds.Records+2 {
		t.Fatalf("append: status %d info %+v", resp.StatusCode, upd)
	}
	resp, _ = http.Post(srv.URL+"/v1/datasets/nope/records", "text/csv", strings.NewReader(csvBody("x")))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("append to unknown dataset: status %d", resp.StatusCode)
	}

	// Submit a 24 h windowed job.
	spec, _ := json.Marshal(JobSpec{DatasetID: ds.ID, K: k, WindowHours: 24})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for !job.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s at %.2f", job.State, job.Progress)
		}
		getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &job)
		time.Sleep(2 * time.Millisecond)
	}
	if job.State != JobDone {
		t.Fatalf("job finished %s: %s", job.State, job.Error)
	}
	if job.DatasetVersion != 2 {
		t.Errorf("job anonymized version %d, want 2", job.DatasetVersion)
	}
	if len(job.Windows) != 3 {
		t.Fatalf("got %d windows, want 3: %+v", len(job.Windows), job.Windows)
	}

	// Three independently k-anonymous releases, one per window.
	for _, w := range job.Windows {
		if w.State != WindowDone || w.Progress != 1 || w.Stats == nil || w.Groups < 1 {
			t.Errorf("window %d not completed: %+v", w.Index, w)
		}
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/windows/%d/result", srv.URL, job.ID, w.Index))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d download: status %d, %v", w.Index, resp.StatusCode, err)
		}
		rel, err := cdr.ReadAnonymizedCSV(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateKAnonymity(rel, k); err != nil {
			t.Errorf("window %d release: %v", w.Index, err)
		}
		if rel.Users() != w.Users {
			t.Errorf("window %d release hides %d users, want %d", w.Index, rel.Users(), w.Users)
		}
	}

	// The batch result endpoint refuses a multi-window job.
	resp = getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("multi-window batch result: status %d", resp.StatusCode)
	}
	// A window index the job will never have is a permanent 404, not a
	// retryable conflict.
	resp = getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/windows/99/result", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown window: status %d", resp.StatusCode)
	}

	// The linkage metric is reported per job and aggregated in metrics.
	if job.Linkage == nil {
		t.Fatal("cross-window linkage missing from the finished job")
	}
	if len(job.Linkage.Pairs) != 2 {
		t.Errorf("linkage pairs = %d, want 2 consecutive pairs", len(job.Linkage.Pairs))
	}
	var rep MetricsReport
	getJSON(t, srv.URL+"/v1/metrics", &rep)
	if rep.WindowedJobs != 1 || rep.WindowReleases != 3 {
		t.Errorf("metrics windowed_jobs %d window_releases %d, want 1 / 3",
			rep.WindowedJobs, rep.WindowReleases)
	}
	if rep.MeanCrossWindowLinkage == nil {
		t.Error("metrics missing mean_cross_window_linkage")
	} else if *rep.MeanCrossWindowLinkage != job.Linkage.LinkedFraction {
		t.Errorf("metrics linkage %g != job linkage %g",
			*rep.MeanCrossWindowLinkage, job.Linkage.LinkedFraction)
	}
}

// A daemon-wide -window-hours default fills unset specs, and the
// explicit negative spelling overrides it back to a batch job.
func TestDefaultWindowHoursAndBatchOverride(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{DefaultWindowHours: 24})
	defer mgr.Close()

	info := ingestSynth(t, reg, 30, 2)
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Spec.WindowHours != 24 {
		t.Errorf("unset window_hours = %g, want the daemon default 24", st.Spec.WindowHours)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone || len(final.Windows) != 2 {
		t.Errorf("defaulted job: state %s, %d windows, want done / 2", final.State, len(final.Windows))
	}

	st2, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, WindowHours: -1})
	if err != nil {
		t.Fatalf("explicit batch override rejected: %v", err)
	}
	if st2.Spec.WindowHours != 0 {
		t.Errorf("batch override window_hours = %g, want 0", st2.Spec.WindowHours)
	}
	final2 := waitForState(t, mgr, st2.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final2.State != JobDone || len(final2.Windows) != 0 {
		t.Errorf("batch override: state %s, %d windows, want done / 0", final2.State, len(final2.Windows))
	}
	if _, err := mgr.Result(st2.ID); err != nil {
		t.Errorf("batch override has no result: %v", err)
	}
}

func TestJobSpecWindowValidation(t *testing.T) {
	bad := JobSpec{DatasetID: "ds-1", K: 2, WindowHours: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative window_hours accepted")
	}
	good := JobSpec{DatasetID: "ds-1", K: 2, WindowHours: 12.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid windowed spec rejected: %v", err)
	}
	if got := good.WindowDuration(); got != 12*time.Hour+30*time.Minute {
		t.Errorf("WindowDuration = %v", got)
	}
}
