package service

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
)

// ingestTable uploads a table and returns its registered info.
func ingestTable(t *testing.T, baseURL string, table *cdr.Table, name string) DatasetInfo {
	t.Helper()
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/datasets?name=%s&lat=%g&lon=%g&days=%d",
		baseURL, name, table.Center.Lat, table.Center.Lon, table.SpanDays)
	resp, err := http.Post(url, "text/csv", bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
	var ds DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	return ds
}

// submitJob posts a spec and returns the accepted status.
func submitJob(t *testing.T, baseURL string, spec JobSpec) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d: %s", resp.StatusCode, raw)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitJobDone polls until the job is terminal and asserts it is done.
func waitJobDone(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var st JobStatus
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		getJSON(t, baseURL+"/v1/jobs/"+id, &st)
		if st.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != JobDone {
		t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
	}
	return st
}

// TestServerErrorEnvelope pins the contract invariant that no handler
// answers an error outside the structured envelope: every error path —
// including the mux 404/405 fallthroughs and the ingestion byte cap —
// yields a JSON body with a registered machine-readable code, the
// request id echoed in the details, and the status the code maps to.
func TestServerErrorEnvelope(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	t.Cleanup(mgr.Close)
	h := NewServer(reg, mgr)
	h.MaxIngestBytes = 64
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	registered := make(map[api.Code]bool)
	for _, c := range api.Codes() {
		registered[c] = true
	}

	oversized := "user,lat,lon,minute\n" + strings.Repeat("u,1,2,3\n", 100)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   api.Code
	}{
		{"route fallthrough", "GET", "/nope", "", 404, api.CodeNotFound},
		{"deep fallthrough", "GET", "/v1/unknown/deep/path", "", 404, api.CodeNotFound},
		{"method mismatch", "PUT", "/v1/datasets", "", 405, api.CodeMethodNotAllowed},
		{"method mismatch on item", "PATCH", "/v1/jobs/job-000001", "", 405, api.CodeMethodNotAllowed},
		{"bad lat", "POST", "/v1/datasets?lat=bogus", "x", 400, api.CodeInvalidArgument},
		{"garbage body", "POST", "/v1/datasets", "garbage", 400, api.CodeInvalidArgument},
		{"oversized body", "POST", "/v1/datasets", oversized, 413, api.CodeBodyTooLarge},
		{"unknown dataset", "GET", "/v1/datasets/ds-999999", "", 404, api.CodeDatasetNotFound},
		{"delete unknown dataset", "DELETE", "/v1/datasets/ds-999999", "", 404, api.CodeDatasetNotFound},
		{"append unknown dataset", "POST", "/v1/datasets/ds-999999/records", "x", 404, api.CodeDatasetNotFound},
		{"bad limit", "GET", "/v1/datasets?limit=bogus", "", 400, api.CodeInvalidArgument},
		{"negative limit", "GET", "/v1/jobs?limit=-3", "", 400, api.CodeInvalidArgument},
		{"garbage page token", "GET", "/v1/datasets?page_token=%21%21%21", "", 400, api.CodeInvalidPageToken},
		{"cross-collection token", "GET", "/v1/jobs?page_token=" + api.EncodePageToken("datasets", "ds-000001"), "", 400, api.CodeInvalidPageToken},
		{"bad spec json", "POST", "/v1/jobs", "not json", 400, api.CodeInvalidSpec},
		{"oversized spec body", "POST", "/v1/jobs", `{"dataset_id":"` + strings.Repeat("x", 2<<20) + `"}`, 413, api.CodeBodyTooLarge},
		{"unknown spec field", "POST", "/v1/jobs", `{"zap":1}`, 400, api.CodeInvalidSpec},
		{"spec k too small", "POST", "/v1/jobs", `{"dataset_id":"x","k":1}`, 400, api.CodeInvalidSpec},
		{"spec unknown dataset", "POST", "/v1/jobs", `{"dataset_id":"nope","k":2}`, 404, api.CodeDatasetNotFound},
		{"unknown job", "GET", "/v1/jobs/job-999999", "", 404, api.CodeJobNotFound},
		{"cancel unknown job", "DELETE", "/v1/jobs/job-999999", "", 404, api.CodeJobNotFound},
		{"result of unknown job", "GET", "/v1/jobs/job-999999/result", "", 404, api.CodeJobNotFound},
		{"events of unknown job", "GET", "/v1/jobs/job-999999/events", "", 404, api.CodeJobNotFound},
		{"bad event cursor", "GET", "/v1/jobs/job-999999/events?after=x", "", 400, api.CodeInvalidArgument},
		{"window of unknown job", "GET", "/v1/jobs/job-999999/windows/0/result", "", 404, api.CodeJobNotFound},
		{"trace of unknown job", "GET", "/v1/jobs/job-999999/trace", "", 404, api.CodeJobNotFound},
		{"bad window index", "GET", "/v1/jobs/job-999999/windows/zero/result", "", 400, api.CodeInvalidArgument},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("content type %q, want application/json", ct)
			}
			reqID := resp.Header.Get("X-Request-ID")
			if reqID == "" {
				t.Error("missing X-Request-ID header")
			}
			var envelope api.Error
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatalf("body is not the envelope: %v", err)
			}
			if envelope.Code != tc.code {
				t.Errorf("code = %q, want %q", envelope.Code, tc.code)
			}
			if !registered[envelope.Code] {
				t.Errorf("code %q is not registered", envelope.Code)
			}
			if envelope.Message == "" {
				t.Error("empty message")
			}
			if got, _ := envelope.Details["request_id"].(string); got != reqID {
				t.Errorf("details.request_id = %q, header %q", got, reqID)
			}
			if tc.status == 405 {
				if allow := resp.Header.Get("Allow"); allow == "" {
					t.Error("405 without Allow header")
				}
			}
			if envelope.Code == api.CodeQueueFull && resp.Header.Get("Retry-After") == "" {
				t.Error("queue_full without Retry-After")
			}
		})
	}

	// An inbound X-Request-ID is echoed rather than replaced.
	req, _ := http.NewRequest("GET", srv.URL+"/nope", nil)
	req.Header.Set("X-Request-ID", "caller-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chosen-7" {
		t.Errorf("X-Request-ID = %q, want the caller's", got)
	}
}

// TestServerPagination covers the cursor boundaries on both listings:
// full walk, exact-limit page, empty listing, and the stale cursor.
func TestServerPagination(t *testing.T) {
	srv, _ := newTestServer(t)

	// Empty listing: one empty page, no token.
	var page api.DatasetPage
	getJSON(t, srv.URL+"/v1/datasets", &page)
	if len(page.Datasets) != 0 || page.NextPageToken != "" {
		t.Fatalf("empty listing page = %+v", page)
	}

	table := synthTable(t, 12, 2)
	var ids []string
	for i := 0; i < 5; i++ {
		ids = append(ids, ingestTable(t, srv.URL, table, fmt.Sprintf("p%d", i)).ID)
	}

	// Walk with limit 2: pages of 2, 2, 1 in ingestion order.
	var got []string
	url := srv.URL + "/v1/datasets?limit=2"
	pages := 0
	for {
		var p api.DatasetPage
		getJSON(t, url, &p)
		pages++
		if pages < 3 && len(p.Datasets) != 2 {
			t.Fatalf("page %d has %d items", pages, len(p.Datasets))
		}
		for _, d := range p.Datasets {
			got = append(got, d.ID)
		}
		if p.NextPageToken == "" {
			break
		}
		url = srv.URL + "/v1/datasets?limit=2&page_token=" + p.NextPageToken
	}
	if pages != 3 || strings.Join(got, ",") != strings.Join(ids, ",") {
		t.Fatalf("walk = %v over %d pages, want %v", got, pages, ids)
	}

	// Exact-limit page: limit == total leaves no next token.
	var exact api.DatasetPage
	getJSON(t, srv.URL+"/v1/datasets?limit=5", &exact)
	if len(exact.Datasets) != 5 || exact.NextPageToken != "" {
		t.Fatalf("exact-limit page = %d items, token %q", len(exact.Datasets), exact.NextPageToken)
	}

	// Stale cursor: delete the dataset a token names, then resume.
	var first api.DatasetPage
	getJSON(t, srv.URL+"/v1/datasets?limit=1", &first)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/datasets/"+first.Datasets[0].ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp := getJSON(t, srv.URL+"/v1/datasets?limit=1&page_token="+first.NextPageToken, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stale cursor status = %d, want 400", resp.StatusCode)
	}

	// Jobs listing paginates the same way.
	ds := ingestTable(t, srv.URL, table, "jobsrc")
	var jobIDs []string
	for i := 0; i < 3; i++ {
		jobIDs = append(jobIDs, submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, Shards: 1}).ID)
	}
	var jp api.JobPage
	getJSON(t, srv.URL+"/v1/jobs?limit=2", &jp)
	if len(jp.Jobs) != 2 || jp.NextPageToken == "" {
		t.Fatalf("jobs page = %d items, token %q", len(jp.Jobs), jp.NextPageToken)
	}
	var jp2 api.JobPage
	getJSON(t, srv.URL+"/v1/jobs?limit=2&page_token="+jp.NextPageToken, &jp2)
	if len(jp2.Jobs) != 1 || jp2.NextPageToken != "" {
		t.Fatalf("jobs page 2 = %d items, token %q", len(jp2.Jobs), jp2.NextPageToken)
	}
	if jp.Jobs[0].ID != jobIDs[0] || jp2.Jobs[0].ID != jobIDs[2] {
		t.Fatalf("jobs order: %s..%s, want %v", jp.Jobs[0].ID, jp2.Jobs[0].ID, jobIDs)
	}
	for _, id := range jobIDs {
		waitJobDone(t, srv.URL, id)
	}
}

// sseEvent is one parsed Server-Sent-Events frame.
type sseEvent struct {
	id    string
	event string
	data  api.JobEvent
}

// readSSE parses an SSE stream to EOF.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var cur sseEvent
	var hasData bool
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if hasData {
				out = append(out, cur)
			}
			cur, hasData = sseEvent{}, false
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
			hasData = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerEventStream pins SSE ordering and termination: the stream
// replays the whole lifecycle in order — queued first, strictly
// increasing dense sequence numbers, monotone progress, every window
// running before done — and the connection closes right after the
// terminal state event without the client hanging up.
func TestServerEventStream(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 40, 2)
	ds := ingestTable(t, srv.URL, table, "sse")
	st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, Shards: 2, WindowHours: 24})

	// Subscribe immediately — likely mid-run — and read to EOF; the
	// server must close the stream after the terminal event.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}

	if events[0].data.Type != api.EventState || events[0].data.State != JobQueued {
		t.Errorf("first event = %+v, want queued state", events[0].data)
	}
	last := events[len(events)-1].data
	if !last.Terminal() || last.State != JobDone {
		t.Errorf("last event = %+v, want terminal done state", last)
	}

	lastProgress := 0.0
	windowState := make(map[int]WindowState)
	for i, e := range events {
		if e.data.Seq != i+1 {
			t.Fatalf("event %d has seq %d (dense ordering broken)", i, e.data.Seq)
		}
		if e.id != fmt.Sprint(e.data.Seq) || e.event != string(e.data.Type) {
			t.Errorf("frame fields (id %q, event %q) disagree with payload %+v", e.id, e.event, e.data)
		}
		if e.data.JobID != st.ID {
			t.Errorf("event %d names job %q", i, e.data.JobID)
		}
		switch e.data.Type {
		case api.EventProgress:
			if e.data.Progress < lastProgress {
				t.Errorf("progress went backwards: %g after %g", e.data.Progress, lastProgress)
			}
			lastProgress = e.data.Progress
		case api.EventWindow:
			w := e.data.Window
			if w.State == WindowDone {
				if windowState[w.Index] != WindowRunning {
					t.Errorf("window %d done without running first", w.Index)
				}
				if w.Groups <= 0 {
					t.Errorf("done window %d reports %d groups", w.Index, w.Groups)
				}
			}
			windowState[w.Index] = w.State
		}
	}
	if len(windowState) == 0 {
		t.Error("windowed job emitted no window events")
	}

	// Resume: ?after=N replays only what follows, and a finished job's
	// stream still terminates immediately.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events?after=" + fmt.Sprint(len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	tail := readSSE(t, resp.Body)
	if len(tail) != 1 || tail[0].data.Seq != len(events) || !tail[0].data.Terminal() {
		t.Errorf("resumed stream = %+v, want exactly the terminal event", tail)
	}

	// Last-Event-ID works the same way.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(len(events)-1))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if tail := readSSE(t, resp.Body); len(tail) != 1 {
		t.Errorf("Last-Event-ID resume replayed %d events, want 1", len(tail))
	}

	// Resuming at (or past) the terminal event must close the stream
	// immediately — a terminal job appends nothing more, so the server
	// cannot sit on the connection heartbeating forever.
	done := make(chan []sseEvent, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events?after=" + fmt.Sprint(len(events)))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		done <- readSSE(t, resp.Body)
	}()
	select {
	case tail := <-done:
		if len(tail) != 0 {
			t.Errorf("resume past terminal replayed %d events, want 0", len(tail))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("resume past terminal: stream never terminated")
	}
}

// TestServerResultCaching covers the immutable-release conveniences:
// a strong ETag on results, 304 on If-None-Match, and gzip encoding
// when the client advertises it — with identical bytes either way.
func TestServerResultCaching(t *testing.T) {
	srv, _ := newTestServer(t)
	table := synthTable(t, 30, 2)
	ds := ingestTable(t, srv.URL, table, "etag")
	st := submitJob(t, srv.URL, JobSpec{DatasetID: ds.ID, K: 2, Shards: 1})
	waitJobDone(t, srv.URL, st.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.Contains(etag, st.ID) {
		t.Fatalf("ETag = %q", etag)
	}
	if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Errorf("Vary = %q", vary)
	}

	// Conditional re-download is free.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/result", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("If-None-Match: status %d, %d body bytes", resp.StatusCode, len(body))
	}

	// A weak or multi-tag header still matches.
	req.Header.Set("If-None-Match", `"other", W/`+etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("weak multi-tag If-None-Match: status %d", resp.StatusCode)
	}

	// Explicit gzip negotiation (bypassing the transport's transparent
	// handling) yields a gzip body that inflates to the same bytes.
	req, _ = http.NewRequest("GET", srv.URL+"/v1/jobs/"+st.ID+"/result", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q", enc)
	}
	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inflated, plain) {
		t.Error("gzip body inflates to different bytes")
	}

	// q=0 refuses gzip.
	req.Header.Set("Accept-Encoding", "gzip;q=0")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if enc := resp2.Header.Get("Content-Encoding"); enc == "gzip" {
		t.Error("gzip served despite q=0")
	}
}
