package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// followResume is the committed prefix of a recovered follow job,
// rebuilt from journaled releases: executeFollow seeds its loop with it
// so the continuation matches an uninterrupted run — same releases,
// same budget accounting, same aggregate stats.
type followResume struct {
	// floor is the highest committed window index (empty windows
	// included); the feed re-scan silently walks past everything at or
	// below it.
	floor int
	// committed counts recovered non-empty releases against the window
	// budget.
	committed int
	// releases are the recovered releases in window order.
	releases []*core.Dataset
	// stats aggregates the recovered windows' run statistics.
	stats *core.GloveStats
}

// maxFollowGap bounds how far ahead of the last committed window a new
// record may land. Every skipped window in between is committed as an
// explicit empty window (one jobWindow plus one event each), so a
// corrupt timestamp millions of windows in the future must fail the job
// instead of flooding its event log.
const maxFollowGap = 4096

// executeFollow drives a follow job: instead of freezing one snapshot
// and splitting it, the run subscribes to the dataset's append wake
// channel and advances a record cursor over the feed. Each batch of
// appended records is bucketed into window fragments (TailWindows);
// a record landing in window w proves every window before w is closed
// — appends only move forward on the time axis of a feed — so those
// windows are committed in order: fragments are fused into one window
// table (reproducing exactly the record order a cold WindowSplit would
// give that window) and run through the same sharded pipeline a
// windowed job uses, warm across windows via a session pool. Windows
// the feed skipped entirely are reported as explicit empty windows.
//
// The run ends when the effective window bound is reached (the spec's
// follow_windows clamped by the daemon's MaxFollowWindows; empty
// windows don't count), or when it is cancelled — committed releases
// stay downloadable either way, and a cancellation mid-window publishes
// nothing for that window.
func (m *Manager) executeFollow(ctx context.Context, job *Job, spec JobSpec) (runOutcome, error) {
	d := spec.WindowDuration()
	wmin := d.Minutes()
	limit := spec.FollowWindows
	if max := m.opt.MaxFollowWindows; max > 0 && (limit <= 0 || limit > max) {
		limit = max
	}
	root := job.traceRoot()

	var (
		cursor        int                      // feed records consumed so far
		pending       = map[int][]cdr.Source{} // open windows: fragments in arrival order
		lastCommitted = -1
		maxSeen       = -1 // highest window index any record landed in
		committed     int
		total         = &core.GloveStats{}
		releases      []*core.Dataset
		lastSnap      cdr.Source
		lag           float64
		planned       bool
		resumeFloor   = -1
	)
	if resume := job.takeResume(); resume != nil {
		// Restarted after a crash or drain: the journal already holds
		// committed releases. The feed is re-scanned from record zero,
		// but everything at or below the floor is skipped — committed
		// windows are never re-opened, re-run, or re-published.
		resumeFloor = resume.floor
		lastCommitted = resume.floor
		committed = resume.committed
		releases = append(releases, resume.releases...)
		if resume.stats != nil {
			total = resume.stats
		}
	}
	// The stream-lag gauge is shared across follow jobs, so this run
	// only ever moves it by deltas and returns its remainder on exit.
	setLag := func(n float64) {
		if n < 0 {
			n = 0
		}
		m.tel.streamLagDelta(n - lag)
		lag = n
	}
	defer setLag(0)

	finish := func() (runOutcome, error) {
		var fps []*core.Fingerprint
		for _, rel := range releases {
			fps = append(fps, rel.Fingerprints...)
		}
		measured := &core.Dataset{Fingerprints: fps}
		total.OutputFingerprints = measured.Len()
		total.OutputSamples = measured.TotalSamples()
		outcome := runOutcome{
			measured: measured,
			stats:    total,
			anonFrac: m.anonymizability(ctx, lastSnap, spec),
		}
		if len(releases) == 1 {
			outcome.result = releases[0]
		}
		return outcome, nil
	}

	if limit > 0 && committed >= limit {
		// The recovered prefix already meets the window budget: finish
		// without touching the feed, exactly where the pre-crash run
		// would have stopped.
		return finish()
	}

	pool := core.NewSessionPool()
	for {
		// Watch before snapshot: an append racing the snapshot closes
		// this (pre-append) channel, so blocking on it below can never
		// miss records the snapshot didn't show.
		wake, ok := m.reg.Watch(spec.DatasetID)
		if !ok {
			return runOutcome{}, fmt.Errorf("service: dataset %q disappeared", spec.DatasetID)
		}
		snap, info, ok := m.reg.SnapshotSource(spec.DatasetID)
		if !ok {
			return runOutcome{}, fmt.Errorf("service: dataset %q disappeared", spec.DatasetID)
		}
		lastSnap = snap
		job.mu.Lock()
		job.datasetVersion = info.Version
		job.mu.Unlock()

		closedAt := time.Now()
		if n := snap.NumRecords(); n > cursor {
			frags, err := snap.TailWindows(cursor, d)
			if err != nil {
				return runOutcome{}, err
			}
			cursor = n
			for _, f := range frags {
				if f.Index <= resumeFloor {
					// Pre-crash records re-delivered by the post-restart
					// re-scan; their windows' journaled releases are
					// authoritative.
					continue
				}
				if f.Index <= lastCommitted {
					return runOutcome{}, fmt.Errorf(
						"service: append delivered %d records for window %d (minutes [%g, %g)) after its release was committed; a follow feed must only move forward",
						f.Source.NumRecords(), f.Index, f.StartMinute, f.EndMinute)
				}
				if f.Index > lastCommitted+maxFollowGap {
					return runOutcome{}, fmt.Errorf(
						"service: append jumped to window %d, %d windows past the last committed release — refusing to flood the job with empty windows",
						f.Index, f.Index-lastCommitted)
				}
				pending[f.Index] = append(pending[f.Index], f.Source)
				if f.Index > maxSeen {
					maxSeen = f.Index
				}
			}
		}
		setLag(float64(maxSeen - 1 - lastCommitted))

		// Every window strictly below maxSeen is closed; commit them in
		// order. Window maxSeen itself stays open — the feed may still
		// append into it.
		for idx := lastCommitted + 1; idx < maxSeen; idx++ {
			if err := ctx.Err(); err != nil {
				return runOutcome{}, err
			}
			start, end := float64(idx)*wmin, float64(idx+1)*wmin
			frags := pending[idx]
			if len(frags) == 0 {
				// Journal the empty window as a (release-less) result so
				// the resume floor advances over it: skipped intervals are
				// as immutable across restarts as published ones.
				if err := m.jrnl.jobResult(job.id, journalWindow{
					Index: idx, StartMinute: start, EndMinute: end, Empty: true,
				}, nil); err != nil {
					return runOutcome{}, err
				}
				job.commitEmptyWindow(idx, start, end)
				lastCommitted = idx
				setLag(float64(maxSeen - 1 - lastCommitted))
				continue
			}
			delete(pending, idx)
			table, err := cdr.MaterializeTable(frags...)
			if err != nil {
				return runOutcome{}, err
			}
			users := table.NumUsers()
			if users < spec.K {
				return runOutcome{}, fmt.Errorf(
					"service: window %d (minutes [%g, %g)) hides %d users, cannot %d-anonymize; use a longer window",
					idx, start, end, users, spec.K)
			}
			wname := fmt.Sprintf("w%d", idx)
			wspan := root.Child(obs.SpanWindow, wname)
			wspan.SetAttr("records", table.NumRecords())
			wspan.SetAttr("users", users)
			shards := planShards(table, users, spec.K, spec.Shards, m.opt.ShardSeed)
			if !planned {
				// First runnable window: resolve and publish the plan its
				// largest shard gets, the closest a feed-driven job comes
				// to the upfront plan of a snapshot-driven one.
				plan, perr := core.PlanFor(maxShardUsers(shards), anonymizeOptions(spec, spec.Workers, nil))
				if perr != nil {
					wspan.End()
					return runOutcome{}, perr
				}
				m.tel.jobPlanned(&plan)
				job.mu.Lock()
				job.plan = &plan
				job.mu.Unlock()
				planned = true
			}
			wpos := job.appendWindow(idx, start, end, table.NumRecords(), users)
			job.startWindow(wpos, len(shards))
			out, stats, err := runShards(ctx, shards, spec, pool, m.tel, wspan, func(shard int, frac float64) {
				job.setWindowShardProgress(wpos, shard, frac)
			})
			if err != nil {
				wspan.End()
				return runOutcome{}, fmt.Errorf("service: window %d: %w", idx, err)
			}
			vspan := wspan.Child(obs.SpanValidate, "")
			verr := core.ValidateKAnonymity(out, spec.K)
			vspan.End()
			if verr != nil {
				wspan.End()
				return runOutcome{}, fmt.Errorf("service: window %d failed validation: %w", idx, verr)
			}
			wspan.SetAttr("groups", out.Len())
			// THE commit point of the streaming pipeline: the release is
			// journaled and fsynced BEFORE it is published. A crash before
			// this returns re-runs the window (nothing was published); a
			// crash after it republishes exactly these bytes from the
			// journal. There is no separate cursor to tear — the resume
			// floor IS the highest journaled result.
			if err := m.jrnl.jobResult(job.id, journalWindow{
				Index:       idx,
				StartMinute: start,
				EndMinute:   end,
				Records:     table.NumRecords(),
				Users:       users,
				Groups:      out.Len(),
				Stats:       stats,
			}, out); err != nil {
				wspan.End()
				return runOutcome{}, fmt.Errorf("service: window %d: journaling release: %w", idx, err)
			}
			faultinject.Crash("follow.window.committed")
			job.commitWindow(wpos, out, stats)
			job.emitSpan(obs.SpanWindow, wname, wspan.End())
			m.tel.windowCommitted(time.Since(closedAt))
			m.agg.Lock()
			m.agg.windowReleases++
			m.agg.Unlock()
			total.Add(stats)
			releases = append(releases, out)
			committed++
			lastCommitted = idx
			setLag(float64(maxSeen - 1 - lastCommitted))
			if limit > 0 && committed >= limit {
				return finish()
			}
		}

		select {
		case <-ctx.Done():
			return runOutcome{}, ctx.Err()
		case <-wake:
		}
	}
}
