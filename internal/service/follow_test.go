package service

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
)

// windowCSV builds an append body whose records all land in 1 h window w
// (minutes [w*60, (w+1)*60)), one record per user at distinct minutes.
func windowCSV(w int, users ...string) string {
	var b strings.Builder
	b.WriteString("user,lat,lon,minute\n")
	for i, u := range users {
		fmt.Fprintf(&b, "%s,7.5,-5.5,%d\n", u, w*60+i)
	}
	return b.String()
}

// releaseCSV renders one window release for byte comparison.
func releaseCSV(t *testing.T, mgr *Manager, jobID string, w int) []byte {
	t.Helper()
	ds, err := mgr.WindowResult(jobID, w)
	if err != nil {
		t.Fatalf("window %d of %s: %v", w, jobID, err)
	}
	var buf bytes.Buffer
	if err := cdr.WriteAnonymizedCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// A follow job's committed releases must be byte-identical to the
// corresponding windows of a cold windowed job over the final feed —
// the streaming pipeline is a strict incrementalization of the batch
// one, never a different algorithm. The feed grows concurrently with
// the running job (exercising the append/snapshot race under -race),
// window 1 stays empty, and the job finishes on its follow_windows
// bound. Runs on both storage backends.
func TestFollowEqualsColdWindows(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := "table"
		if columnar {
			name = "columnar"
		}
		t.Run(name, func(t *testing.T) {
			center := geo.LatLon{Lat: 7.54, Lon: -5.55}
			reg := NewRegistry()
			reg.Columnar = columnar
			mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 2})
			defer mgr.Close()

			info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c", "d")), "feed", center, 1)
			if err != nil {
				t.Fatal(err)
			}
			st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
				WindowHours: 1, Follow: true, FollowWindows: 2})
			if err != nil {
				t.Fatal(err)
			}

			// Grow the feed from a separate goroutine while the job runs:
			// more window-0 records, nothing in window 1, window 2, and
			// finally window 3 (which closes window 2 and ends the job at
			// its 2-release bound; empty window 1 must not count).
			appendErr := make(chan error, 1)
			go func() {
				for _, body := range []string{
					windowCSV(0, "e", "f"),
					windowCSV(2, "a", "b", "e", "g"),
					windowCSV(3, "c", "d"),
				} {
					if _, err := reg.Append(info.ID, strings.NewReader(body)); err != nil {
						appendErr <- err
						return
					}
				}
				appendErr <- nil
			}()
			if err := <-appendErr; err != nil {
				t.Fatal(err)
			}

			final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
			if final.State != JobDone {
				t.Fatalf("follow job finished %s: %s", final.State, final.Error)
			}
			if len(final.Windows) != 3 {
				t.Fatalf("follow windows: %+v", final.Windows)
			}
			wantStates := map[int]WindowState{0: WindowDone, 1: WindowEmpty, 2: WindowDone}
			for _, w := range final.Windows {
				if w.State != wantStates[w.Index] {
					t.Errorf("window %d is %q, want %q", w.Index, w.State, wantStates[w.Index])
				}
				if w.Progress != 1 {
					t.Errorf("terminal window %d progress %g, want 1", w.Index, w.Progress)
				}
			}
			if final.Progress != 1 {
				t.Errorf("done follow job progress %g, want 1", final.Progress)
			}
			// The explicit empty event reached the log, so a streaming
			// consumer can distinguish "no data" from "release pending".
			evs, _, ok := mgr.EventsSince(st.ID, 0)
			if !ok {
				t.Fatal("event log gone")
			}
			sawEmpty := false
			for _, e := range evs {
				if e.Window != nil && e.Window.Index == 1 && e.Window.State == WindowEmpty {
					sawEmpty = true
				}
			}
			if !sawEmpty {
				t.Error("no empty-window event for the gap window")
			}

			// Cold reference: a windowed job over the finished feed. Its
			// windows 0 and 2 must match the follow releases byte for byte.
			cold, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1, WindowHours: 1})
			if err != nil {
				t.Fatal(err)
			}
			cfinal := waitForState(t, mgr, cold.ID, func(s JobStatus) bool { return s.State.Terminal() })
			if cfinal.State != JobDone {
				t.Fatalf("cold job finished %s: %s", cfinal.State, cfinal.Error)
			}
			for _, w := range []int{0, 2} {
				if !bytes.Equal(releaseCSV(t, mgr, st.ID, w), releaseCSV(t, mgr, cold.ID, w)) {
					t.Errorf("follow release for window %d differs from the cold windowed release", w)
				}
			}
			// The empty window has no downloadable release.
			if _, err := mgr.WindowResult(st.ID, 1); err == nil {
				t.Error("empty window served a release")
			}
		})
	}
}

// Cancelling a follow job keeps every committed release downloadable
// and publishes nothing for the window still open at the cancel.
func TestFollowCancellationKeepsCommittedReleases(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	// Closing window 0 commits it; window 1 stays open forever.
	if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(1, "a", "b"))); err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool {
		return s.State.Terminal() || (len(s.Windows) > 0 && s.Windows[0].State == WindowDone)
	})
	if _, err := mgr.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobCancelled {
		t.Fatalf("follow job finished %s (%s), want cancelled", final.State, final.Error)
	}
	ds, err := mgr.WindowResult(st.ID, 0)
	if err != nil {
		t.Fatalf("committed window lost after cancel: %v", err)
	}
	if err := core.ValidateKAnonymity(ds, 2); err != nil {
		t.Errorf("committed window release: %v", err)
	}
	// Nothing partial for the open window, and no batch result.
	for _, w := range final.Windows {
		if w.Index == 0 {
			continue
		}
		if _, err := mgr.WindowResult(st.ID, w.Index); err == nil {
			t.Errorf("uncommitted window %d served a release", w.Index)
		}
	}
	if _, err := mgr.Result(st.ID); err == nil {
		t.Error("cancelled follow job served a batch result")
	}
}

// Records arriving for a window whose release is already committed must
// fail the job: republishing or silently dropping them would both break
// the release contract.
func TestFollowLateRecordsFailTheJob(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(1, "a", "b"))); err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool {
		return s.State.Terminal() || (len(s.Windows) > 0 && s.Windows[0].State == WindowDone)
	})
	// A straggler lands in the already-released window 0.
	if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(0, "late"))); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobFailed {
		t.Fatalf("follow job finished %s, want failed on late records", final.State)
	}
	if !strings.Contains(final.Error, "after its release was committed") {
		t.Errorf("unexpected failure: %s", final.Error)
	}
	// The release committed before the failure survives.
	if _, err := mgr.WindowResult(st.ID, 0); err != nil {
		t.Errorf("committed window lost after failure: %v", err)
	}
}

// Deleting the dataset under a blocked follow job wakes and fails it
// instead of leaving it asleep on a feed that no longer exists.
func TestFollowDatasetDeletionFailsTheJob(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	defer mgr.Close()

	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State == JobRunning })
	if !reg.Delete(info.ID) {
		t.Fatal("delete failed")
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobFailed || !strings.Contains(final.Error, "disappeared") {
		t.Errorf("follow job finished %s (%s), want failed on deletion", final.State, final.Error)
	}
}

// The daemon-wide MaxFollowWindows clamps an unbounded follow job.
func TestFollowDaemonWindowCap(t *testing.T) {
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxFollowWindows: 1})
	defer mgr.Close()

	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(1, "a", "b"))); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("capped follow job finished %s: %s", final.State, final.Error)
	}
	if len(final.Windows) != 1 || final.Windows[0].State != WindowDone {
		t.Errorf("capped follow windows: %+v", final.Windows)
	}
	// Exactly one release: the batch result endpoint serves it, like a
	// one-window windowed job.
	if _, err := mgr.Result(st.ID); err != nil {
		t.Errorf("single-release follow job has no result: %v", err)
	}
}

// Follow spec validation: the mode needs explicit windows, and a window
// bound without the mode is a contradiction.
func TestFollowSpecValidation(t *testing.T) {
	if err := (JobSpec{DatasetID: "d", K: 2, Follow: true}).Validate(); err == nil {
		t.Error("follow without window_hours accepted")
	}
	if err := (JobSpec{DatasetID: "d", K: 2, FollowWindows: 3}).Validate(); err == nil {
		t.Error("follow_windows without follow accepted")
	}
	if err := (JobSpec{DatasetID: "d", K: 2, WindowHours: 1, Follow: true, FollowWindows: -1}).Validate(); err == nil {
		t.Error("negative follow_windows accepted")
	}
	if err := (JobSpec{DatasetID: "d", K: 2, WindowHours: 1, Follow: true, FollowWindows: 3}).Validate(); err != nil {
		t.Errorf("valid follow spec rejected: %v", err)
	}

	// A follow submission on a feed currently below k is accepted — the
	// feed grows; each window is checked when it closes.
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxFollowWindows: 1})
	defer mgr.Close()
	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "only-one")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, WindowHours: 1, Follow: true}); err != nil {
		t.Errorf("follow on a below-k feed rejected at submission: %v", err)
	}
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2}); err == nil {
		t.Error("batch job on a below-k dataset accepted")
	}
}

// sizeShards must predict planShards exactly — same effective shard
// count, same largest-shard size — across sizes, k, requested counts,
// and seeds; the windowed dry plan relies on the equivalence.
func TestSizeShardsMatchesPlanShards(t *testing.T) {
	tables := []*cdr.Table{
		synthTable(t, 10, 1),
		synthTable(t, 40, 2),
		synthTable(t, 120, 3),
	}
	for ti, table := range tables {
		users := table.Users()
		for _, k := range []int{2, 3, 5} {
			for _, requested := range []int{0, 1, 2, 4, 16} {
				for _, seed := range []uint64{1, 7} {
					shards := planShards(table, users, k, requested, seed)
					wantN, wantMax := len(shards), maxShardUsers(shards)
					gotN, gotMax := sizeShards(table, users, k, requested, seed)
					if gotN != wantN || gotMax != wantMax {
						t.Errorf("table %d k=%d req=%d seed=%d: sizeShards = (%d, %d), planShards = (%d, %d)",
							ti, k, requested, seed, gotN, gotMax, wantN, wantMax)
					}
				}
			}
		}
	}
	// Window slices too: the dry plan sizes window sources, not tables.
	wins, err := tables[2].WindowSplit(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, win := range wins {
		users := win.Source.NumUsers()
		shards := planShards(win.Source, users, 2, 4, 1)
		gotN, gotMax := sizeShards(win.Source, users, 2, 4, 1)
		if gotN != len(shards) || gotMax != maxShardUsers(shards) {
			t.Errorf("window %d: sizeShards = (%d, %d), planShards = (%d, %d)",
				win.Index, gotN, gotMax, len(shards), maxShardUsers(shards))
		}
	}
}
