package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/version"
)

// Server is the HTTP front of the service: the wire contract of
// internal/api over the Registry and Manager, behind a small middleware
// stack (request IDs, panic recovery, access logging, per-route
// timeouts). Every non-2xx response body is the api.Error envelope.
//
//	POST   /v1/datasets                    ingest a raw record CSV (streaming body)
//	GET    /v1/datasets                    list datasets (cursor pagination)
//	GET    /v1/datasets/{id}               dataset metadata
//	POST   /v1/datasets/{id}/records       append records to the feed (bumps version)
//	POST   /v1/jobs                        submit an anonymization job (JSON JobSpec)
//	GET    /v1/jobs                        list jobs (cursor pagination)
//	GET    /v1/jobs/{id}                   job status with live progress
//	DELETE /v1/jobs/{id}                   cancel a queued or running job (?purge=1 deletes)
//	GET    /v1/jobs/{id}/events            Server-Sent-Events job stream
//	GET    /v1/jobs/{id}/result            download the anonymized CSV (ETag, gzip)
//	GET    /v1/jobs/{id}/windows/{w}/result  download one window's release (ETag, gzip)
//	GET    /v1/jobs/{id}/trace             per-job span tree (JSON)
//	GET    /v1/metrics                     accuracy / anonymizability / linkage summary (JSON)
//	GET    /metrics                        Prometheus text exposition
//	GET    /healthz                        liveness + version
type Server struct {
	// MaxIngestBytes bounds the request body of a single ingestion
	// (0 = unlimited). Unlike Registry.MaxRecords it caps raw bytes, so
	// a pathological body that never completes a CSV record cannot grow
	// the reader's buffer without limit.
	MaxIngestBytes int64

	// Log, when non-nil, receives one structured record per request
	// (method, path, route, status, bytes, duration, request_id) plus
	// panic traces — log/slog replaced the old ad-hoc access-log lines.
	Log *slog.Logger

	// RouteTimeout is the processing budget of the quick JSON routes
	// (listings, status, submit, metrics — never the streaming ingest,
	// download, or event routes). 0 uses DefaultRouteTimeout; negative
	// disables the budget.
	RouteTimeout time.Duration

	reg    *Registry
	mgr    *Manager
	mux    *http.ServeMux
	tel    *Telemetry
	bootID string
	reqSeq atomic.Uint64
}

// DefaultRouteTimeout is the quick-route budget when Server.RouteTimeout
// is left zero.
const DefaultRouteTimeout = 15 * time.Second

// sseHeartbeat paces the keep-alive comments of an idle event stream.
const sseHeartbeat = 15 * time.Second

// NewServer wires the routes. Every path is registered method-agnostic
// and dispatched by route(), so a method mismatch yields the envelope
// 405 with an Allow header rather than the mux default.
func NewServer(reg *Registry, mgr *Manager) *Server {
	s := &Server{reg: reg, mgr: mgr, mux: http.NewServeMux()}
	var boot [4]byte
	if _, err := rand.Read(boot[:]); err == nil {
		s.bootID = hex.EncodeToString(boot[:])
	} else {
		s.bootID = "req"
	}
	if mgr != nil {
		s.tel = mgr.tel
		s.tel.registerBoot(s.bootID)
	}
	s.route("/v1/datasets", map[string]http.HandlerFunc{
		http.MethodGet:  s.quick(s.handleListDatasets),
		http.MethodPost: s.handleIngest,
	})
	s.route("/v1/datasets/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    s.quick(s.handleGetDataset),
		http.MethodDelete: s.quick(s.handleDeleteDataset),
	})
	s.route("/v1/datasets/{id}/records", map[string]http.HandlerFunc{
		http.MethodPost: s.handleAppendRecords,
	})
	// The mutating job routes stay outside the quick() budget: they are
	// in-memory operations that cannot usefully time out, and a 504
	// issued while the detached handler still enqueues (or cancels)
	// would invite clients to replay a submit whose side effect already
	// happened.
	s.route("/v1/jobs", map[string]http.HandlerFunc{
		http.MethodGet:  s.quick(s.handleListJobs),
		http.MethodPost: s.handleSubmitJob,
	})
	s.route("/v1/jobs/{id}", map[string]http.HandlerFunc{
		http.MethodGet:    s.quick(s.handleGetJob),
		http.MethodDelete: s.handleCancelJob,
	})
	s.route("/v1/jobs/{id}/events", map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobEvents,
	})
	s.route("/v1/jobs/{id}/result", map[string]http.HandlerFunc{
		http.MethodGet: s.handleJobResult,
	})
	s.route("/v1/jobs/{id}/windows/{w}/result", map[string]http.HandlerFunc{
		http.MethodGet: s.handleWindowResult,
	})
	s.route("/v1/jobs/{id}/trace", map[string]http.HandlerFunc{
		http.MethodGet: s.quick(s.handleJobTrace),
	})
	s.route("/v1/metrics", map[string]http.HandlerFunc{
		http.MethodGet: s.quick(s.handleMetrics),
	})
	s.route("/metrics", map[string]http.HandlerFunc{
		http.MethodGet: s.handlePrometheus,
	})
	s.route("/healthz", map[string]http.HandlerFunc{
		http.MethodGet: s.quick(s.handleHealthz),
	})
	// Everything else is the envelope 404, not the mux's text default.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, r, api.Errorf(api.CodeNotFound, "no route for %s", r.URL.Path))
	})
	return s
}

// route registers one path with explicit method dispatch: a known path
// with an unsupported method answers 405 + Allow in the envelope. HEAD
// rides on GET (the http package suppresses the body).
func (s *Server) route(pattern string, handlers map[string]http.HandlerFunc) {
	methods := make([]string, 0, len(handlers))
	for m := range handlers {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	allow := strings.Join(methods, ", ")
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		h, ok := handlers[r.Method]
		if !ok && r.Method == http.MethodHead {
			h, ok = handlers[http.MethodGet]
		}
		if !ok {
			w.Header().Set("Allow", allow)
			writeError(w, r, api.Errorf(api.CodeMethodNotAllowed,
				"method %s is not allowed on %s", r.Method, r.URL.Path).With("allow", allow))
			return
		}
		h(w, r)
	})
}

// ctxKeyRequestID carries the request id through the request context so
// error envelopes can reference it.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// ServeHTTP is the middleware stack: request-ID assignment, panic
// recovery, request metrics, and structured request logging around the
// method-dispatching mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = fmt.Sprintf("%s-%06d", s.bootID, s.reqSeq.Add(1))
	}
	w.Header().Set("X-Request-ID", reqID)
	// The boot ID lets clients detect a daemon restart on reconnect: a
	// changed value means in-memory event sequence numbers reset, so a
	// resumed SSE stream must replay from scratch instead of trusting a
	// pre-restart Last-Event-ID.
	w.Header().Set("X-Glove-Boot-ID", s.bootID)
	r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, reqID))

	rec := &responseRecorder{ResponseWriter: w}
	start := time.Now()
	s.tel.httpStart()
	defer func() {
		// ServeMux stamped the matched pattern onto the request, so the
		// route label is bounded ("/v1/jobs/{id}", never the raw path);
		// unmatched paths share one label. Deferred so panicking
		// (aborted) requests are still counted.
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.tel.httpDone(route, r.Method, rec.statusOr200(), rec.bytes, time.Since(start))
		if s.Log != nil {
			s.Log.Info("request",
				"method", r.Method, "path", r.URL.Path, "route", route,
				"status", rec.statusOr200(), "bytes", rec.bytes,
				"duration", time.Since(start).Round(time.Microsecond),
				"request_id", reqID)
		}
	}()
	func() {
		defer func() {
			if p := recover(); p != nil {
				if s.Log != nil && p != http.ErrAbortHandler {
					s.Log.Error("panic",
						"method", r.Method, "path", r.URL.Path,
						"request_id", reqID, "panic", fmt.Sprint(p),
						"stack", string(debug.Stack()))
				}
				if p == http.ErrAbortHandler || rec.wroteHeader {
					// The response already started (or the handler asked
					// for an abort): converting the panic to a normal
					// return would let net/http terminate the truncated
					// body as a seemingly complete response. Abort the
					// connection instead so clients can detect it.
					panic(http.ErrAbortHandler)
				}
				writeError(rec, r, api.Errorf(api.CodeInternal, "internal server error"))
			}
		}()
		s.mux.ServeHTTP(rec, r)
	}()
}

// responseRecorder observes status and size for the access log while
// passing Flush (SSE) and the underlying writer (ResponseController)
// through.
type responseRecorder struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (w *responseRecorder) WriteHeader(code int) {
	if !w.wroteHeader {
		w.wroteHeader = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *responseRecorder) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.wroteHeader = true
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *responseRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *responseRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *responseRecorder) statusOr200() int {
	if w.wroteHeader {
		return w.status
	}
	return http.StatusOK
}

// quick wraps a JSON handler with the per-route processing budget: the
// handler runs against a buffered response that is only copied to the
// wire when it finishes in time; past the budget the client gets the
// timeout envelope instead of a half-written body. Streaming routes
// (ingest, downloads, events) are never wrapped.
func (s *Server) quick(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.RouteTimeout
		if d == 0 {
			d = DefaultRouteTimeout
		}
		if d < 0 {
			h(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		r = r.WithContext(ctx)
		buf := &bufferedResponse{header: make(http.Header)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer func() {
				// The outer recovery middleware cannot see a panic on
				// this goroutine; convert it here.
				if p := recover(); p != nil {
					if s.Log != nil {
						s.Log.Error("panic",
							"method", r.Method, "path", r.URL.Path,
							"request_id", requestID(r), "panic", fmt.Sprint(p),
							"stack", string(debug.Stack()))
					}
					buf.reset()
					writeError(buf, r, api.Errorf(api.CodeInternal, "internal server error"))
				}
			}()
			h(buf, r)
		}()
		select {
		case <-done:
			buf.copyTo(w)
		case <-ctx.Done():
			writeError(w, r, api.Errorf(api.CodeTimeout,
				"request exceeded the %s route budget", d))
		}
	}
}

// bufferedResponse is the in-memory ResponseWriter behind quick().
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

func (b *bufferedResponse) reset() {
	b.header = make(http.Header)
	b.status = 0
	b.buf.Reset()
}

func (b *bufferedResponse) copyTo(w http.ResponseWriter) {
	dst := w.Header()
	for k, vs := range b.header {
		dst[k] = vs
	}
	if b.status == 0 {
		b.status = http.StatusOK
	}
	w.WriteHeader(b.status)
	w.Write(b.buf.Bytes())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders any error as the structured envelope, deriving the
// HTTP status from the code and stamping the request id into the
// details. Non-envelope errors become CodeInternal — the pinned
// invariant that no handler responds outside the contract.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	var ae *api.Error
	if !errors.As(err, &ae) {
		switch {
		case errors.Is(err, ErrQueueFull):
			ae = api.Errorf(api.CodeQueueFull, "%v", err)
		default:
			ae = api.Errorf(api.CodeInternal, "%v", err)
		}
	}
	// Copy before annotating: manager errors can be shared values and
	// the envelope must not accumulate per-request details across
	// requests.
	out := &api.Error{Code: ae.Code, Message: ae.Message}
	for k, v := range ae.Details {
		out.With(k, v)
	}
	if id := requestID(r); id != "" {
		out.With("request_id", id)
	}
	if out.Code == api.CodeQueueFull {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, out.Code.HTTPStatus(), out)
}

// handleIngest streams the request body into a new dataset. Metadata
// rides in query parameters: name, lat, lon (projection center, default
// the Ivory Coast center used throughout the repo) and days (span).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, lon, days := 7.54, -5.55, 14
	var err error
	if v := q.Get("lat"); v != "" {
		if lat, err = strconv.ParseFloat(v, 64); err != nil {
			writeError(w, r, api.Errorf(api.CodeInvalidArgument, "bad lat %q", v))
			return
		}
	}
	if v := q.Get("lon"); v != "" {
		if lon, err = strconv.ParseFloat(v, 64); err != nil {
			writeError(w, r, api.Errorf(api.CodeInvalidArgument, "bad lon %q", v))
			return
		}
	}
	if v := q.Get("days"); v != "" {
		if days, err = strconv.Atoi(v); err != nil {
			writeError(w, r, api.Errorf(api.CodeInvalidArgument, "bad days %q", v))
			return
		}
	}
	body := r.Body
	if s.MaxIngestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.MaxIngestBytes)
	}
	info, err := s.reg.Ingest(body, q.Get("name"), geo.LatLon{Lat: lat, Lon: lon}, days)
	if err != nil {
		writeError(w, r, ingestError(err, s.MaxIngestBytes))
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// ingestError classifies a streaming-ingestion failure: the byte-cap
// violation is body_too_large, anything else is a bad body or bad
// metadata.
func ingestError(err error, maxBytes int64) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return api.Errorf(api.CodeBodyTooLarge, "%v", tooBig).With("limit_bytes", maxBytes)
	}
	return api.Errorf(api.CodeInvalidArgument, "%v", err)
}

// handleAppendRecords streams additional records onto a registered
// dataset — the continuous-feed path. The response carries the updated
// metadata including the bumped monotone version; jobs snapshot a
// version when they start and never observe later appends.
func (s *Server) handleAppendRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.reg.Get(id); !ok {
		writeError(w, r, api.Errorf(api.CodeDatasetNotFound, "unknown dataset %q", id).With("dataset_id", id))
		return
	}
	body := r.Body
	if s.MaxIngestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.MaxIngestBytes)
	}
	info, err := s.reg.Append(id, body)
	if err != nil {
		writeError(w, r, ingestError(err, s.MaxIngestBytes))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// pageParams extracts and normalizes the cursor-pagination query
// parameters: the clamped page limit and the decoded resume cursor
// (empty = from the start).
func pageParams(r *http.Request, collection string) (limit int, after string, err error) {
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit < 0 {
			return 0, "", api.Errorf(api.CodeInvalidArgument, "bad limit %q", v)
		}
	}
	limit = api.ClampPageLimit(limit)
	if token := q.Get("page_token"); token != "" {
		if after, err = api.DecodePageToken(collection, token); err != nil {
			return 0, "", err
		}
	}
	return limit, after, nil
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	limit, after, err := pageParams(r, "datasets")
	if err != nil {
		writeError(w, r, err)
		return
	}
	page, more, ok := s.reg.ListPage(after, limit)
	if !ok {
		writeError(w, r, api.ErrStalePageToken("datasets", after))
		return
	}
	if page == nil {
		page = []DatasetInfo{}
	}
	next := ""
	if more {
		next = api.EncodePageToken("datasets", page[len(page)-1].ID)
	}
	writeJSON(w, http.StatusOK, api.DatasetPage{Datasets: page, NextPageToken: next})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	info, ok := s.reg.Get(id)
	if !ok {
		writeError(w, r, api.Errorf(api.CodeDatasetNotFound, "unknown dataset %q", id).With("dataset_id", id))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Delete(id) {
		writeError(w, r, api.Errorf(api.CodeDatasetNotFound, "unknown dataset %q", id).With("dataset_id", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxJobSpecBytes caps the submit body: a JobSpec is a handful of
// scalars, so anything past this is hostile or broken, and the cap
// keeps json.Decoder from buffering an arbitrary body into memory the
// way the streaming routes' MaxIngestBytes guard already does.
const maxJobSpecBytes = 1 << 20

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, r, api.Errorf(api.CodeBodyTooLarge, "%v", tooBig).
				With("limit_bytes", maxJobSpecBytes))
			return
		}
		writeError(w, r, api.Errorf(api.CodeInvalidSpec, "bad job spec: %v", err))
		return
	}
	st, err := s.mgr.Submit(spec)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	limit, after, err := pageParams(r, "jobs")
	if err != nil {
		writeError(w, r, err)
		return
	}
	page, more, ok := s.mgr.ListPage(after, limit)
	if !ok {
		writeError(w, r, api.ErrStalePageToken("jobs", after))
		return
	}
	if page == nil {
		page = []JobStatus{}
	}
	next := ""
	if more {
		next = api.EncodePageToken("jobs", page[len(page)-1].ID)
	}
	writeJSON(w, http.StatusOK, api.JobPage{Jobs: page, NextPageToken: next})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, r, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCancelJob implements DELETE on a job: an active job is
// cancelled; a terminal job is removed from memory only when the client
// passes ?purge=1. The explicit flag keeps a cancel attempt that races
// a just-finished job from silently destroying its result.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	purge := r.URL.Query().Get("purge") != ""
	st, err := s.mgr.Cancel(id)
	if err == nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	var ae *api.Error
	if !purge || !errors.As(err, &ae) || ae.Code != api.CodeJobTerminal {
		writeError(w, r, err)
		return
	}
	if rerr := s.mgr.Remove(id); rerr != nil {
		writeError(w, r, rerr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents streams the job's event log as Server-Sent Events:
// every past event replays first (so a late subscriber still sees the
// whole lifecycle), then the stream follows live appends and ends after
// the terminal state event. ?after=N (or the standard Last-Event-ID
// header) resumes past the events already seen.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	after := 0
	seqParam := r.URL.Query().Get("after")
	if seqParam == "" {
		seqParam = r.Header.Get("Last-Event-ID")
	}
	if seqParam != "" {
		n, err := strconv.Atoi(seqParam)
		if err != nil || n < 0 {
			writeError(w, r, api.Errorf(api.CodeInvalidArgument, "bad event cursor %q", seqParam))
			return
		}
		after = n
	}
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, r, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id))
		return
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	rc.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		evs, wake, ok := s.mgr.EventsSince(id, after)
		if !ok {
			// Evicted mid-stream; the client falls back to polling and
			// observes the 404.
			return
		}
		for _, e := range evs {
			if err := writeSSE(w, e); err != nil {
				return
			}
			after = e.Seq
			if e.Terminal() {
				rc.Flush()
				return
			}
		}
		if len(evs) > 0 {
			rc.Flush()
			continue
		}
		// Nothing new: a terminal job appends no further events, so the
		// log is complete and the client resumed at or past the terminal
		// event — end the stream instead of heartbeating forever. (The
		// terminal event is appended under the same lock that flips the
		// state, so a terminal status implies it is already in the log;
		// a transition racing this check closes wake and wakes us.)
		if st, ok := s.mgr.Get(id); !ok || st.State.Terminal() {
			return
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			rc.Flush()
		}
	}
}

// writeSSE renders one event as an SSE frame: id carries the sequence
// number, event the type, data the JSON payload.
func writeSSE(w io.Writer, e api.JobEvent) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Status before Result: a done job's dataset version is immutable,
	// so reading it first (and letting Result 404 a racing purge) never
	// serves a release under a zero-version ETag.
	st, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, r, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id))
		return
	}
	ds, err := s.mgr.Result(id)
	if err != nil {
		writeError(w, r, err)
		return
	}
	serveCSV(w, r, id+".csv", s.resultETag(id, -1, st.DatasetVersion), ds)
}

// handleWindowResult serves one window's release of a windowed job.
// Completed windows download while the job is still running later ones
// — the continuous-release property.
func (s *Server) handleWindowResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	win, err := strconv.Atoi(r.PathValue("w"))
	if err != nil {
		writeError(w, r, api.Errorf(api.CodeInvalidArgument, "bad window index %q", r.PathValue("w")))
		return
	}
	st, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, r, api.Errorf(api.CodeJobNotFound, "unknown job %q", id).With("job_id", id))
		return
	}
	ds, err := s.mgr.WindowResult(id, win)
	if err != nil {
		writeError(w, r, err)
		return
	}
	serveCSV(w, r, fmt.Sprintf("%s-w%d.csv", id, win), s.resultETag(id, win, st.DatasetVersion), ds)
}

// resultETag derives the strong validator of an immutable release: the
// server boot id (job sequence numbers and dataset versions restart
// with the daemon, so the tag must not survive a restart), the job id,
// the window (when per-window), and the dataset version the job
// snapshotted. Repeated downloads of the same release get 304s; a
// different daemon incarnation never aliases them.
func (s *Server) resultETag(id string, window, datasetVersion int) string {
	if window >= 0 {
		return fmt.Sprintf("%q", fmt.Sprintf("%s.%s.w%d.v%d", s.bootID, id, window, datasetVersion))
	}
	return fmt.Sprintf("%q", fmt.Sprintf("%s.%s.v%d", s.bootID, id, datasetVersion))
}

// serveCSV writes one anonymized release with the conditional-request
// and compression conveniences: a matching If-None-Match answers 304
// with no body, and clients advertising gzip receive the CSV
// gzip-encoded.
func serveCSV(w http.ResponseWriter, r *http.Request, filename, etag string, ds *core.Dataset) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "text/csv")
	h.Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", filename))
	var out io.Writer = w
	if acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		gz := gzip.NewWriter(w)
		defer gz.Close()
		out = gz
	}
	if err := cdr.WriteAnonymizedCSV(out, ds); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// etagMatch implements the If-None-Match comparison (weak comparison:
// a W/ prefix on either side is ignored, as RFC 9110 prescribes for
// If-None-Match).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, candidate := range strings.Split(header, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		if strings.TrimPrefix(candidate, "W/") == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the client advertised gzip with a
// non-zero quality.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, q, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(coding) != "gzip" {
			continue
		}
		q = strings.TrimSpace(q)
		if q == "" {
			return true
		}
		if val, ok := strings.CutPrefix(q, "q="); ok {
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			return err == nil && f > 0
		}
		return true
	}
	return false
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Report())
}

// handleJobTrace serves the per-job span tree recorded by the run.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	tr, err := s.mgr.Trace(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, tr)
}

// handlePrometheus serves the text exposition of every registered
// instrument. Deliberately outside the quick() budget: the render is a
// bounded in-memory walk and the scrape path should not compete with
// slow JSON routes for the buffered-response machinery.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	if s.tel == nil {
		writeError(w, r, api.Errorf(api.CodeNotFound, "metrics are not enabled on this server"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.tel.Reg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.Health{Status: "ok", Version: version.Version})
}
