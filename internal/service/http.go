package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/version"
)

// Server is the HTTP front of the service: a thin JSON/CSV layer over
// the Registry and Manager.
//
//	POST   /v1/datasets                    ingest a raw record CSV (streaming body)
//	GET    /v1/datasets                    list datasets
//	GET    /v1/datasets/{id}               dataset metadata
//	POST   /v1/datasets/{id}/records       append records to the feed (bumps version)
//	POST   /v1/jobs                        submit an anonymization job (JSON JobSpec)
//	GET    /v1/jobs                        list jobs
//	GET    /v1/jobs/{id}                   job status with live progress
//	DELETE /v1/jobs/{id}                   cancel a queued or running job
//	GET    /v1/jobs/{id}/result            download the anonymized CSV
//	GET    /v1/jobs/{id}/windows/{w}/result  download one window's release
//	GET    /v1/metrics                     accuracy / anonymizability / linkage summary
//	GET    /healthz                        liveness + version
type Server struct {
	// MaxIngestBytes bounds the request body of a single ingestion
	// (0 = unlimited). Unlike Registry.MaxRecords it caps raw bytes, so
	// a pathological body that never completes a CSV record cannot grow
	// the reader's buffer without limit.
	MaxIngestBytes int64

	reg *Registry
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(reg *Registry, mgr *Manager) *Server {
	s := &Server{reg: reg, mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/datasets", s.handleIngest)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	s.mux.HandleFunc("POST /v1/datasets/{id}/records", s.handleAppendRecords)
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.handleDeleteDataset)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/windows/{w}/result", s.handleWindowResult)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleIngest streams the request body into a new dataset. Metadata
// rides in query parameters: name, lat, lon (projection center, default
// the Ivory Coast center used throughout the repo) and days (span).
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, lon, days := 7.54, -5.55, 14
	var err error
	if v := q.Get("lat"); v != "" {
		if lat, err = strconv.ParseFloat(v, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad lat: %w", err))
			return
		}
	}
	if v := q.Get("lon"); v != "" {
		if lon, err = strconv.ParseFloat(v, 64); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad lon: %w", err))
			return
		}
	}
	if v := q.Get("days"); v != "" {
		if days, err = strconv.Atoi(v); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad days: %w", err))
			return
		}
	}
	body := r.Body
	if s.MaxIngestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.MaxIngestBytes)
	}
	info, err := s.reg.Ingest(body, q.Get("name"), geo.LatLon{Lat: lat, Lon: lon}, days)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, tooBig)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleAppendRecords streams additional records onto a registered
// dataset — the continuous-feed path. The response carries the updated
// metadata including the bumped monotone version; jobs snapshot a
// version when they start and never observe later appends.
func (s *Server) handleAppendRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.reg.Get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", id))
		return
	}
	body := r.Body
	if s.MaxIngestBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, s.MaxIngestBytes)
	}
	info, err := s.reg.Append(id, body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, tooBig)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.List()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	info, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.reg.Delete(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	st, err := s.mgr.Submit(spec)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			// Transient load, not a bad request: tell the client to
			// retry.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.mgr.List()})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleCancelJob implements DELETE on a job: an active job is
// cancelled; a terminal job is removed from memory only when the client
// passes ?purge=1. The explicit flag keeps a cancel attempt that races
// a just-finished job from silently destroying its result.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	purge := r.URL.Query().Get("purge") != ""
	st, err := s.mgr.Cancel(id)
	if err == nil {
		writeJSON(w, http.StatusOK, st)
		return
	}
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !purge {
		// Already terminal and the client asked to cancel, not delete.
		writeError(w, http.StatusConflict, err)
		return
	}
	if rerr := s.mgr.Remove(id); rerr != nil {
		writeError(w, http.StatusConflict, rerr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, err := s.mgr.Result(id)
	if err != nil {
		if _, ok := s.mgr.Get(id); !ok {
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusConflict, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".csv"))
	if err := cdr.WriteAnonymizedCSV(w, ds); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// handleWindowResult serves one window's release of a windowed job.
// Completed windows download while the job is still running later ones
// — the continuous-release property.
func (s *Server) handleWindowResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	win, err := strconv.Atoi(r.PathValue("w"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad window index %q", r.PathValue("w")))
		return
	}
	ds, err := s.mgr.WindowResult(id, win)
	if err != nil {
		if _, ok := s.mgr.Get(id); !ok || errors.Is(err, ErrNoSuchWindow) {
			// Unknown job or a window index the job will never have: a
			// permanent 404, not a retryable conflict.
			writeError(w, http.StatusNotFound, err)
		} else {
			writeError(w, http.StatusConflict, err)
		}
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("%s-w%d.csv", id, win)))
	if err := cdr.WriteAnonymizedCSV(w, ds); err != nil {
		return
	}
}

// MetricsReport aggregates what the service has published so far.
type MetricsReport struct {
	Datasets    int              `json:"datasets"`
	Jobs        int              `json:"jobs"`
	JobsByState map[JobState]int `json:"jobs_by_state"`
	// JobsByStrategy / JobsByIndex count jobs by the execution plan the
	// core planner resolved (auto rules included), so operators can see
	// which path — single vs chunked, dense vs sparse — their traffic
	// actually takes. Jobs that never started (no plan yet) are absent.
	JobsByStrategy map[core.Strategy]int  `json:"jobs_by_strategy"`
	JobsByIndex    map[core.IndexKind]int `json:"jobs_by_index"`
	// WindowedJobs counts jobs submitted with window_hours > 0;
	// WindowReleases counts the committed per-window releases across
	// them (completed windows of running or cancelled jobs included).
	WindowedJobs   int `json:"windowed_jobs"`
	WindowReleases int `json:"window_releases"`
	// MeanCrossWindowLinkage averages the linked fraction of the
	// cross-window linkage analysis over finished windowed jobs that
	// reported one — the service-wide residual re-identification risk of
	// continuous publication. Nil when no job measured it.
	MeanCrossWindowLinkage *float64 `json:"mean_cross_window_linkage,omitempty"`
	// EffortKernelCalls / EffortKernelPruned aggregate the pruned
	// effort-kernel accounting (DESIGN.md Sec. 8) over retained finished
	// jobs, so operators can watch how much Eq. 10 work the threshold
	// pruning is eliding on their real traffic.
	EffortKernelCalls  int `json:"effort_kernel_calls"`
	EffortKernelPruned int `json:"effort_kernel_pruned"`
	// Completed holds the per-job utility summaries (accuracy from
	// internal/metrics, anonymizability and cross-window linkage from
	// internal/analysis).
	Completed []JobStatus `json:"completed"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rep := MetricsReport{
		Datasets:       len(s.reg.List()),
		JobsByState:    make(map[JobState]int),
		JobsByStrategy: make(map[core.Strategy]int),
		JobsByIndex:    make(map[core.IndexKind]int),
	}
	var linkageSum float64
	var linkageJobs int
	for _, st := range s.mgr.List() {
		rep.Jobs++
		rep.JobsByState[st.State]++
		if st.Plan != nil {
			rep.JobsByStrategy[st.Plan.Strategy]++
			rep.JobsByIndex[st.Plan.Index]++
		}
		if st.Spec.WindowHours > 0 {
			rep.WindowedJobs++
			for _, ws := range st.Windows {
				if ws.State == WindowDone {
					rep.WindowReleases++
				}
			}
		}
		if st.State == JobDone {
			rep.Completed = append(rep.Completed, st)
			if st.Linkage != nil {
				linkageSum += st.Linkage.LinkedFraction
				linkageJobs++
			}
			if st.Stats != nil {
				rep.EffortKernelCalls += st.Stats.EffortKernelCalls
				rep.EffortKernelPruned += st.Stats.EffortKernelPruned
			}
		}
	}
	if linkageJobs > 0 {
		mean := linkageSum / float64(linkageJobs)
		rep.MeanCrossWindowLinkage = &mean
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  "ok",
		"version": version.Version,
	})
}
