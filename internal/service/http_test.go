package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/cdr"
	"repro/internal/core"
)

func newTestServer(t *testing.T) (*httptest.Server, *Manager) {
	t.Helper()
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{MaxConcurrentJobs: 2})
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(NewServer(reg, mgr))
	t.Cleanup(srv.Close)
	return srv, mgr
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
	return resp
}

// TestServerEndToEnd drives the full acceptance scenario over HTTP:
// ingest a synthetic dataset, anonymize it at k=2 through a sharded
// job while watching progress advance, download the result, and verify
// that every published fingerprint hides at least k subscribers.
func TestServerEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	const k = 2

	// --- Ingest over HTTP (streaming body). ---
	table := synthTable(t, 50, 2)
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("%s/v1/datasets?name=e2e&lat=%g&lon=%g&days=%d",
		srv.URL, table.Center.Lat, table.Center.Lon, table.SpanDays)
	resp, err := http.Post(url, "text/csv", bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var ds DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if ds.Users != table.Users() || ds.Records != len(table.Records) {
		t.Fatalf("ingested %d users / %d records, want %d / %d",
			ds.Users, ds.Records, table.Users(), len(table.Records))
	}

	// --- Submit a sharded job. ---
	spec, _ := json.Marshal(JobSpec{DatasetID: ds.ID, K: k, Shards: 2})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// --- Poll until done; progress must never move backwards. ---
	var last float64
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s at %.2f", job.State, job.Progress)
		}
		getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &job)
		if job.Progress < last {
			t.Fatalf("progress went backwards: %.3f after %.3f", job.Progress, last)
		}
		last = job.Progress
		if job.State.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.State != JobDone {
		t.Fatalf("job finished %s: %s", job.State, job.Error)
	}
	if job.Progress != 1 {
		t.Errorf("done job progress = %g", job.Progress)
	}
	if job.Stats == nil || job.Stats.InputUsers != ds.Users {
		t.Errorf("job stats wrong: %+v", job.Stats)
	}
	if job.Accuracy == nil {
		t.Error("job accuracy summary missing")
	}

	// --- Download and verify the anonymized dataset. ---
	resp = getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/result", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("result content type %q", ct)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs/" + job.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	published, err := cdr.ReadAnonymizedCSV(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateKAnonymity(published, k); err != nil {
		t.Errorf("downloaded dataset not %d-anonymous: %v", k, err)
	}
	if got := published.Users(); got != ds.Users {
		t.Errorf("published dataset hides %d users, want %d", got, ds.Users)
	}

	// --- Adversarial check via internal/analysis: no probe with
	// partial trajectory knowledge pins fewer than k subscribers. ---
	original, err := table.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	uniq, err := analysis.PartialKnowledgeUniqueness(
		original, published, 4, 60, rand.New(rand.NewSource(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	if uniq.UniqueFraction != 0 {
		t.Errorf("%.1f%% of probes identify a unique subscriber", 100*uniq.UniqueFraction)
	}
	if uniq.MeanCrowd < float64(k) {
		t.Errorf("mean matching crowd %.2f < k = %d", uniq.MeanCrowd, k)
	}

	// --- Metrics summary includes the finished job. ---
	var rep MetricsReport
	getJSON(t, srv.URL+"/v1/metrics", &rep)
	if rep.Datasets != 1 || rep.JobsByState[JobDone] != 1 {
		t.Errorf("metrics report: %+v", rep)
	}
	if len(rep.Completed) != 1 || rep.Completed[0].Accuracy == nil {
		t.Errorf("metrics missing completed job summary")
	}

	// --- Eviction: DELETE on a finished job needs an explicit purge
	// (a racing cancel must not destroy the result); with it, the job
	// and then the dataset are freed. ---
	del := func(url string) int {
		req, _ := http.NewRequest(http.MethodDelete, url, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(srv.URL + "/v1/jobs/" + job.ID); code != http.StatusConflict {
		t.Errorf("DELETE finished job without purge: status %d", code)
	}
	if code := del(srv.URL + "/v1/jobs/" + job.ID + "?purge=1"); code != http.StatusNoContent {
		t.Errorf("purge finished job: status %d", code)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+job.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("purged job still served: status %d", resp.StatusCode)
	}
	if code := del(srv.URL + "/v1/datasets/" + ds.ID); code != http.StatusNoContent {
		t.Errorf("delete dataset: status %d", code)
	}
	if resp := getJSON(t, srv.URL+"/v1/datasets/"+ds.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted dataset still served: status %d", resp.StatusCode)
	}
}

// TestServerIngestBodyLimit checks the raw-byte ingestion cap.
func TestServerIngestBodyLimit(t *testing.T) {
	reg := NewRegistry()
	mgr := NewManager(reg, ManagerOptions{})
	t.Cleanup(mgr.Close)
	h := NewServer(reg, mgr)
	h.MaxIngestBytes = 64
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	body := "user,lat,lon,minute\n" + strings.Repeat("u,1,2,3\n", 100)
	resp, err := http.Post(srv.URL+"/v1/datasets", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d", resp.StatusCode)
	}
}

// TestServerCancellation cancels a running job over HTTP and checks it
// lands in the cancelled state.
func TestServerCancellation(t *testing.T) {
	srv, _ := newTestServer(t)

	table := synthTable(t, 600, 2)
	var raw bytes.Buffer
	if err := cdr.WriteCSV(&raw, table); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/datasets?days=2", "text/csv", &raw)
	if err != nil {
		t.Fatal(err)
	}
	var ds DatasetInfo
	json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()

	spec, _ := json.Marshal(JobSpec{DatasetID: ds.ID, K: 2, Shards: 1, Workers: 1})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var job JobStatus
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()

	// Wait until running, then DELETE.
	deadline := time.Now().Add(30 * time.Second)
	for job.State == JobQueued && time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &job)
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}

	for !job.State.Terminal() && time.Now().Before(deadline) {
		getJSON(t, srv.URL+"/v1/jobs/"+job.ID, &job)
		time.Sleep(2 * time.Millisecond)
	}
	if job.State != JobCancelled {
		t.Fatalf("job state after cancel = %s (%s)", job.State, job.Error)
	}

	// The result of a cancelled job is a conflict, not a download.
	resp = getJSON(t, srv.URL+"/v1/jobs/"+job.ID+"/result", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d", resp.StatusCode)
	}
}

func TestServerErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	// Bad ingest parameters and bodies.
	resp, _ := http.Post(srv.URL+"/v1/datasets?lat=bogus", "text/csv", strings.NewReader(""))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad lat: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/v1/datasets", "text/csv", strings.NewReader("garbage"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown resources.
	if resp := getJSON(t, srv.URL+"/v1/datasets/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/v1/jobs/nope/result", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/nope", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("cancel of unknown job: status %d", resp.StatusCode)
		}
	}

	// Bad job specs reject with invalid_spec; an unknown dataset is a
	// 404 with its own code.
	for _, body := range []string{"not json", `{"unknown_field":1}`} {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %q: status %d", body, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"dataset_id":"nope","k":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset spec: status %d, want 404", resp.StatusCode)
	}

	// Health endpoint reports the version.
	var health map[string]string
	getJSON(t, srv.URL+"/healthz", &health)
	if health["status"] != "ok" || health["version"] == "" {
		t.Errorf("healthz = %v", health)
	}
}
