package service

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// validTransition encodes the job state machine: queued jobs start
// running or are cancelled before starting; running jobs finish, fail,
// or are cancelled; terminal states never change.
func validTransition(from, to JobState) bool {
	switch from {
	case JobQueued:
		return to == JobRunning || to == JobCancelled
	case JobRunning:
		return to == JobDone || to == JobFailed || to == JobCancelled
	}
	return false
}

// anonymizeOptions translates the spec into the core planner options
// for one shard. Validate has already vetted the enum spellings.
func anonymizeOptions(s JobSpec, workers int, progress func(done, total int)) core.AnonymizeOptions {
	strategy, _ := core.ParseStrategy(s.Strategy)
	index, _ := core.ParseIndexKind(s.Index)
	return core.AnonymizeOptions{
		Glove: core.GloveOptions{
			K: s.K,
			Suppress: core.SuppressionThresholds{
				MaxSpatialMeters:   s.SuppressKm * 1000,
				MaxTemporalMinutes: s.SuppressMin,
			},
			Workers:  workers,
			Index:    index,
			Progress: progress,
		},
		Strategy:  strategy,
		ChunkSize: s.ChunkSize,
	}
}

// Job is one anonymization run owned by the Manager.
type Job struct {
	mu sync.Mutex

	id      string
	spec    JobSpec
	state   JobState
	err     string
	created time.Time

	started  time.Time
	finished time.Time

	// cancel aborts the running job's context; cancelRequested
	// distinguishes a user cancellation from an internal failure when
	// the run returns a context error.
	cancel          context.CancelFunc
	cancelRequested bool

	// shardProgress has one 0..1 entry per effective shard while
	// running.
	shardProgress []float64
	// plan is the resolved execution plan of the largest shard.
	plan *core.Plan

	// datasetVersion is the registry version of the snapshot being
	// anonymized (set when the run takes its snapshot).
	datasetVersion int
	// windows is the per-window state of a windowed job, in time order.
	windows []*jobWindow

	// events is the job's append-only event log, replayed and streamed
	// by GET /v1/jobs/{id}/events. eventCh is closed and replaced on
	// every append, broadcasting to blocked subscribers; progressPct is
	// the last whole-percent bucket emitted, coalescing the firehose of
	// shard progress callbacks into at most ~100 events per job.
	events      []api.JobEvent
	eventCh     chan struct{}
	progressPct int

	// onEvent, when set, journals every event-log append (attached at
	// submission on durable daemons). suppressJournal silences it — set
	// when a graceful drain cancels a running job, so the journal keeps
	// saying "running" and the next boot requeues the job instead of
	// restoring a cancellation the user never asked for.
	onEvent         func(api.JobEvent)
	suppressJournal bool

	// resume carries a recovered follow job's committed prefix into
	// executeFollow; consumed once by takeResume.
	resume *followResume

	// trace is the job's span recorder, created when the run starts;
	// nil for jobs that never ran (the trace_not_found condition).
	trace *obs.Trace

	result            *core.Dataset
	stats             *core.GloveStats
	accuracy          *metrics.Summary
	anonymousFraction *float64
	linkage           *analysis.LinkageResult
}

// traceRoot hands the run its root span; the zero ActiveSpan of an
// untraced job is a no-op recorder.
func (j *Job) traceRoot() obs.ActiveSpan {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace.Root()
}

// emitSpan appends a span summary event (plan, window, validate) to the
// job's event log.
func (j *Job) emitSpan(kind obs.SpanKind, name string, d time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendEventLocked(api.JobEvent{Type: api.EventSpan, Span: &api.SpanEvent{
		Kind:       string(kind),
		Name:       name,
		DurationMS: float64(d) / float64(time.Millisecond),
	}})
}

// newJob builds a queued job and seeds its event log with the queued
// state event, so a subscriber that connects immediately still sees the
// full lifecycle from the first transition.
func newJob(id string, spec JobSpec) *Job {
	j := &Job{
		id:      id,
		spec:    spec,
		state:   JobQueued,
		created: time.Now().UTC(),
		eventCh: make(chan struct{}),
	}
	j.events = []api.JobEvent{{Seq: 1, Type: api.EventState, JobID: id, State: JobQueued}}
	return j
}

// appendEventLocked stamps and stores one event and wakes every
// subscriber blocked in eventsSince. Caller holds j.mu. A nil eventCh
// (zero-value Job, as unit tests construct) is tolerated: there is
// nobody to wake yet.
func (j *Job) appendEventLocked(e api.JobEvent) {
	e.Seq = len(j.events) + 1
	e.JobID = j.id
	j.events = append(j.events, e)
	if j.onEvent != nil && !j.suppressJournal {
		j.onEvent(e)
	}
	if j.eventCh != nil {
		close(j.eventCh)
	}
	j.eventCh = make(chan struct{})
}

// takeResume hands the run its recovered follow prefix, at most once.
func (j *Job) takeResume() *followResume {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.resume
	j.resume = nil
	return r
}

// eventsSince returns the events after sequence number `after` (0 = from
// the beginning). When the log has nothing newer it instead returns a
// channel that is closed on the next append, so subscribers block
// without polling.
func (j *Job) eventsSince(after int) ([]api.JobEvent, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.eventCh == nil {
		j.eventCh = make(chan struct{})
	}
	if after < 0 {
		after = 0
	}
	if after >= len(j.events) {
		return nil, j.eventCh
	}
	// Full-slice expression: appends beyond len never alias into what
	// the subscriber is reading.
	return j.events[after:len(j.events):len(j.events)], nil
}

// emitProgressLocked appends a progress event when the overall fraction
// has advanced at least one whole percent since the last one. Caller
// holds j.mu.
func (j *Job) emitProgressLocked() {
	p := j.progressLocked()
	if pct := int(p * 100); pct > j.progressPct && p > 0 {
		j.progressPct = pct
		j.appendEventLocked(api.JobEvent{Type: api.EventProgress, Progress: p})
	}
}

// jobWindow tracks one window of a windowed job.
type jobWindow struct {
	index                  int
	startMinute, endMinute float64
	records, users         int

	state         WindowState
	shardProgress []float64
	groups        int
	stats         *core.GloveStats
	// result is the window's published release, committed atomically
	// when the window completes; a cancelled or failed window never
	// stores a partial release.
	result *core.Dataset
}

// initWindows records the windowed job's layout; called once when the
// run has split its snapshot.
func (j *Job) initWindows(wins []cdr.SourceWindow) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows = make([]*jobWindow, len(wins))
	for i, w := range wins {
		j.windows[i] = &jobWindow{
			index:       w.Index,
			startMinute: w.StartMinute,
			endMinute:   w.EndMinute,
			records:     w.Source.NumRecords(),
			users:       w.Source.NumUsers(),
			state:       WindowPending,
		}
	}
}

// appendWindow adds one window discovered at runtime — follow jobs
// learn their windows from the feed instead of an upfront split — and
// returns its position in j.windows (the index the per-window mutators
// take, distinct from the window's feed index).
func (j *Job) appendWindow(index int, startMinute, endMinute float64, records, users int) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows = append(j.windows, &jobWindow{
		index:       index,
		startMinute: startMinute,
		endMinute:   endMinute,
		records:     records,
		users:       users,
		state:       WindowPending,
	})
	return len(j.windows) - 1
}

// commitEmptyWindow records a window the feed skipped entirely: the
// follow run emits an explicit empty event so a consumer can
// distinguish "no data in this window" from "release still pending",
// and the window is terminal with no release to download.
func (j *Job) commitEmptyWindow(index int, startMinute, endMinute float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows = append(j.windows, &jobWindow{
		index:       index,
		startMinute: startMinute,
		endMinute:   endMinute,
		state:       WindowEmpty,
	})
	j.appendEventLocked(api.JobEvent{Type: api.EventWindow,
		Window: &api.WindowEvent{Index: index, State: WindowEmpty}})
}

// startWindow marks a window running with the given shard count.
func (j *Job) startWindow(w, shards int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows[w].state = WindowRunning
	j.windows[w].shardProgress = make([]float64, shards)
	j.appendEventLocked(api.JobEvent{Type: api.EventWindow,
		Window: &api.WindowEvent{Index: j.windows[w].index, State: WindowRunning}})
}

// setWindowShardProgress records one shard's completion fraction inside
// a window.
func (j *Job) setWindowShardProgress(w, shard int, frac float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jw := j.windows[w]
	if shard >= 0 && shard < len(jw.shardProgress) && frac > jw.shardProgress[shard] {
		jw.shardProgress[shard] = frac
		j.emitProgressLocked()
	}
}

// abortOpenWindowsLocked marks every not-yet-done window aborted when
// the job lands in a non-done terminal state, so no window appears
// in-flight forever. Caller holds j.mu.
func (j *Job) abortOpenWindowsLocked() {
	for _, w := range j.windows {
		if w.state != WindowDone && w.state != WindowEmpty {
			w.state = WindowAborted
			j.appendEventLocked(api.JobEvent{Type: api.EventWindow,
				Window: &api.WindowEvent{Index: w.index, State: WindowAborted}})
		}
	}
}

// commitWindow publishes a completed window's release.
func (j *Job) commitWindow(w int, out *core.Dataset, stats *core.GloveStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jw := j.windows[w]
	jw.state = WindowDone
	jw.result = out
	jw.groups = out.Len()
	jw.stats = stats
	for i := range jw.shardProgress {
		jw.shardProgress[i] = 1
	}
	j.appendEventLocked(api.JobEvent{Type: api.EventWindow,
		Window: &api.WindowEvent{Index: jw.index, State: WindowDone, Groups: jw.groups}})
	j.emitProgressLocked()
}

// transition moves the job to the target state, enforcing the state
// machine, and appends the state event (reading j.err, so callers set
// the error message before transitioning); it must be called with j.mu
// held.
func (j *Job) transition(to JobState) error {
	if !validTransition(j.state, to) {
		return fmt.Errorf("service: job %s: invalid transition %s -> %s", j.id, j.state, to)
	}
	j.state = to
	now := time.Now().UTC()
	switch to {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed, JobCancelled:
		j.finished = now
	}
	j.appendEventLocked(api.JobEvent{Type: api.EventState, State: to, Error: j.err})
	return nil
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

// statusLocked builds the status snapshot; caller holds j.mu (the
// journal's terminal record and checkpoint capture reuse it under a
// lock they already hold).
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:                j.id,
		Spec:              j.spec,
		State:             j.state,
		Progress:          j.progressLocked(),
		Shards:            len(j.shardProgress),
		Error:             j.err,
		Plan:              j.plan,
		DatasetVersion:    j.datasetVersion,
		CreatedAt:         j.created,
		Stats:             j.stats,
		Accuracy:          j.accuracy,
		AnonymousFraction: j.anonymousFraction,
		Linkage:           j.linkage,
	}
	for _, w := range j.windows {
		ws := WindowStatus{
			Index:       w.index,
			StartMinute: w.startMinute,
			EndMinute:   w.endMinute,
			Records:     w.records,
			Users:       w.users,
			State:       w.state,
			Progress:    w.progressLocked(),
			Groups:      w.groups,
			Stats:       w.stats,
		}
		st.Windows = append(st.Windows, ws)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	return st
}

// progressLocked is the job's overall completion fraction; the caller
// holds j.mu.
func (j *Job) progressLocked() float64 {
	switch j.state {
	case JobDone:
		return 1
	case JobRunning, JobFailed, JobCancelled:
		// Failed/cancelled jobs keep the last observed fraction rather
		// than snapping back to zero.
		switch {
		case len(j.windows) > 0:
			// Windowed job: weight each window by its subscriber count
			// (the dominant cost driver) so a big window does not look
			// done because three small ones finished.
			var sum, total float64
			for _, w := range j.windows {
				weight := float64(w.users)
				sum += weight * w.progressLocked()
				total += weight
			}
			if total > 0 {
				return sum / total
			}
		case len(j.shardProgress) > 0:
			var sum float64
			for _, p := range j.shardProgress {
				sum += p
			}
			return sum / float64(len(j.shardProgress))
		}
	}
	return 0
}

// progressLocked is the window's mean shard fraction; the caller holds
// the owning job's mutex.
func (w *jobWindow) progressLocked() float64 {
	if w.state == WindowDone || w.state == WindowEmpty {
		return 1
	}
	if len(w.shardProgress) == 0 {
		return 0
	}
	var sum float64
	for _, p := range w.shardProgress {
		sum += p
	}
	return sum / float64(len(w.shardProgress))
}

// encodeRelease serializes a published dataset through the canonical
// anonymized-CSV writer; the decode/re-encode round trip is
// byte-identical, so journaled releases survive any number of restarts
// unchanged.
func encodeRelease(out *core.Dataset) ([]byte, error) {
	var buf bytes.Buffer
	if err := cdr.WriteAnonymizedCSV(&buf, out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// captureWindowLocked journals one committed window for checkpoints.
// Caller holds j.mu; only done and empty windows are capturable.
func (j *Job) captureWindowLocked(w *jobWindow) (RecoveredResult, error) {
	jw := journalWindow{
		Index:       w.index,
		StartMinute: w.startMinute,
		EndMinute:   w.endMinute,
		Records:     w.records,
		Users:       w.users,
	}
	if w.state == WindowEmpty {
		jw.Empty = true
		return RecoveredResult{Window: jw}, nil
	}
	jw.Groups = w.groups
	jw.Stats = w.stats
	csv, err := encodeRelease(w.result)
	if err != nil {
		return RecoveredResult{}, err
	}
	return RecoveredResult{Window: jw, CSV: csv}, nil
}

// capture converts the job into its checkpoint form. Terminal jobs
// (except drain-cancelled ones, whose cancellation the journal
// deliberately never saw) are captured verbatim — status, full event
// log, every release. Interrupted jobs are captured as submissions plus
// (for follow jobs) their committed windows, exactly the shape a
// journal replay produces for them, so restarting from a checkpoint and
// restarting from a raw journal converge to the same state.
func (j *Job) capture() (*RecoveredJob, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rj := &RecoveredJob{ID: j.id, Spec: j.spec, CreatedAt: j.created}
	if j.state.Terminal() && !j.suppressJournal {
		st := j.statusLocked()
		rj.Status = &st
		rj.Events = append([]api.JobEvent(nil), j.events...)
		for _, w := range j.windows {
			if w.state != WindowDone && w.state != WindowEmpty {
				continue
			}
			r, err := j.captureWindowLocked(w)
			if err != nil {
				return nil, err
			}
			rj.Results = append(rj.Results, r)
		}
		if j.result != nil {
			csv, err := encodeRelease(j.result)
			if err != nil {
				return nil, err
			}
			rj.Results = append(rj.Results, RecoveredResult{
				Window: journalWindow{Batch: true, Stats: j.stats}, CSV: csv,
			})
		}
		return rj, nil
	}
	if j.spec.Follow {
		for _, w := range j.windows {
			if w.state != WindowDone && w.state != WindowEmpty {
				continue
			}
			r, err := j.captureWindowLocked(w)
			if err != nil {
				return nil, err
			}
			rj.Results = append(rj.Results, r)
		}
	}
	return rj, nil
}

// setShardProgress records the completion fraction of one shard.
func (j *Job) setShardProgress(shard int, frac float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if shard >= 0 && shard < len(j.shardProgress) && frac > j.shardProgress[shard] {
		j.shardProgress[shard] = frac
		j.emitProgressLocked()
	}
}
