package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/metrics"
)

// JobState is the lifecycle state of an anonymization job.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// validTransition encodes the job state machine: queued jobs start
// running or are cancelled before starting; running jobs finish, fail,
// or are cancelled; terminal states never change.
func validTransition(from, to JobState) bool {
	switch from {
	case JobQueued:
		return to == JobRunning || to == JobCancelled
	case JobRunning:
		return to == JobDone || to == JobFailed || to == JobCancelled
	}
	return false
}

// JobSpec is the client-supplied description of an anonymization job.
type JobSpec struct {
	// DatasetID names a dataset previously registered via ingestion.
	DatasetID string `json:"dataset_id"`
	// K is the anonymity level (>= 2).
	K int `json:"k"`
	// SuppressKm / SuppressMin optionally discard over-generalized
	// samples (Sec. 7.1); 0 disables that dimension.
	SuppressKm  float64 `json:"suppress_km,omitempty"`
	SuppressMin float64 `json:"suppress_min,omitempty"`
	// Shards is the requested number of dataset shards anonymized
	// independently; <= 0 lets the scheduler pick one per worker. The
	// effective count is clamped so every shard can k-anonymize on its
	// own.
	Shards int `json:"shards,omitempty"`
	// Workers bounds the job's CPU parallelism; <= 0 uses all CPUs.
	Workers int `json:"workers,omitempty"`

	// Strategy selects single-run vs chunked execution inside each
	// shard: "auto" (or empty), "single" or "chunked". Auto picks by
	// shard size (core.SingleRunMaxN).
	Strategy string `json:"strategy,omitempty"`
	// ChunkSize is the target fingerprints per chunked block; 0 uses
	// core.DefaultChunkSize. Must be >= 2k when set, and requires a
	// strategy other than "single".
	ChunkSize int `json:"chunk_size,omitempty"`
	// Index selects the pair-selection index: "auto" (or empty),
	// "dense" or "sparse". Auto picks dense up to core.DenseIndexMaxN
	// fingerprints per run and sparse (O(n·m) memory) above.
	Index string `json:"index,omitempty"`

	// WindowHours, when > 0, turns the job into a continuous-release
	// run: the dataset snapshot is partitioned into time windows of this
	// many hours (aligned at multiples from the dataset epoch) and each
	// window is anonymized independently into its own release, published
	// as it completes. 0 anonymizes the whole snapshot in one release
	// (or inherits the daemon-wide default); a negative value submitted
	// to the manager explicitly forces a batch run even when the daemon
	// defaults to windowed.
	WindowHours float64 `json:"window_hours,omitempty"`
}

// Validate checks the statically checkable parts of the spec.
func (s JobSpec) Validate() error {
	if s.DatasetID == "" {
		return fmt.Errorf("service: job without dataset_id")
	}
	if s.K < 2 {
		return fmt.Errorf("service: job k = %d, need k >= 2", s.K)
	}
	if s.SuppressKm < 0 || s.SuppressMin < 0 {
		return fmt.Errorf("service: negative suppression thresholds")
	}
	strategy, err := core.ParseStrategy(s.Strategy)
	if err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if _, err := core.ParseIndexKind(s.Index); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	switch {
	case s.ChunkSize < 0:
		return fmt.Errorf("service: negative chunk_size %d", s.ChunkSize)
	case s.ChunkSize > 0 && s.ChunkSize < 2*s.K:
		return fmt.Errorf("service: chunk_size %d < 2k = %d", s.ChunkSize, 2*s.K)
	case s.ChunkSize > 0 && strategy == core.StrategySingle:
		return fmt.Errorf("service: chunk_size %d set but strategy is single", s.ChunkSize)
	}
	if s.WindowHours < 0 {
		return fmt.Errorf("service: negative window_hours %g", s.WindowHours)
	}
	return nil
}

// windowDuration converts the spec's window length for the partitioner.
func (s JobSpec) windowDuration() time.Duration {
	return time.Duration(s.WindowHours * float64(time.Hour))
}

// anonymizeOptions translates the spec into the core planner options
// for one shard. Validate has already vetted the enum spellings.
func (s JobSpec) anonymizeOptions(workers int, progress func(done, total int)) core.AnonymizeOptions {
	strategy, _ := core.ParseStrategy(s.Strategy)
	index, _ := core.ParseIndexKind(s.Index)
	return core.AnonymizeOptions{
		Glove: core.GloveOptions{
			K: s.K,
			Suppress: core.SuppressionThresholds{
				MaxSpatialMeters:   s.SuppressKm * 1000,
				MaxTemporalMinutes: s.SuppressMin,
			},
			Workers:  workers,
			Index:    index,
			Progress: progress,
		},
		Strategy:  strategy,
		ChunkSize: s.ChunkSize,
	}
}

// WindowState is the lifecycle of one window of a windowed job. A
// window becomes downloadable the moment it is done — releases stream
// out while later windows are still running.
type WindowState string

const (
	WindowPending WindowState = "pending"
	WindowRunning WindowState = "running"
	WindowDone    WindowState = "done"
	// WindowAborted marks windows that never completed because the job
	// failed or was cancelled; they published nothing.
	WindowAborted WindowState = "aborted"
)

// WindowStatus is the per-window progress and accounting of a windowed
// job, one entry per non-empty time window of the snapshot.
type WindowStatus struct {
	// Index is the window's position on the absolute time axis (window i
	// covers minutes [i*w, (i+1)*w) of the dataset epoch).
	Index int `json:"index"`
	// StartMinute / EndMinute delimit the half-open window interval.
	StartMinute float64 `json:"start_minute"`
	EndMinute   float64 `json:"end_minute"`
	// Records and Users describe the window's slice of the snapshot.
	Records int `json:"records"`
	Users   int `json:"users"`

	State WindowState `json:"state"`
	// Progress advances from 0 to 1 over the window's anonymization.
	Progress float64 `json:"progress"`
	// Groups and Stats are populated once the window is done; the
	// window's release is then downloadable at
	// /v1/jobs/{id}/windows/{index}/result.
	Groups int              `json:"groups,omitempty"`
	Stats  *core.GloveStats `json:"stats,omitempty"`
}

// JobStatus is a point-in-time snapshot of a job, the payload of
// GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`
	// Progress advances from 0 to 1 over the job's lifetime; while
	// running it is the mean completion fraction across shards.
	Progress float64 `json:"progress"`
	// Shards is the effective shard count chosen by the scheduler (0
	// until the job starts).
	Shards int    `json:"shards"`
	Error  string `json:"error,omitempty"`

	// Plan is the execution plan the core planner resolved for the
	// job's largest shard (strategy, chunk size, index); nil until the
	// job starts.
	Plan *core.Plan `json:"plan,omitempty"`

	// DatasetVersion is the registry version of the dataset snapshot the
	// job anonymizes; 0 until the run snapshots its input. Appends
	// racing the job bump the dataset's version but never this one.
	DatasetVersion int `json:"dataset_version,omitempty"`
	// Windows holds the per-window progress of a windowed job
	// (window_hours > 0), in time order; empty for batch jobs.
	Windows []WindowStatus `json:"windows,omitempty"`
	// Linkage is the cross-window linkage measurement over consecutive
	// releases of a finished windowed job (nil for batch jobs,
	// single-window runs, or when the analysis was skipped).
	Linkage *analysis.LinkageResult `json:"linkage,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// Stats and Accuracy are populated once the job is done.
	Stats    *core.GloveStats `json:"stats,omitempty"`
	Accuracy *metrics.Summary `json:"accuracy,omitempty"`
	// AnonymousFraction is the fraction of input fingerprints that were
	// already k-anonymous (Sec. 5 k-gap analysis); nil when the input
	// was too large for the quadratic analysis pass.
	AnonymousFraction *float64 `json:"anonymous_fraction,omitempty"`
}

// Job is one anonymization run owned by the Manager.
type Job struct {
	mu sync.Mutex

	id      string
	spec    JobSpec
	state   JobState
	err     string
	created time.Time

	started  time.Time
	finished time.Time

	// cancel aborts the running job's context; cancelRequested
	// distinguishes a user cancellation from an internal failure when
	// the run returns a context error.
	cancel          context.CancelFunc
	cancelRequested bool

	// shardProgress has one 0..1 entry per effective shard while
	// running.
	shardProgress []float64
	// plan is the resolved execution plan of the largest shard.
	plan *core.Plan

	// datasetVersion is the registry version of the snapshot being
	// anonymized (set when the run takes its snapshot).
	datasetVersion int
	// windows is the per-window state of a windowed job, in time order.
	windows []*jobWindow

	result            *core.Dataset
	stats             *core.GloveStats
	accuracy          *metrics.Summary
	anonymousFraction *float64
	linkage           *analysis.LinkageResult
}

// jobWindow tracks one window of a windowed job.
type jobWindow struct {
	index                  int
	startMinute, endMinute float64
	records, users         int

	state         WindowState
	shardProgress []float64
	groups        int
	stats         *core.GloveStats
	// result is the window's published release, committed atomically
	// when the window completes; a cancelled or failed window never
	// stores a partial release.
	result *core.Dataset
}

// initWindows records the windowed job's layout; called once when the
// run has split its snapshot.
func (j *Job) initWindows(wins []cdr.Window) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows = make([]*jobWindow, len(wins))
	for i, w := range wins {
		j.windows[i] = &jobWindow{
			index:       w.Index,
			startMinute: w.StartMinute,
			endMinute:   w.EndMinute,
			records:     len(w.Table.Records),
			users:       w.Table.Users(),
			state:       WindowPending,
		}
	}
}

// startWindow marks a window running with the given shard count.
func (j *Job) startWindow(w, shards int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.windows[w].state = WindowRunning
	j.windows[w].shardProgress = make([]float64, shards)
}

// setWindowShardProgress records one shard's completion fraction inside
// a window.
func (j *Job) setWindowShardProgress(w, shard int, frac float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jw := j.windows[w]
	if shard >= 0 && shard < len(jw.shardProgress) && frac > jw.shardProgress[shard] {
		jw.shardProgress[shard] = frac
	}
}

// abortOpenWindowsLocked marks every not-yet-done window aborted when
// the job lands in a non-done terminal state, so no window appears
// in-flight forever. Caller holds j.mu.
func (j *Job) abortOpenWindowsLocked() {
	for _, w := range j.windows {
		if w.state != WindowDone {
			w.state = WindowAborted
		}
	}
}

// commitWindow publishes a completed window's release.
func (j *Job) commitWindow(w int, out *core.Dataset, stats *core.GloveStats) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jw := j.windows[w]
	jw.state = WindowDone
	jw.result = out
	jw.groups = out.Len()
	jw.stats = stats
	for i := range jw.shardProgress {
		jw.shardProgress[i] = 1
	}
}

// transition moves the job to the target state, enforcing the state
// machine; it must be called with j.mu held.
func (j *Job) transition(to JobState) error {
	if !validTransition(j.state, to) {
		return fmt.Errorf("service: job %s: invalid transition %s -> %s", j.id, j.state, to)
	}
	j.state = to
	now := time.Now().UTC()
	switch to {
	case JobRunning:
		j.started = now
	case JobDone, JobFailed, JobCancelled:
		j.finished = now
	}
	return nil
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:                j.id,
		Spec:              j.spec,
		State:             j.state,
		Shards:            len(j.shardProgress),
		Error:             j.err,
		Plan:              j.plan,
		DatasetVersion:    j.datasetVersion,
		CreatedAt:         j.created,
		Stats:             j.stats,
		Accuracy:          j.accuracy,
		AnonymousFraction: j.anonymousFraction,
		Linkage:           j.linkage,
	}
	for _, w := range j.windows {
		ws := WindowStatus{
			Index:       w.index,
			StartMinute: w.startMinute,
			EndMinute:   w.endMinute,
			Records:     w.records,
			Users:       w.users,
			State:       w.state,
			Progress:    w.progressLocked(),
			Groups:      w.groups,
			Stats:       w.stats,
		}
		st.Windows = append(st.Windows, ws)
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	switch j.state {
	case JobDone:
		st.Progress = 1
	case JobRunning, JobFailed, JobCancelled:
		// Failed/cancelled jobs keep the last observed fraction rather
		// than snapping back to zero.
		switch {
		case len(j.windows) > 0:
			// Windowed job: weight each window by its subscriber count
			// (the dominant cost driver) so a big window does not look
			// done because three small ones finished.
			var sum, total float64
			for _, w := range j.windows {
				weight := float64(w.users)
				sum += weight * w.progressLocked()
				total += weight
			}
			if total > 0 {
				st.Progress = sum / total
			}
		case len(j.shardProgress) > 0:
			var sum float64
			for _, p := range j.shardProgress {
				sum += p
			}
			st.Progress = sum / float64(len(j.shardProgress))
		}
	}
	return st
}

// progressLocked is the window's mean shard fraction; the caller holds
// the owning job's mutex.
func (w *jobWindow) progressLocked() float64 {
	if w.state == WindowDone {
		return 1
	}
	if len(w.shardProgress) == 0 {
		return 0
	}
	var sum float64
	for _, p := range w.shardProgress {
		sum += p
	}
	return sum / float64(len(w.shardProgress))
}

// setShardProgress records the completion fraction of one shard.
func (j *Job) setShardProgress(shard int, frac float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if shard >= 0 && shard < len(j.shardProgress) && frac > j.shardProgress[shard] {
		j.shardProgress[shard] = frac
	}
}
