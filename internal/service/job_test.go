package service

import (
	"testing"

	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/synth"
)

func TestJobStateMachine(t *testing.T) {
	states := []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}
	allowed := map[[2]JobState]bool{
		{JobQueued, JobRunning}:    true,
		{JobQueued, JobCancelled}:  true,
		{JobRunning, JobDone}:      true,
		{JobRunning, JobFailed}:    true,
		{JobRunning, JobCancelled}: true,
	}
	for _, from := range states {
		for _, to := range states {
			got := validTransition(from, to)
			if want := allowed[[2]JobState{from, to}]; got != want {
				t.Errorf("validTransition(%s, %s) = %v, want %v", from, to, got, want)
			}
		}
	}
	for _, s := range states {
		wantTerminal := s == JobDone || s == JobFailed || s == JobCancelled
		if s.Terminal() != wantTerminal {
			t.Errorf("%s.Terminal() = %v", s, s.Terminal())
		}
	}
}

func TestJobTransitionEnforced(t *testing.T) {
	j := &Job{id: "job-test", state: JobQueued}
	if err := j.transition(JobDone); err == nil {
		t.Error("queued -> done accepted")
	}
	if err := j.transition(JobRunning); err != nil {
		t.Fatal(err)
	}
	if j.started.IsZero() {
		t.Error("started timestamp not set")
	}
	if err := j.transition(JobDone); err != nil {
		t.Fatal(err)
	}
	if j.finished.IsZero() {
		t.Error("finished timestamp not set")
	}
	if err := j.transition(JobRunning); err == nil {
		t.Error("done -> running accepted")
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{DatasetID: "ds-1", K: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []JobSpec{
		{K: 2},                    // no dataset
		{DatasetID: "ds-1", K: 1}, // k too small
		{DatasetID: "ds-1", K: 2, SuppressKm: -1},    // negative threshold
		{DatasetID: "ds-1", K: 2, SuppressMin: -0.5}, // negative threshold
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func synthTable(t *testing.T, users, days int) *cdr.Table {
	t.Helper()
	cfg := synth.CIV(users)
	cfg.Days = days
	table, _, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestPlanShards(t *testing.T) {
	table := synthTable(t, 40, 2)
	users := table.Users()

	shards := planShards(table, users, 2, 4, 1)
	if len(shards) < 1 || len(shards) > 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	var total int
	for i, s := range shards {
		if s.NumUsers() < 2 {
			t.Errorf("shard %d hides %d users < k", i, s.NumUsers())
		}
		total += s.NumRecords()
	}
	if total != len(table.Records) {
		t.Errorf("shards hold %d records, want %d", total, len(table.Records))
	}

	// Requesting more shards than 2k-sized groups exist clamps.
	shards = planShards(table, users, 10, 100, 1)
	if max := users / 20; len(shards) > max {
		t.Errorf("%d shards for %d users at k=10, max %d", len(shards), users, max)
	}

	// Tiny dataset: single shard.
	shards = planShards(table, users, users/2+1, 8, 1)
	if len(shards) != 1 {
		t.Errorf("got %d shards for k > users/4, want 1", len(shards))
	}
}

func TestMergeShardResults(t *testing.T) {
	mk := func(ids ...string) *core.Dataset {
		fps := make([]*core.Fingerprint, len(ids))
		for i, id := range ids {
			f := core.NewFingerprint(id, []core.Sample{{DX: 1, DY: 1, DT: 1, Weight: 1}})
			f.Count = 2
			f.Members = []string{id + "-a", id + "-b"}
			fps[i] = f
		}
		return core.NewDataset(fps)
	}
	results := []shardResult{
		{out: mk("g1", "g2"), stats: &core.GloveStats{InputUsers: 4, Merges: 2}},
		{out: mk("g1"), stats: &core.GloveStats{InputUsers: 2, Merges: 1}},
	}
	merged, stats, err := mergeShardResults(results, true)
	if err != nil {
		t.Fatal(err)
	}
	// Same group name in two shards must not collide after prefixing.
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged dataset invalid: %v", err)
	}
	if merged.Len() != 3 {
		t.Errorf("merged %d groups, want 3", merged.Len())
	}
	if stats.InputUsers != 6 || stats.Merges != 3 {
		t.Errorf("stats not summed: %+v", stats)
	}
	if stats.OutputFingerprints != 3 {
		t.Errorf("OutputFingerprints = %d", stats.OutputFingerprints)
	}
}
