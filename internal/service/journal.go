package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/wal"
)

// journalKind names one journal entry kind. The payload of every WAL
// record is one JSON-encoded journalEntry; the set is append-only
// vocabulary like the error-code registry — replay of an old journal
// must keep working. The named type is what lets glovelint's errcode
// analyzer pin every constructed kind to this registry and the
// registry to the committed vocabulary (internal/lint/vocab/
// journalkinds.txt).
type journalKind string

const (
	jeDatasetCreate journalKind = "ds_create"
	jeDatasetAppend journalKind = "ds_append"
	jeDatasetDelete journalKind = "ds_delete"
	jeJobSubmit     journalKind = "job_submit"
	jeJobEvent      journalKind = "job_event"
	jeJobResult     journalKind = "job_result"
	jeJobStatus     journalKind = "job_status"
	jeJobEvict      journalKind = "job_evict"
	jeCleanShutdown journalKind = "clean_shutdown"
)

// journalEntry is the union of every journaled mutation; Kind selects
// which fields are meaningful.
type journalEntry struct {
	Kind journalKind `json:"kind"`
	// ID is the dataset or job the entry belongs to.
	ID   string    `json:"id,omitempty"`
	At   time.Time `json:"at,omitempty"`
	Name string    `json:"name,omitempty"`
	// Center/SpanDays carry the creation metadata the record CSV format
	// does not (ds_create).
	Center   *geo.LatLon `json:"center,omitempty"`
	SpanDays int         `json:"span_days,omitempty"`
	// CSV holds the raw record CSV of a dataset mutation, or the
	// anonymized release CSV of a job_result.
	CSV    []byte         `json:"csv,omitempty"`
	Spec   *api.JobSpec   `json:"spec,omitempty"`
	Event  *api.JobEvent  `json:"event,omitempty"`
	Window *journalWindow `json:"window,omitempty"`
	Status *api.JobStatus `json:"status,omitempty"`
}

// journalWindow is the window metadata persisted with a committed
// release — enough to rebuild the jobWindow across a restart without
// replaying the window's computation.
type journalWindow struct {
	Index       int              `json:"index"`
	StartMinute float64          `json:"start_minute"`
	EndMinute   float64          `json:"end_minute"`
	Records     int              `json:"records,omitempty"`
	Users       int              `json:"users,omitempty"`
	Groups      int              `json:"groups,omitempty"`
	Stats       *core.GloveStats `json:"stats,omitempty"`
	// Empty marks a window the feed skipped (committed with no release);
	// Batch marks the merged result of a non-windowed job.
	Empty bool `json:"empty,omitempty"`
	Batch bool `json:"batch,omitempty"`
}

// RecoveredResult is one persisted release (or empty-window marker) of
// a recovered job.
//
//lint:ignore dtoplace journal snapshot schema, persisted to the WAL and never sent over the wire
type RecoveredResult struct {
	Window journalWindow `json:"window"`
	CSV    []byte        `json:"csv,omitempty"`
}

// RecoveredDataset is a dataset rebuilt from the journal: its creation
// metadata plus the raw CSV of the create and every append, replayed
// through the normal ingest paths at restore.
//
//lint:ignore dtoplace journal snapshot schema, persisted to the WAL and never sent over the wire
type RecoveredDataset struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	Center    geo.LatLon `json:"center"`
	SpanDays  int        `json:"span_days"`
	CreatedAt time.Time  `json:"created_at"`
	UpdatedAt time.Time  `json:"updated_at"`
	Ops       [][]byte   `json:"ops"`
}

// RecoveredJob is a job rebuilt from the journal. Status non-nil means
// the job reached a terminal state and is restored verbatim; otherwise
// the job died queued/running and normalizeRecovered rewrote it into
// requeue-ready form (Requeue true, fresh event log, committed follow
// releases kept in Results).
//
//lint:ignore dtoplace journal snapshot schema, persisted to the WAL and never sent over the wire
type RecoveredJob struct {
	ID        string            `json:"id"`
	Spec      api.JobSpec       `json:"spec"`
	CreatedAt time.Time         `json:"created_at"`
	Events    []api.JobEvent    `json:"events,omitempty"`
	Status    *api.JobStatus    `json:"status,omitempty"`
	Results   []RecoveredResult `json:"results,omitempty"`
	Requeue   bool              `json:"requeue,omitempty"`
}

// RecoveredState is everything a journal replay reconstructs — and,
// marshalled, the snapshot payload a compaction writes. Replay is a
// pure function of the journal bytes, which makes it idempotent:
// replaying the compaction of a replay yields the same state
// (TestJournalReplayIdempotent).
//
//lint:ignore dtoplace journal snapshot schema, persisted to the WAL and never sent over the wire
type RecoveredState struct {
	DatasetSeq int                 `json:"dataset_seq"`
	JobSeq     int                 `json:"job_seq"`
	Datasets   []*RecoveredDataset `json:"datasets,omitempty"`
	Jobs       []*RecoveredJob     `json:"jobs,omitempty"`

	// CleanShutdown / TornTail describe how the previous run ended; not
	// part of the snapshot (they are per-boot observations).
	CleanShutdown bool `json:"-"`
	TornTail      bool `json:"-"`
}

// Journal threads every service mutation through a wal.Log. A nil
// *Journal is an inert sink (non-durable daemons), mirroring the
// nil-*Telemetry convention.
type Journal struct {
	log   *wal.Log
	dir   string
	fsync bool
	tel   *Telemetry

	mu                sync.Mutex
	lastCompaction    time.Time
	cleanStart        bool
	tornTail          bool
	recoveredDatasets int
	recoveredJobs     map[string]int
}

// OpenJournal opens the journal under dir, replays it into a
// RecoveredState, normalizes interrupted jobs into requeue-ready form,
// and compacts the journal down to that state (the boot checkpoint —
// it also consumes the previous clean-shutdown marker, so a later
// crash is detectable). The caller restores the returned state into
// the registry and manager before attaching the journal.
func OpenJournal(dir string, fsync bool, tel *Telemetry) (*Journal, *RecoveredState, error) {
	l, rec, err := wal.Open(dir, wal.Options{
		Fsync:    fsync,
		OnSync:   tel.walSynced,
		OnAppend: tel.walAppended,
	})
	if err != nil {
		return nil, nil, err
	}
	st, err := replayJournal(rec)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	normalizeRecovered(st)
	jl := &Journal{
		log: l, dir: dir, fsync: fsync, tel: tel,
		cleanStart:        st.CleanShutdown,
		tornTail:          st.TornTail,
		recoveredDatasets: len(st.Datasets),
		recoveredJobs:     make(map[string]int),
	}
	if err := jl.compactTo(st); err != nil {
		l.Close()
		return nil, nil, err
	}
	return jl, st, nil
}

// Close releases the journal.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	return jl.log.Close()
}

func idNum(format, id string) int {
	var n int
	fmt.Sscanf(id, format, &n)
	return n
}

// replayJournal folds the snapshot and every record of a recovered WAL
// into a RecoveredState.
func replayJournal(rec *wal.Recovery) (*RecoveredState, error) {
	st := &RecoveredState{TornTail: rec.TornTail}
	ds := make(map[string]*RecoveredDataset)
	jobs := make(map[string]*RecoveredJob)
	var dsOrder, jobOrder []string
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, st); err != nil {
			return nil, fmt.Errorf("service: journal snapshot: %w", err)
		}
		for _, d := range st.Datasets {
			ds[d.ID] = d
			dsOrder = append(dsOrder, d.ID)
		}
		for _, j := range st.Jobs {
			jobs[j.ID] = j
			jobOrder = append(jobOrder, j.ID)
		}
	}
	for i, payload := range rec.Records {
		var e journalEntry
		if err := json.Unmarshal(payload, &e); err != nil {
			return nil, fmt.Errorf("service: journal record %d: %w", i, err)
		}
		switch e.Kind {
		case jeDatasetCreate:
			if e.Center == nil {
				return nil, fmt.Errorf("service: journal: ds_create %s without center", e.ID)
			}
			d := &RecoveredDataset{
				ID: e.ID, Name: e.Name, Center: *e.Center, SpanDays: e.SpanDays,
				CreatedAt: e.At, UpdatedAt: e.At, Ops: [][]byte{e.CSV},
			}
			ds[e.ID] = d
			dsOrder = append(dsOrder, e.ID)
			if n := idNum("ds-%06d", e.ID); n > st.DatasetSeq {
				st.DatasetSeq = n
			}
		case jeDatasetAppend:
			d, ok := ds[e.ID]
			if !ok {
				return nil, fmt.Errorf("service: journal: append to unknown dataset %s", e.ID)
			}
			d.Ops = append(d.Ops, e.CSV)
			d.UpdatedAt = e.At
		case jeDatasetDelete:
			delete(ds, e.ID)
			dsOrder = removeID(dsOrder, e.ID)
		case jeJobSubmit:
			if e.Spec == nil {
				return nil, fmt.Errorf("service: journal: job_submit %s without spec", e.ID)
			}
			j := &RecoveredJob{
				ID: e.ID, Spec: *e.Spec, CreatedAt: e.At,
				// Mirror newJob: the queued event is seeded at creation,
				// never journaled individually.
				Events: []api.JobEvent{{Seq: 1, Type: api.EventState, JobID: e.ID, State: api.JobQueued}},
			}
			jobs[e.ID] = j
			jobOrder = append(jobOrder, e.ID)
			if n := idNum("job-%06d", e.ID); n > st.JobSeq {
				st.JobSeq = n
			}
		case jeJobEvent:
			if j, ok := jobs[e.ID]; ok && e.Event != nil {
				j.Events = append(j.Events, *e.Event)
			}
		case jeJobResult:
			j, ok := jobs[e.ID]
			if !ok || e.Window == nil {
				continue
			}
			r := RecoveredResult{Window: *e.Window, CSV: e.CSV}
			replaced := false
			for k := range j.Results {
				if j.Results[k].Window.Batch == r.Window.Batch && j.Results[k].Window.Index == r.Window.Index {
					j.Results[k] = r
					replaced = true
					break
				}
			}
			if !replaced {
				j.Results = append(j.Results, r)
			}
		case jeJobStatus:
			if j, ok := jobs[e.ID]; ok && e.Status != nil {
				j.Status = e.Status
			}
		case jeJobEvict:
			delete(jobs, e.ID)
			jobOrder = removeID(jobOrder, e.ID)
		case jeCleanShutdown:
			// Only a marker that is the journal's last word proves a
			// clean shutdown; anything after it means the daemon came
			// back up and died again.
			st.CleanShutdown = i == len(rec.Records)-1
		default:
			// Unknown kinds are skipped, not fatal: an older daemon
			// replaying a newer journal should recover what it can.
		}
	}
	st.Datasets = st.Datasets[:0]
	for _, id := range dsOrder {
		st.Datasets = append(st.Datasets, ds[id])
	}
	st.Jobs = st.Jobs[:0]
	for _, id := range jobOrder {
		st.Jobs = append(st.Jobs, jobs[id])
	}
	return st, nil
}

func removeID(order []string, id string) []string {
	for i, v := range order {
		if v == id {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// normalizeRecovered rewrites every interrupted (non-terminal) job into
// the exact shape the restarted daemon will install and serve: a fresh
// queued event log — clients reconnecting after a restart get a fresh
// replay, not a continuation of a log whose run died — plus, for follow
// jobs, one window event per recovered committed window. Batch and
// windowed jobs restart from scratch, so their partial results are
// dropped. Running the normalization before the boot compaction keeps
// the snapshot and the in-memory restore identical, which is what makes
// a crash-after-boot replay converge to the same state.
func normalizeRecovered(st *RecoveredState) {
	for _, j := range st.Jobs {
		if j.Status != nil {
			j.Requeue = false
			continue
		}
		j.Requeue = true
		if !j.Spec.Follow {
			j.Results = nil
		}
		sort.Slice(j.Results, func(a, b int) bool {
			return j.Results[a].Window.Index < j.Results[b].Window.Index
		})
		evs := []api.JobEvent{{Seq: 1, Type: api.EventState, JobID: j.ID, State: api.JobQueued}}
		for _, r := range j.Results {
			we := &api.WindowEvent{Index: r.Window.Index, State: api.WindowEmpty}
			if !r.Window.Empty {
				we.State = api.WindowDone
				we.Groups = r.Window.Groups
			}
			evs = append(evs, api.JobEvent{Seq: len(evs) + 1, Type: api.EventWindow, JobID: j.ID, Window: we})
		}
		j.Events = evs
	}
}

// --- append-side hooks (all tolerate a nil *Journal) ---

func (jl *Journal) append(e journalEntry) error {
	if jl == nil {
		return nil
	}
	p, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return jl.log.Append(p)
}

// commit makes everything appended so far durable (group-commit fsync).
func (jl *Journal) commit() error {
	if jl == nil {
		return nil
	}
	return jl.log.Commit()
}

// datasetCreated journals a new dataset with the raw CSV that built it.
// Called under the registry mutex so journal order matches ID
// assignment order; the caller fsyncs before acknowledging.
func (jl *Journal) datasetCreated(info DatasetInfo, csv []byte) error {
	center := info.Center
	return jl.append(journalEntry{
		Kind: jeDatasetCreate, ID: info.ID, Name: info.Name, At: info.CreatedAt,
		Center: &center, SpanDays: info.SpanDays, CSV: csv,
	})
}

func (jl *Journal) datasetAppended(id string, csv []byte, at time.Time) error {
	return jl.append(journalEntry{Kind: jeDatasetAppend, ID: id, CSV: csv, At: at})
}

func (jl *Journal) datasetDeleted(id string) error {
	return jl.append(journalEntry{Kind: jeDatasetDelete, ID: id})
}

func (jl *Journal) jobSubmitted(id string, spec JobSpec, at time.Time) error {
	return jl.append(journalEntry{Kind: jeJobSubmit, ID: id, Spec: &spec, At: at})
}

// jobEvent journals one event-log append. Events ride the next fsync
// (result commits, terminal transitions) rather than forcing their own:
// progress and span events are reconstructible noise, and the state
// machine is re-derived at replay anyway.
func (jl *Journal) jobEvent(id string, e api.JobEvent) {
	jl.append(e2entry(id, e))
}

func e2entry(id string, e api.JobEvent) journalEntry {
	ev := e
	return journalEntry{Kind: jeJobEvent, ID: id, Event: &ev}
}

// jobResult journals a committed release (or empty-window marker) and
// fsyncs: this is THE commit point of the streaming pipeline. A window
// whose result frame is durable is committed — replay derives the
// follow resume floor from the highest journaled result — and a crash
// any time after this call re-publishes exactly these bytes.
func (jl *Journal) jobResult(id string, w journalWindow, out *core.Dataset) error {
	if jl == nil {
		return nil
	}
	var csv []byte
	if out != nil {
		var buf bytes.Buffer
		if err := cdr.WriteAnonymizedCSV(&buf, out); err != nil {
			return err
		}
		csv = buf.Bytes()
	}
	if err := jl.append(journalEntry{Kind: jeJobResult, ID: id, Window: &w, CSV: csv}); err != nil {
		return err
	}
	return jl.commit()
}

func (jl *Journal) jobTerminalStatus(id string, status JobStatus) error {
	if jl == nil {
		return nil
	}
	if err := jl.append(journalEntry{Kind: jeJobStatus, ID: id, Status: &status}); err != nil {
		return err
	}
	return jl.commit()
}

func (jl *Journal) jobEvicted(id string) {
	jl.append(journalEntry{Kind: jeJobEvict, ID: id})
}

// compactTo collapses the journal to a snapshot of the given state.
func (jl *Journal) compactTo(st *RecoveredState) error {
	if jl == nil {
		return nil
	}
	p, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if err := jl.log.Compact(p); err != nil {
		return err
	}
	jl.mu.Lock()
	jl.lastCompaction = time.Now().UTC()
	jl.mu.Unlock()
	return nil
}

// Checkpoint serializes the live registry and manager state, compacts
// the journal down to it, and appends the durable clean-shutdown
// marker — the final act of a graceful drain. Callers must have
// stopped all mutation first (drain complete, HTTP server down).
func (jl *Journal) Checkpoint(reg *Registry, m *Manager) error {
	if jl == nil {
		return nil
	}
	st, err := captureState(reg, m)
	if err != nil {
		return err
	}
	if err := jl.compactTo(st); err != nil {
		return err
	}
	if err := jl.append(journalEntry{Kind: jeCleanShutdown}); err != nil {
		return err
	}
	return jl.commit()
}

// jobRecovered records a recovery outcome for the durability report and
// the glove_recovered_jobs_total counter.
func (jl *Journal) jobRecovered(outcome string) {
	if jl == nil {
		return
	}
	jl.tel.jobRecovered(outcome)
	jl.mu.Lock()
	jl.recoveredJobs[outcome]++
	jl.mu.Unlock()
}

// Report snapshots the journal for the /v1/metrics durability block.
func (jl *Journal) Report() *api.DurabilityInfo {
	if jl == nil {
		return nil
	}
	segs, size := jl.log.Size()
	jl.mu.Lock()
	defer jl.mu.Unlock()
	info := &api.DurabilityInfo{
		JournalDir:        jl.dir,
		Fsync:             jl.fsync,
		JournalSegments:   segs,
		JournalBytes:      size,
		LastShutdownClean: jl.cleanStart,
		TornTailRecovered: jl.tornTail,
		RecoveredDatasets: jl.recoveredDatasets,
	}
	if !jl.lastCompaction.IsZero() {
		t := jl.lastCompaction
		info.LastCompaction = &t
	}
	if len(jl.recoveredJobs) > 0 {
		info.RecoveredJobs = make(map[string]int, len(jl.recoveredJobs))
		for k, v := range jl.recoveredJobs {
			info.RecoveredJobs[k] = v
		}
	}
	return info
}

// captureState converts the live registry + manager into the same
// RecoveredState shape a replay produces, re-encoding datasets and
// releases through the canonical CSV writers (both round-trip
// byte-identically).
func captureState(reg *Registry, m *Manager) (*RecoveredState, error) {
	st := &RecoveredState{}
	if reg != nil {
		for _, info := range reg.List() {
			src, cur, ok := reg.SnapshotSource(info.ID)
			if !ok {
				continue
			}
			var buf bytes.Buffer
			if err := cdr.WriteSourceCSV(&buf, src); err != nil {
				return nil, err
			}
			st.Datasets = append(st.Datasets, &RecoveredDataset{
				ID: cur.ID, Name: cur.Name, Center: cur.Center, SpanDays: cur.SpanDays,
				CreatedAt: cur.CreatedAt, UpdatedAt: cur.UpdatedAt,
				Ops: [][]byte{buf.Bytes()},
			})
		}
		st.DatasetSeq = reg.seqNum()
	}
	if m != nil {
		for _, job := range m.jobList() {
			rj, err := job.capture()
			if err != nil {
				return nil, err
			}
			st.Jobs = append(st.Jobs, rj)
		}
		st.JobSeq = m.seqNum()
	}
	return st, nil
}
