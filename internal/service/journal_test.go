package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/cdr"
	"repro/internal/geo"
)

// bootService wires one daemon "life" against dir, in the exact order
// cmd/gloved does: open+replay the journal, restore the registry,
// construct the manager (journal attached at construction), restore
// jobs, then attach the registry journal. setup configures the registry
// before the restore (storage backend flags).
func bootService(t *testing.T, dir string, mopt ManagerOptions, setup func(*Registry)) (*Journal, *Registry, *Manager, *RecoveredState) {
	t.Helper()
	jrnl, rec, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if setup != nil {
		setup(reg)
	}
	if err := reg.Restore(rec); err != nil {
		t.Fatal(err)
	}
	mopt.Journal = jrnl
	mgr := NewManager(reg, mopt)
	if err := mgr.Restore(rec); err != nil {
		t.Fatal(err)
	}
	reg.AttachJournal(jrnl)
	return jrnl, reg, mgr, rec
}

// crashClose ends a boot the unclean way: executors reaped, journal
// closed, no checkpoint — what a kill -9 leaves on disk (minus the torn
// tail, which internal/wal covers separately).
func crashClose(mgr *Manager, reg *Registry, jrnl *Journal) {
	mgr.Close()
	reg.Close()
	jrnl.Close()
}

// sourceCSV renders a dataset snapshot through the canonical writer for
// byte comparison across restarts.
func sourceCSV(t *testing.T, reg *Registry, id string) []byte {
	t.Helper()
	src, _, ok := reg.SnapshotSource(id)
	if !ok {
		t.Fatalf("dataset %s gone", id)
	}
	var buf bytes.Buffer
	if err := cdr.WriteSourceCSV(&buf, src); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJournalDatasetRoundTrip pins the registry half of recovery:
// create + append + delete survive an unclean shutdown byte-for-byte,
// on both storage backends, and the ID sequence never reissues a dead
// dataset's ID.
func TestJournalDatasetRoundTrip(t *testing.T) {
	for _, columnar := range []bool{false, true} {
		name := "table"
		if columnar {
			name = "columnar"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			center := geo.LatLon{Lat: 7.54, Lon: -5.55}
			setup := func(g *Registry) { g.Columnar = columnar }

			jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{}, setup)
			info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c")), "feed", center, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(1, "a", "d"))); err != nil {
				t.Fatal(err)
			}
			doomed, err := reg.Ingest(strings.NewReader(windowCSV(0, "x", "y")), "doomed", center, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reg.Delete(doomed.ID) {
				t.Fatal("delete failed")
			}
			want := sourceCSV(t, reg, info.ID)
			wantInfo, _ := reg.Get(info.ID)
			crashClose(mgr, reg, jrnl)

			jrnl2, reg2, mgr2, rec := bootService(t, dir, ManagerOptions{}, setup)
			defer crashClose(mgr2, reg2, jrnl2)
			if rec.CleanShutdown {
				t.Error("unclean shutdown reported as clean")
			}
			list := reg2.List()
			if len(list) != 1 || list[0].ID != info.ID {
				t.Fatalf("recovered datasets: %+v", list)
			}
			got, _ := reg2.Get(info.ID)
			if got.Name != wantInfo.Name || got.Records != wantInfo.Records ||
				got.Users != wantInfo.Users || got.SpanDays != wantInfo.SpanDays {
				t.Errorf("recovered dataset %+v, want %+v", got, wantInfo)
			}
			if !bytes.Equal(sourceCSV(t, reg2, info.ID), want) {
				t.Error("recovered dataset records differ from the originals")
			}
			// The deleted dataset stays dead, and its ID is never reissued.
			if _, ok := reg2.Get(doomed.ID); ok {
				t.Error("deleted dataset came back")
			}
			next, err := reg2.Ingest(strings.NewReader(windowCSV(0, "p", "q")), "next", center, 1)
			if err != nil {
				t.Fatal(err)
			}
			if next.ID <= doomed.ID {
				t.Errorf("post-recovery ingest got ID %s, must be past %s", next.ID, doomed.ID)
			}
		})
	}
}

// TestJournalTerminalJobRestored pins the verbatim half of job
// recovery: a finished batch job comes back with an identical status,
// an identical event log, and a byte-identical downloadable release.
func TestJournalTerminalJobRestored(t *testing.T) {
	dir := t.TempDir()
	jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{}, nil)

	table := synthTable(t, 30, 2)
	var csv bytes.Buffer
	if err := cdr.WriteCSV(&csv, table); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Ingest(&csv, "batch", table.Center, table.SpanDays)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}
	wantStatus, _ := json.Marshal(final)
	wantEvents, _, _ := mgr.EventsSince(st.ID, 0)
	rel, err := mgr.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var wantRel bytes.Buffer
	if err := cdr.WriteAnonymizedCSV(&wantRel, rel); err != nil {
		t.Fatal(err)
	}
	crashClose(mgr, reg, jrnl)

	jrnl2, reg2, mgr2, _ := bootService(t, dir, ManagerOptions{}, nil)
	defer crashClose(mgr2, reg2, jrnl2)
	got, ok := mgr2.Get(st.ID)
	if !ok {
		t.Fatal("terminal job gone after restart")
	}
	gotStatus, _ := json.Marshal(got)
	if !bytes.Equal(gotStatus, wantStatus) {
		t.Errorf("restored status differs:\n got %s\nwant %s", gotStatus, wantStatus)
	}
	gotEvents, _, ok := mgr2.EventsSince(st.ID, 0)
	if !ok {
		t.Fatal("restored event log gone")
	}
	ge, _ := json.Marshal(gotEvents)
	we, _ := json.Marshal(wantEvents)
	if !bytes.Equal(ge, we) {
		t.Errorf("restored event log differs:\n got %s\nwant %s", ge, we)
	}
	rel2, err := mgr2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var gotRel bytes.Buffer
	if err := cdr.WriteAnonymizedCSV(&gotRel, rel2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotRel.Bytes(), wantRel.Bytes()) {
		t.Error("restored release differs from the original bytes")
	}
	if r := jrnl2.Report(); r.RecoveredJobs["restored"] != 1 {
		t.Errorf("durability report: %+v", r.RecoveredJobs)
	}
}

// TestJournalFollowResumeByteIdentity is the streaming crash-recovery
// acceptance test: a follow job is killed between windows, the restart
// resumes it at the last committed window, the committed release is
// never re-run or re-published, the in-flight window published nothing
// partial, and the continuation's output is byte-identical to a cold
// windowed run over the final feed.
func TestJournalFollowResumeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{}, nil)

	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c", "d")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true, FollowWindows: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Window-1 records close window 0; the job commits it and then
	// blocks waiting for window 1 to close.
	if _, err := reg.Append(info.ID, strings.NewReader(windowCSV(1, "a", "b"))); err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool {
		return len(s.Windows) > 0 && s.Windows[0].State == WindowDone
	})
	want0 := releaseCSV(t, mgr, st.ID, 0)
	// Kill the daemon mid-run: drain with a zero budget cancels the
	// running job suppressed from the journal (crash-equivalent), and no
	// checkpoint is written.
	mgr.Drain(0)
	// The open window published nothing partial.
	if _, err := mgr.WindowResult(st.ID, 1); err == nil {
		t.Fatal("uncommitted window served a release before the crash")
	}
	crashClose(mgr, reg, jrnl)

	jrnl2, reg2, mgr2, rec := bootService(t, dir, ManagerOptions{MaxConcurrentJobs: 2}, nil)
	defer crashClose(mgr2, reg2, jrnl2)
	if len(rec.Jobs) != 1 || !rec.Jobs[0].Requeue || len(rec.Jobs[0].Results) != 1 {
		t.Fatalf("recovered jobs: %+v", rec.Jobs)
	}
	// The committed release is downloadable before the resumed run does
	// anything, and is exactly the pre-crash bytes.
	if got := releaseCSV(t, mgr2, st.ID, 0); !bytes.Equal(got, want0) {
		t.Error("recovered window-0 release differs from the committed bytes")
	}
	if r := jrnl2.Report(); r.RecoveredJobs["resumed"] != 1 {
		t.Errorf("durability report: %+v", r.RecoveredJobs)
	}

	// Window-2 records close window 1 (whose records were re-ingested by
	// the dataset restore); that second commit meets the 2-window budget.
	if _, err := reg2.Append(info.ID, strings.NewReader(windowCSV(2, "c", "d"))); err != nil {
		t.Fatal(err)
	}
	final := waitForState(t, mgr2, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("resumed job finished %s: %s", final.State, final.Error)
	}
	if len(final.Windows) != 2 {
		t.Fatalf("resumed job windows: %+v", final.Windows)
	}
	if got := releaseCSV(t, mgr2, st.ID, 0); !bytes.Equal(got, want0) {
		t.Error("window-0 release changed after the resumed run finished")
	}
	// Exactly one done event per window across both lives of the job.
	evs, _, _ := mgr2.EventsSince(st.ID, 0)
	doneEvents := map[int]int{}
	for _, e := range evs {
		if e.Window != nil && e.Window.State == WindowDone {
			doneEvents[e.Window.Index]++
		}
	}
	if doneEvents[0] != 1 || doneEvents[1] != 1 {
		t.Errorf("window done events: %v, want exactly one per window", doneEvents)
	}

	// Cold reference over the final feed: both releases must match byte
	// for byte — a crash plus resume is invisible in the output.
	cold, err := mgr2.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1, WindowHours: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfinal := waitForState(t, mgr2, cold.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if cfinal.State != JobDone {
		t.Fatalf("cold job finished %s: %s", cfinal.State, cfinal.Error)
	}
	for _, w := range []int{0, 1} {
		if !bytes.Equal(releaseCSV(t, mgr2, st.ID, w), releaseCSV(t, mgr2, cold.ID, w)) {
			t.Errorf("resumed release for window %d differs from the cold windowed release", w)
		}
	}
}

// TestJournalDrainKeepsQueuedJobs pins the drain contract for work that
// never started: a job still queued at shutdown is not journaled as
// cancelled — the next boot requeues it and runs it to completion.
func TestJournalDrainKeepsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{MaxConcurrentJobs: 1}, nil)

	feed, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The follow job occupies the only executor forever; the batch job
	// behind it stays queued.
	blocker, err := mgr.Submit(JobSpec{DatasetID: feed.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, blocker.ID, func(s JobStatus) bool { return s.State == JobRunning })
	queued, err := mgr.Submit(JobSpec{DatasetID: feed.ID, K: 2, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Drain(0)
	crashClose(mgr, reg, jrnl)

	jrnl2, reg2, mgr2, _ := bootService(t, dir, ManagerOptions{MaxConcurrentJobs: 2}, nil)
	defer crashClose(mgr2, reg2, jrnl2)
	final := waitForState(t, mgr2, queued.ID, func(s JobStatus) bool { return s.State.Terminal() })
	if final.State != JobDone {
		t.Fatalf("requeued job finished %s: %s", final.State, final.Error)
	}
	if st, ok := mgr2.Get(blocker.ID); !ok || st.State.Terminal() {
		t.Errorf("interrupted follow job is %+v, want requeued and live", st)
	}
}

// TestJournalCheckpointCleanShutdown pins the clean-shutdown marker: a
// checkpointed boot is reported clean by the next one, and the marker
// is consumed — a crash after that reports unclean again.
func TestJournalCheckpointCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{}, nil)
	if _, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b")), "feed", center, 1); err != nil {
		t.Fatal(err)
	}
	mgr.Drain(time.Second)
	if err := jrnl.Checkpoint(reg, mgr); err != nil {
		t.Fatal(err)
	}
	crashClose(mgr, reg, jrnl)

	jrnl2, reg2, mgr2, rec := bootService(t, dir, ManagerOptions{}, nil)
	if !rec.CleanShutdown {
		t.Error("checkpointed shutdown not reported clean")
	}
	if r := jrnl2.Report(); !r.LastShutdownClean || r.RecoveredDatasets != 1 {
		t.Errorf("durability report: %+v", r)
	}
	if len(reg2.List()) != 1 {
		t.Error("checkpointed dataset lost")
	}
	// No checkpoint this time: the marker must not linger.
	crashClose(mgr2, reg2, jrnl2)
	jrnl3, reg3, mgr3, rec3 := bootService(t, dir, ManagerOptions{}, nil)
	defer crashClose(mgr3, reg3, jrnl3)
	if rec3.CleanShutdown {
		t.Error("stale clean-shutdown marker survived an unclean boot")
	}
}

// TestJournalReplayIdempotent pins the convergence property the boot
// compaction relies on: replaying the compaction of a replay yields the
// same state, so repeated crash/restart cycles with no new mutations
// never drift.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	center := geo.LatLon{Lat: 7.54, Lon: -5.55}
	jrnl, reg, mgr, _ := bootService(t, dir, ManagerOptions{}, nil)
	info, err := reg.Ingest(strings.NewReader(windowCSV(0, "a", "b", "c", "d")), "feed", center, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitForState(t, mgr, st.ID, func(s JobStatus) bool { return s.State.Terminal() })
	// A second, interrupted job exercises the normalized (requeue) shape.
	if _, err := mgr.Submit(JobSpec{DatasetID: info.ID, K: 2, Workers: 1, Shards: 1,
		WindowHours: 1, Follow: true}); err != nil {
		t.Fatal(err)
	}
	mgr.Drain(0)
	crashClose(mgr, reg, jrnl)

	// Boots 2 and 3 open the journal without restoring into a manager —
	// a requeued job starting to run would append fresh records and make
	// the comparison about scheduling, not replay.
	jrnl2, rec2, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap2, _ := json.Marshal(rec2)
	// Close without running anything: boot 3 replays boot 2's compaction.
	jrnl2.Close()
	jrnl3, rec3, err := OpenJournal(dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer jrnl3.Close()
	snap3, _ := json.Marshal(rec3)
	if !bytes.Equal(snap2, snap3) {
		t.Errorf("replay not idempotent:\nboot2 %s\nboot3 %s", snap2, snap3)
	}
}
