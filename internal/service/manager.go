// Package service is the resident anonymization subsystem behind the
// gloved daemon: a dataset registry fed by streaming CSV ingestion, a
// job manager that runs GLOVE k-anonymization asynchronously with
// per-job progress and cancellation, and a shard scheduler that
// partitions a dataset by subscriber and anonymizes the shards through
// a bounded worker pool before merging outputs and accounting.
package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/cdr"
	"repro/internal/core"
	"repro/internal/metrics"
)

// ErrQueueFull is returned by Submit when the job queue is at capacity;
// the condition is transient and the submission can be retried.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// ManagerOptions tunes the job manager.
type ManagerOptions struct {
	// MaxConcurrentJobs is the number of jobs executed simultaneously
	// (each job additionally parallelizes internally); <= 0 means 1.
	MaxConcurrentJobs int
	// QueueLimit bounds the number of queued-but-not-started jobs;
	// <= 0 means 256. Submissions beyond the limit are rejected.
	QueueLimit int
	// Workers is the default per-job CPU parallelism when a spec leaves
	// it unset; <= 0 uses all CPUs.
	Workers int
	// AnalysisMaxFingerprints caps the input size for the quadratic
	// k-gap anonymizability analysis attached to finished jobs; inputs
	// above the cap skip the analysis. <= 0 means 2000.
	AnalysisMaxFingerprints int
	// ShardSeed drives the deterministic user-to-shard assignment.
	ShardSeed uint64

	// DefaultStrategy / DefaultChunkSize / DefaultIndex fill the
	// corresponding JobSpec fields when a submission leaves them empty,
	// so operators can steer the planner daemon-wide (gloved -strategy,
	// -chunk-size and -index flags). Values are validated per job.
	DefaultStrategy  string
	DefaultChunkSize int
	DefaultIndex     string
}

func (o ManagerOptions) withDefaults() ManagerOptions {
	if o.MaxConcurrentJobs <= 0 {
		o.MaxConcurrentJobs = 1
	}
	if o.QueueLimit <= 0 {
		o.QueueLimit = 256
	}
	if o.AnalysisMaxFingerprints <= 0 {
		o.AnalysisMaxFingerprints = 2000
	}
	return o
}

// Manager owns the job lifecycle: submission, queueing, execution on a
// fixed pool of executor goroutines, cancellation, and result retention.
type Manager struct {
	reg *Registry
	opt ManagerOptions

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu     sync.Mutex
	seq    int
	jobs   map[string]*Job
	order  []string
	closed bool
}

// NewManager starts a manager executing jobs against the registry.
// Close must be called to release its executor goroutines.
func NewManager(reg *Registry, opt ManagerOptions) *Manager {
	opt = opt.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		reg:        reg,
		opt:        opt,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Job, opt.QueueLimit),
		jobs:       make(map[string]*Job),
	}
	m.wg.Add(opt.MaxConcurrentJobs)
	for i := 0; i < opt.MaxConcurrentJobs; i++ {
		go m.executor()
	}
	return m
}

// Close stops accepting jobs, cancels any running ones, and waits for
// the executors to exit. Queued jobs that never started are moved to
// cancelled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.queue)
	m.mu.Unlock()

	m.baseCancel()
	m.wg.Wait()

	// Anything still sitting in the (now drained) queue map as queued
	// was never picked up: mark it cancelled so clients see a terminal
	// state.
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.state == JobQueued {
			j.transition(JobCancelled)
			j.err = "service shut down before the job started"
		}
		j.mu.Unlock()
	}
}

// Submit validates the spec, registers a new job, and enqueues it.
// Spec fields left empty inherit the manager-wide defaults before
// validation, so a bad daemon default surfaces as a submission error
// rather than a failed job.
func (m *Manager) Submit(spec JobSpec) (JobStatus, error) {
	if spec.Strategy == "" {
		spec.Strategy = m.opt.DefaultStrategy
	}
	// The chunk-size default only applies where chunking can happen, so
	// an explicit single-strategy submission is not rejected over a
	// daemon-wide chunk default.
	if spec.ChunkSize == 0 && spec.Strategy != string(core.StrategySingle) {
		spec.ChunkSize = m.opt.DefaultChunkSize
	}
	if spec.Index == "" {
		spec.Index = m.opt.DefaultIndex
	}
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	info, ok := m.reg.Get(spec.DatasetID)
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown dataset %q", spec.DatasetID)
	}
	if info.Users < spec.K {
		return JobStatus{}, fmt.Errorf("service: dataset %s hides %d users, cannot %d-anonymize",
			info.ID, info.Users, spec.K)
	}
	if spec.Workers <= 0 {
		spec.Workers = m.opt.Workers
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: manager is shut down")
	}
	m.seq++
	job := &Job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		spec:    spec,
		state:   JobQueued,
		created: time.Now().UTC(),
	}
	// The enqueue happens under m.mu so Close (which also takes m.mu)
	// cannot close the channel between the closed check and the send.
	// The send is non-blocking: a full queue rejects the submission.
	select {
	case m.queue <- job:
	default:
		m.mu.Unlock()
		return JobStatus{}, fmt.Errorf("%w (limit %d)", ErrQueueFull, m.opt.QueueLimit)
	}
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	m.mu.Unlock()
	return job.Status(), nil
}

// Get returns the status of a job.
func (m *Manager) Get(id string) (JobStatus, bool) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return job.Status(), true
}

// List returns the status of every job in submission order.
func (m *Manager) List() []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Cancel requests cancellation of a queued or running job. Queued jobs
// move to cancelled immediately; running jobs are interrupted via their
// context and reach the cancelled state when the run unwinds.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	job.mu.Lock()
	switch {
	case job.state == JobQueued:
		job.cancelRequested = true
		job.transition(JobCancelled)
		job.err = "cancelled before start"
	case job.state == JobRunning:
		job.cancelRequested = true
		if job.cancel != nil {
			job.cancel()
		}
	default: // terminal
		state := job.state
		job.mu.Unlock()
		return JobStatus{}, fmt.Errorf("service: job %s already %s", id, state)
	}
	job.mu.Unlock()
	return job.Status(), nil
}

// Remove deletes a terminal job and its retained result from memory, so
// a long-running daemon does not accumulate finished jobs forever.
// Queued or running jobs must be cancelled first.
func (m *Manager) Remove(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	job, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("service: unknown job %q", id)
	}
	job.mu.Lock()
	state := job.state
	job.mu.Unlock()
	if !state.Terminal() {
		return fmt.Errorf("service: job %s is %s, cancel it before removing", id, state)
	}
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	return nil
}

// Result returns the anonymized dataset of a finished job.
func (m *Manager) Result(id string) (*core.Dataset, error) {
	m.mu.Lock()
	job, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown job %q", id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.state != JobDone {
		return nil, fmt.Errorf("service: job %s is %s, no result", id, job.state)
	}
	return job.result, nil
}

// executor pops jobs off the queue until the queue closes.
func (m *Manager) executor() {
	defer m.wg.Done()
	for job := range m.queue {
		m.runJob(job)
	}
}

// runJob drives one job from queued to a terminal state.
func (m *Manager) runJob(job *Job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	job.mu.Lock()
	if job.state != JobQueued {
		// Cancelled while waiting in the queue.
		job.mu.Unlock()
		return
	}
	if m.baseCtx.Err() != nil {
		// Shutdown: skip the run entirely instead of starting a doomed
		// job that would burn planShards work before noticing.
		job.transition(JobCancelled)
		job.err = "service shut down before the job started"
		job.mu.Unlock()
		return
	}
	job.cancel = cancel
	job.transition(JobRunning)
	spec := job.spec
	job.mu.Unlock()

	result, stats, anonFrac, err := m.execute(ctx, job, spec)

	// The accuracy measurement walks every published sample; do it
	// before taking job.mu so status polling never blocks behind it.
	var accuracy *metrics.Summary
	if err == nil {
		if sum, serr := metrics.Measure(result).Summarize(); serr == nil {
			accuracy = &sum
		}
	}

	job.mu.Lock()
	defer job.mu.Unlock()
	job.cancel = nil
	// A cancel acknowledged while the run was in a non-interruptible
	// tail (e.g. the capped analysis pass) must still win: never report
	// "done" for a job the client was told is being cancelled.
	if job.cancelRequested || ctx.Err() != nil {
		job.transition(JobCancelled)
		job.err = "cancelled"
		return
	}
	if err != nil {
		job.transition(JobFailed)
		job.err = err.Error()
		return
	}
	job.result = result
	job.stats = stats
	job.accuracy = accuracy
	job.anonymousFraction = anonFrac
	job.transition(JobDone)
}

// execute performs the sharded anonymization pipeline of one job.
func (m *Manager) execute(ctx context.Context, job *Job, spec JobSpec) (*core.Dataset, *core.GloveStats, *float64, error) {
	table, ok := m.reg.Table(spec.DatasetID)
	if !ok {
		return nil, nil, nil, fmt.Errorf("service: dataset %q disappeared", spec.DatasetID)
	}
	info, _ := m.reg.Get(spec.DatasetID)

	shards := planShards(table, info.Users, spec.K, spec.Shards, m.opt.ShardSeed)
	// Resolve and publish the execution plan for the largest shard (one
	// fingerprint per subscriber) so clients can see what the auto
	// rules picked before the run finishes.
	maxUsers := 0
	for _, s := range shards {
		if u := s.Users(); u > maxUsers {
			maxUsers = u
		}
	}
	plan, err := core.PlanFor(maxUsers, spec.anonymizeOptions(spec.Workers, nil))
	if err != nil {
		return nil, nil, nil, err
	}
	job.mu.Lock()
	job.shardProgress = make([]float64, len(shards))
	job.plan = &plan
	job.mu.Unlock()

	result, stats, err := runShards(ctx, shards, spec, job.setShardProgress)
	if err != nil {
		return nil, nil, nil, err
	}
	if verr := core.ValidateKAnonymity(result, spec.K); verr != nil {
		return nil, nil, nil, fmt.Errorf("service: published dataset failed validation: %w", verr)
	}

	anonFrac := m.anonymizability(ctx, table, spec)
	return result, stats, anonFrac, nil
}

// anonymizability runs the k-gap analysis of Sec. 5 on the job's input,
// reporting the fraction of fingerprints that were k-anonymous before
// GLOVE ran. The pass is quadratic, so it is skipped (nil) for inputs
// above the configured cap or when the analysis fails.
func (m *Manager) anonymizability(ctx context.Context, table *cdr.Table, spec JobSpec) *float64 {
	if ctx.Err() != nil {
		return nil
	}
	ds, err := table.BuildDataset()
	if err != nil || ds.Len() < spec.K || ds.Len() > m.opt.AnalysisMaxFingerprints {
		return nil
	}
	_, kgaps, err := analysis.KGapCDF(core.DefaultParams(), ds, spec.K, spec.Workers)
	if err != nil {
		return nil
	}
	frac := analysis.AnonymousFraction(kgaps)
	return &frac
}
